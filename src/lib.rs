//! # nosql-compaction
//!
//! Umbrella crate for the reproduction of *Fast Compaction Algorithms for
//! NoSQL Databases* (Ghosh, Gupta, Gupta, Kumar — ICDCS 2015).
//!
//! The repository is organized as a workspace; this crate re-exports the
//! public API of every member so downstream users can depend on a single
//! crate:
//!
//! * [`core`] (`compaction-core`) — the paper's contribution: the
//!   BINARYMERGING / K-WAYMERGING / SUBMODULARMERGING optimization
//!   problems, merge schedules and trees, cost models, the greedy
//!   heuristics (BalanceTree, SmallestInput, SmallestOutput, LargestMatch,
//!   Random, FreqBinaryMerging), exact reference solvers and lower bounds.
//! * [`lsm`] (`lsm-engine`) — an embeddable LSM storage engine
//!   (memtable, sstables, bloom filters, WAL, manifest, merge iterators)
//!   that physically executes merge schedules — and, configured with a
//!   `CompactionPolicy`, plans and runs its own compactions with the
//!   paper's strategies (parallel across independent merge steps).
//!   Point reads are lock-free against writers: lazy sstable readers
//!   fetch one data block per hit through a table/block cache pair,
//!   probing an atomically-swapped snapshot of the live tables.
//! * [`ycsb`] (`ycsb-gen`) — a YCSB-style workload generator (uniform /
//!   zipfian / latest request distributions, load and run phases).
//! * [`hll`] — HyperLogLog cardinality estimation, used by the
//!   SmallestOutput heuristic exactly as in the paper's evaluation.
//! * [`sim`] (`compaction-sim`) — the two-phase simulator, the
//!   experiment harness regenerating Figures 7, 8 and 9, and the
//!   service throughput experiment (closed-loop YCSB clients against
//!   the live server, per shard count and strategy).
//! * [`service`] (`kv-service`) — the sharded concurrent KV service:
//!   shard router, batched per-shard writes, TCP front-end
//!   (`GET`/`PUT`/`DEL`/`BATCH`/`STATS`) and a worker-pool server;
//!   `GET`s never take a shard lock, so reads proceed while any shard —
//!   including their own — flushes or compacts.
//!
//! # Quick start
//!
//! ```
//! use nosql_compaction::core::{KeySet, Strategy, schedule_with};
//!
//! // The paper's working example (Section 4.3).
//! let tables = vec![
//!     KeySet::from_iter([1u64, 2, 3, 5]),
//!     KeySet::from_iter([1u64, 2, 3, 4]),
//!     KeySet::from_iter([3u64, 4, 5]),
//!     KeySet::from_iter([6u64, 7, 8]),
//!     KeySet::from_iter([7u64, 8, 9]),
//! ];
//! let schedule = schedule_with(Strategy::SmallestOutput, &tables, 2).unwrap();
//! assert_eq!(schedule.cost(&tables), 40);
//! ```

pub use compaction_core as core;
pub use compaction_sim as sim;
pub use hll;
pub use kv_service as service;
pub use lsm_engine as lsm;
pub use ycsb_gen as ycsb;
