//! A miniature version of the paper's Figure 7 experiment: generate a
//! YCSB-style workload, flush it through memtables into sstables, and
//! compare the five compaction strategies on cost and running time at a
//! few update percentages.
//!
//! Run with: `cargo run --release --example ycsb_compaction`

use nosql_compaction::core::Strategy;
use nosql_compaction::sim::{run_strategy, run_strategy_parallel, SstableGenerator};
use nosql_compaction::ycsb::{Distribution, WorkloadSpec};

fn main() {
    let memtable_size = 500;
    let operation_count = 30_000;

    println!(
        "{:>8}  {:>9}  {:>9}  {:>12}  {:>12}  {:>10}",
        "update%", "strategy", "sstables", "cost_actual", "cost/LOPT", "time"
    );
    for update_percent in [0u32, 50, 100] {
        let spec = WorkloadSpec::builder()
            .record_count(1_000)
            .operation_count(operation_count)
            .update_percent(update_percent)
            .distribution(Distribution::Latest)
            .seed(7)
            .build()
            .expect("valid workload");
        let sstables = SstableGenerator::new(memtable_size).generate(&spec);

        for strategy in Strategy::paper_lineup(42) {
            let result = if matches!(
                strategy,
                Strategy::BalanceTreeInput | Strategy::BalanceTreeOutput
            ) {
                run_strategy_parallel(strategy, &sstables, 2)
            } else {
                run_strategy(strategy, &sstables, 2)
            }
            .expect("non-empty instance");
            println!(
                "{:>8}  {:>9}  {:>9}  {:>12}  {:>12.3}  {:>8.2?}",
                update_percent,
                strategy.name(),
                result.n_sstables,
                result.cost_actual,
                result.cost_actual as f64 / result.lopt as f64,
                result.total_time(),
            );
        }
        println!();
    }
    println!("Observations to look for (paper, Section 5.2):");
    println!(" * cost falls for every strategy as the update percentage rises;");
    println!(" * RANDOM is clearly worst at low update percentages;");
    println!(" * SI and BT(I) track each other closely, with BT(I) faster to execute.");
}
