//! End-to-end use of the LSM storage engine substrate: load a workload,
//! flush runs, then let the engine plan and execute its own major
//! compaction with a strategy from the scheduling library — no manual
//! `CompactionStep` construction.
//!
//! Run with: `cargo run --release --example lsm_store`

use nosql_compaction::core::Strategy;
use nosql_compaction::lsm::{Lsm, LsmOptions};
use nosql_compaction::ycsb::{Distribution, OperationKind, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. An LSM store whose memtable flushes every 500 distinct keys.
    //    The default policy is Manual: nothing compacts until we ask.
    let db = Lsm::open_in_memory(
        LsmOptions::default()
            .memtable_capacity(500)
            .compaction_strategy(Strategy::BalanceTreeInput)
            .compaction_threads(2)
            .wal(false),
    )?;

    // 2. Feed it a YCSB-style update-heavy workload.
    let spec = WorkloadSpec::builder()
        .record_count(2_000)
        .operation_count(10_000)
        .update_percent(70)
        .distribution(Distribution::zipfian_default())
        .seed(3)
        .build()?;
    for op in spec.generator().write_operations() {
        match op.kind {
            OperationKind::Delete => db.delete_u64(op.key)?,
            _ => db.put_u64(op.key, format!("value-of-{}", op.key).into_bytes())?,
        }
    }
    db.flush()?;
    println!(
        "after the workload: {} live sstables, {} flushes, {} puts",
        db.live_tables().len(),
        db.stats().flushes,
        db.stats().puts
    );

    // 3. One call: the engine observes its live tables, plans a merge
    //    schedule with the paper's recommended BT(I) strategy, and
    //    executes it (independent merges of each level in parallel).
    let run = db.auto_compact()?.expect("several tables to compact");
    println!(
        "planned {} merges with {} ({} waves), predicted cost_actual = {} entries",
        run.plan.steps().len(),
        run.plan.strategy(),
        run.plan.waves().len(),
        run.plan.predicted_cost_actual(),
    );
    println!(
        "executed: {} entries read, {} written, {} bytes of I/O, {:.2} ms",
        run.outcome.entries_read,
        run.outcome.entries_written,
        run.outcome.byte_cost(),
        run.stall.as_secs_f64() * 1e3,
    );
    println!("live sstables after compaction: {}", db.live_tables().len());

    // 4. Verify: every key written and not deleted is still readable.
    let mut verified = 0u64;
    for key in 0u64..2_000 {
        if db.get_u64(key)?.is_some() {
            verified += 1;
        }
    }
    println!("{verified} of the 2000 loaded keys are readable after compaction");
    assert_eq!(
        db.live_tables().len(),
        1,
        "major compaction leaves one sstable"
    );
    assert_eq!(
        run.outcome.entry_cost(),
        run.plan.predicted_cost_actual(),
        "the planner's model matches the physical engine exactly"
    );
    Ok(())
}
