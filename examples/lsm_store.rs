//! End-to-end use of the LSM storage engine substrate: load a workload,
//! flush runs, pick a compaction strategy from the scheduling library,
//! physically execute the resulting merge schedule, and verify reads.
//!
//! Run with: `cargo run --release --example lsm_store`

use nosql_compaction::core::{schedule_with, KeySet, Strategy};
use nosql_compaction::lsm::{CompactionStep, Lsm, LsmOptions};
use nosql_compaction::ycsb::{Distribution, OperationKind, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. An LSM store whose memtable flushes every 500 distinct keys.
    let mut db = Lsm::open_in_memory(LsmOptions::default().memtable_capacity(500).wal(false))?;

    // 2. Feed it a YCSB-style update-heavy workload.
    let spec = WorkloadSpec::builder()
        .record_count(2_000)
        .operation_count(10_000)
        .update_percent(70)
        .distribution(Distribution::zipfian_default())
        .seed(3)
        .build()?;
    for op in spec.generator().write_operations() {
        match op.kind {
            OperationKind::Delete => db.delete_u64(op.key)?,
            _ => db.put_u64(op.key, format!("value-of-{}", op.key).into_bytes())?,
        }
    }
    db.flush()?;
    println!(
        "after the workload: {} live sstables, {} flushes, {} puts",
        db.live_tables().len(),
        db.stats().flushes,
        db.stats().puts
    );

    // 3. Choose a merge schedule with the paper's recommended strategy,
    //    using each live table's key count as the set model.
    let sets: Vec<KeySet> = db
        .live_tables()
        .iter()
        .map(|t| KeySet::from_range(t.table_id * 1_000_000..t.table_id * 1_000_000 + t.entry_count))
        .collect();
    let schedule = schedule_with(Strategy::BalanceTreeInput, &sets, 2)?;
    let steps: Vec<CompactionStep> = schedule
        .ops()
        .iter()
        .map(|op| CompactionStep::new(op.inputs.clone()))
        .collect();

    // 4. Execute the schedule physically.
    let outcome = db.major_compact(&steps)?;
    println!(
        "major compaction: {} merges, {} entries read, {} entries written, {} bytes of I/O",
        outcome.merge_ops,
        outcome.entries_read,
        outcome.entries_written,
        outcome.byte_cost()
    );
    println!("live sstables after compaction: {}", db.live_tables().len());

    // 5. Verify: every key written and not deleted is still readable.
    let mut verified = 0u64;
    for key in 0u64..2_000 {
        if db.get_u64(key)?.is_some() {
            verified += 1;
        }
    }
    println!("{verified} of the 2000 loaded keys are readable after compaction");
    assert_eq!(db.live_tables().len(), 1, "major compaction leaves one sstable");
    Ok(())
}
