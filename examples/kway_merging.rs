//! K-WAYMERGING: the effect of the per-iteration fan-in `k` on compaction
//! cost and on the number of merge iterations (Section 2's
//! generalization of BINARYMERGING).
//!
//! Run with: `cargo run --release --example kway_merging`

use nosql_compaction::core::bounds::lopt_lower_bound;
use nosql_compaction::core::{schedule_with, Strategy};
use nosql_compaction::sim::SstableGenerator;
use nosql_compaction::ycsb::{Distribution, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec::builder()
        .record_count(1_000)
        .operation_count(20_000)
        .update_percent(40)
        .distribution(Distribution::Latest)
        .seed(11)
        .build()
        .expect("valid workload");
    let sstables = SstableGenerator::new(400).generate(&spec);
    let lopt = lopt_lower_bound(&sstables);
    println!("{} sstables, LOPT = {lopt}\n", sstables.len());

    println!(
        "{:>4}  {:>10}  {:>12}  {:>12}  {:>11}  {:>8}",
        "k", "strategy", "iterations", "cost_actual", "cost/LOPT", "height"
    );
    for k in [2usize, 3, 4, 8] {
        for strategy in [Strategy::SmallestInput, Strategy::BalanceTreeInput] {
            let schedule = schedule_with(strategy, &sstables, k).expect("valid instance");
            println!(
                "{:>4}  {:>10}  {:>12}  {:>12}  {:>11.3}  {:>8}",
                k,
                strategy.name(),
                schedule.len(),
                schedule.cost_actual(&sstables),
                schedule.cost_actual(&sstables) as f64 / lopt as f64,
                schedule.to_tree().height(),
            );
        }
    }
    println!();
    println!("A larger fan-in means fewer, wider iterations: intermediate sstables are");
    println!("rewritten fewer times, so the total disk I/O falls, at the price of more");
    println!("sstables being read simultaneously during each merge.");
}
