//! The self-compacting engine: configure a policy once, write forever.
//!
//! Demonstrates `CompactionPolicy::Threshold` — the engine watches its
//! own live-table count after every flush and, when the threshold is
//! reached, plans a merge schedule with the configured strategy
//! (SmallestOutput with HyperLogLog size estimation here, the paper's
//! `SO(E)` variant) and executes it with parallel merge steps. Compare
//! the strategies' accumulated compaction cost at the end.
//!
//! Run with: `cargo run --release --example auto_compaction`

use nosql_compaction::core::{SizeEstimator, Strategy};
use nosql_compaction::lsm::{CompactionPolicy, Lsm, LsmOptions};
use nosql_compaction::ycsb::{Distribution, OperationKind, WorkloadSpec};

fn run_with(strategy: Strategy) -> Result<(), Box<dyn std::error::Error>> {
    let db = Lsm::open_in_memory(
        LsmOptions::default()
            .memtable_capacity(300)
            .compaction_policy(CompactionPolicy::Threshold { live_tables: 8 })
            .compaction_strategy(strategy)
            .planning_estimator(SizeEstimator::paper_hll())
            .compaction_threads(2)
            .wal(false),
    )?;

    let spec = WorkloadSpec::builder()
        .record_count(1_500)
        .operation_count(12_000)
        .update_percent(60)
        .distribution(Distribution::Latest)
        .seed(7)
        .build()?;
    for op in spec.generator().write_operations() {
        match op.kind {
            OperationKind::Delete => db.delete_u64(op.key)?,
            _ => db.put_u64(op.key, op.key.to_le_bytes().to_vec())?,
        }
    }
    db.flush()?;

    let stats = db.stats();
    println!(
        "{:>8}: {} flushes, {} auto-compactions, cost_actual = {} entries \
         ({} predicted), stalled {:.2} ms, {} live tables",
        strategy.name(),
        stats.flushes,
        stats.auto_compactions,
        stats.compaction_entry_cost(),
        stats.compaction_predicted_cost,
        stats.compaction_stall.as_secs_f64() * 1e3,
        db.live_tables().len(),
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("policy: Threshold {{ live_tables: 8 }}, identical write stream per strategy\n");
    for strategy in [
        Strategy::SmallestOutput,
        Strategy::SmallestInput,
        Strategy::BalanceTreeInput,
        Strategy::Random { seed: 5 },
    ] {
        run_with(strategy)?;
    }
    println!("\nlower cost at equal flush counts = better merge scheduling (Figure 7, live)");
    Ok(())
}
