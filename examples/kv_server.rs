//! The sharded KV service end to end: start a multi-shard server on an
//! ephemeral port, drive it from concurrent TCP clients with a
//! write-heavy YCSB mix while `Threshold` auto-compaction fires on the
//! shards, then print the service statistics.
//!
//! Run with: `cargo run --release --example kv_server`

use std::sync::Arc;

use nosql_compaction::core::Strategy;
use nosql_compaction::lsm::{CompactionPolicy, LsmOptions};
use nosql_compaction::service::{KvClient, KvServer, ShardedKv, WireOp};
use nosql_compaction::ycsb::{Distribution, OperationKind, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const SHARDS: usize = 4;
    const CLIENTS: usize = 4;

    let store = Arc::new(ShardedKv::open_in_memory(
        SHARDS,
        LsmOptions::default()
            .memtable_capacity(200)
            .compaction_policy(CompactionPolicy::Threshold { live_tables: 4 })
            .compaction_strategy(Strategy::BalanceTreeInput)
            .compaction_threads(2)
            .wal(false),
    )?);
    let handle = KvServer::bind(Arc::clone(&store), "127.0.0.1:0", CLIENTS)?.spawn();
    let addr = handle.addr();
    println!("kv-server: {SHARDS} shards, {CLIENTS} workers, listening on {addr}");

    let spec = WorkloadSpec::builder()
        .record_count(1_000)
        .operation_count(8_000)
        .update_percent(60)
        .distribution(Distribution::Latest)
        .seed(7)
        .build()?;

    // Load phase over the wire, batched: one BATCH frame per 256 keys,
    // re-grouped into per-shard WriteBatches server-side. Scoped so the
    // loader's connection releases its pool worker before the measured
    // clients connect.
    let load_keys: Vec<u64> = spec.generator().load_phase().map(|op| op.key).collect();
    {
        let mut loader = KvClient::connect(addr)?;
        for chunk in load_keys.chunks(256) {
            let ops: Vec<WireOp> = chunk
                .iter()
                .map(|&k| WireOp::put(k.to_be_bytes().to_vec(), k.to_le_bytes().to_vec()))
                .collect();
            loader.batch(ops)?;
        }
    }
    println!("loaded {} records in batches", load_keys.len());

    // Run phase: the workload dealt round-robin across closed-loop
    // clients, one thread (and one TCP connection) each.
    let partitions = spec.generator().client_partitions(CLIENTS);
    let started = std::time::Instant::now();
    std::thread::scope(
        |scope| -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
            let mut handles = Vec::new();
            for ops in &partitions {
                handles.push(scope.spawn(
                    move || -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
                        let mut client = KvClient::connect(addr)?;
                        for op in ops {
                            match op.kind {
                                OperationKind::Insert | OperationKind::Update => {
                                    client.put_u64(op.key, op.key.to_le_bytes().to_vec())?;
                                }
                                OperationKind::Delete => client.delete_u64(op.key)?,
                                OperationKind::Read | OperationKind::Scan => {
                                    let _ = client.get_u64(op.key)?;
                                }
                            }
                        }
                        Ok(())
                    },
                ));
            }
            for h in handles {
                h.join().expect("client thread")?;
            }
            Ok(())
        },
    )
    .map_err(|e| -> Box<dyn std::error::Error> { e })?;
    let elapsed = started.elapsed();
    println!(
        "{} ops from {CLIENTS} clients in {:.2?} ({:.0} ops/s)",
        spec.operation_count(),
        elapsed,
        spec.operation_count() as f64 / elapsed.as_secs_f64()
    );

    // Server-side view, over the wire (fresh connection; the loader's
    // was closed before the run phase).
    let stats = KvClient::connect(addr)?.stats()?;
    println!(
        "server stats: {} puts, {} gets, {} batches, {} flushes, {} auto-compactions \
         ({} entries moved, {:.2} ms stalled), {} live tables",
        stats.puts,
        stats.gets,
        stats.write_batches,
        stats.flushes,
        stats.auto_compactions,
        stats.compaction_entry_cost,
        stats.compaction_stall_micros as f64 / 1e3,
        stats.live_tables,
    );
    assert!(
        stats.auto_compactions >= 1,
        "compaction fired while serving"
    );

    handle.shutdown();
    println!("server shut down cleanly");
    Ok(())
}
