//! Quickstart: schedule the paper's working example (Section 4.3) with
//! the three analyzed heuristics and print the resulting merge trees and
//! costs.
//!
//! Run with: `cargo run --example quickstart`

use nosql_compaction::core::bounds::lopt_lower_bound;
use nosql_compaction::core::optimal::optimal_schedule;
use nosql_compaction::core::{schedule_with, KeySet, MergeSchedule, Strategy};

fn describe(label: &str, schedule: &MergeSchedule, sets: &[KeySet]) {
    println!("== {label} ==");
    println!(
        "  merge operations (slots 0..{} are the input sstables):",
        sets.len() - 1
    );
    for (i, op) in schedule.ops().iter().enumerate() {
        let output = schedule.outputs(sets)[i].len();
        println!(
            "    iteration {}: merge slots {:?} -> slot {} ({} keys)",
            i + 1,
            op.inputs,
            sets.len() + i,
            output
        );
    }
    println!("  simplified cost (eq. 2.1): {}", schedule.cost(sets));
    println!(
        "  disk I/O cost (cost_actual): {}",
        schedule.cost_actual(sets)
    );
    println!("  merge tree height: {}", schedule.to_tree().height());
    println!();
}

fn main() {
    // The working example of Section 4.3: five sstables over keys 1..=9.
    let sstables = vec![
        KeySet::from_iter([1u64, 2, 3, 5]),
        KeySet::from_iter([1u64, 2, 3, 4]),
        KeySet::from_iter([3u64, 4, 5]),
        KeySet::from_iter([6u64, 7, 8]),
        KeySet::from_iter([7u64, 8, 9]),
    ];
    println!(
        "5 sstables, {} distinct keys, LOPT lower bound = {}\n",
        KeySet::union_many(sstables.iter()).len(),
        lopt_lower_bound(&sstables)
    );

    let bt = schedule_with(Strategy::BalanceTree, &sstables, 2).expect("valid instance");
    let si = schedule_with(Strategy::SmallestInput, &sstables, 2).expect("valid instance");
    let so = schedule_with(Strategy::SmallestOutput, &sstables, 2).expect("valid instance");
    describe("BALANCETREE (Figure 4, cost 45)", &bt, &sstables);
    describe("SMALLESTINPUT (Figure 5, cost 47)", &si, &sstables);
    describe("SMALLESTOUTPUT (Figure 6, cost 40)", &so, &sstables);

    let opt = optimal_schedule(&sstables, 2).expect("small instance");
    describe("Exhaustive optimum", &opt, &sstables);

    assert_eq!(bt.cost(&sstables), 45);
    assert_eq!(si.cost(&sstables), 47);
    assert_eq!(so.cost(&sstables), 40);
    println!("All three costs match the paper's Figures 4-6.");
}
