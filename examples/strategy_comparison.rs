//! Compares every heuristic against the exhaustive optimum on small
//! random instances (the comparison the paper can only do against the
//! LOPT lower bound at scale, Section 5.3), and shows the adversarial
//! instances where each heuristic's analysis is tight.
//!
//! Run with: `cargo run --release --example strategy_comparison`

use nosql_compaction::core::bounds::{adversarial, lopt_lower_bound, ratio_to_lopt};
use nosql_compaction::core::optimal::optimal_schedule;
use nosql_compaction::core::{schedule_with, KeySet, Strategy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn all_strategies() -> Vec<Strategy> {
    vec![
        Strategy::BalanceTree,
        Strategy::BalanceTreeInput,
        Strategy::BalanceTreeOutput,
        Strategy::SmallestInput,
        Strategy::SmallestOutput,
        Strategy::LargestMatch,
        Strategy::Random { seed: 1 },
        Strategy::Frequency,
    ]
}

fn random_instance(rng: &mut StdRng, n: usize) -> Vec<KeySet> {
    (0..n)
        .map(|_| {
            let size = rng.gen_range(3..25);
            KeySet::from_vec((0..size).map(|_| rng.gen_range(0..60u64)).collect())
        })
        .collect()
}

fn main() {
    // Part 1: mean cost relative to the exhaustive optimum over random
    // 8-set instances.
    let trials = 25;
    let mut rng = StdRng::seed_from_u64(99);
    let mut totals: Vec<(Strategy, f64, f64)> =
        all_strategies().iter().map(|&s| (s, 0.0, 0.0f64)).collect();
    for _ in 0..trials {
        let sets = random_instance(&mut rng, 8);
        let opt = optimal_schedule(&sets, 2)
            .expect("small instance")
            .cost(&sets) as f64;
        for (strategy, total, worst) in &mut totals {
            let cost = schedule_with(*strategy, &sets, 2)
                .expect("valid")
                .cost(&sets) as f64;
            *total += cost / opt;
            *worst = worst.max(cost / opt);
        }
    }
    println!(
        "# Heuristic vs exhaustive optimum ({} random 8-set instances)",
        trials
    );
    println!(
        "{:>10}  {:>10}  {:>10}",
        "strategy", "mean/OPT", "worst/OPT"
    );
    for (strategy, total, worst) in &totals {
        println!(
            "{:>10}  {:>10.4}  {:>10.4}",
            strategy.name(),
            total / trials as f64,
            worst
        );
    }

    // Part 2: the adversarial instances from the analysis.
    println!("\n# Lemma 4.5: SI on n disjoint singletons costs log2(n)+1 times LOPT");
    for n in [16usize, 64, 256] {
        let sets = adversarial::greedy_lopt_tight(n);
        let si = schedule_with(Strategy::SmallestInput, &sets, 2).expect("valid");
        println!(
            "  n = {:>4}: cost = {:>6}, LOPT = {:>4}, ratio = {:.2} (log2 n + 1 = {:.2})",
            n,
            si.cost(&sets),
            lopt_lower_bound(&sets),
            ratio_to_lopt(&si, &sets),
            (n as f64).log2() + 1.0
        );
    }

    println!("\n# Lemma 4.2: BT on (n-1) singletons + one n-set vs the left-to-right merge");
    for n in [16usize, 64, 256] {
        let sets = adversarial::balance_tree_tight(n);
        let bt = schedule_with(Strategy::BalanceTreeInput, &sets, 2).expect("valid");
        let l2r = nosql_compaction::core::optimal::left_to_right_schedule(n, 2).expect("valid");
        println!(
            "  n = {:>4}: BT(I) = {:>8}, left-to-right = {:>6}, ratio = {:.2}",
            n,
            bt.cost(&sets),
            l2r.cost(&sets),
            bt.cost(&sets) as f64 / l2r.cost(&sets) as f64
        );
    }

    println!("\n# LARGESTMATCH Omega(n) gap on nested prefix sets");
    for n in [8usize, 12, 16] {
        let sets = adversarial::largest_match_gap(n);
        let lm = schedule_with(Strategy::LargestMatch, &sets, 2).expect("valid");
        let l2r = nosql_compaction::core::optimal::left_to_right_schedule(n, 2).expect("valid");
        println!(
            "  n = {:>3}: LM = {:>9}, left-to-right = {:>7}, ratio = {:.2}",
            n,
            lm.cost(&sets),
            l2r.cost(&sets),
            lm.cost(&sets) as f64 / l2r.cost(&sets) as f64
        );
    }
}
