//! CRUD operations emitted by the workload generator.

/// The kind of a CRUD operation, mirroring YCSB's core operation mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum OperationKind {
    /// Insert a brand-new key.
    Insert,
    /// Update (overwrite) an existing key.
    Update,
    /// Point read of an existing key.
    Read,
    /// Delete an existing key (stored as a tombstone update in LSM terms).
    Delete,
    /// Short range scan starting at an existing key.
    Scan,
}

impl OperationKind {
    /// Returns `true` if this operation writes to the memtable (and hence
    /// eventually to sstables). In the paper's simulator, reads and scans
    /// are ignored when constructing sstables; deletes are handled as
    /// tombstone-flag updates.
    #[must_use]
    pub fn is_write(self) -> bool {
        matches!(
            self,
            OperationKind::Insert | OperationKind::Update | OperationKind::Delete
        )
    }
}

impl std::fmt::Display for OperationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            OperationKind::Insert => "insert",
            OperationKind::Update => "update",
            OperationKind::Read => "read",
            OperationKind::Delete => "delete",
            OperationKind::Scan => "scan",
        };
        f.write_str(name)
    }
}

/// One operation of a YCSB-style workload: a kind plus the key it targets.
///
/// Keys are dense integers (`0..record_count + inserts so far`), matching
/// how YCSB numbers records before hashing them into string keys; the
/// compaction theory only cares about key identity, so the integer form is
/// used directly throughout the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Operation {
    /// What the operation does.
    pub kind: OperationKind,
    /// The key the operation targets.
    pub key: u64,
}

impl Operation {
    /// Convenience constructor.
    #[must_use]
    pub fn new(kind: OperationKind, key: u64) -> Self {
        Self { kind, key }
    }
}

impl std::fmt::Display for Operation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}({})", self.kind, self.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_classification() {
        assert!(OperationKind::Insert.is_write());
        assert!(OperationKind::Update.is_write());
        assert!(OperationKind::Delete.is_write());
        assert!(!OperationKind::Read.is_write());
        assert!(!OperationKind::Scan.is_write());
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Operation::new(OperationKind::Update, 7).to_string(),
            "update(7)"
        );
        assert_eq!(OperationKind::Scan.to_string(), "scan");
    }
}
