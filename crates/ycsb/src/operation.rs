//! CRUD operations emitted by the workload generator.

/// The kind of a CRUD operation, mirroring YCSB's core operation mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum OperationKind {
    /// Insert a brand-new key.
    Insert,
    /// Update (overwrite) an existing key.
    Update,
    /// Point read of an existing key.
    Read,
    /// Delete an existing key (stored as a tombstone update in LSM terms).
    Delete,
    /// Short range scan starting at an existing key.
    Scan,
}

impl OperationKind {
    /// Returns `true` if this operation writes to the memtable (and hence
    /// eventually to sstables). In the paper's simulator, reads and scans
    /// are ignored when constructing sstables; deletes are handled as
    /// tombstone-flag updates.
    #[must_use]
    pub fn is_write(self) -> bool {
        matches!(
            self,
            OperationKind::Insert | OperationKind::Update | OperationKind::Delete
        )
    }
}

impl std::fmt::Display for OperationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            OperationKind::Insert => "insert",
            OperationKind::Update => "update",
            OperationKind::Read => "read",
            OperationKind::Delete => "delete",
            OperationKind::Scan => "scan",
        };
        f.write_str(name)
    }
}

/// One operation of a YCSB-style workload: a kind plus the key it targets.
///
/// Keys are dense integers (`0..record_count + inserts so far`), matching
/// how YCSB numbers records before hashing them into string keys; the
/// compaction theory only cares about key identity, so the integer form is
/// used directly throughout the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Operation {
    /// What the operation does.
    pub kind: OperationKind,
    /// The key the operation targets (the *start* key for a scan).
    pub key: u64,
    /// For [`OperationKind::Scan`]: how many consecutive keys the scan
    /// covers, starting at [`Operation::key`] (YCSB's
    /// `maxscanlength`-bounded per-operation length). `0` for every
    /// other kind.
    pub scan_len: u32,
}

impl Operation {
    /// Convenience constructor for non-scan operations (scan length 0).
    #[must_use]
    pub fn new(kind: OperationKind, key: u64) -> Self {
        Self {
            kind,
            key,
            scan_len: 0,
        }
    }

    /// A range scan over `[start, start + len)` (`len` clamped to ≥ 1).
    #[must_use]
    pub fn scan(start: u64, len: u32) -> Self {
        Self {
            kind: OperationKind::Scan,
            key: start,
            scan_len: len.max(1),
        }
    }

    /// The half-open key range a scan covers (saturating at the top of
    /// the key space). Meaningless for non-scan operations.
    #[must_use]
    pub fn scan_range(&self) -> std::ops::Range<u64> {
        self.key..self.key.saturating_add(u64::from(self.scan_len.max(1)))
    }
}

impl std::fmt::Display for Operation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.kind == OperationKind::Scan {
            write!(f, "{}({},+{})", self.kind, self.key, self.scan_len)
        } else {
            write!(f, "{}({})", self.kind, self.key)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_classification() {
        assert!(OperationKind::Insert.is_write());
        assert!(OperationKind::Update.is_write());
        assert!(OperationKind::Delete.is_write());
        assert!(!OperationKind::Read.is_write());
        assert!(!OperationKind::Scan.is_write());
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Operation::new(OperationKind::Update, 7).to_string(),
            "update(7)"
        );
        assert_eq!(Operation::scan(7, 25).to_string(), "scan(7,+25)");
        assert_eq!(OperationKind::Scan.to_string(), "scan");
    }

    #[test]
    fn scan_constructor_and_range() {
        let op = Operation::scan(10, 5);
        assert_eq!(op.scan_range(), 10..15);
        assert_eq!(Operation::scan(3, 0).scan_len, 1, "length clamps to 1");
        assert_eq!(
            Operation::scan(u64::MAX, 10).scan_range(),
            u64::MAX..u64::MAX
        );
        assert_eq!(Operation::new(OperationKind::Read, 9).scan_len, 0);
    }
}
