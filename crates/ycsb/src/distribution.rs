//! Request-key distributions: uniform, (scrambled) zipfian, and latest.
//!
//! These mirror YCSB's `UniformGenerator`, `ScrambledZipfianGenerator` and
//! `SkewedLatestGenerator`. The zipfian generator uses the Gray/Jacobson
//! incremental method so that the item count can grow as the run phase
//! inserts new records, exactly like YCSB does.

use rand::Rng;

use crate::DEFAULT_ZIPFIAN_CONSTANT;

/// Which request distribution the run phase draws keys from.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Default)]
pub enum Distribution {
    /// Every existing key is equally likely to be chosen.
    #[default]
    Uniform,
    /// A scrambled power-law over the key space: a few keys are hot
    /// regardless of when they were inserted. `theta` is the zipfian
    /// constant (YCSB default 0.99).
    Zipfian {
        /// The zipfian skew constant, in `(0, 1)`.
        theta: f64,
    },
    /// A power-law over recency: the most recently inserted keys are the
    /// hottest (YCSB's `latest` distribution).
    Latest,
}

impl Distribution {
    /// The paper's three distributions with YCSB-default parameters.
    #[must_use]
    pub fn zipfian_default() -> Self {
        Distribution::Zipfian {
            theta: DEFAULT_ZIPFIAN_CONSTANT,
        }
    }

    /// Short lowercase name, used in experiment reports ("uniform",
    /// "zipfian", "latest").
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Distribution::Uniform => "uniform",
            Distribution::Zipfian { .. } => "zipfian",
            Distribution::Latest => "latest",
        }
    }
}

impl std::fmt::Display for Distribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Chooses which existing key an update/read/delete targets.
///
/// Implementations are stateful because the zipfian normalization constant
/// is maintained incrementally as the key space grows.
pub trait KeyChooser: std::fmt::Debug {
    /// Draws a key index in `0..item_count`.
    ///
    /// `item_count` is the number of keys currently present in the
    /// database (load-phase records plus run-phase inserts so far). It is
    /// always at least 1.
    fn next_key<R: Rng + ?Sized>(&mut self, rng: &mut R, item_count: u64) -> u64
    where
        Self: Sized;
}

/// Uniform key chooser: every key equally likely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UniformChooser;

impl KeyChooser for UniformChooser {
    fn next_key<R: Rng + ?Sized>(&mut self, rng: &mut R, item_count: u64) -> u64 {
        rng.gen_range(0..item_count.max(1))
    }
}

/// Zipfian key chooser using the Gray et al. incremental algorithm, with
/// FNV-style scrambling so that hot keys are spread over the key space
/// (YCSB's `ScrambledZipfianGenerator`).
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfianChooser {
    theta: f64,
    /// Number of items zeta was computed for.
    count_for_zeta: u64,
    zeta_n: f64,
    zeta2: f64,
    alpha: f64,
    eta: f64,
    scramble: bool,
}

impl ZipfianChooser {
    /// Creates a chooser with the given zipfian constant, scrambling item
    /// ranks over the key space.
    #[must_use]
    pub fn new(theta: f64) -> Self {
        Self {
            theta,
            count_for_zeta: 0,
            zeta_n: 0.0,
            zeta2: zeta_static(2, theta),
            alpha: 1.0 / (1.0 - theta),
            eta: 0.0,
            scramble: true,
        }
    }

    /// Creates an unscrambled chooser (rank 0 is always the hottest key).
    /// Used by the latest distribution, which maps rank to recency.
    #[must_use]
    pub fn new_unscrambled(theta: f64) -> Self {
        let mut c = Self::new(theta);
        c.scramble = false;
        c
    }

    fn update_zeta(&mut self, n: u64) {
        if n == self.count_for_zeta {
            return;
        }
        if n > self.count_for_zeta {
            // Incremental extension of the zeta sum.
            let mut zeta = self.zeta_n;
            for i in self.count_for_zeta..n {
                zeta += 1.0 / ((i + 1) as f64).powf(self.theta);
            }
            self.zeta_n = zeta;
        } else {
            // Shrinking the item count is rare (never happens in YCSB);
            // recompute from scratch for correctness.
            self.zeta_n = zeta_static(n, self.theta);
        }
        self.count_for_zeta = n;
        self.eta =
            (1.0 - (2.0 / n as f64).powf(1.0 - self.theta)) / (1.0 - self.zeta2 / self.zeta_n);
    }

    /// Draws a zipfian rank in `0..n` (0 = hottest).
    fn next_rank<R: Rng + ?Sized>(&mut self, rng: &mut R, n: u64) -> u64 {
        let n = n.max(1);
        if n == 1 {
            return 0;
        }
        self.update_zeta(n);
        let u: f64 = rng.gen();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(n - 1)
    }
}

impl KeyChooser for ZipfianChooser {
    fn next_key<R: Rng + ?Sized>(&mut self, rng: &mut R, item_count: u64) -> u64 {
        let n = item_count.max(1);
        let rank = self.next_rank(rng, n);
        if self.scramble {
            // Spread the hot ranks over the key space deterministically.
            fnv_scramble(rank) % n
        } else {
            rank
        }
    }
}

/// Latest-distribution chooser: zipfian over recency, so the most recently
/// inserted keys are the most popular.
#[derive(Debug, Clone, PartialEq)]
pub struct LatestChooser {
    zipf: ZipfianChooser,
}

impl LatestChooser {
    /// Creates a latest chooser with the YCSB-default zipfian constant.
    #[must_use]
    pub fn new() -> Self {
        Self {
            zipf: ZipfianChooser::new_unscrambled(DEFAULT_ZIPFIAN_CONSTANT),
        }
    }
}

impl Default for LatestChooser {
    fn default() -> Self {
        Self::new()
    }
}

impl KeyChooser for LatestChooser {
    fn next_key<R: Rng + ?Sized>(&mut self, rng: &mut R, item_count: u64) -> u64 {
        let n = item_count.max(1);
        let recency_rank = self.zipf.next_rank(rng, n);
        // Rank 0 = newest key = highest key id.
        n - 1 - recency_rank
    }
}

/// A unified chooser that dispatches on [`Distribution`].
#[derive(Debug, Clone, PartialEq)]
pub enum AnyChooser {
    /// Uniform.
    Uniform(UniformChooser),
    /// Scrambled zipfian.
    Zipfian(ZipfianChooser),
    /// Latest (zipfian over recency).
    Latest(LatestChooser),
}

impl AnyChooser {
    /// Builds the stateful chooser for a distribution.
    #[must_use]
    pub fn for_distribution(dist: Distribution) -> Self {
        match dist {
            Distribution::Uniform => AnyChooser::Uniform(UniformChooser),
            Distribution::Zipfian { theta } => AnyChooser::Zipfian(ZipfianChooser::new(theta)),
            Distribution::Latest => AnyChooser::Latest(LatestChooser::new()),
        }
    }

    /// Draws a key in `0..item_count`.
    pub fn next_key<R: Rng + ?Sized>(&mut self, rng: &mut R, item_count: u64) -> u64 {
        match self {
            AnyChooser::Uniform(c) => c.next_key(rng, item_count),
            AnyChooser::Zipfian(c) => c.next_key(rng, item_count),
            AnyChooser::Latest(c) => c.next_key(rng, item_count),
        }
    }
}

/// `zeta(n, theta) = sum_{i=1..n} 1 / i^theta`, computed from scratch.
fn zeta_static(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

/// FNV-1a-style 64-bit scramble used to spread zipfian ranks over the key
/// space (mirrors YCSB's `FNVhash64`).
fn fnv_scramble(value: u64) -> u64 {
    const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut hash = FNV_OFFSET;
    let mut v = value;
    for _ in 0..8 {
        let octet = v & 0xFF;
        v >>= 8;
        hash ^= octet;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn histogram<C: KeyChooser>(chooser: &mut C, n: u64, draws: usize) -> HashMap<u64, usize> {
        let mut rng = StdRng::seed_from_u64(7);
        let mut hist = HashMap::new();
        for _ in 0..draws {
            *hist.entry(chooser.next_key(&mut rng, n)).or_insert(0) += 1;
        }
        hist
    }

    #[test]
    fn uniform_stays_in_range_and_covers_keys() {
        let mut c = UniformChooser;
        let hist = histogram(&mut c, 100, 20_000);
        assert!(hist.keys().all(|&k| k < 100));
        // Every key should appear at least once with overwhelming probability.
        assert!(hist.len() > 95);
        // No key should be wildly over-represented under uniform.
        let max = *hist.values().max().unwrap();
        assert!(max < 500, "max bucket {max} too large for uniform");
    }

    #[test]
    fn zipfian_is_skewed() {
        let mut c = ZipfianChooser::new(0.99);
        let hist = histogram(&mut c, 1_000, 50_000);
        let mut counts: Vec<usize> = hist.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top_10: usize = counts.iter().take(10).sum();
        // The 10 hottest keys should receive a large share of requests.
        assert!(
            top_10 as f64 / 50_000.0 > 0.2,
            "zipfian not skewed enough: top-10 share {}",
            top_10 as f64 / 50_000.0
        );
    }

    #[test]
    fn latest_prefers_recent_keys() {
        let mut c = LatestChooser::new();
        let n = 1_000;
        let hist = histogram(&mut c, n, 50_000);
        let recent: usize = (n - 50..n)
            .map(|k| hist.get(&k).copied().unwrap_or(0))
            .sum();
        let old: usize = (0..50).map(|k| hist.get(&k).copied().unwrap_or(0)).sum();
        assert!(
            recent > old * 5,
            "latest distribution should favour recent keys: recent={recent} old={old}"
        );
    }

    #[test]
    fn zipfian_handles_growing_item_count() {
        let mut c = ZipfianChooser::new(0.99);
        let mut rng = StdRng::seed_from_u64(3);
        for n in [1u64, 2, 10, 100, 1_000, 10_000] {
            for _ in 0..100 {
                let k = c.next_key(&mut rng, n);
                assert!(k < n);
            }
        }
    }

    #[test]
    fn zipfian_handles_shrinking_item_count() {
        let mut c = ZipfianChooser::new(0.99);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(c.next_key(&mut rng, 10_000) < 10_000);
        }
        for _ in 0..100 {
            assert!(c.next_key(&mut rng, 10) < 10);
        }
    }

    #[test]
    fn single_item_always_key_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(UniformChooser.next_key(&mut rng, 1), 0);
        assert_eq!(ZipfianChooser::new(0.99).next_key(&mut rng, 1), 0);
        assert_eq!(LatestChooser::new().next_key(&mut rng, 1), 0);
    }

    #[test]
    fn distribution_names() {
        assert_eq!(Distribution::Uniform.name(), "uniform");
        assert_eq!(Distribution::zipfian_default().name(), "zipfian");
        assert_eq!(Distribution::Latest.to_string(), "latest");
    }

    #[test]
    fn fnv_scramble_is_deterministic_and_spreading() {
        assert_eq!(fnv_scramble(5), fnv_scramble(5));
        assert_ne!(fnv_scramble(0), fnv_scramble(1));
    }
}
