//! The deterministic workload generator: load phase + run phase.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::distribution::AnyChooser;
use crate::{Operation, OperationKind, WorkloadSpec};

/// Generates the operation streams of a [`WorkloadSpec`].
///
/// Two generators constructed from equal specs emit identical streams;
/// the compaction experiments rely on this to average over independent
/// seeded runs (the paper reports mean ± stddev over 3 runs).
///
/// # Examples
///
/// ```
/// use ycsb_gen::{OperationKind, WorkloadSpec};
///
/// let spec = WorkloadSpec::builder()
///     .record_count(100)
///     .operation_count(500)
///     .update_percent(100)
///     .build()?;
/// let mut gen = spec.generator();
/// assert_eq!(gen.load_phase().count(), 100);
/// assert!(gen.run_phase().all(|op| op.kind == OperationKind::Update));
/// # Ok::<(), ycsb_gen::Error>(())
/// ```
#[derive(Debug)]
pub struct WorkloadGenerator {
    spec: WorkloadSpec,
}

impl WorkloadGenerator {
    /// Creates a generator for `spec`.
    #[must_use]
    pub fn new(spec: WorkloadSpec) -> Self {
        Self { spec }
    }

    /// The specification driving this generator.
    #[must_use]
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The load phase: `record_count` inserts of keys `0, 1, 2, …`.
    pub fn load_phase(&self) -> impl Iterator<Item = Operation> + '_ {
        (0..self.spec.record_count()).map(|key| Operation::new(OperationKind::Insert, key))
    }

    /// The run phase: `operation_count` operations whose kinds follow the
    /// configured proportions and whose keys follow the configured request
    /// distribution. Run-phase inserts append new keys after the loaded
    /// ones, growing the key space as they go (as in YCSB).
    pub fn run_phase(&self) -> RunPhase {
        RunPhase {
            rng: StdRng::seed_from_u64(self.spec.seed()),
            chooser: AnyChooser::for_distribution(self.spec.distribution()),
            spec: self.spec.clone(),
            emitted: 0,
            next_insert_key: self.spec.record_count(),
        }
    }

    /// Convenience: the full workload, load phase followed by run phase,
    /// as a single vector.
    #[must_use]
    pub fn all_operations(&self) -> Vec<Operation> {
        self.load_phase().chain(self.run_phase()).collect()
    }

    /// Convenience: only the operations that write to the memtable
    /// (inserts, updates and deletes), in order. This is exactly the
    /// stream the compaction simulator consumes.
    #[must_use]
    pub fn write_operations(&self) -> Vec<Operation> {
        self.all_operations()
            .into_iter()
            .filter(|op| op.kind.is_write())
            .collect()
    }

    /// **Closed-loop driver mode**: deals the run phase round-robin
    /// across `clients` independent client streams, preserving relative
    /// order inside each stream. This is how the service throughput
    /// harness drives one logical workload from K concurrent client
    /// threads: the union of the partitions is exactly
    /// [`WorkloadGenerator::run_phase`], so aggregate mix and skew match
    /// the single-client workload while each client runs its slice as a
    /// closed loop (next operation issued when the previous response
    /// arrives).
    ///
    /// `clients` is clamped to ≥ 1. With fewer operations than clients,
    /// trailing partitions are empty.
    #[must_use]
    pub fn client_partitions(&self, clients: usize) -> Vec<Vec<Operation>> {
        let clients = clients.max(1);
        let total = self.spec.operation_count() as usize;
        let mut partitions: Vec<Vec<Operation>> = (0..clients)
            .map(|_| Vec::with_capacity(total / clients + 1))
            .collect();
        for (i, op) in self.run_phase().enumerate() {
            partitions[i % clients].push(op);
        }
        partitions
    }

    /// **Open-loop driver mode**: [`WorkloadGenerator::client_partitions`],
    /// with each partition extended to exactly `ops_per_client`
    /// operations by cycling its own stream. A fixed-rate load
    /// generator offers one operation per tick and must never run dry
    /// mid-run, whatever its rate × duration works out to — the
    /// workload's mix and skew are preserved because each cycle replays
    /// the same distribution-drawn slice. Partitions that would be
    /// empty (more clients than operations) stay empty.
    #[must_use]
    pub fn client_partitions_cycled(
        &self,
        clients: usize,
        ops_per_client: usize,
    ) -> Vec<Vec<Operation>> {
        self.client_partitions(clients)
            .into_iter()
            .map(|ops| {
                if ops.is_empty() {
                    return ops;
                }
                ops.iter().copied().cycle().take(ops_per_client).collect()
            })
            .collect()
    }
}

/// Iterator over the run phase of a workload.
///
/// Produced by [`WorkloadGenerator::run_phase`].
#[derive(Debug)]
pub struct RunPhase {
    rng: StdRng,
    chooser: AnyChooser,
    spec: WorkloadSpec,
    emitted: u64,
    next_insert_key: u64,
}

impl Iterator for RunPhase {
    type Item = Operation;

    fn next(&mut self) -> Option<Operation> {
        if self.emitted >= self.spec.operation_count() {
            return None;
        }
        self.emitted += 1;

        let kind = self.pick_kind();
        let op = match kind {
            OperationKind::Insert => {
                let key = self.next_insert_key;
                self.next_insert_key += 1;
                Operation::new(OperationKind::Insert, key)
            }
            OperationKind::Scan => {
                // Scan start follows the request distribution (zipfian
                // start keys in the YCSB-E configuration); the length is
                // a uniform draw bounded by `maxscanlength`.
                let start = self.chooser.next_key(&mut self.rng, self.next_insert_key);
                let bound = u64::from(self.spec.max_scan_length().max(1));
                let len = self.rng.gen_range(1..bound + 1) as u32;
                Operation::scan(start, len)
            }
            other => {
                let key = self.chooser.next_key(&mut self.rng, self.next_insert_key);
                Operation::new(other, key)
            }
        };
        Some(op)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.spec.operation_count() - self.emitted) as usize;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for RunPhase {}

impl RunPhase {
    fn pick_kind(&mut self) -> OperationKind {
        let roll: f64 = self.rng.gen();
        let spec = &self.spec;
        let mut acc = spec.insert_proportion();
        if roll < acc {
            return OperationKind::Insert;
        }
        acc += spec.update_proportion();
        if roll < acc {
            return OperationKind::Update;
        }
        acc += spec.read_proportion();
        if roll < acc {
            return OperationKind::Read;
        }
        acc += spec.delete_proportion();
        if roll < acc {
            return OperationKind::Delete;
        }
        OperationKind::Scan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Distribution;

    fn spec(update_percent: u32, dist: Distribution) -> WorkloadSpec {
        WorkloadSpec::builder()
            .record_count(1_000)
            .operation_count(20_000)
            .update_percent(update_percent)
            .distribution(dist)
            .seed(11)
            .build()
            .unwrap()
    }

    #[test]
    fn load_phase_is_sequential_inserts() {
        let s = spec(100, Distribution::Uniform);
        let gen = s.generator();
        let ops: Vec<_> = gen.load_phase().collect();
        assert_eq!(ops.len(), 1_000);
        assert!(ops
            .iter()
            .enumerate()
            .all(|(i, op)| { op.kind == OperationKind::Insert && op.key == i as u64 }));
    }

    #[test]
    fn run_phase_length_matches_operation_count() {
        let s = spec(50, Distribution::Uniform);
        let gen = s.generator();
        assert_eq!(gen.run_phase().count(), 20_000);
        let run = gen.run_phase();
        assert_eq!(run.len(), 20_000);
    }

    #[test]
    fn run_phase_is_deterministic_per_seed() {
        let s = spec(50, Distribution::zipfian_default());
        let a: Vec<_> = s.generator().run_phase().collect();
        let b: Vec<_> = s.generator().run_phase().collect();
        assert_eq!(a, b);

        let s2 = WorkloadSpec::builder()
            .record_count(1_000)
            .operation_count(20_000)
            .update_percent(50)
            .distribution(Distribution::zipfian_default())
            .seed(12)
            .build()
            .unwrap();
        let c: Vec<_> = s2.generator().run_phase().collect();
        assert_ne!(a, c, "different seeds should give different streams");
    }

    #[test]
    fn proportions_are_respected_approximately() {
        let s = spec(60, Distribution::Uniform);
        let ops: Vec<_> = s.generator().run_phase().collect();
        let updates = ops
            .iter()
            .filter(|o| o.kind == OperationKind::Update)
            .count();
        let inserts = ops
            .iter()
            .filter(|o| o.kind == OperationKind::Insert)
            .count();
        let frac = updates as f64 / ops.len() as f64;
        assert!((frac - 0.6).abs() < 0.02, "update fraction {frac}");
        assert_eq!(updates + inserts, ops.len());
    }

    #[test]
    fn pure_insert_workload_has_all_unique_keys() {
        let s = spec(0, Distribution::Latest);
        let ops: Vec<_> = s.generator().run_phase().collect();
        assert!(ops.iter().all(|o| o.kind == OperationKind::Insert));
        let mut keys: Vec<u64> = ops.iter().map(|o| o.key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), ops.len());
    }

    #[test]
    fn run_phase_inserts_extend_key_space() {
        let s = WorkloadSpec::builder()
            .record_count(10)
            .operation_count(100)
            .update_proportion(0.5)
            .insert_proportion(0.5)
            .seed(5)
            .build()
            .unwrap();
        let ops: Vec<_> = s.generator().run_phase().collect();
        let max_insert = ops
            .iter()
            .filter(|o| o.kind == OperationKind::Insert)
            .map(|o| o.key)
            .max()
            .unwrap();
        assert!(max_insert >= 10, "inserts must go beyond loaded keys");
        // Updates may target newly inserted keys but never beyond.
        for window in ops.windows(ops.len()) {
            let _ = window; // ops processed above; key-range check below
        }
        let mut seen_max = 9u64;
        for op in &ops {
            match op.kind {
                OperationKind::Insert => seen_max = seen_max.max(op.key),
                _ => assert!(op.key <= seen_max, "non-insert references unseen key"),
            }
        }
    }

    #[test]
    fn write_operations_excludes_reads_and_scans() {
        let s = WorkloadSpec::builder()
            .record_count(100)
            .operation_count(1_000)
            .update_proportion(0.3)
            .insert_proportion(0.1)
            .read_proportion(0.5)
            .delete_proportion(0.05)
            .scan_proportion(0.05)
            .seed(3)
            .build()
            .unwrap();
        let writes = s.generator().write_operations();
        assert!(writes.iter().all(|o| o.kind.is_write()));
        // Load phase (100 inserts) is included.
        assert!(writes.len() >= 100);
        let all = s.generator().all_operations();
        assert_eq!(all.len(), 1_100);
    }

    #[test]
    fn scan_operations_have_bounded_lengths_and_existing_start_keys() {
        let s = WorkloadSpec::builder()
            .record_count(2_000)
            .operation_count(10_000)
            .update_proportion(0.0)
            .insert_proportion(0.05)
            .scan_proportion(0.95)
            .max_scan_length(40)
            .distribution(Distribution::zipfian_default())
            .seed(21)
            .build()
            .unwrap();
        let ops: Vec<_> = s.generator().run_phase().collect();
        let scans: Vec<_> = ops
            .iter()
            .filter(|o| o.kind == OperationKind::Scan)
            .collect();
        assert!(
            scans.len() > ops.len() * 9 / 10,
            "95% scan mix must be scan-dominated"
        );
        let mut seen_max = 1_999u64;
        for op in &ops {
            if op.kind == OperationKind::Insert {
                seen_max = seen_max.max(op.key);
            }
        }
        for scan in &scans {
            assert!(
                (1..=40).contains(&scan.scan_len),
                "length {}",
                scan.scan_len
            );
            assert!(scan.key <= seen_max, "scan starts at an unseen key");
            assert_eq!(scan.scan_range().start, scan.key);
        }
        // Lengths actually vary (a uniform draw, not a constant).
        let distinct: std::collections::HashSet<u32> = scans.iter().map(|s| s.scan_len).collect();
        assert!(
            distinct.len() > 10,
            "only {} distinct lengths",
            distinct.len()
        );
        // Non-scan operations carry no length.
        assert!(ops
            .iter()
            .filter(|o| o.kind != OperationKind::Scan)
            .all(|o| o.scan_len == 0));
    }

    #[test]
    fn client_partitions_cover_the_run_phase_exactly() {
        let s = spec(50, Distribution::zipfian_default());
        let gen = s.generator();
        let partitions = gen.client_partitions(4);
        assert_eq!(partitions.len(), 4);
        // Re-interleave round-robin: must equal the single stream.
        let mut rebuilt = Vec::new();
        let mut cursors = [0usize; 4];
        'outer: loop {
            for (c, cursor) in cursors.iter_mut().enumerate() {
                match partitions[c].get(*cursor) {
                    Some(&op) => {
                        rebuilt.push(op);
                        *cursor += 1;
                    }
                    None => break 'outer,
                }
            }
        }
        let direct: Vec<_> = gen.run_phase().collect();
        assert_eq!(rebuilt, direct);
        // Balanced to within one operation.
        let sizes: Vec<usize> = partitions.iter().map(Vec::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        // Degenerate client counts.
        assert_eq!(gen.client_partitions(0).len(), 1);
        assert_eq!(gen.client_partitions(1)[0], direct);
    }

    #[test]
    fn cycled_partitions_extend_each_stream_to_the_requested_length() {
        let s = spec(50, Distribution::zipfian_default());
        let gen = s.generator();
        let base = gen.client_partitions(4);
        let cycled = gen.client_partitions_cycled(4, 37);
        assert_eq!(cycled.len(), 4);
        for (b, c) in base.iter().zip(&cycled) {
            assert_eq!(c.len(), 37);
            // The cycle replays the base slice verbatim.
            for (i, op) in c.iter().enumerate() {
                assert_eq!(*op, b[i % b.len()]);
            }
        }
        // Shrinking also works (a prefix of the base slice).
        let short = gen.client_partitions_cycled(4, 3);
        for (b, c) in base.iter().zip(&short) {
            assert_eq!(c.as_slice(), &b[..3]);
        }
        // More clients than operations: empty partitions stay empty.
        let tiny = WorkloadSpec::builder()
            .record_count(10)
            .operation_count(2)
            .update_percent(100)
            .seed(1)
            .build()
            .unwrap();
        let sparse = tiny.generator().client_partitions_cycled(4, 10);
        assert_eq!(sparse.iter().filter(|p| p.is_empty()).count(), 2);
        assert!(sparse.iter().all(|p| p.is_empty() || p.len() == 10));
    }

    #[test]
    fn latest_distribution_targets_recent_keys_more() {
        let s = WorkloadSpec::builder()
            .record_count(10_000)
            .operation_count(20_000)
            .update_percent(100)
            .distribution(Distribution::Latest)
            .seed(9)
            .build()
            .unwrap();
        let ops: Vec<_> = s.generator().run_phase().collect();
        let high = ops.iter().filter(|o| o.key >= 9_000).count();
        let low = ops.iter().filter(|o| o.key < 1_000).count();
        assert!(
            high > low * 3,
            "latest should hit recent keys: high={high} low={low}"
        );
    }
}
