//! Workload specification and its builder.

use crate::{Distribution, Error, WorkloadGenerator};

/// Complete specification of a YCSB-style workload.
///
/// Mirrors the YCSB parameters the paper's evaluation varies:
/// `recordcount`, `operationcount`, the insert/update proportions and the
/// request distribution. Construct through [`WorkloadSpec::builder`].
///
/// # Examples
///
/// ```
/// use ycsb_gen::{Distribution, WorkloadSpec};
///
/// let spec = WorkloadSpec::builder()
///     .record_count(1_000)
///     .operation_count(100_000)
///     .update_proportion(0.5)
///     .insert_proportion(0.5)
///     .distribution(Distribution::Latest)
///     .build()?;
/// assert_eq!(spec.record_count(), 1_000);
/// # Ok::<(), ycsb_gen::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WorkloadSpec {
    record_count: u64,
    operation_count: u64,
    insert_proportion: f64,
    update_proportion: f64,
    read_proportion: f64,
    delete_proportion: f64,
    scan_proportion: f64,
    max_scan_length: u32,
    distribution: Distribution,
    seed: u64,
}

impl WorkloadSpec {
    /// Starts building a specification. The default mix is 100 % updates
    /// with the uniform distribution and seed 0.
    #[must_use]
    pub fn builder() -> WorkloadSpecBuilder {
        WorkloadSpecBuilder::default()
    }

    /// Number of records inserted by the load phase.
    #[must_use]
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// Number of operations issued by the run phase.
    #[must_use]
    pub fn operation_count(&self) -> u64 {
        self.operation_count
    }

    /// Fraction of run-phase operations that are inserts.
    #[must_use]
    pub fn insert_proportion(&self) -> f64 {
        self.insert_proportion
    }

    /// Fraction of run-phase operations that are updates.
    #[must_use]
    pub fn update_proportion(&self) -> f64 {
        self.update_proportion
    }

    /// Fraction of run-phase operations that are reads.
    #[must_use]
    pub fn read_proportion(&self) -> f64 {
        self.read_proportion
    }

    /// Fraction of run-phase operations that are deletes.
    #[must_use]
    pub fn delete_proportion(&self) -> f64 {
        self.delete_proportion
    }

    /// Fraction of run-phase operations that are scans.
    #[must_use]
    pub fn scan_proportion(&self) -> f64 {
        self.scan_proportion
    }

    /// Upper bound on a scan operation's length in keys (YCSB's
    /// `maxscanlength`); each scan draws a length uniformly from
    /// `1..=max_scan_length`.
    #[must_use]
    pub fn max_scan_length(&self) -> u32 {
        self.max_scan_length
    }

    /// The request distribution used to pick keys for non-insert
    /// operations.
    #[must_use]
    pub fn distribution(&self) -> Distribution {
        self.distribution
    }

    /// The RNG seed; two generators built from equal specs produce
    /// identical operation streams.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Creates the deterministic generator for this specification.
    #[must_use]
    pub fn generator(&self) -> WorkloadGenerator {
        WorkloadGenerator::new(self.clone())
    }
}

/// Builder for [`WorkloadSpec`]; see the paper's Section 5.1 for how the
/// knobs map onto the evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpecBuilder {
    record_count: u64,
    operation_count: u64,
    insert_proportion: f64,
    update_proportion: f64,
    read_proportion: f64,
    delete_proportion: f64,
    scan_proportion: f64,
    max_scan_length: u32,
    distribution: Distribution,
    seed: u64,
}

impl Default for WorkloadSpecBuilder {
    fn default() -> Self {
        Self {
            record_count: 1_000,
            operation_count: 10_000,
            insert_proportion: 0.0,
            update_proportion: 1.0,
            read_proportion: 0.0,
            delete_proportion: 0.0,
            scan_proportion: 0.0,
            max_scan_length: 100,
            distribution: Distribution::Uniform,
            seed: 0,
        }
    }
}

impl WorkloadSpecBuilder {
    /// Sets the number of load-phase records (`recordcount`).
    #[must_use]
    pub fn record_count(mut self, count: u64) -> Self {
        self.record_count = count;
        self
    }

    /// Sets the number of run-phase operations (`operationcount`).
    #[must_use]
    pub fn operation_count(mut self, count: u64) -> Self {
        self.operation_count = count;
        self
    }

    /// Sets the insert proportion.
    #[must_use]
    pub fn insert_proportion(mut self, p: f64) -> Self {
        self.insert_proportion = p;
        self
    }

    /// Sets the update proportion.
    #[must_use]
    pub fn update_proportion(mut self, p: f64) -> Self {
        self.update_proportion = p;
        self
    }

    /// Sets the read proportion.
    #[must_use]
    pub fn read_proportion(mut self, p: f64) -> Self {
        self.read_proportion = p;
        self
    }

    /// Sets the delete proportion.
    #[must_use]
    pub fn delete_proportion(mut self, p: f64) -> Self {
        self.delete_proportion = p;
        self
    }

    /// Sets the scan proportion.
    #[must_use]
    pub fn scan_proportion(mut self, p: f64) -> Self {
        self.scan_proportion = p;
        self
    }

    /// Sets the per-scan length bound (`maxscanlength`); clamped to ≥ 1.
    #[must_use]
    pub fn max_scan_length(mut self, len: u32) -> Self {
        self.max_scan_length = len.max(1);
        self
    }

    /// Sets the request distribution.
    #[must_use]
    pub fn distribution(mut self, distribution: Distribution) -> Self {
        self.distribution = distribution;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Convenience: sets the insert/update split used throughout the
    /// paper's Figure 7 sweep, where `update_percent` of operations are
    /// updates and the remainder are inserts.
    #[must_use]
    pub fn update_percent(mut self, update_percent: u32) -> Self {
        let update = f64::from(update_percent.min(100)) / 100.0;
        self.update_proportion = update;
        self.insert_proportion = 1.0 - update;
        self.read_proportion = 0.0;
        self.delete_proportion = 0.0;
        self.scan_proportion = 0.0;
        self
    }

    /// Validates and builds the specification.
    ///
    /// # Errors
    ///
    /// Returns an error if any proportion is negative, the proportions do
    /// not sum to 1, the record count is zero, or the zipfian constant is
    /// out of range.
    pub fn build(self) -> Result<WorkloadSpec, Error> {
        let fields = [
            ("insert", self.insert_proportion),
            ("update", self.update_proportion),
            ("read", self.read_proportion),
            ("delete", self.delete_proportion),
            ("scan", self.scan_proportion),
        ];
        for (field, value) in fields {
            if value < 0.0 {
                return Err(Error::NegativeProportion { field, value });
            }
        }
        let sum: f64 = fields.iter().map(|(_, v)| v).sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(Error::ProportionsDoNotSumToOne { sum });
        }
        if self.record_count == 0 {
            return Err(Error::EmptyRecordCount);
        }
        if let Distribution::Zipfian { theta } = self.distribution {
            if !(theta > 0.0 && theta < 1.0) {
                return Err(Error::InvalidZipfianConstant { value: theta });
            }
        }
        Ok(WorkloadSpec {
            record_count: self.record_count,
            operation_count: self.operation_count,
            insert_proportion: self.insert_proportion,
            update_proportion: self.update_proportion,
            read_proportion: self.read_proportion,
            delete_proportion: self.delete_proportion,
            scan_proportion: self.scan_proportion,
            max_scan_length: self.max_scan_length,
            distribution: self.distribution,
            seed: self.seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_builder_builds() {
        let spec = WorkloadSpec::builder().build().unwrap();
        assert_eq!(spec.record_count(), 1_000);
        assert_eq!(spec.update_proportion(), 1.0);
    }

    #[test]
    fn rejects_bad_proportions() {
        assert!(matches!(
            WorkloadSpec::builder()
                .update_proportion(0.5)
                .insert_proportion(0.2)
                .build(),
            Err(Error::ProportionsDoNotSumToOne { .. })
        ));
        assert!(matches!(
            WorkloadSpec::builder()
                .update_proportion(-0.5)
                .insert_proportion(1.5)
                .build(),
            Err(Error::NegativeProportion {
                field: "update",
                ..
            })
        ));
    }

    #[test]
    fn rejects_zero_records() {
        assert!(matches!(
            WorkloadSpec::builder().record_count(0).build(),
            Err(Error::EmptyRecordCount)
        ));
    }

    #[test]
    fn rejects_bad_zipfian_theta() {
        assert!(matches!(
            WorkloadSpec::builder()
                .distribution(Distribution::Zipfian { theta: 1.2 })
                .build(),
            Err(Error::InvalidZipfianConstant { .. })
        ));
    }

    #[test]
    fn update_percent_helper_sets_split() {
        let spec = WorkloadSpec::builder().update_percent(60).build().unwrap();
        assert!((spec.update_proportion() - 0.6).abs() < 1e-12);
        assert!((spec.insert_proportion() - 0.4).abs() < 1e-12);
        let spec = WorkloadSpec::builder().update_percent(250).build().unwrap();
        assert_eq!(spec.update_proportion(), 1.0);
    }

    #[test]
    fn read_heavy_mix_builds() {
        let spec = WorkloadSpec::builder()
            .update_proportion(0.05)
            .insert_proportion(0.0)
            .read_proportion(0.90)
            .delete_proportion(0.03)
            .scan_proportion(0.02)
            .build()
            .unwrap();
        assert!((spec.read_proportion() - 0.9).abs() < 1e-12);
    }
}
