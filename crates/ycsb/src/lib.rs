//! YCSB-style workload generation.
//!
//! The evaluation of *Fast Compaction Algorithms for NoSQL Databases*
//! (ICDCS 2015, Section 5.1) generates its datasets with the Yahoo! Cloud
//! Serving Benchmark (YCSB). This crate is a from-scratch Rust
//! re-implementation of the parts of YCSB's core workload model that the
//! paper relies on:
//!
//! * a **load phase** that inserts `recordcount` fresh keys into an empty
//!   database, and
//! * a **run phase** that issues `operationcount` CRUD operations whose
//!   kinds follow configurable proportions (insert / update / read /
//!   delete / scan), and whose *keys* are drawn from one of three request
//!   distributions:
//!   * [`Distribution::Uniform`] — every existing key equally likely,
//!   * [`Distribution::Zipfian`] — a scrambled power-law over the key
//!     space (some keys are persistently hot),
//!   * [`Distribution::Latest`] — a power-law over *recency*, so recently
//!     inserted keys are the hottest.
//!
//! Only inserts and updates modify memtables/sstables, so the compaction
//! simulator feeds the operation stream produced here straight into its
//! memtable-flush pipeline; reads and deletes are still generated (deletes
//! become tombstone updates) so the stream composition matches YCSB.
//!
//! Everything is deterministic under a caller-provided seed, which is what
//! makes the paper's figures reproducible run-to-run.
//!
//! # Examples
//!
//! ```
//! use ycsb_gen::{Distribution, OperationKind, WorkloadSpec};
//!
//! let spec = WorkloadSpec::builder()
//!     .record_count(1_000)
//!     .operation_count(10_000)
//!     .update_proportion(0.6)
//!     .insert_proportion(0.4)
//!     .distribution(Distribution::Latest)
//!     .seed(42)
//!     .build()
//!     .unwrap();
//!
//! let ops: Vec<_> = spec.generator().run_phase().collect();
//! assert_eq!(ops.len(), 10_000);
//! assert!(ops.iter().any(|op| op.kind == OperationKind::Update));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod distribution;
mod error;
mod generator;
mod operation;
mod spec;

pub use distribution::{Distribution, KeyChooser, LatestChooser, UniformChooser, ZipfianChooser};
pub use error::Error;
pub use generator::WorkloadGenerator;
pub use operation::{Operation, OperationKind};
pub use spec::{WorkloadSpec, WorkloadSpecBuilder};

/// The Zipfian constant (`theta`) used by YCSB's default zipfian request
/// distribution.
pub const DEFAULT_ZIPFIAN_CONSTANT: f64 = 0.99;
