//! Error type for workload specification validation.

use std::fmt;

/// Errors produced while building or validating a
/// [`WorkloadSpec`](crate::WorkloadSpec).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The operation-kind proportions do not sum to 1 (within tolerance).
    ProportionsDoNotSumToOne {
        /// The actual sum of the configured proportions.
        sum: f64,
    },
    /// A proportion was negative.
    NegativeProportion {
        /// Name of the offending proportion field.
        field: &'static str,
        /// The configured value.
        value: f64,
    },
    /// `record_count` must be at least 1 so the run phase has keys to
    /// reference.
    EmptyRecordCount,
    /// The zipfian constant must lie strictly between 0 and 1.
    InvalidZipfianConstant {
        /// The configured value.
        value: f64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ProportionsDoNotSumToOne { sum } => {
                write!(f, "operation proportions sum to {sum}, expected 1.0")
            }
            Error::NegativeProportion { field, value } => {
                write!(f, "proportion `{field}` is negative ({value})")
            }
            Error::EmptyRecordCount => write!(f, "record count must be at least 1"),
            Error::InvalidZipfianConstant { value } => {
                write!(f, "zipfian constant must be in (0, 1), got {value}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(Error::EmptyRecordCount.to_string().contains("record count"));
        assert!(Error::ProportionsDoNotSumToOne { sum: 0.5 }
            .to_string()
            .contains("0.5"));
        assert!(Error::NegativeProportion {
            field: "update",
            value: -0.1
        }
        .to_string()
        .contains("update"));
        assert!(Error::InvalidZipfianConstant { value: 1.5 }
            .to_string()
            .contains("1.5"));
    }
}
