//! Property-based tests for the workload generator.

use proptest::prelude::*;
use ycsb_gen::{Distribution, OperationKind, WorkloadSpec};

fn arb_distribution() -> impl Strategy<Value = Distribution> {
    prop_oneof![
        Just(Distribution::Uniform),
        (0.1f64..0.99).prop_map(|theta| Distribution::Zipfian { theta }),
        Just(Distribution::Latest),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generated streams are deterministic per seed and have the requested
    /// length, and every referenced key is within the live key space.
    #[test]
    fn stream_is_well_formed(
        record_count in 1u64..2_000,
        operation_count in 0u64..5_000,
        update_pct in 0u32..=100,
        dist in arb_distribution(),
        seed in any::<u64>(),
    ) {
        let spec = WorkloadSpec::builder()
            .record_count(record_count)
            .operation_count(operation_count)
            .update_percent(update_pct)
            .distribution(dist)
            .seed(seed)
            .build()
            .unwrap();

        let a: Vec<_> = spec.generator().run_phase().collect();
        let b: Vec<_> = spec.generator().run_phase().collect();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len() as u64, operation_count);

        let mut max_key = record_count.saturating_sub(1);
        for op in &a {
            match op.kind {
                OperationKind::Insert => {
                    prop_assert_eq!(op.key, max_key + 1);
                    max_key = op.key;
                }
                _ => prop_assert!(op.key <= max_key),
            }
        }
    }

    /// The observed update fraction converges on the configured proportion.
    #[test]
    fn update_fraction_matches(update_pct in 0u32..=100, seed in any::<u64>()) {
        let spec = WorkloadSpec::builder()
            .record_count(100)
            .operation_count(20_000)
            .update_percent(update_pct)
            .seed(seed)
            .build()
            .unwrap();
        let ops: Vec<_> = spec.generator().run_phase().collect();
        let updates = ops.iter().filter(|o| o.kind == OperationKind::Update).count();
        let observed = updates as f64 / ops.len() as f64;
        let expected = f64::from(update_pct) / 100.0;
        prop_assert!((observed - expected).abs() < 0.03,
            "observed {observed} vs expected {expected}");
    }

    /// The load phase always emits exactly record_count sequential inserts.
    #[test]
    fn load_phase_shape(record_count in 1u64..5_000) {
        let spec = WorkloadSpec::builder()
            .record_count(record_count)
            .operation_count(0)
            .build()
            .unwrap();
        let ops: Vec<_> = spec.generator().load_phase().collect();
        prop_assert_eq!(ops.len() as u64, record_count);
        for (i, op) in ops.iter().enumerate() {
            prop_assert_eq!(op.kind, OperationKind::Insert);
            prop_assert_eq!(op.key, i as u64);
        }
    }
}
