//! Heap-based k-way merging iterator.
//!
//! This is the heart of physical compaction: it merge-sorts the entries of
//! `k` sorted sources, keeps only the newest version of each user key
//! (largest sequence number), and can optionally drop tombstones when the
//! merge produces the final table of a major compaction.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::types::{Entry, InternalKey, RangeTombstone, SeqNo};

/// An entry tagged with the index of the source it came from, ordered so
/// the binary heap pops the smallest internal key first and, on ties,
/// prefers the newer source (higher source index = more recent sstable).
#[derive(Debug, PartialEq, Eq)]
struct HeapItem {
    key: InternalKey,
    source: usize,
    entry: Entry,
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key
            .cmp(&other.key)
            .then_with(|| other.source.cmp(&self.source))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Merges multiple sorted entry streams, de-duplicating by user key.
///
/// Sources must each be sorted by internal key (user key ascending,
/// newest first), which is how memtables and sstables naturally iterate.
/// When two sources contain the same user key with the same sequence
/// number (possible when replaying mixed memtable/WAL sources), the source
/// with the larger index wins; callers list sources oldest-to-newest.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use lsm_engine::{Entry, MergingIter};
///
/// let old = vec![Entry::put(Bytes::from_static(b"a"), Bytes::from_static(b"1"), 1)];
/// let new = vec![Entry::put(Bytes::from_static(b"a"), Bytes::from_static(b"2"), 5)];
/// let merged: Vec<Entry> = MergingIter::new(vec![old, new], false).collect();
/// assert_eq!(merged.len(), 1);
/// assert_eq!(merged[0].value.as_ref(), b"2");
/// ```
#[derive(Debug)]
pub struct MergingIter {
    heap: BinaryHeap<Reverse<HeapItem>>,
    sources: Vec<std::vec::IntoIter<Entry>>,
    drop_tombstones: bool,
    /// Smallest pinned sequence number (`u64::MAX` with no pins, which
    /// collapses history to the newest version — the classic behavior).
    retain_floor: SeqNo,
    /// Range tombstones drawn from the merge inputs; point versions they
    /// shadow below the floor are dropped during the merge.
    range_dels: Vec<RangeTombstone>,
    /// The user key currently being merged.
    current_key: Option<bytes::Bytes>,
    /// All remaining (older) versions of `current_key` are dropped.
    key_done: bool,
    /// Seqno of the last version emitted for `current_key`, so the same
    /// version arriving from two sources is emitted once.
    last_emitted_seqno: Option<SeqNo>,
}

impl MergingIter {
    /// Creates a merging iterator over `sources` (each already sorted).
    /// When `drop_tombstones` is true, tombstone versions are swallowed —
    /// appropriate only for a merge that produces the single final table
    /// of a major compaction. History collapses to the newest version
    /// per key; use [`MergingIter::with_visibility`] when snapshots are
    /// pinned or range tombstones apply.
    #[must_use]
    pub fn new(sources: Vec<Vec<Entry>>, drop_tombstones: bool) -> Self {
        Self::with_visibility(sources, drop_tombstones, SeqNo::MAX, Vec::new())
    }

    /// Creates a merging iterator that retains every version a snapshot
    /// pinned at or above `retain_floor` can still observe: per user
    /// key, the newest version plus all versions down to — and
    /// including — the first at or below the floor. Point versions
    /// shadowed by one of `range_dels` below the floor are dropped, and
    /// when `drop_tombstones` is set, a point tombstone at or below the
    /// floor deletes its key (and all older versions) from the output.
    #[must_use]
    pub fn with_visibility(
        sources: Vec<Vec<Entry>>,
        drop_tombstones: bool,
        retain_floor: SeqNo,
        range_dels: Vec<RangeTombstone>,
    ) -> Self {
        let mut iters: Vec<std::vec::IntoIter<Entry>> =
            sources.into_iter().map(Vec::into_iter).collect();
        let mut heap = BinaryHeap::new();
        for (idx, iter) in iters.iter_mut().enumerate() {
            if let Some(entry) = iter.next() {
                heap.push(Reverse(HeapItem {
                    key: entry.internal_key(),
                    source: idx,
                    entry,
                }));
            }
        }
        Self {
            heap,
            sources: iters,
            drop_tombstones,
            retain_floor,
            range_dels,
            current_key: None,
            key_done: false,
            last_emitted_seqno: None,
        }
    }

    fn advance_source(&mut self, source: usize) {
        if let Some(entry) = self.sources[source].next() {
            self.heap.push(Reverse(HeapItem {
                key: entry.internal_key(),
                source,
                entry,
            }));
        }
    }
}

impl Iterator for MergingIter {
    type Item = Entry;

    fn next(&mut self) -> Option<Entry> {
        while let Some(Reverse(item)) = self.heap.pop() {
            self.advance_source(item.source);
            if self
                .current_key
                .as_ref()
                .is_none_or(|last| *last != item.entry.key)
            {
                self.current_key = Some(item.entry.key.clone());
                self.key_done = false;
                self.last_emitted_seqno = None;
            } else if self.key_done {
                continue; // an older version no possible reader can see
            } else if self.last_emitted_seqno == Some(item.entry.seqno) {
                continue; // the same version supplied by two sources
            }
            // A range tombstone at or below the floor shadows this
            // version — and, having a larger seqno, every older version
            // of the key too.
            if self
                .range_dels
                .iter()
                .any(|rd| rd.seqno <= self.retain_floor && rd.shadows(&item.entry.key, item.entry.seqno))
            {
                self.key_done = true;
                continue;
            }
            // On a final merge, a point tombstone at or below the floor
            // deletes the key outright: every older version is among the
            // inputs, so nothing can resurrect.
            if self.drop_tombstones
                && item.entry.is_tombstone()
                && item.entry.seqno <= self.retain_floor
            {
                self.key_done = true;
                continue;
            }
            // Retention: keep versions newest-first until one at or
            // below the floor has been kept; everything older is
            // unobservable by any pin.
            if item.entry.seqno <= self.retain_floor {
                self.key_done = true;
            }
            self.last_emitted_seqno = Some(item.entry.seqno);
            return Some(item.entry);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{key_from_u64, key_to_u64};
    use bytes::Bytes;

    fn put(key: u64, val: &str, seq: u64) -> Entry {
        Entry::put(key_from_u64(key), Bytes::from(val.to_owned()), seq)
    }

    #[test]
    fn merges_disjoint_sources_in_key_order() {
        let a = vec![put(1, "a", 1), put(3, "c", 1), put(5, "e", 1)];
        let b = vec![put(2, "b", 2), put(4, "d", 2)];
        let merged: Vec<u64> = MergingIter::new(vec![a, b], false)
            .map(|e| key_to_u64(&e.key).unwrap())
            .collect();
        assert_eq!(merged, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn newest_version_wins() {
        let old = vec![put(1, "old", 1), put(2, "keep", 1)];
        let new = vec![put(1, "new", 9)];
        let merged: Vec<Entry> = MergingIter::new(vec![old, new], false).collect();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].value.as_ref(), b"new");
        assert_eq!(merged[1].value.as_ref(), b"keep");
    }

    #[test]
    fn tombstones_kept_or_dropped() {
        let base = vec![put(1, "v", 1), put(2, "w", 1)];
        let newer = vec![Entry::tombstone(key_from_u64(1), 5)];

        let kept: Vec<Entry> = MergingIter::new(vec![base.clone(), newer.clone()], false).collect();
        assert_eq!(kept.len(), 2);
        assert!(kept[0].is_tombstone());

        let dropped: Vec<Entry> = MergingIter::new(vec![base, newer], true).collect();
        assert_eq!(dropped.len(), 1);
        assert_eq!(key_to_u64(&dropped[0].key), Some(2));
    }

    #[test]
    fn tombstone_shadows_older_put_even_when_dropped() {
        // Key 1 has an old put and a newer tombstone: with drop_tombstones
        // the key must vanish entirely, not resurrect the old value.
        let old = vec![put(1, "zombie", 1)];
        let newer = vec![Entry::tombstone(key_from_u64(1), 2)];
        let merged: Vec<Entry> = MergingIter::new(vec![old, newer], true).collect();
        assert!(merged.is_empty());
    }

    #[test]
    fn equal_seqno_prefers_later_source() {
        let s0 = vec![put(1, "from-source-0", 7)];
        let s1 = vec![put(1, "from-source-1", 7)];
        let merged: Vec<Entry> = MergingIter::new(vec![s0, s1], false).collect();
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].value.as_ref(), b"from-source-1");
    }

    #[test]
    fn empty_sources_and_no_sources() {
        assert_eq!(MergingIter::new(vec![], false).count(), 0);
        assert_eq!(MergingIter::new(vec![vec![], vec![]], false).count(), 0);
    }

    #[test]
    fn retain_floor_keeps_pinned_history() {
        // Versions of key 1 at seqnos 9, 6, 3, 1; floor (oldest pin) 5.
        // A pin P ≥ 5 reads the newest version ≤ P, so 9 and 6 are
        // reachable, 3 is the newest version a pin at exactly 5 sees,
        // and 1 is unobservable by every possible pin.
        let src = vec![vec![
            put(1, "v9", 9),
            put(1, "v6", 6),
            put(1, "v3", 3),
            put(1, "v1", 1),
        ]];
        let merged: Vec<u64> = MergingIter::with_visibility(src, false, 5, Vec::new())
            .map(|e| e.seqno)
            .collect();
        assert_eq!(merged, vec![9, 6, 3], "3 is the newest version a pin at 5 sees");
    }

    #[test]
    fn range_del_below_floor_drops_covered_versions() {
        let rd = RangeTombstone::new(key_from_u64(0), key_from_u64(10), 5);
        let src = vec![vec![put(1, "new", 8), put(1, "old", 2), put(20, "out", 2)]];
        let merged: Vec<Entry> =
            MergingIter::with_visibility(src, false, SeqNo::MAX, vec![rd.clone()]).collect();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].seqno, 8, "version newer than the range del survives");
        assert_eq!(key_to_u64(&merged[1].key), Some(20), "outside the interval");

        // With the floor below the range del's seqno, nothing may drop:
        // a pin between the two could still read the old version.
        let src = vec![vec![put(1, "new", 8), put(1, "old", 2)]];
        let merged: Vec<Entry> = MergingIter::with_visibility(src, false, 3, vec![rd]).collect();
        assert_eq!(merged.len(), 2, "floor 3 < rd seqno 5: covered version retained");
    }

    #[test]
    fn tombstone_above_floor_survives_final_merge() {
        let src = vec![vec![
            Entry::tombstone(key_from_u64(1), 8),
            put(1, "pinned", 4),
        ]];
        let merged: Vec<Entry> = MergingIter::with_visibility(src, true, 5, Vec::new()).collect();
        assert_eq!(merged.len(), 2, "pin at 5 still reads seqno-4 value");
        assert!(merged[0].is_tombstone());

        // Once the floor passes the tombstone, the whole key vanishes.
        let src = vec![vec![
            Entry::tombstone(key_from_u64(1), 8),
            put(1, "dead", 4),
        ]];
        let merged: Vec<Entry> =
            MergingIter::with_visibility(src, true, SeqNo::MAX, Vec::new()).collect();
        assert!(merged.is_empty());
    }

    #[test]
    fn duplicate_version_from_two_sources_emits_once() {
        let s0 = vec![put(1, "copy", 7), put(1, "older", 2)];
        let s1 = vec![put(1, "copy", 7)];
        let merged: Vec<Entry> =
            MergingIter::with_visibility(vec![s0, s1], false, 0, Vec::new()).collect();
        let seqnos: Vec<u64> = merged.iter().map(|e| e.seqno).collect();
        assert_eq!(seqnos, vec![7, 2]);
    }

    #[test]
    fn many_sources_stress() {
        // 16 sources, overlapping key ranges, newest source has the
        // largest seqnos; result must be sorted and contain each key once.
        let mut sources = Vec::new();
        for s in 0..16u64 {
            let entries: Vec<Entry> = (0..100).map(|k| put(k, &format!("s{s}"), s + 1)).collect();
            sources.push(entries);
        }
        let merged: Vec<Entry> = MergingIter::new(sources, false).collect();
        assert_eq!(merged.len(), 100);
        assert!(merged.windows(2).all(|w| w[0].key < w[1].key));
        assert!(merged.iter().all(|e| e.value.as_ref() == b"s15"));
    }
}
