//! Shared test doubles for integration tests (this crate's and its
//! dependents').
//!
//! Not part of the engine's API contract — these exist so the engine,
//! service and harness test suites can deterministically freeze
//! storage-level events without each carrying its own copy of the
//! wrapper (the copies had already drifted into four near-identical
//! implementations before this module consolidated them).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};

use bytes::Bytes;

use crate::storage::{MemoryStorage, Storage};
use crate::Error;

/// A [`MemoryStorage`] wrapper that can stall sstable writes on demand:
/// while the gate is closed, any `write_blob` of an `sst-*` blob blocks
/// until [`GatedStorage::open_gate`]. This freezes a compaction (or
/// flush) at its first output write, deterministically, so tests can
/// assert what the rest of the system does while that operation is
/// mid-flight — reads proceeding, admission control shedding, scans
/// surviving the manifest flip.
#[derive(Debug)]
pub struct GatedStorage {
    inner: MemoryStorage,
    gate_enabled: AtomicBool,
    /// `true` = open.
    gate: Mutex<bool>,
    signal: Condvar,
}

impl Default for GatedStorage {
    fn default() -> Self {
        Self::new()
    }
}

impl GatedStorage {
    /// An empty gated store with the gate open (writes pass through).
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: MemoryStorage::new(),
            gate_enabled: AtomicBool::new(false),
            gate: Mutex::new(true),
            signal: Condvar::new(),
        }
    }

    /// Arms the gate: subsequent sstable writes block until
    /// [`GatedStorage::open_gate`].
    pub fn close_gate(&self) {
        *self.gate.lock().unwrap() = false;
        self.gate_enabled.store(true, Ordering::SeqCst);
    }

    /// Opens the gate, releasing every blocked writer.
    pub fn open_gate(&self) {
        *self.gate.lock().unwrap() = true;
        self.signal.notify_all();
    }

    fn wait_if_gated(&self, name: &str) {
        if !self.gate_enabled.load(Ordering::SeqCst) || !name.starts_with("sst-") {
            return;
        }
        let mut open = self.gate.lock().unwrap();
        while !*open {
            open = self.signal.wait(open).unwrap();
        }
    }
}

impl Storage for GatedStorage {
    fn write_blob(&self, name: &str, data: &[u8]) -> Result<(), Error> {
        self.wait_if_gated(name);
        self.inner.write_blob(name, data)
    }

    fn read_blob(&self, name: &str) -> Result<Bytes, Error> {
        self.inner.read_blob(name)
    }

    fn read_blob_range(&self, name: &str, offset: u64, len: usize) -> Result<Bytes, Error> {
        self.inner.read_blob_range(name, offset, len)
    }

    fn blob_len(&self, name: &str) -> Result<u64, Error> {
        self.inner.blob_len(name)
    }

    fn delete_blob(&self, name: &str) -> Result<(), Error> {
        self.inner.delete_blob(name)
    }

    fn contains_blob(&self, name: &str) -> bool {
        self.inner.contains_blob(name)
    }

    fn list_blobs(&self) -> Vec<String> {
        self.inner.list_blobs()
    }

    fn bytes_written(&self) -> u64 {
        self.inner.bytes_written()
    }

    fn bytes_read(&self) -> u64 {
        self.inner.bytes_read()
    }
}
