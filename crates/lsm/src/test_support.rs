//! Shared test doubles for integration tests (this crate's and its
//! dependents').
//!
//! Not part of the engine's API contract — these exist so the engine,
//! service and harness test suites can deterministically freeze
//! storage-level events without each carrying its own copy of the
//! wrapper (the copies had already drifted into four near-identical
//! implementations before this module consolidated them).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use bytes::{BufMut, Bytes, BytesMut};

use crate::block::{crc32, BlockBuilder};
use crate::bloom::BloomFilter;
use crate::compress::encode_block_envelope;
use crate::sstable::{encode_meta, FOOTER_MAGIC_V1, FOOTER_MAGIC_V2, FOOTER_MAGIC_V3};
use crate::CompressionType;
use crate::storage::{MemoryStorage, Storage};
use crate::types::{Entry, Key};
use crate::Error;

/// A [`MemoryStorage`] wrapper that can stall sstable writes on demand:
/// while the gate is closed, any `write_blob` of an `sst-*` blob blocks
/// until [`GatedStorage::open_gate`]. This freezes a compaction (or
/// flush) at its first output write, deterministically, so tests can
/// assert what the rest of the system does while that operation is
/// mid-flight — reads proceeding, admission control shedding, scans
/// surviving the manifest flip.
#[derive(Debug)]
pub struct GatedStorage {
    inner: MemoryStorage,
    gate_enabled: AtomicBool,
    /// `true` = open.
    gate: Mutex<bool>,
    signal: Condvar,
}

impl Default for GatedStorage {
    fn default() -> Self {
        Self::new()
    }
}

impl GatedStorage {
    /// An empty gated store with the gate open (writes pass through).
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: MemoryStorage::new(),
            gate_enabled: AtomicBool::new(false),
            gate: Mutex::new(true),
            signal: Condvar::new(),
        }
    }

    /// Arms the gate: subsequent sstable writes block until
    /// [`GatedStorage::open_gate`].
    pub fn close_gate(&self) {
        *self.gate.lock().unwrap() = false;
        self.gate_enabled.store(true, Ordering::SeqCst);
    }

    /// Opens the gate, releasing every blocked writer.
    pub fn open_gate(&self) {
        *self.gate.lock().unwrap() = true;
        self.signal.notify_all();
    }

    fn wait_if_gated(&self, name: &str) {
        if !self.gate_enabled.load(Ordering::SeqCst) || !name.starts_with("sst-") {
            return;
        }
        let mut open = self.gate.lock().unwrap();
        while !*open {
            open = self.signal.wait(open).unwrap();
        }
    }
}

impl Storage for GatedStorage {
    fn write_blob(&self, name: &str, data: &[u8]) -> Result<(), Error> {
        self.wait_if_gated(name);
        self.inner.write_blob(name, data)
    }

    fn read_blob(&self, name: &str) -> Result<Bytes, Error> {
        self.inner.read_blob(name)
    }

    fn read_blob_range(&self, name: &str, offset: u64, len: usize) -> Result<Bytes, Error> {
        self.inner.read_blob_range(name, offset, len)
    }

    fn blob_len(&self, name: &str) -> Result<u64, Error> {
        self.inner.blob_len(name)
    }

    fn delete_blob(&self, name: &str) -> Result<(), Error> {
        self.inner.delete_blob(name)
    }

    fn contains_blob(&self, name: &str) -> bool {
        self.inner.contains_blob(name)
    }

    fn list_blobs(&self) -> Vec<String> {
        self.inner.list_blobs()
    }

    fn bytes_written(&self) -> u64 {
        self.inner.bytes_written()
    }

    fn bytes_read(&self) -> u64 {
        self.inner.bytes_read()
    }
}

/// A [`MemoryStorage`] wrapper that simulates a process death at an
/// exact write offset: after a scripted byte budget is exhausted, the
/// write in flight dies and every subsequent mutation fails — what a
/// power cut leaves on disk. Tear semantics mirror the real backends'
/// write-new-then-rename: an *existing* blob keeps its previous
/// contents (the rename never happened; acked bytes cannot tear), a
/// *brand-new* blob is left as a partial prefix (a torn tail recovery
/// must treat as unacked).
///
/// [`Storage::write_blob_atomic`] honors its contract even at the
/// crash point: the swap either happens entirely (budget covers it) or
/// not at all — a torn `CURRENT`-style pointer can only come from
/// backends that ignore the atomic hint, which the fault battery also
/// exercises by corrupting blobs directly via
/// [`CrashPointStorage::corrupt_byte`].
///
/// Drive it with [`CrashPointStorage::crash_after`], run the workload
/// until it errors, then [`CrashPointStorage::surviving`] hands the
/// post-crash bytes to a fresh reopen.
#[derive(Debug)]
pub struct CrashPointStorage {
    inner: MemoryStorage,
    /// Mutation bytes remaining before the simulated death;
    /// `u64::MAX` = no crash scripted.
    budget: AtomicU64,
    dead: AtomicBool,
}

impl Default for CrashPointStorage {
    fn default() -> Self {
        Self::new()
    }
}

impl CrashPointStorage {
    /// An empty store with no crash scripted.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: MemoryStorage::new(),
            budget: AtomicU64::new(u64::MAX),
            dead: AtomicBool::new(false),
        }
    }

    /// Scripts the death: after `bytes` more mutation bytes, the write
    /// in flight tears and the process is "dead" (all later mutations
    /// fail).
    pub fn crash_after(&self, bytes: u64) {
        self.budget.store(bytes, Ordering::SeqCst);
        self.dead.store(false, Ordering::SeqCst);
    }

    /// `true` once the scripted crash has fired.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    /// Copies the surviving (post-crash) blob set into a fresh
    /// [`MemoryStorage`], the disk image a reopen would see.
    #[must_use]
    pub fn surviving(&self) -> MemoryStorage {
        let copy = MemoryStorage::new();
        for name in self.inner.list_blobs() {
            if let Ok(bytes) = self.inner.read_blob(&name) {
                copy.write_blob(&name, &bytes).unwrap();
            }
        }
        copy
    }

    /// Flips one bit of `name` at `offset` in place (bit-rot
    /// injection). Returns `false` if the blob is missing or shorter
    /// than `offset`.
    pub fn corrupt_byte(&self, name: &str, offset: usize) -> bool {
        corrupt_blob_byte(&self.inner, name, offset)
    }

    /// Charges `len` against the budget. `Ok(len)` = full write goes
    /// through; `Ok(prefix)` = tear the write at `prefix` bytes and
    /// die; `Err` = already dead.
    fn charge(&self, len: usize) -> Result<usize, Error> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(dead_storage_error());
        }
        let budget = self.budget.load(Ordering::SeqCst);
        if budget == u64::MAX {
            return Ok(len);
        }
        if (len as u64) <= budget {
            self.budget.store(budget - len as u64, Ordering::SeqCst);
            Ok(len)
        } else {
            self.dead.store(true, Ordering::SeqCst);
            Ok(budget as usize)
        }
    }
}

/// Encodes sorted `entries` as a legacy **v1** sstable blob: no meta
/// block, raw (un-enveloped) data blocks, 5-field footer. The builder
/// stopped emitting this layout at v2, but decoders must keep
/// accepting it; tests use this to stage mixed-version table sets.
#[must_use]
pub fn encode_v1_sstable(entries: &[Entry], block_size: usize) -> Bytes {
    encode_legacy_sstable(entries, block_size, 1)
}

/// Encodes sorted `entries` as a legacy **v2** sstable blob: min/max
/// meta block, raw (un-enveloped) data blocks, 6-field footer. The
/// builder stopped emitting this layout at v3 (compression
/// envelopes), but decoders must keep accepting it.
#[must_use]
pub fn encode_v2_sstable(entries: &[Entry], block_size: usize) -> Bytes {
    encode_legacy_sstable(entries, block_size, 2)
}

/// Encodes sorted `entries` as a legacy **v3** sstable blob: min/max
/// meta block, LZ-enveloped data blocks, 6-field footer — no
/// range-tombstone section. The builder stopped emitting this layout
/// at v4 (range deletes), but decoders must keep accepting it.
#[must_use]
pub fn encode_v3_sstable(entries: &[Entry], block_size: usize) -> Bytes {
    encode_legacy_sstable(entries, block_size, 3)
}

fn encode_legacy_sstable(entries: &[Entry], block_size: usize, version: u8) -> Bytes {
    let mut finished: Vec<(Key, Bytes)> = Vec::new();
    let mut current = BlockBuilder::new();
    for entry in entries {
        current.add(entry);
        if current.size_in_bytes() >= block_size {
            let last = current.last_key().expect("non-empty block").clone();
            finished.push((last, current.finish()));
        }
    }
    if !current.is_empty() {
        let last = current.last_key().expect("non-empty block").clone();
        finished.push((last, current.finish()));
    }
    let bloom = BloomFilter::build(entries.iter().map(|e| e.key.as_ref()), 10);

    let mut buf = BytesMut::new();
    let mut index: Vec<(Key, u64, u64)> = Vec::new();
    for (last_key, encoded) in &finished {
        let offset = buf.len() as u64;
        // v3 stores each block inside a compression envelope; the index
        // records the stored (enveloped) length.
        let enveloped;
        let stored: &[u8] = if version >= 3 {
            enveloped = encode_block_envelope(CompressionType::Lz, encoded);
            &enveloped
        } else {
            encoded
        };
        buf.put_slice(stored);
        index.push((last_key.clone(), offset, stored.len() as u64));
    }
    let bloom_offset = buf.len() as u64;
    let bloom_bytes = bloom.encode();
    buf.put_slice(&bloom_bytes);
    let meta_offset = buf.len() as u64;
    if version >= 2 {
        let min = entries.first().map(|e| e.key.clone());
        let max = entries.last().map(|e| e.key.clone());
        encode_meta(&mut buf, min.as_ref(), max.as_ref());
    }
    let index_offset = buf.len() as u64;
    buf.put_u32_le(index.len() as u32);
    for (last_key, offset, len) in &index {
        buf.put_u32_le(last_key.len() as u32);
        buf.put_slice(last_key);
        buf.put_u64_le(*offset);
        buf.put_u64_le(*len);
    }
    let footer_start = buf.len();
    buf.put_u64_le(bloom_offset);
    buf.put_u64_le(bloom_bytes.len() as u64);
    if version >= 2 {
        buf.put_u64_le(meta_offset);
    }
    buf.put_u64_le(index_offset);
    buf.put_u64_le(entries.len() as u64);
    buf.put_u64_le(match version {
        1 => FOOTER_MAGIC_V1,
        2 => FOOTER_MAGIC_V2,
        _ => FOOTER_MAGIC_V3,
    });
    let crc = crc32(&buf[footer_start..]);
    buf.put_u32_le(crc);
    buf.freeze()
}

/// A [`MemoryStorage`] wrapper that charges a fixed latency on every
/// *read* call (`read_blob` / `read_blob_range`), simulating a device
/// where each round-trip costs real time. Writes stay free so load,
/// flush and compaction phases are unaffected. This exists to make
/// read-path *round-trip counts* visible in wall-clock benchmarks
/// (the scan-readahead column): over a plain `MemoryStorage`, a 10x
/// difference in fetch counts hides behind nanosecond reads.
#[derive(Debug)]
pub struct LatencyStorage {
    inner: MemoryStorage,
    read_latency: Duration,
}

impl LatencyStorage {
    /// An empty store charging `read_latency` per read round-trip.
    #[must_use]
    pub fn new(read_latency: Duration) -> Self {
        Self {
            inner: MemoryStorage::new(),
            read_latency,
        }
    }

    fn charge_read(&self) {
        if !self.read_latency.is_zero() {
            std::thread::sleep(self.read_latency);
        }
    }
}

impl Storage for LatencyStorage {
    fn write_blob(&self, name: &str, data: &[u8]) -> Result<(), Error> {
        self.inner.write_blob(name, data)
    }

    fn read_blob(&self, name: &str) -> Result<Bytes, Error> {
        self.charge_read();
        self.inner.read_blob(name)
    }

    fn read_blob_range(&self, name: &str, offset: u64, len: usize) -> Result<Bytes, Error> {
        self.charge_read();
        self.inner.read_blob_range(name, offset, len)
    }

    fn blob_len(&self, name: &str) -> Result<u64, Error> {
        self.inner.blob_len(name)
    }

    fn delete_blob(&self, name: &str) -> Result<(), Error> {
        self.inner.delete_blob(name)
    }

    fn contains_blob(&self, name: &str) -> bool {
        self.inner.contains_blob(name)
    }

    fn list_blobs(&self) -> Vec<String> {
        self.inner.list_blobs()
    }

    fn bytes_written(&self) -> u64 {
        self.inner.bytes_written()
    }

    fn bytes_read(&self) -> u64 {
        self.inner.bytes_read()
    }
}

/// The error every mutation returns after the scripted death.
fn dead_storage_error() -> Error {
    Error::Io(std::io::Error::other("simulated crash: storage is dead"))
}

/// Flips one bit of `name` at `offset` on any [`MemoryStorage`].
/// Returns `false` if the blob is missing or shorter than `offset`.
pub fn corrupt_blob_byte(storage: &MemoryStorage, name: &str, offset: usize) -> bool {
    let Ok(bytes) = storage.read_blob(name) else {
        return false;
    };
    if offset >= bytes.len() {
        return false;
    }
    let mut data = bytes.to_vec();
    data[offset] ^= 0x40;
    storage.write_blob(name, &data).unwrap();
    true
}

impl Storage for CrashPointStorage {
    fn write_blob(&self, name: &str, data: &[u8]) -> Result<(), Error> {
        let allowed = self.charge(data.len())?;
        if allowed == data.len() {
            self.inner.write_blob(name, data)
        } else if self.inner.contains_blob(name) {
            // Both real backends replace blobs atomically (FileStorage
            // writes a temp file and renames), so a crash mid-rewrite
            // leaves the *previous* contents — acked bytes never tear.
            Err(dead_storage_error())
        } else {
            // A brand-new blob tears: the partial file exists but holds
            // only a prefix, which recovery must treat as unacked (the
            // WAL's torn-tail taxon, or an orphaned partial sstable).
            self.inner.write_blob(name, &data[..allowed])?;
            Err(dead_storage_error())
        }
    }

    fn write_blob_atomic(&self, name: &str, data: &[u8]) -> Result<(), Error> {
        let allowed = self.charge(data.len())?;
        if allowed == data.len() {
            self.inner.write_blob(name, data)
        } else {
            // All-or-nothing: the swap never happened.
            Err(dead_storage_error())
        }
    }

    fn read_blob(&self, name: &str) -> Result<Bytes, Error> {
        self.inner.read_blob(name)
    }

    fn read_blob_range(&self, name: &str, offset: u64, len: usize) -> Result<Bytes, Error> {
        self.inner.read_blob_range(name, offset, len)
    }

    fn blob_len(&self, name: &str) -> Result<u64, Error> {
        self.inner.blob_len(name)
    }

    fn delete_blob(&self, name: &str) -> Result<(), Error> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(dead_storage_error());
        }
        self.inner.delete_blob(name)
    }

    fn contains_blob(&self, name: &str) -> bool {
        self.inner.contains_blob(name)
    }

    fn list_blobs(&self) -> Vec<String> {
        self.inner.list_blobs()
    }

    fn bytes_written(&self) -> u64 {
        self.inner.bytes_written()
    }

    fn bytes_read(&self) -> u64 {
        self.inner.bytes_read()
    }
}
