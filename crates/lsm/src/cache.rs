//! Read-path caches: open-reader handles and decoded data blocks.
//!
//! Two caches sit between [`Lsm::get`](crate::Lsm::get) and storage,
//! mirroring the LevelDB pair this design follows:
//!
//! * the [`TableCache`] holds open [`SstableReader`] handles (footer +
//!   bloom + index already parsed), bounded by a *table count*, so a
//!   warm probe pays zero open I/O;
//! * the [`BlockCache`] holds decoded data blocks keyed by
//!   `(table_id, block_idx)`, bounded by *bytes*, so a warm point read
//!   pays zero block I/O.
//!
//! Both are sharded: a lookup locks one shard for a map probe — never
//! across I/O — so concurrent GETs on different keys proceed in
//! parallel. Entries are keyed by table id, which makes compaction's
//! manifest flip the natural invalidation point: retired ids are purged
//! eagerly ([`TableCache::evict_table`] / [`BlockCache::evict_table`])
//! and can never be requested again because no snapshot references them.
//!
//! The LRU core is a safe-Rust implementation (hash map + monotone-tick
//! ordering) rather than the classic unsafe intrusive list; operations
//! are `O(log n)` in the shard size, which is noise next to the block
//! decode they replace.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::block::Block;
use crate::reader::SstableReader;
use crate::storage::Storage;
use crate::Error;

/// Number of independent shards per cache (power of two).
const CACHE_SHARDS: usize = 8;

/// Hit/miss/eviction counters for one cache, updated with relaxed
/// atomics (they are statistics, not synchronization).
#[derive(Debug, Default)]
pub struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CacheCounters {
    /// Lookups served from the cache.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries removed by capacity pressure or invalidation.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

/// One LRU shard: value map plus recency order keyed by a monotone tick.
#[derive(Debug)]
struct LruShard<K, V> {
    map: HashMap<K, (V, u64, u64)>, // value, cost, tick
    order: BTreeMap<u64, K>,
    tick: u64,
    used: u64,
}

impl<K: Eq + Hash + Clone + Ord, V: Clone> LruShard<K, V> {
    fn new() -> Self {
        Self {
            map: HashMap::new(),
            order: BTreeMap::new(),
            tick: 0,
            used: 0,
        }
    }

    fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        let (value, _, old_tick) = self.map.get_mut(key)?;
        let value = value.clone();
        let old = std::mem::replace(old_tick, tick);
        self.order.remove(&old);
        self.order.insert(tick, key.clone());
        Some(value)
    }

    /// Inserts (replacing any previous entry) and evicts LRU entries
    /// down to `capacity`; returns how many entries were evicted.
    ///
    /// The just-inserted entry is never evicted by its own insertion,
    /// even when it alone exceeds `capacity`: a hot block larger than
    /// this shard's slice of the budget must still be cacheable, at the
    /// price of overshooting by at most that one entry (it becomes a
    /// regular eviction candidate for *later* inserts). Without this, a
    /// budget smaller than `shards × block_size` silently caches
    /// nothing — every insert self-evicts and every read goes to
    /// storage.
    fn insert(&mut self, key: K, value: V, cost: u64, capacity: u64) -> u64 {
        self.tick += 1;
        let tick = self.tick;
        if let Some((_, old_cost, old_tick)) = self.map.remove(&key) {
            self.order.remove(&old_tick);
            self.used -= old_cost;
        }
        self.map.insert(key.clone(), (value, cost, tick));
        self.order.insert(tick, key);
        self.used += cost;
        let mut evicted = 0;
        // The new entry holds the highest tick, so oldest-first eviction
        // reaches it last; stopping at len == 1 keeps it resident.
        while self.used > capacity && self.map.len() > 1 {
            let Some((&oldest_tick, _)) = self.order.iter().next() else {
                break;
            };
            let oldest_key = self.order.remove(&oldest_tick).expect("tick present");
            let (_, cost, _) = self.map.remove(&oldest_key).expect("key present");
            self.used -= cost;
            evicted += 1;
        }
        evicted
    }

    fn remove(&mut self, key: &K) -> bool {
        if let Some((_, cost, tick)) = self.map.remove(key) {
            self.order.remove(&tick);
            self.used -= cost;
            true
        } else {
            false
        }
    }

    /// Removes every entry matching `pred`; returns how many.
    fn remove_matching(&mut self, mut pred: impl FnMut(&K) -> bool) -> u64 {
        let doomed: Vec<K> = self.map.keys().filter(|k| pred(k)).cloned().collect();
        let count = doomed.len() as u64;
        for key in doomed {
            self.remove(&key);
        }
        count
    }
}

fn shard_index(hash_basis: u64) -> usize {
    // Fibonacci hashing spreads sequential ids across shards.
    (hash_basis.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56) as usize % CACHE_SHARDS
}

/// An LRU cache of open [`SstableReader`] handles, bounded by table
/// count.
#[derive(Debug)]
pub struct TableCache {
    shards: Vec<Mutex<LruShard<u64, Arc<SstableReader>>>>,
    capacity_per_shard: u64,
    counters: CacheCounters,
}

impl TableCache {
    /// Creates a cache holding up to `capacity_tables` open readers
    /// (clamped to at least one per shard).
    #[must_use]
    pub fn new(capacity_tables: usize) -> Self {
        Self {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(LruShard::new()))
                .collect(),
            capacity_per_shard: ((capacity_tables / CACHE_SHARDS) as u64).max(1),
            counters: CacheCounters::default(),
        }
    }

    /// Returns the cached reader for `table_id`, opening (and caching)
    /// it on a miss. The open happens outside the shard lock, so a cold
    /// open never blocks hits on other tables; two racing opens of the
    /// same table both succeed and the loser's handle is simply dropped.
    ///
    /// A reader racing compaction can re-insert a just-retired table
    /// after [`TableCache::evict_table`] purged it. That entry is
    /// unreachable garbage (table ids are never reused and no snapshot
    /// references it), bounded to one LRU slot until ordinary pressure
    /// evicts it — accepted in exchange for lock-free lookups.
    ///
    /// # Errors
    ///
    /// Propagates [`SstableReader::open`] failures.
    pub fn get_or_open(
        &self,
        storage: &Arc<dyn Storage>,
        table_id: u64,
        len_hint: Option<u64>,
    ) -> Result<Arc<SstableReader>, Error> {
        let shard = &self.shards[shard_index(table_id)];
        if let Some(reader) = shard.lock().get(&table_id) {
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(reader);
        }
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        let reader = Arc::new(SstableReader::open(
            Arc::clone(storage),
            table_id,
            len_hint,
        )?);
        let evicted =
            shard
                .lock()
                .insert(table_id, Arc::clone(&reader), 1, self.capacity_per_shard);
        self.counters
            .evictions
            .fetch_add(evicted, Ordering::Relaxed);
        Ok(reader)
    }

    /// Drops the reader for a retired table (compaction consumed it).
    pub fn evict_table(&self, table_id: u64) {
        if self.shards[shard_index(table_id)].lock().remove(&table_id) {
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of readers currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss/eviction counters.
    #[must_use]
    pub fn counters(&self) -> &CacheCounters {
        &self.counters
    }
}

/// Block-cache key: `(table_id, block_idx)`.
type BlockKey = (u64, u32);

/// A sharded LRU cache of decoded data blocks, bounded by bytes.
#[derive(Debug)]
pub struct BlockCache {
    shards: Vec<Mutex<LruShard<BlockKey, Arc<Block>>>>,
    capacity_per_shard: u64,
    counters: CacheCounters,
}

impl BlockCache {
    /// Creates a cache charged by decoded in-memory block size, holding up to
    /// `capacity_bytes` in total (split evenly across shards). A block
    /// larger than its shard's slice of the budget still caches — the
    /// budget may overshoot by up to one block per shard — so tiny
    /// budgets degrade to "cache the hottest block per shard" instead
    /// of caching nothing.
    #[must_use]
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(LruShard::new()))
                .collect(),
            capacity_per_shard: (capacity_bytes / CACHE_SHARDS as u64).max(1),
            counters: CacheCounters::default(),
        }
    }

    /// Looks up block `block_idx` of table `table_id`.
    #[must_use]
    pub fn get(&self, table_id: u64, block_idx: u32) -> Option<Arc<Block>> {
        let key = (table_id, block_idx);
        let found = self.shards[shard_index(table_id ^ u64::from(block_idx))]
            .lock()
            .get(&key);
        match &found {
            Some(_) => self.counters.hits.fetch_add(1, Ordering::Relaxed),
            None => self.counters.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts a decoded block charged at `cost_bytes` — the block's
    /// decoded in-memory footprint ([`Block::mem_size`]), since the
    /// cache stores decoded blocks and charging the stored (possibly
    /// compressed) length would overshoot the budget by the
    /// compression ratio — evicting least-recently-used blocks over
    /// capacity.
    pub fn insert(&self, table_id: u64, block_idx: u32, block: Arc<Block>, cost_bytes: u64) {
        let evicted = self.shards[shard_index(table_id ^ u64::from(block_idx))]
            .lock()
            .insert(
                (table_id, block_idx),
                block,
                cost_bytes,
                self.capacity_per_shard,
            );
        self.counters
            .evictions
            .fetch_add(evicted, Ordering::Relaxed);
    }

    /// Drops every cached block of a retired table.
    pub fn evict_table(&self, table_id: u64) {
        let mut evicted = 0;
        for shard in &self.shards {
            evicted += shard.lock().remove_matching(|&(id, _)| id == table_id);
        }
        self.counters
            .evictions
            .fetch_add(evicted, Ordering::Relaxed);
    }

    /// Total bytes currently cached.
    #[must_use]
    pub fn usage_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().used).sum()
    }

    /// Hit/miss/eviction counters.
    #[must_use]
    pub fn counters(&self) -> &CacheCounters {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sstable::{Sstable, SstableBuilder};
    use crate::storage::MemoryStorage;
    use crate::types::{key_from_u64, Entry};
    use bytes::Bytes;

    fn lru() -> LruShard<u64, u64> {
        LruShard::new()
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut shard = lru();
        assert_eq!(shard.insert(1, 10, 1, 2), 0);
        assert_eq!(shard.insert(2, 20, 1, 2), 0);
        assert_eq!(shard.get(&1), Some(10), "touch 1 so 2 is the LRU");
        assert_eq!(shard.insert(3, 30, 1, 2), 1, "2 evicted");
        assert_eq!(shard.get(&2), None);
        assert_eq!(shard.get(&1), Some(10));
        assert_eq!(shard.get(&3), Some(30));
    }

    #[test]
    fn lru_charges_costs_and_replaces() {
        let mut shard = lru();
        shard.insert(1, 10, 6, 10);
        shard.insert(2, 20, 4, 10);
        assert_eq!(shard.used, 10);
        // Replacing key 1 with a cheaper value frees its old cost.
        shard.insert(1, 11, 2, 10);
        assert_eq!(shard.used, 6);
        // An oversized entry evicts everything else but stays resident
        // itself (overshoot bounded by one entry).
        let evicted = shard.insert(3, 30, 99, 10);
        assert_eq!(evicted, 2);
        assert_eq!(shard.used, 99);
        assert_eq!(shard.get(&3), Some(30), "oversized entry is cacheable");
        // The next insert treats it as a normal LRU victim.
        assert_eq!(shard.insert(4, 40, 1, 10), 1);
        assert_eq!(shard.used, 1);
        assert_eq!(shard.get(&3), None);
    }

    #[test]
    fn lru_remove_matching_purges_by_predicate() {
        let mut shard = lru();
        for k in 0..10 {
            shard.insert(k, k, 1, 100);
        }
        assert_eq!(shard.remove_matching(|k| k % 2 == 0), 5);
        assert_eq!(shard.map.len(), 5);
        assert_eq!(shard.order.len(), 5);
        assert_eq!(shard.used, 5);
    }

    fn write_table(storage: &MemoryStorage, id: u64, keys: std::ops::Range<u64>) -> u64 {
        let mut builder = SstableBuilder::new(id, 256, 10);
        for k in keys {
            builder.add(&Entry::put(key_from_u64(k), Bytes::from(vec![k as u8]), k));
        }
        let (data, meta) = builder.finish();
        storage.write_blob(&Sstable::blob_name(id), &data).unwrap();
        meta.encoded_len
    }

    #[test]
    fn table_cache_hits_misses_and_invalidation() {
        let mem = Arc::new(MemoryStorage::new());
        for id in 0..4 {
            write_table(&mem, id, 0..50);
        }
        let storage: Arc<dyn Storage> = mem;
        let cache = TableCache::new(16);
        for id in 0..4 {
            cache.get_or_open(&storage, id, None).unwrap();
        }
        assert_eq!(cache.counters().misses(), 4);
        assert_eq!(cache.len(), 4);
        let r = cache.get_or_open(&storage, 2, None).unwrap();
        assert_eq!(r.table_id(), 2);
        assert_eq!(cache.counters().hits(), 1);
        cache.evict_table(2);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.counters().evictions(), 1);
        // Reopening after invalidation is a miss again.
        cache.get_or_open(&storage, 2, None).unwrap();
        assert_eq!(cache.counters().misses(), 5);
    }

    #[test]
    fn block_cache_bounds_bytes_and_purges_tables() {
        let cache = BlockCache::new(8 * 100);
        let block = Arc::new(Block::decode(&crate::block::BlockBuilder::new().finish()).unwrap());
        for i in 0..100u32 {
            cache.insert(7, i, Arc::clone(&block), 50);
        }
        assert!(
            cache.usage_bytes() <= 8 * 100,
            "usage {} over budget",
            cache.usage_bytes()
        );
        assert!(cache.counters().evictions() > 0, "tiny budget must evict");
        let cached_before = cache.usage_bytes();
        assert!(cached_before > 0);
        cache.insert(8, 0, Arc::clone(&block), 50);
        cache.evict_table(7);
        assert_eq!(cache.usage_bytes(), 50, "only table 8's block remains");
        assert!(cache.get(8, 0).is_some());
        assert!(cache.get(7, 0).is_none());
    }
}
