//! An embeddable log-structured merge-tree (LSM) storage engine.
//!
//! The paper *Fast Compaction Algorithms for NoSQL Databases* (ICDCS 2015)
//! studies **major compaction**: the background process that merge-sorts a
//! server's sstables into a single sstable so reads stop fanning out over
//! many runs. Its evaluation exercises the standard NoSQL write path
//! (Figure 1 of the paper):
//!
//! 1. writes append to an in-memory **memtable**;
//! 2. when the memtable reaches a size threshold it is sorted by key and
//!    flushed to an immutable on-disk run, an **sstable**;
//! 3. reads consult the memtable and then every live sstable, newest
//!    first;
//! 4. **compaction** merge-sorts `k` sstables at a time into one, following
//!    a merge schedule chosen by a compaction strategy.
//!
//! This crate implements that entire substrate from scratch:
//!
//! * [`Memtable`] — a sorted, size-bounded in-memory buffer;
//! * [`SstableBuilder`] / [`Sstable`] — an immutable sorted-run format with
//!   data blocks, a [`BloomFilter`], an index and a checksummed footer;
//! * [`Wal`] — a write-ahead log for memtable durability;
//! * [`Manifest`] — the record of live sstables and compaction edits;
//! * [`Storage`] — pluggable backing store ([`MemoryStorage`] for
//!   simulation, [`FileStorage`] for real files);
//! * [`MergingIter`] — a heap-based k-way merging iterator with
//!   newest-wins de-duplication and tombstone dropping;
//! * [`SstableReader`] — the lazy read path: a table opens with two
//!   ranged reads ([`Storage::read_blob_range`]) of its tail (bloom +
//!   min/max meta + index + footer) and fetches one data block per
//!   lookup through the [`TableCache`] / [`BlockCache`] pair;
//! * [`RangeIter`] — streaming, snapshot-consistent range scans
//!   ([`Lsm::range`]): a lazy k-way merge over the frozen memtable view
//!   and the live tables, pruning tables by their persisted min/max
//!   keys before any bloom or block is touched (see the [`scan`]
//!   module);
//! * [`Lsm`] — the database facade: `put`/`get`/`delete`/`flush`, plus
//!   [`Lsm::delete_range`] (one [`RangeTombstone`] record erases a whole
//!   interval), [`Lsm::snapshot`] (a pinned-LSN [`Snapshot`] read view
//!   whose contents are immune to concurrent flush, compaction and
//!   tombstone GC), and [`Lsm::major_compact`], which physically
//!   executes a merge schedule produced by the `compaction-core` crate.
//!   Keys are anything implementing [`IntoKey`] (`&[u8]`, `&str`,
//!   `u64`, …). Every method takes `&self`; reads are lock-free against
//!   writers via an atomically-swapped snapshot of the live table list.
//!
//! On top of the substrate, the engine **compacts itself** with the
//! paper's heuristics:
//!
//! * [`CompactionPolicy`] decides *when* — after every flush,
//!   [`Lsm::maybe_compact`] checks the policy (live-table threshold or
//!   flush cadence) and fires planner-driven compaction;
//! * the configured [`Strategy`] and [`SizeEstimator`] decide *what
//!   merges in which order* — [`plan_compaction`] observes the live
//!   tables and asks `compaction-core`'s planner for an executable
//!   schedule (no manual [`CompactionStep`] construction);
//! * [`ParallelExecutor`] decides *how* — independent steps of a
//!   dependency wave (e.g. one BALANCETREE level) run on scoped threads,
//!   and manifest edits are applied atomically after the whole plan
//!   succeeds.
//!
//! The engine is deliberately synchronous and single-node: the paper's
//! problem is per-server merge scheduling, so distribution, replication
//! and group commit are out of scope. Everything on the compaction path —
//! reading k runs, merge-sorting them, writing one run — is real.
//!
//! # Examples
//!
//! A store that keeps itself compacted with the paper's recommended
//! strategy:
//!
//! ```
//! use lsm_engine::{CompactionPolicy, Lsm, LsmOptions, Strategy};
//!
//! # fn main() -> Result<(), lsm_engine::Error> {
//! let db = Lsm::open_in_memory(
//!     LsmOptions::default()
//!         .memtable_capacity(128)
//!         .compaction_policy(CompactionPolicy::Threshold { live_tables: 4 })
//!         .compaction_strategy(Strategy::BalanceTreeInput),
//! )?;
//! for i in 0u64..1_000 {
//!     db.put_u64(i, format!("value-{i}").into_bytes())?;
//! }
//! db.flush()?;
//! assert_eq!(db.get_u64(42)?.as_deref(), Some(b"value-42".as_slice()));
//! assert!(db.live_tables().len() < 4, "the engine compacted itself");
//! assert!(db.stats().auto_compactions >= 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod batch;
mod block;
mod bloom;
mod cache;
mod compaction;
mod compress;
mod db;
mod error;
mod iter;
mod manifest;
mod memtable;
pub mod metrics;
mod observation;
mod options;
mod parallel;
mod planner;
mod reader;
pub mod scan;
mod sstable;
mod storage;
pub mod test_support;
mod types;
mod wal;

pub use batch::{BatchOp, WriteBatch};
pub use block::{Block, BlockBuilder};
pub use bloom::BloomFilter;
pub use cache::{BlockCache, CacheCounters, TableCache};
pub use compaction::{CompactionExecutor, CompactionOutcome, CompactionStep};
pub use compress::CompressionType;
pub use db::{AutoCompaction, Lsm, LsmPressure, LsmStats, Snapshot, StallTier};
pub use error::Error;
pub use iter::MergingIter;
pub use manifest::{Manifest, ManifestEdit, TableMeta};
pub use memtable::Memtable;
pub use metrics::EngineMetrics;
pub use observation::TableKeyObservation;
pub use options::{CompactionPolicy, LsmOptions};
pub use parallel::ParallelExecutor;
pub use planner::{observe_tables, observed_key, plan_compaction};
pub use reader::{ReadContext, ReadPathCounters, SstableReader, SstableReaderIter};
pub use scan::RangeIter;
pub use sstable::{Sstable, SstableBuilder, SstableIter, SstableMeta};
pub use storage::{FileStorage, MemoryStorage, Storage};
pub use types::{
    key_from_u64, key_to_u64, Entry, InternalKey, IntoKey, Key, RangeTombstone, SeqNo, Value,
    ValueKind,
};
pub use wal::{RecoveryReport, SegmentReplay, Wal, WalRecord};

// Re-exported so engine users can configure policies without adding a
// direct `compaction-core` dependency.
pub use compaction_core::{MergePlan, SizeEstimator, Strategy};

// Re-exported so engine users can consume metrics and events without
// adding a direct `obs` dependency.
pub use obs::{
    Event, EventDrain, EventKind, EventRing, HistogramSnapshot, LatencyHistogram, MetricsSnapshot,
};
