//! The database facade tying memtable, WAL, sstables and compaction
//! together.
//!
//! # Concurrency architecture
//!
//! `Lsm` is split into a **write half** and a **read half** so point
//! reads never queue behind writers, flushes or compaction:
//!
//! * the write half — manifest, WAL, flush/compaction bookkeeping —
//!   lives behind one internal mutex; `put`/`delete`/`write_batch`/
//!   `flush`/compaction serialize on it exactly as the old `&mut self`
//!   API serialized callers;
//! * the read half is lock-free in the fast path: an `ArcSwap` snapshot
//!   of the live table list (newest first), a shared [`TableCache`] of
//!   open lazy readers and a shared [`BlockCache`] of decoded blocks.
//!   [`Lsm::get`] takes `&self`, loads the snapshot, and probes tables
//!   through the caches — one data block per hit, zero for
//!   bloom-negative probes;
//! * the memtable sits behind a read/write lock held only for map
//!   operations, never across I/O.
//!
//! Writers publish a fresh snapshot at every table-set change: a flush
//! publishes *before* clearing the memtable (a concurrent read finds
//! the data in at least one of the two), and compaction publishes at
//! the manifest flip, *before* consumed inputs are deleted
//! ([`ParallelExecutor::execute_plan_with`]). A reader still holding a
//! pre-compaction snapshot can race the blob deletion; it detects the
//! vanished table, reloads the snapshot and retries — the data is, by
//! construction, in the compaction output.
//!
//! # Background flush & compaction
//!
//! With [`LsmOptions::background_maintenance`] enabled, no client write
//! ever waits on sstable I/O:
//!
//! * a full memtable is **frozen** in O(1): swapped out onto an
//!   `ArcSwap`'d queue of immutable memtables, each paired with the WAL
//!   segment that made it durable. Reads and range scans consult
//!   active memtable → frozen queue (newest first) → tables;
//! * a dedicated **flush thread** drains the queue oldest-first into
//!   sstables, retiring each frozen memtable and its WAL segment only
//!   *after* its sstable is durable and published — a crash at any
//!   point replays every acked write from the live WAL segments;
//! * a **compaction scheduler thread** owns the policy: the planner
//!   stays the brain (observations → `MergePlan` → waves), but the
//!   merge runs off the write lock — only the prepare and
//!   commit/manifest-flip bracket it under brief write-lock sections;
//! * **tiered write stalls** replace inline stalling: writers compute
//!   the maintenance debt (frozen-queue depth + compaction backlog)
//!   before taking the write lock. Past
//!   [`LsmOptions::slowdown_trigger`] each write is delayed by a
//!   bounded sleep; past [`LsmOptions::stop_trigger`] (or a saturated
//!   frozen queue) writes block until maintenance catches up. The
//!   current tier is exported via [`LsmPressure::stall_tier`] so an
//!   admission controller is a backstop, not the steady state.
//!
//! Dropping the store signals and joins both threads, draining the
//! frozen queue first so no acked write exists only in memory.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

use arc_swap::ArcSwap;
use bytes::Bytes;
use compaction_core::MergePlan;
use obs::{EventKind, EventRing};
use parking_lot::{Mutex, RwLock};

use crate::batch::WriteBatch;
use crate::cache::{BlockCache, TableCache};
use crate::compaction::{CompactionOutcome, CompactionStep};
use crate::manifest::{Manifest, ManifestEdit, TableMeta};
use crate::memtable::Memtable;
use crate::metrics::EngineMetrics;
use crate::observation::TableKeyObservation;
use crate::options::{CompactionPolicy, LsmOptions};
use crate::parallel::ParallelExecutor;
use crate::planner::{observed_key, plan_compaction};
use crate::reader::{ReadContext, ReadPathCounters, SstableReader};
use crate::scan::RangeIter;
use crate::sstable::{Sstable, SstableBuilder};
use crate::storage::{FileStorage, MemoryStorage, Storage};
use crate::types::{key_from_u64, Entry, IntoKey, Key, RangeTombstone, SeqNo, Value, ValueKind};
use crate::wal::{RecoveryReport, Wal, WalRecord};
use crate::Error;

/// Bounded delay one write pays in the slowdown stall tier.
const SLOWDOWN_SLEEP: Duration = Duration::from_micros(500);
/// Re-check period for blocked waits (stop-tier writers, queue drains,
/// worker idle loops): a safety net against missed condvar wakeups.
const STALL_WAIT_SLICE: Duration = Duration::from_millis(10);
/// Back-off before a maintenance worker retries a failed flush/merge.
const WORKER_RETRY_DELAY: Duration = Duration::from_millis(5);

/// Consecutive background-flush failures after which a blocked
/// `flush()` caller gives up and surfaces the flush thread's error
/// instead of waiting for progress that a dead storage backend will
/// never make.
const FLUSH_FAILURE_GIVE_UP: u64 = 3;

/// A single-node LSM key-value store.
///
/// Writes go to the memtable (and WAL); when the memtable reaches its key
/// capacity it is flushed into a new immutable sstable — inline by
/// default, or by a background flush thread when
/// [`LsmOptions::background_maintenance`] is enabled (the memtable is
/// then frozen in O(1) and queued). Reads consult the active memtable,
/// then any frozen memtables (newest first), then the live sstables
/// newest-first through lazy readers and the table/block caches, using
/// each table's bloom filter and key range to skip runs without I/O.
/// [`Lsm::major_compact`] executes a merge schedule and leaves a single
/// sstable behind.
///
/// Every method takes `&self`: writes serialize on an internal mutex,
/// while [`Lsm::get`] and [`Lsm::scan_all`] run concurrently with each
/// other *and* with writes, flushes and compaction. Share an `Lsm`
/// across threads directly (it is `Send + Sync`) — no external lock.
///
/// # Examples
///
/// ```
/// use lsm_engine::{Lsm, LsmOptions};
///
/// # fn main() -> Result<(), lsm_engine::Error> {
/// let db = Lsm::open_in_memory(LsmOptions::default().memtable_capacity(10))?;
/// db.put(1u64, b"one".to_vec())?;
/// db.delete(1u64)?;
/// assert_eq!(db.get(1u64)?, None);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Lsm {
    inner: Arc<LsmInner>,
    /// Background maintenance threads (flush, compaction scheduler).
    /// Empty unless [`LsmOptions::background_maintenance`] is enabled.
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// The engine state proper, shared between the `Lsm` handle and its
/// background maintenance threads via `Arc`.
#[derive(Debug)]
pub(crate) struct LsmInner {
    options: LsmOptions,
    storage: Arc<dyn Storage>,
    /// The write half: manifest, WAL and flush/compaction bookkeeping.
    write: Mutex<WriteState>,
    /// Write-side counters, behind their own short-lived lock so that
    /// [`Lsm::stats`] never waits on the write mutex.
    stats: Mutex<LsmStats>,
    /// The in-memory buffer, readable without the write mutex.
    memtable: RwLock<Memtable>,
    /// Frozen immutable memtables awaiting flush, oldest first. Pushed
    /// by [`LsmInner::freeze_active`] (under the write mutex), popped by
    /// the flush thread after the corresponding sstable is durable.
    frozen: ArcSwap<Vec<Arc<FrozenGen>>>,
    /// The atomically-swappable read view: live tables, newest first.
    snapshot: ArcSwap<ReadView>,
    table_cache: Arc<TableCache>,
    block_cache: Arc<BlockCache>,
    read_counters: ReadPathCounters,
    gets: AtomicU64,
    memtable_hits: AtomicU64,
    tables_probed: AtomicU64,
    range_scans: AtomicU64,
    range_pruned_tables: AtomicU64,
    /// Clock zero for [`Lsm::pressure`]'s in-progress-compaction stamp
    /// and for event timestamps.
    epoch: Instant,
    /// Micros-since-`epoch` **plus one** at which the currently running
    /// inline compaction started; 0 when none is running.
    compaction_started: AtomicU64,
    /// Per-operation latency histograms plus the stall histogram — the
    /// single source of truth for stall accounting
    /// ([`LsmStats::compaction_stall`] and [`LsmPressure::total_stall`]
    /// are both its sum).
    metrics: EngineMetrics,
    /// Maintenance lifecycle trace: one shared ring when injected via
    /// [`LsmOptions::event_sink`], else a private one.
    events: EventRing,
    /// Shard id stamped on every event ([`LsmOptions::shard_tag`]).
    shard: u32,
    /// [`StallTier`] code writers last observed; edges are traced as
    /// [`EventKind::StallTierChange`] events.
    stall_tier_seen: AtomicU64,
    /// Memtable generation ids tying freeze → flush → retire events of
    /// one generation together (inline flushes allocate from the same
    /// sequence).
    next_flush_generation: AtomicU64,
    /// Writes delayed by the slowdown stall tier.
    slowdown_stalls: AtomicU64,
    /// Writes blocked by the stop stall tier.
    stop_stalls: AtomicU64,
    /// Sstables written by the background flush thread.
    bg_flushes: AtomicU64,
    /// Table id **plus one** of the newest background flush; 0 = none.
    last_bg_flush_table: AtomicU64,
    /// `true` while the background scheduler is executing a merge.
    bg_compacting: AtomicBool,
    /// Serializes whole compaction runs (background scheduler,
    /// [`Lsm::auto_compact`], [`Lsm::major_compact`]) without holding
    /// the write mutex across the merge. Lock order: `compaction_mx`
    /// before `write`.
    compaction_mx: Mutex<()>,
    /// Table ids tombstone GC examined and found nothing droppable in;
    /// skipped until the next manifest flip changes what other tables
    /// may shadow. Lock order: `write` before `gc_barren`.
    gc_barren: Mutex<Vec<u64>>,
    /// Pinned snapshot LSNs → pin count. The smallest key is the
    /// retention floor every reclamation path (memtable overwrite,
    /// compaction, tombstone GC) must respect. Lock order: `write`
    /// before `pins`; never held across I/O.
    pins: Mutex<BTreeMap<u64, usize>>,
    maint: Maintenance,
}

/// One frozen memtable generation: the immutable map plus the WAL
/// segment that made it durable (retired only after *its* flush).
#[derive(Debug)]
struct FrozenGen {
    /// Generation id carried by this generation's trace events.
    generation: u64,
    memtable: Memtable,
    wal_segment: Option<String>,
}

/// Signals between writers and the maintenance threads. Uses std
/// condvars (the vendored `parking_lot` shim has none); every wait is
/// time-sliced so a missed wakeup costs at most one slice.
#[derive(Debug, Default)]
struct Maintenance {
    shutdown: AtomicBool,
    /// Kicked when the frozen queue gains work.
    flush_signal: Signal,
    /// Kicked when the compaction policy may be due.
    compact_signal: Signal,
    /// Kicked whenever maintenance makes progress (a flush or merge
    /// completed) — what stalled writers and queue drains wait on.
    progress_signal: Signal,
    /// Consecutive background-flush failures since the last success.
    /// Non-zero while the flush thread is retrying against a failing
    /// backend; explicit `flush()` callers read it to turn an endless
    /// wait into an explicit error.
    flush_failure_streak: AtomicU64,
    /// Display form of the most recent background-flush error, so the
    /// error a blocked `flush()` caller surfaces names the real cause.
    last_flush_error: StdMutex<Option<String>>,
}

#[derive(Debug, Default)]
struct Signal {
    mx: StdMutex<()>,
    cv: Condvar,
}

impl Signal {
    fn notify(&self) {
        let _guard = self.mx.lock().unwrap_or_else(|e| e.into_inner());
        self.cv.notify_all();
    }

    fn wait_timeout(&self, timeout: Duration) {
        let guard = self.mx.lock().unwrap_or_else(|e| e.into_inner());
        let _ = self
            .cv
            .wait_timeout(guard, timeout)
            .unwrap_or_else(|e| e.into_inner());
    }
}

/// Mutable engine state guarded by the write mutex.
#[derive(Debug)]
struct WriteState {
    manifest: Manifest,
    wal: Option<Wal>,
    flushes_since_compaction: u64,
    /// Generation number for the next WAL segment (one segment per
    /// memtable generation under background maintenance).
    next_wal_generation: u64,
}

/// The immutable view a point read or range scan navigates: live tables
/// in probe (newest-first) order. Swapped wholesale on flush and
/// compaction.
#[derive(Debug, Default)]
pub(crate) struct ReadView {
    pub(crate) tables: Vec<TableMeta>,
}

/// Counters describing the work an [`Lsm`] instance has performed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LsmStats {
    /// Number of put operations accepted.
    pub puts: u64,
    /// Number of delete operations accepted.
    pub deletes: u64,
    /// Number of [`WriteBatch`] applications accepted (their individual
    /// operations also count into [`LsmStats::puts`] / [`LsmStats::deletes`]).
    pub write_batches: u64,
    /// Number of point reads served.
    pub gets: u64,
    /// Number of memtable flushes performed.
    pub flushes: u64,
    /// Number of sstables consulted across all reads (read amplification
    /// numerator).
    pub tables_probed: u64,
    /// Number of reads answered from the memtable (active or frozen).
    pub memtable_hits: u64,
    /// Number of range scans started ([`Lsm::range`]).
    pub range_scans: u64,
    /// Live tables skipped by range scans because their persisted
    /// min/max key range was disjoint from the scan bounds
    /// (key-range-partitioned probing: no bloom probe, no block I/O).
    pub range_pruned_tables: u64,
    /// Table probes rejected by a bloom filter or min/max key range
    /// without reading any data block.
    pub bloom_negative_probes: u64,
    /// Data-block round-trips to storage on the read path (block-cache
    /// misses that reached storage; one scan-readahead span counts
    /// once however many blocks it covers).
    pub data_block_reads: u64,
    /// Bytes of data blocks fetched from storage on the read path, as
    /// stored on disk (compressed for v3 tables).
    pub data_block_read_bytes: u64,
    /// Logical (decompressed) bytes of the data blocks decoded on the
    /// read path. The spread over
    /// [`LsmStats::data_block_read_bytes`] is the compression ratio
    /// reads are actually realizing.
    pub data_block_logical_bytes: u64,
    /// Reader handles served from the table cache.
    pub table_cache_hits: u64,
    /// Reader handles opened because the table cache missed.
    pub table_cache_misses: u64,
    /// Reader handles dropped by LRU pressure or compaction retirement.
    pub table_cache_evictions: u64,
    /// Data blocks served from the block cache.
    pub block_cache_hits: u64,
    /// Block lookups that missed the block cache.
    pub block_cache_misses: u64,
    /// Blocks dropped by LRU pressure or compaction retirement.
    pub block_cache_evictions: u64,
    /// Number of major compaction runs executed (manual and automatic).
    pub compactions: u64,
    /// Number of compactions fired by the configured
    /// [`CompactionPolicy`] (a subset of [`LsmStats::compactions`]).
    pub auto_compactions: u64,
    /// Entries read from input tables across all compaction merges.
    pub compaction_entries_read: u64,
    /// Entries written to output tables across all compaction merges.
    pub compaction_entries_written: u64,
    /// Bytes read from storage by compaction merges.
    pub compaction_bytes_read: u64,
    /// Bytes written to storage by compaction merges.
    pub compaction_bytes_written: u64,
    /// Wall-clock time writes were stalled behind compaction work:
    /// inline merge time, plus slowdown sleeps and stop blocks under
    /// background maintenance. Background merge time itself does **not**
    /// count — no write waits on it. Derived at snapshot time from the
    /// engine's stall histogram ([`EngineMetrics::stall`]), the single
    /// source every stall surface reads from.
    pub compaction_stall: Duration,
    /// Sum of the planner's predicted `cost_actual` (in keys) over all
    /// policy-driven compactions, for planned-vs-measured comparison.
    pub compaction_predicted_cost: u64,
    /// Sstables written by the background flush thread (a subset of
    /// [`LsmStats::flushes`]).
    pub bg_flushes: u64,
    /// Writes delayed by the slowdown stall tier (bounded sleep).
    pub slowdown_stalls: u64,
    /// Writes blocked by the stop stall tier until maintenance caught
    /// up.
    pub stop_stalls: u64,
    /// Frozen memtables currently queued for flush (a gauge, sampled
    /// when the stats were taken).
    pub frozen_queue_depth: u64,
    /// WAL segments scanned during open-time recovery.
    pub recovery_segments_scanned: u64,
    /// WAL frames whose checksum verified and whose records were
    /// replayed during recovery.
    pub recovery_frames_replayed: u64,
    /// Individual records replayed into the memtable during recovery.
    pub recovery_records_replayed: u64,
    /// Bytes discarded as torn tails (incomplete trailing frames from a
    /// crash mid-append; never acknowledged, so no data was lost).
    pub recovery_bytes_truncated: u64,
    /// Checksum-mismatched frames with valid frames after them (bit
    /// rot): the frame was quarantined and later frames salvaged, but
    /// acknowledged history is gone. Nonzero means explicit data loss.
    pub recovery_frames_quarantined: u64,
    /// WAL segments preserved under a `quarantined-` name because they
    /// contained rotten frames.
    pub recovery_segments_quarantined: u64,
    /// Tombstones physically dropped by tombstone-GC rewrites.
    pub tombstones_dropped: u64,
    /// Single-table tombstone-GC rewrites executed.
    pub gc_rewrites: u64,
    /// Sequence number of the current manifest checkpoint (a gauge;
    /// summed across shards by [`LsmStats::absorb`]).
    pub manifest_checkpoint_seq: u64,
    /// Live WAL segments on storage (a gauge, sampled when the stats
    /// were taken; summed across shards).
    pub wal_segments_live: u64,
    /// Range-delete operations accepted ([`Lsm::delete_range`]); each is
    /// one record however many keys the interval covers.
    pub range_deletes: u64,
    /// Pinned snapshots created ([`Lsm::snapshot`]).
    pub snapshots_created: u64,
}

impl LsmStats {
    /// The paper's `cost_actual` in entries, measured over every
    /// compaction this store has executed: entries read + written.
    #[must_use]
    pub fn compaction_entry_cost(&self) -> u64 {
        self.compaction_entries_read + self.compaction_entries_written
    }

    /// Measured `cost_actual` in bytes of compaction storage traffic.
    #[must_use]
    pub fn compaction_byte_cost(&self) -> u64 {
        self.compaction_bytes_read + self.compaction_bytes_written
    }

    /// Adds every counter of `other` into `self`. This is how a sharded
    /// deployment aggregates statistics across shards: each shard keeps
    /// its own `LsmStats` and the service folds them together on demand.
    pub fn absorb(&mut self, other: &LsmStats) {
        self.puts += other.puts;
        self.deletes += other.deletes;
        self.write_batches += other.write_batches;
        self.gets += other.gets;
        self.flushes += other.flushes;
        self.tables_probed += other.tables_probed;
        self.memtable_hits += other.memtable_hits;
        self.range_scans += other.range_scans;
        self.range_pruned_tables += other.range_pruned_tables;
        self.bloom_negative_probes += other.bloom_negative_probes;
        self.data_block_reads += other.data_block_reads;
        self.data_block_read_bytes += other.data_block_read_bytes;
        self.data_block_logical_bytes += other.data_block_logical_bytes;
        self.table_cache_hits += other.table_cache_hits;
        self.table_cache_misses += other.table_cache_misses;
        self.table_cache_evictions += other.table_cache_evictions;
        self.block_cache_hits += other.block_cache_hits;
        self.block_cache_misses += other.block_cache_misses;
        self.block_cache_evictions += other.block_cache_evictions;
        self.compactions += other.compactions;
        self.auto_compactions += other.auto_compactions;
        self.compaction_entries_read += other.compaction_entries_read;
        self.compaction_entries_written += other.compaction_entries_written;
        self.compaction_bytes_read += other.compaction_bytes_read;
        self.compaction_bytes_written += other.compaction_bytes_written;
        self.compaction_stall += other.compaction_stall;
        self.compaction_predicted_cost += other.compaction_predicted_cost;
        self.bg_flushes += other.bg_flushes;
        self.slowdown_stalls += other.slowdown_stalls;
        self.stop_stalls += other.stop_stalls;
        self.frozen_queue_depth += other.frozen_queue_depth;
        self.recovery_segments_scanned += other.recovery_segments_scanned;
        self.recovery_frames_replayed += other.recovery_frames_replayed;
        self.recovery_records_replayed += other.recovery_records_replayed;
        self.recovery_bytes_truncated += other.recovery_bytes_truncated;
        self.recovery_frames_quarantined += other.recovery_frames_quarantined;
        self.recovery_segments_quarantined += other.recovery_segments_quarantined;
        self.tombstones_dropped += other.tombstones_dropped;
        self.gc_rewrites += other.gc_rewrites;
        self.manifest_checkpoint_seq += other.manifest_checkpoint_seq;
        self.wal_segments_live += other.wal_segments_live;
        self.range_deletes += other.range_deletes;
        self.snapshots_created += other.snapshots_created;
    }

    fn record_compaction(&mut self, outcome: &CompactionOutcome) {
        self.compactions += 1;
        self.compaction_entries_read += outcome.entries_read;
        self.compaction_entries_written += outcome.entries_written;
        self.compaction_bytes_read += outcome.bytes_read;
        self.compaction_bytes_written += outcome.bytes_written;
    }
}

/// The write-stall tier currently in force, from the tiered triggers
/// that replace binary BUSY under background maintenance (modelled on
/// RocksDB's `l0_slowdown_writes_trigger` / `l0_stop_writes_trigger`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StallTier {
    /// Maintenance is keeping up; writes run at full speed.
    #[default]
    None,
    /// Maintenance debt crossed [`LsmOptions::slowdown_trigger`]: each
    /// write is delayed by a bounded sleep so flush/compaction can
    /// catch up gradually.
    Slowdown,
    /// Debt crossed [`LsmOptions::stop_trigger`] (or the frozen queue
    /// is saturated): writes block until maintenance drains the
    /// backlog.
    Stop,
}

/// A lock-free snapshot of how overloaded a store currently is — the
/// signals an admission controller sheds load on.
///
/// Produced by [`Lsm::pressure`] without touching the write mutex, so a
/// server can probe a shard that is mid-compaction and still get an
/// instant answer. Under inline compaction the headline signal is
/// [`LsmPressure::current_stall`]; under background maintenance it is
/// [`LsmPressure::stall_tier`] and [`LsmPressure::frozen_queue_depth`] —
/// how far storage maintenance has fallen behind the write rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsmPressure {
    /// Live sstables in the current read snapshot.
    pub live_tables: usize,
    /// Distinct keys buffered in the (active) memtable.
    pub memtable_len: usize,
    /// Memtable key capacity (flush threshold).
    pub memtable_capacity: usize,
    /// `true` while a compaction is executing (inline or background).
    pub compaction_running: bool,
    /// Wall-clock age of the in-progress *inline* compaction (zero when
    /// idle or when merges run on the background scheduler). Every
    /// write to this store queues behind it.
    pub current_stall: Duration,
    /// Wall-clock time writes stalled behind completed compactions and
    /// tiered write stalls.
    pub total_stall: Duration,
    /// How many live tables sit at or beyond the configured
    /// [`CompactionPolicy::Threshold`] trigger: 0 means no compaction is
    /// due, ≥ 1 means flushes are outrunning compaction (the deeper, the
    /// further behind). Always 0 for non-threshold policies.
    pub compaction_backlog: usize,
    /// Frozen memtables queued for background flush (0 when background
    /// maintenance is off).
    pub frozen_queue_depth: usize,
    /// The write-stall tier currently in force
    /// ([`StallTier::None`] when background maintenance is off).
    pub stall_tier: StallTier,
}

impl LsmPressure {
    /// Memtable fullness in `[0, 1]` (1.0 = next write may flush, and a
    /// flush may trigger a compaction the writer pays for in line).
    #[must_use]
    pub fn memtable_fill(&self) -> f64 {
        self.memtable_len as f64 / self.memtable_capacity.max(1) as f64
    }
}

/// The result of one policy-driven compaction: what the planner chose
/// and what executing it physically cost.
#[derive(Debug, Clone)]
pub struct AutoCompaction {
    /// The plan (strategy, schedule, waves, predicted costs).
    pub plan: MergePlan,
    /// The physical outcome (entries/bytes read and written).
    pub outcome: CompactionOutcome,
    /// Wall-clock time the compaction took (planning + merging). Under
    /// the background scheduler this is elapsed time, not write stall.
    pub stall: Duration,
}

impl Lsm {
    /// Opens a store over an arbitrary storage backend, recovering state
    /// from the manifest and WAL if present.
    ///
    /// With [`LsmOptions::background_maintenance`] enabled this also
    /// spawns the flush thread (and, under an automatic
    /// [`CompactionPolicy`], the compaction scheduler thread). Both are
    /// signalled and joined when the store is dropped.
    ///
    /// # Errors
    ///
    /// Propagates storage and corruption errors encountered during
    /// recovery, and thread-spawn failures.
    pub fn open(storage: Arc<dyn Storage>, options: LsmOptions) -> Result<Self, Error> {
        let inner = Arc::new(LsmInner::open(storage, options)?);
        let mut workers = Vec::new();
        if inner.options.background_maintenance_enabled() {
            let flusher = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name("lsm-flush".into())
                    .spawn(move || flusher.flush_worker())
                    .map_err(Error::Io)?,
            );
            if inner.options.policy().is_automatic() {
                let scheduler = Arc::clone(&inner);
                workers.push(
                    std::thread::Builder::new()
                        .name("lsm-compact".into())
                        .spawn(move || scheduler.compaction_worker())
                        .map_err(Error::Io)?,
                );
            }
        }
        Ok(Self { inner, workers })
    }

    /// Opens a fresh in-memory store (the simulator default).
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature matches [`Lsm::open`].
    pub fn open_in_memory(options: LsmOptions) -> Result<Self, Error> {
        Self::open(Arc::new(MemoryStorage::new()), options)
    }

    /// Opens (or reopens) a file-backed store rooted at `path`.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created or recovery fails.
    pub fn open_on_disk(
        path: impl Into<std::path::PathBuf>,
        options: LsmOptions,
    ) -> Result<Self, Error> {
        Self::open(Arc::new(FileStorage::open(path)?), options)
    }

    /// The configuration this store was opened with.
    #[must_use]
    pub fn options(&self) -> &LsmOptions {
        &self.inner.options
    }

    /// The storage backend (shared with compaction executors).
    #[must_use]
    pub fn storage(&self) -> Arc<dyn Storage> {
        Arc::clone(&self.inner.storage)
    }

    /// Work counters: write-side counters folded together with the
    /// lock-free read-path and cache counters. Never waits on the write
    /// mutex, so a STATS probe answers instantly mid-compaction.
    #[must_use]
    pub fn stats(&self) -> LsmStats {
        self.inner.stats_snapshot()
    }

    /// The store's current overload signals, read without the write
    /// mutex: live-table count from the read snapshot, memtable fill
    /// under a brief read lock, frozen-queue depth and stall tier from
    /// atomically-swapped state. Safe to call at any rate from any
    /// thread — in particular while this store is deep inside a
    /// compaction, which is exactly when an admission controller needs
    /// the answer.
    #[must_use]
    pub fn pressure(&self) -> LsmPressure {
        self.inner.pressure()
    }

    /// The engine's per-operation latency histograms (get/put/
    /// write-batch/scan-next/flush/compaction-step/stall). Lock-free to
    /// read — snapshot individual histograms or use
    /// [`EngineMetrics::named_snapshots`] for the full wire-ready set.
    #[must_use]
    pub fn metrics(&self) -> &EngineMetrics {
        &self.inner.metrics
    }

    /// The maintenance-event trace ring this store records into (shared
    /// across stores when injected via [`LsmOptions::event_sink`]).
    /// Drain with [`obs::EventRing::since`].
    #[must_use]
    pub fn events(&self) -> &EventRing {
        &self.inner.events
    }

    /// Metadata of the live sstables, oldest first. Served from the
    /// read snapshot, so it never waits on the write mutex; during a
    /// compaction it reports the pre-flip table set, which is exactly
    /// what is still live and readable.
    #[must_use]
    pub fn live_tables(&self) -> Vec<TableMeta> {
        self.inner.live_tables()
    }

    /// Number of distinct keys currently buffered in the active
    /// memtable (frozen memtables not included).
    #[must_use]
    pub fn memtable_len(&self) -> usize {
        self.inner.memtable.read().len()
    }

    /// Frozen memtables currently queued for background flush.
    #[must_use]
    pub fn frozen_queue_depth(&self) -> usize {
        self.inner.frozen.load_full().len()
    }

    /// Bytes currently held by the block cache (diagnostics).
    #[must_use]
    pub fn block_cache_usage_bytes(&self) -> u64 {
        self.inner.block_cache.usage_bytes()
    }

    /// Open reader handles currently held by the table cache
    /// (diagnostics).
    #[must_use]
    pub fn table_cache_len(&self) -> usize {
        self.inner.table_cache.len()
    }

    /// Inserts or overwrites `key`.
    ///
    /// The key is anything [`IntoKey`] covers — `Key` bytes, slices,
    /// strings, or a `u64` (big-endian encoded so lexicographic order
    /// matches numeric order). One keyed surface replaces the old
    /// per-type variants.
    ///
    /// # Errors
    ///
    /// Propagates WAL/storage failures; flush failures if the write fills
    /// the memtable (inline mode only — under background maintenance a
    /// full memtable is frozen in O(1) with no I/O).
    pub fn put(&self, key: impl IntoKey, value: impl Into<Value>) -> Result<(), Error> {
        self.inner.put(key.into_key(), value.into())
    }

    /// Deletes `key` by writing a tombstone.
    ///
    /// # Errors
    ///
    /// Propagates WAL/storage failures.
    pub fn delete(&self, key: impl IntoKey) -> Result<(), Error> {
        self.inner.delete(key.into_key())
    }

    /// Deletes every key in `[start, end)` by writing a **single**
    /// range-tombstone record — O(1) in the width of the interval, not
    /// one tombstone per covered key. Point reads, range scans and
    /// compaction treat every version sequenced before the delete as
    /// gone; pinned snapshots taken earlier still see the interval.
    ///
    /// An empty or inverted interval (`start >= end`) is accepted as a
    /// no-op: nothing is logged and no sequence number is consumed.
    ///
    /// # Errors
    ///
    /// Propagates WAL/storage failures.
    pub fn delete_range(&self, start: impl IntoKey, end: impl IntoKey) -> Result<(), Error> {
        self.inner.delete_range(start.into_key(), end.into_key())
    }

    /// Pins a consistent point-in-time view of the store and returns a
    /// read handle onto it. Reads through the [`Snapshot`] see exactly
    /// the writes sequenced before this call — regardless of concurrent
    /// writes, flushes, compactions or tombstone GC — until the handle
    /// is dropped, which releases the pin and lets reclamation resume
    /// past it.
    ///
    /// # Examples
    ///
    /// ```
    /// use lsm_engine::{Lsm, LsmOptions};
    ///
    /// # fn main() -> Result<(), lsm_engine::Error> {
    /// let db = Lsm::open_in_memory(LsmOptions::default())?;
    /// db.put(1u64, b"before".to_vec())?;
    /// let snap = db.snapshot();
    /// db.put(1u64, b"after".to_vec())?;
    /// assert_eq!(snap.get(1u64)?.as_deref(), Some(&b"before"[..]));
    /// assert_eq!(db.get(1u64)?.as_deref(), Some(&b"after"[..]));
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let lsn = self.inner.create_pin();
        Snapshot {
            inner: Arc::clone(&self.inner),
            lsn,
        }
    }

    /// Applies a [`WriteBatch`]: every operation is appended to the WAL
    /// as **one frame** and applied to the memtable in **one pass**, with
    /// at most one flush at the end — instead of one WAL write (and
    /// possible flush) per key as the single-op path pays.
    ///
    /// Crash atomicity: the WAL frame is the unit of checksum
    /// protection, so recovery replays either the whole batch or none of
    /// it ([`Wal::append_batch`]). Once this method returns `Ok`, every
    /// operation of the batch is durable (WAL-persisted) and visible.
    ///
    /// An empty batch is a no-op.
    ///
    /// # Errors
    ///
    /// Propagates WAL/storage failures; flush failures if the batch
    /// fills the memtable. If the WAL append itself fails the memtable
    /// is untouched (nothing was applied, and a torn frame replays
    /// all-or-nothing); if a subsequent flush fails the batch has
    /// already been applied and logged — it is durable and visible
    /// despite the error.
    pub fn write_batch(&self, batch: WriteBatch) -> Result<(), Error> {
        self.inner.write_batch(batch)
    }

    /// Thin shim over [`Lsm::put`], kept for callers written against
    /// the pre-[`IntoKey`] API. Prefer `put(key, value)` — a `u64` key
    /// is accepted directly.
    ///
    /// # Errors
    ///
    /// Same as [`Lsm::put`].
    pub fn put_u64(&self, key: u64, value: impl Into<Vec<u8>>) -> Result<(), Error> {
        self.put(key_from_u64(key), Bytes::from(value.into()))
    }

    /// Thin shim over [`Lsm::delete`], kept for callers written against
    /// the pre-[`IntoKey`] API. Prefer `delete(key)`.
    ///
    /// # Errors
    ///
    /// Same as [`Lsm::delete`].
    pub fn delete_u64(&self, key: u64) -> Result<(), Error> {
        self.delete(key_from_u64(key))
    }

    /// Point read: newest visible value for `key`, or `None` if the key
    /// was never written or its newest version is a tombstone.
    ///
    /// Lock-free against writers: consults the active memtable under a
    /// brief read lock, then any frozen memtables newest-first, then
    /// probes the snapshot's tables newest-first through the table and
    /// block caches. If compaction retires a probed table mid-read (its
    /// blob vanishes), the read reloads the snapshot and retries — the
    /// merged data is in the new table set.
    ///
    /// # Errors
    ///
    /// Propagates storage and corruption errors.
    pub fn get(&self, key: impl IntoKey) -> Result<Option<Value>, Error> {
        self.inner.get(&key.into_key())
    }

    /// Thin shim over [`Lsm::get`], kept for callers written against
    /// the pre-[`IntoKey`] API. Prefer `get(key)` — a `u64` key is
    /// accepted directly.
    ///
    /// # Errors
    ///
    /// Same as [`Lsm::get`].
    pub fn get_u64(&self, key: u64) -> Result<Option<Value>, Error> {
        self.get(key_from_u64(key))
    }

    /// Flushes the memtable to a new sstable even if it is not full.
    /// A no-op on an empty memtable. Under background maintenance this
    /// freezes the active memtable and **waits** for the flush thread to
    /// drain the whole frozen queue, so on return everything previously
    /// written is table-durable.
    ///
    /// After a successful flush the configured [`CompactionPolicy`] is
    /// consulted ([`Lsm::maybe_compact`]); under an automatic policy the
    /// returned table may therefore already have been merged away by the
    /// time this returns.
    ///
    /// # Errors
    ///
    /// Propagates storage failures (from the flush itself or from a
    /// policy-triggered compaction).
    pub fn flush(&self) -> Result<Option<u64>, Error> {
        self.inner.flush()
    }

    /// Consults the configured [`CompactionPolicy`] and, if it fires,
    /// plans and executes a full compaction of the live tables. Called
    /// automatically after every flush; callable directly to re-check
    /// the policy at any time. Under background maintenance this only
    /// kicks the scheduler thread and returns `Ok(None)` immediately.
    ///
    /// Returns `Ok(None)` when the policy does not fire (or is not
    /// automatic).
    ///
    /// # Errors
    ///
    /// Propagates planning and storage failures.
    pub fn maybe_compact(&self) -> Result<Option<AutoCompaction>, Error> {
        self.inner.maybe_compact()
    }

    /// Plans a compaction of the live tables with the configured
    /// strategy and estimator and executes it (parallel across
    /// independent steps when [`LsmOptions::threads`] > 1), regardless
    /// of whether the policy would fire. Returns `Ok(None)` when the
    /// policy is [`CompactionPolicy::Disabled`] or there are fewer than
    /// two live tables.
    ///
    /// This is the "compact now, your way" entry point: no manual
    /// [`CompactionStep`] construction involved.
    ///
    /// # Errors
    ///
    /// Propagates planning and storage failures.
    pub fn auto_compact(&self) -> Result<Option<AutoCompaction>, Error> {
        self.inner.auto_compact()
    }

    /// Executes a full major-compaction merge schedule over the live
    /// sstables.
    ///
    /// `steps` reference tables by *slot*: slots `0..n` are the current
    /// live tables in manifest (oldest-first) order, and each step's
    /// output becomes the next slot, exactly like the merge schedules
    /// produced by `compaction-core` (see
    /// [`MergeSchedule::slot_steps`](compaction_core::MergeSchedule::slot_steps)).
    /// Independent steps execute concurrently when
    /// [`LsmOptions::threads`] > 1, and manifest edits are applied
    /// atomically after every step succeeds.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidCompaction`] for malformed schedules and
    /// propagates storage errors.
    pub fn major_compact(&self, steps: &[CompactionStep]) -> Result<CompactionOutcome, Error> {
        self.inner.major_compact(steps)
    }

    /// Runs one tombstone-GC rewrite right now, regardless of the
    /// [`LsmOptions::tombstone_gc`] toggle (which only governs the
    /// background scheduler): pick the live table carrying the most
    /// tombstones past [`LsmOptions::gc_min_tombstones`], drop every
    /// tombstone that provably shadows nothing — no *other* live
    /// table's bloom/min-max admits its key — and swap in the slimmer
    /// rewrite via the usual atomic manifest flip. Returns the number
    /// of tombstones dropped (0 when no table qualifies or nothing was
    /// droppable).
    ///
    /// Entries buffered in the memtable are always strictly newer than
    /// any sstable entry, so dropping an sstable tombstone can never
    /// resurrect them.
    ///
    /// # Errors
    ///
    /// Propagates storage and corruption errors.
    pub fn gc_tombstones(&self) -> Result<u64, Error> {
        self.inner.run_tombstone_gc()
    }

    /// Returns every live key/value pair, merged across the memtable and
    /// all sstables with newest-wins semantics and tombstones applied:
    /// [`Lsm::range`] over the whole keyspace, collected. Intended for
    /// verification and small stores — large stores should iterate the
    /// streaming [`Lsm::range`] directly instead of materializing it.
    ///
    /// # Errors
    ///
    /// Propagates storage and corruption errors.
    pub fn scan_all(&self) -> Result<Vec<(Key, Value)>, Error> {
        self.range(..).collect()
    }

    /// Streams every live `(key, value)` pair whose key falls inside
    /// `range`, in ascending key order — the snapshot-consistent range
    /// scan. Nothing is materialized beyond one decoded block per probed
    /// table, so arbitrarily large ranges stream in bounded memory.
    ///
    /// The scan pins the current table snapshot plus a frozen view of
    /// the in-range entries of the active and frozen memtables, k-way
    /// merges them newest-wins with tombstones suppressed, and skips
    /// every sstable whose persisted min/max key range is disjoint from
    /// `range` (key-range-partitioned probing — see
    /// [`LsmStats::range_pruned_tables`]). Block fetches bypass the
    /// block cache unless [`LsmOptions::scan_fill_cache`] says
    /// otherwise. If a compaction retires a pinned table mid-iteration,
    /// the scan reloads the freshest snapshot and resumes after the last
    /// key it returned ([`scan`](crate::scan) module docs).
    ///
    /// Runs concurrently with writes, flushes and compaction — it takes
    /// `&self` and never holds an engine lock across I/O.
    ///
    /// # Examples
    ///
    /// ```
    /// use lsm_engine::{Lsm, LsmOptions};
    ///
    /// # fn main() -> Result<(), lsm_engine::Error> {
    /// let db = Lsm::open_in_memory(LsmOptions::default().memtable_capacity(4))?;
    /// for i in 0u64..20 {
    ///     db.put_u64(i, vec![i as u8])?;
    /// }
    /// let hits: Vec<u64> = db
    ///     .range_u64(5..9)
    ///     .map(|r| r.map(|(k, _)| lsm_engine::key_to_u64(&k).unwrap()))
    ///     .collect::<Result<_, _>>()?;
    /// assert_eq!(hits, vec![5, 6, 7, 8]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn range(&self, range: impl std::ops::RangeBounds<Key>) -> RangeIter<'_> {
        self.inner.range_scans.fetch_add(1, Ordering::Relaxed);
        RangeIter::new(
            self.inner.as_ref(),
            (range.start_bound().cloned(), range.end_bound().cloned()),
        )
    }

    /// Thin shim over [`Lsm::range`] for big-endian-encoded integer
    /// keys (half-open, like the `start..end` it takes), kept for
    /// callers written against the pre-[`IntoKey`] API.
    pub fn range_u64(&self, range: std::ops::Range<u64>) -> RangeIter<'_> {
        self.range(key_from_u64(range.start)..key_from_u64(range.end))
    }
}

/// A pinned point-in-time read view of an [`Lsm`] store, created by
/// [`Lsm::snapshot`].
///
/// The snapshot's LSN is a sequence number allocated at creation; reads
/// through the handle see exactly the records sequenced at or below it.
/// While the handle lives, its pin holds the engine's retention floor
/// down: memtable overwrites keep the versions it can observe,
/// compaction merges retain shadowed history it can still read, and
/// tombstone GC leaves its tombstones in place. Dropping the handle
/// releases the pin; reclamation resumes on the next maintenance pass.
///
/// The handle is independent of the `Lsm` facade's lifetime bookkeeping
/// — it holds the engine alive via `Arc`, so it stays readable even
/// while flushes and compactions rewrite every table underneath it.
#[derive(Debug)]
pub struct Snapshot {
    inner: Arc<LsmInner>,
    lsn: u64,
}

impl Snapshot {
    /// The sequence number this snapshot is pinned at. Records with
    /// `seqno <= lsn` are visible; everything newer is not.
    #[must_use]
    pub fn lsn(&self) -> u64 {
        self.lsn
    }

    /// Point read at the pinned LSN: the newest value for `key`
    /// sequenced at or before the snapshot, or `None` if the key was
    /// absent or deleted as of the snapshot.
    ///
    /// # Errors
    ///
    /// Propagates storage and corruption errors.
    pub fn get(&self, key: impl IntoKey) -> Result<Option<Value>, Error> {
        self.inner.get_at(&key.into_key(), self.lsn)
    }

    /// Streams the `(key, value)` pairs inside `range` exactly as they
    /// stood at the pinned LSN, in ascending key order — the snapshot
    /// counterpart of [`Lsm::range`].
    pub fn range(&self, range: impl std::ops::RangeBounds<Key>) -> RangeIter<'_> {
        self.inner.range_scans.fetch_add(1, Ordering::Relaxed);
        RangeIter::pinned(
            self.inner.as_ref(),
            (range.start_bound().cloned(), range.end_bound().cloned()),
            self.lsn,
        )
    }

    /// [`Snapshot::range`] over big-endian-encoded integer keys.
    pub fn range_u64(&self, range: std::ops::Range<u64>) -> RangeIter<'_> {
        self.range(key_from_u64(range.start)..key_from_u64(range.end))
    }

    /// Every live `(key, value)` pair as of the pinned LSN, collected.
    ///
    /// # Errors
    ///
    /// Propagates storage and corruption errors.
    pub fn scan_all(&self) -> Result<Vec<(Key, Value)>, Error> {
        self.range(..).collect()
    }
}

impl Drop for Snapshot {
    /// Releases the pin, letting reclamation advance past this LSN.
    fn drop(&mut self) {
        self.inner.release_pin(self.lsn);
    }
}

impl Drop for Lsm {
    /// Graceful shutdown: signal the maintenance threads and join them.
    /// The flush thread drains the frozen queue before exiting, so no
    /// acked write exists only in a frozen memtable after drop.
    fn drop(&mut self) {
        self.inner.maint.shutdown.store(true, Ordering::SeqCst);
        self.inner.maint.flush_signal.notify();
        self.inner.maint.compact_signal.notify();
        self.inner.maint.progress_signal.notify();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

// ---- engine internals ----

impl LsmInner {
    fn open(storage: Arc<dyn Storage>, options: LsmOptions) -> Result<Self, Error> {
        let mut manifest = Manifest::load(storage.as_ref())?;
        // Sweep orphan sstable blobs and their key-observation sidecars:
        // a crash between writing compaction outputs and persisting the
        // manifest (or between persisting and deleting consumed inputs)
        // leaves blobs the manifest does not reference. They are
        // invisible to reads and safe to delete. WAL segments do not
        // parse as sstable/observation ids, so they survive the sweep.
        for blob in storage.list_blobs() {
            let orphan_id = Sstable::id_from_blob_name(&blob)
                .or_else(|| TableKeyObservation::id_from_blob_name(&blob));
            if let Some(orphan_id) = orphan_id {
                if manifest.table(orphan_id).is_none() {
                    storage.delete_blob(&blob)?;
                }
            }
        }
        // Establish the first checkpoint immediately (also migrates a
        // legacy single-blob manifest): from this point on the data
        // directory always carries a decodable checkpoint, so sstable
        // blobs without *any* manifest can only mean the manifest was
        // lost — `Manifest::load` fails with the orphaned-tables
        // diagnostic — never a normal crash window during the first
        // flush.
        if manifest.checkpoint_seq() == 0 {
            manifest.persist(storage.as_ref())?;
        }
        let mut memtable = Memtable::new(options.memtable_capacity_keys());
        let mut next_wal_generation = 0;
        let mut recovery = RecoveryReport::default();
        let wal = if options.wal_enabled() {
            // Recover every write that had not been flushed, replaying
            // all live WAL segments oldest-first (a crash under
            // background maintenance can leave one segment per frozen
            // memtable generation). Each segment's replay classifies
            // damage: torn tails are truncated (a crash mid-append —
            // nothing acked was lost), checksum-mismatched frames with
            // valid frames after them are quarantined and the rest
            // salvaged (bit rot — acked history is gone, and the report
            // says so). Everything salvaged is re-persisted as one
            // frame into a single fresh segment, then the old segments
            // are retired — a crash in between replays records twice,
            // which is idempotent (same seqnos).
            let segments = Wal::live_segments(storage.as_ref());
            let mut records = Vec::new();
            let mut rotten: Vec<&String> = Vec::new();
            for segment in &segments {
                let replay = Wal::replay_segment(storage.as_ref(), segment)?;
                recovery.absorb_segment(&replay);
                if replay.frames_quarantined > 0 {
                    rotten.push(segment);
                }
                records.extend(replay.records);
            }
            if options.strict_recovery_enabled() && recovery.lost_acked_history() {
                return Err(Error::corruption(format!(
                    "strict recovery: {} WAL frame(s) across {} segment(s) failed their \
                     checksum with valid frames after them (bit rot, not a torn tail); \
                     refusing to open with a gapped history",
                    recovery.frames_quarantined, recovery.segments_quarantined
                )));
            }
            // Preserve rotten segments verbatim under a quarantine name
            // before retiring them: the rotted bytes stay available for
            // forensics and are never mistaken for a live segment
            // (quarantine names don't parse as WAL generations).
            for segment in &rotten {
                if let Ok(bytes) = storage.read_blob(segment) {
                    let _ = storage.write_blob(&format!("quarantined-{segment}"), &bytes);
                }
            }
            let next_generation = segments
                .iter()
                .filter_map(|s| Wal::parse_generation(s))
                .max()
                .map_or(0, |g| g + 1);
            let mut wal = Wal::new(Wal::generation_blob_name(next_generation));
            for r in &records {
                match r.kind {
                    ValueKind::Put => memtable.put(r.key.clone(), r.value.clone(), r.seqno),
                    ValueKind::Tombstone => memtable.delete(r.key.clone(), r.seqno),
                    // A range delete logs its exclusive end bound as the
                    // record value.
                    ValueKind::RangeDelete => {
                        memtable.delete_range(r.key.clone(), r.value.clone(), r.seqno);
                    }
                }
            }
            // The persisted manifest may predate the replayed records'
            // allocations; bump the allocator past them so fresh writes
            // never reuse a replayed sequence number.
            if let Some(max_seqno) = records.iter().map(|r| r.seqno).max() {
                manifest.observe_seqno(max_seqno);
            }
            wal.append_batch(storage.as_ref(), &records)?;
            for segment in &segments {
                Wal::retire_segment(storage.as_ref(), segment)?;
            }
            next_wal_generation = next_generation + 1;
            Some(wal)
        } else {
            None
        };
        let snapshot = ArcSwap::new(Arc::new(ReadView::from_manifest(&manifest)));
        let events = crate::metrics::event_ring_for(&options);
        let shard = options.shard_tag_id();
        if recovery.segments_scanned > 0 {
            events.record(
                shard,
                EventKind::WalRecovery,
                0,
                vec![
                    ("segments_scanned", recovery.segments_scanned),
                    ("frames_replayed", recovery.frames_replayed),
                    ("records_replayed", recovery.records_replayed),
                    ("bytes_truncated", recovery.bytes_truncated),
                    ("frames_quarantined", recovery.frames_quarantined),
                    ("segments_quarantined", recovery.segments_quarantined),
                ],
            );
        }
        let stats = LsmStats {
            recovery_segments_scanned: recovery.segments_scanned,
            recovery_frames_replayed: recovery.frames_replayed,
            recovery_records_replayed: recovery.records_replayed,
            recovery_bytes_truncated: recovery.bytes_truncated,
            recovery_frames_quarantined: recovery.frames_quarantined,
            recovery_segments_quarantined: recovery.segments_quarantined,
            ..LsmStats::default()
        };
        Ok(Self {
            table_cache: Arc::new(TableCache::new(options.table_cache_tables())),
            block_cache: Arc::new(BlockCache::new(options.block_cache_bytes())),
            options,
            storage,
            write: Mutex::new(WriteState {
                manifest,
                wal,
                flushes_since_compaction: 0,
                next_wal_generation,
            }),
            stats: Mutex::new(stats),
            memtable: RwLock::new(memtable),
            frozen: ArcSwap::new(Arc::new(Vec::new())),
            snapshot,
            read_counters: ReadPathCounters::default(),
            gets: AtomicU64::new(0),
            memtable_hits: AtomicU64::new(0),
            tables_probed: AtomicU64::new(0),
            range_scans: AtomicU64::new(0),
            range_pruned_tables: AtomicU64::new(0),
            epoch: Instant::now(),
            compaction_started: AtomicU64::new(0),
            metrics: EngineMetrics::new(),
            events,
            shard,
            stall_tier_seen: AtomicU64::new(0),
            next_flush_generation: AtomicU64::new(0),
            slowdown_stalls: AtomicU64::new(0),
            stop_stalls: AtomicU64::new(0),
            bg_flushes: AtomicU64::new(0),
            last_bg_flush_table: AtomicU64::new(0),
            bg_compacting: AtomicBool::new(false),
            compaction_mx: Mutex::new(()),
            gc_barren: Mutex::new(Vec::new()),
            pins: Mutex::new(BTreeMap::new()),
            maint: Maintenance::default(),
        })
    }

    fn background(&self) -> bool {
        self.options.background_maintenance_enabled()
    }

    fn stats_snapshot(&self) -> LsmStats {
        let mut stats = self.stats.lock().clone();
        stats.gets = self.gets.load(Ordering::Relaxed);
        stats.memtable_hits = self.memtable_hits.load(Ordering::Relaxed);
        stats.tables_probed = self.tables_probed.load(Ordering::Relaxed);
        stats.range_scans = self.range_scans.load(Ordering::Relaxed);
        stats.range_pruned_tables = self.range_pruned_tables.load(Ordering::Relaxed);
        stats.bloom_negative_probes = self.read_counters.bloom_negatives();
        stats.data_block_reads = self.read_counters.block_reads();
        stats.data_block_read_bytes = self.read_counters.block_read_bytes();
        stats.data_block_logical_bytes = self.read_counters.block_logical_bytes();
        let table = self.table_cache.counters();
        stats.table_cache_hits = table.hits();
        stats.table_cache_misses = table.misses();
        stats.table_cache_evictions = table.evictions();
        let block = self.block_cache.counters();
        stats.block_cache_hits = block.hits();
        stats.block_cache_misses = block.misses();
        stats.block_cache_evictions = block.evictions();
        stats.bg_flushes = self.bg_flushes.load(Ordering::Relaxed);
        stats.slowdown_stalls = self.slowdown_stalls.load(Ordering::Relaxed);
        stats.stop_stalls = self.stop_stalls.load(Ordering::Relaxed);
        stats.frozen_queue_depth = self.frozen.load_full().len() as u64;
        stats.compaction_stall = Duration::from_micros(self.metrics.stall.sum());
        stats.wal_segments_live = Wal::live_segments(self.storage.as_ref()).len() as u64;
        stats.manifest_checkpoint_seq = self.write.lock().manifest.checkpoint_seq();
        stats
    }

    fn pressure(&self) -> LsmPressure {
        let live_tables = self.snapshot.load_full().tables.len();
        let memtable_len = self.memtable.read().len();
        let started = self.compaction_started.load(Ordering::Relaxed);
        let current_stall = if started == 0 {
            Duration::ZERO
        } else {
            let now = self.epoch.elapsed().as_micros() as u64;
            Duration::from_micros(now.saturating_sub(started - 1))
        };
        let compaction_backlog = match self.options.policy() {
            CompactionPolicy::Threshold {
                live_tables: trigger,
            } => (live_tables + 1).saturating_sub(trigger),
            _ => 0,
        };
        LsmPressure {
            live_tables,
            memtable_len,
            memtable_capacity: self.options.memtable_capacity_keys(),
            compaction_running: started != 0 || self.bg_compacting.load(Ordering::Relaxed),
            current_stall,
            total_stall: Duration::from_micros(self.metrics.stall.sum()),
            compaction_backlog,
            frozen_queue_depth: self.frozen.load_full().len(),
            stall_tier: self.stall_tier(),
        }
    }

    /// The total maintenance debt writers are throttled on (frozen-queue
    /// depth + compaction backlog) and the queue depth alone.
    fn maintenance_debt(&self) -> (usize, usize) {
        let depth = self.frozen.load_full().len();
        let backlog = match self.options.policy() {
            CompactionPolicy::Threshold {
                live_tables: trigger,
            } => (self.snapshot.load_full().tables.len() + 1).saturating_sub(trigger),
            _ => 0,
        };
        (depth + backlog, depth)
    }

    /// The stall tier currently in force ([`StallTier::None`] when
    /// background maintenance is off: inline mode stalls by holding the
    /// write mutex, not by throttling).
    fn stall_tier(&self) -> StallTier {
        if !self.background() {
            return StallTier::None;
        }
        let (debt, depth) = self.maintenance_debt();
        if depth >= self.options.frozen_queue_limit_generations()
            || debt >= self.options.stop_trigger_debt()
        {
            StallTier::Stop
        } else if debt >= self.options.slowdown_trigger_debt() {
            StallTier::Slowdown
        } else {
            StallTier::None
        }
    }

    /// Tiered write throttling, applied **before** the write mutex is
    /// taken (a stalled writer holding the mutex would deadlock the
    /// flush thread it is waiting on). Slowdown delays the write by one
    /// bounded sleep; stop blocks until maintenance drains below the
    /// trigger (or shutdown). Every paced microsecond is recorded into
    /// the stall histogram — the single source `compaction_stall` and
    /// `total_stall` are derived from — alongside the
    /// `slowdown_stalls` / `stop_stalls` occurrence counters.
    fn throttle_write(&self) {
        let tier = self.stall_tier();
        self.note_stall_tier(tier);
        match tier {
            StallTier::None => {}
            StallTier::Slowdown => {
                self.slowdown_stalls.fetch_add(1, Ordering::Relaxed);
                let stalled = Instant::now();
                std::thread::sleep(SLOWDOWN_SLEEP);
                self.metrics.stall.record_duration(stalled.elapsed());
            }
            StallTier::Stop => {
                self.stop_stalls.fetch_add(1, Ordering::Relaxed);
                let stalled = Instant::now();
                while self.stall_tier() == StallTier::Stop
                    && !self.maint.shutdown.load(Ordering::SeqCst)
                {
                    self.maint.flush_signal.notify();
                    self.maint.compact_signal.notify();
                    self.maint.progress_signal.wait_timeout(STALL_WAIT_SLICE);
                }
                self.metrics.stall.record_duration(stalled.elapsed());
            }
        }
    }

    /// Appends one structured event to the trace ring, stamped with
    /// this store's shard tag and micros since open.
    fn emit(&self, kind: EventKind, fields: Vec<(&'static str, u64)>) {
        self.events.record(
            self.shard,
            kind,
            self.epoch.elapsed().as_micros() as u64,
            fields,
        );
    }

    /// Traces stall-tier *edges*: emits [`EventKind::StallTierChange`]
    /// only when `tier` differs from what the previous writer saw.
    fn note_stall_tier(&self, tier: StallTier) {
        let code = tier_code(tier);
        let previous = self.stall_tier_seen.swap(code, Ordering::Relaxed);
        if previous != code {
            self.emit(
                EventKind::StallTierChange,
                vec![("from", previous), ("to", code)],
            );
        }
    }

    /// An executor wired to this store's compaction-step histogram and
    /// wave-start trace events (`predicted_cost` is stamped on each
    /// wave so a trace consumer can follow one compaction end to end).
    fn instrumented_executor(&self, options: LsmOptions, predicted_cost: u64) -> ParallelExecutor {
        let events = self.events.clone();
        let shard = self.shard;
        let epoch = self.epoch;
        ParallelExecutor::new(Arc::clone(&self.storage), options)
            .with_retain_floor(self.pin_floor())
            .with_step_timer(self.metrics.compaction_step.clone())
            .with_wave_hook(move |wave, steps| {
                events.record(
                    shard,
                    EventKind::CompactionWaveStart,
                    epoch.elapsed().as_micros() as u64,
                    vec![
                        ("wave", wave as u64),
                        ("steps", steps as u64),
                        ("predicted_cost", predicted_cost),
                    ],
                );
            })
    }

    fn put(&self, key: Key, value: Value) -> Result<(), Error> {
        let started = Instant::now();
        let result = self.put_inner(key, value);
        self.metrics.put.record_duration(started.elapsed());
        result
    }

    fn put_inner(&self, key: Key, value: Value) -> Result<(), Error> {
        self.throttle_write();
        let mut w = self.write.lock();
        let seqno = w.manifest.allocate_seqno();
        w.log_write(self.storage.as_ref(), &key, &value, seqno, ValueKind::Put)?;
        self.memtable.write().put(key, value, seqno);
        self.stats.lock().puts += 1;
        self.maybe_flush(&mut w)
    }

    fn delete(&self, key: Key) -> Result<(), Error> {
        // Deletes are writes of a tombstone; they share the put
        // histogram rather than splitting the sample population.
        let started = Instant::now();
        let result = self.delete_inner(key);
        self.metrics.put.record_duration(started.elapsed());
        result
    }

    fn delete_inner(&self, key: Key) -> Result<(), Error> {
        self.throttle_write();
        let mut w = self.write.lock();
        let seqno = w.manifest.allocate_seqno();
        w.log_write(
            self.storage.as_ref(),
            &key,
            &Bytes::new(),
            seqno,
            ValueKind::Tombstone,
        )?;
        self.memtable.write().delete(key, seqno);
        self.stats.lock().deletes += 1;
        self.maybe_flush(&mut w)
    }

    fn delete_range(&self, start: Key, end: Key) -> Result<(), Error> {
        // Range deletes share the put histogram with the other write
        // shapes rather than splitting the sample population.
        let started = Instant::now();
        let result = self.delete_range_inner(start, end);
        self.metrics.put.record_duration(started.elapsed());
        result
    }

    fn delete_range_inner(&self, start: Key, end: Key) -> Result<(), Error> {
        // An inverted or empty interval deletes nothing; bail before
        // burning a sequence number or touching the WAL.
        if start >= end {
            return Ok(());
        }
        self.throttle_write();
        let mut w = self.write.lock();
        let seqno = w.manifest.allocate_seqno();
        // One WAL record for the whole interval: key = inclusive start,
        // value = exclusive end.
        w.log_write(
            self.storage.as_ref(),
            &start,
            &end,
            seqno,
            ValueKind::RangeDelete,
        )?;
        self.memtable.write().delete_range(start, end, seqno);
        self.stats.lock().range_deletes += 1;
        self.maybe_flush(&mut w)
    }

    // ---- snapshot pins ----

    /// The oldest pinned snapshot LSN, or `SeqNo::MAX` when nothing is
    /// pinned. This is the retention floor: reclamation (memtable
    /// overwrite collapse, compaction drops, tombstone GC) may only
    /// erase versions whose disappearance no reader pinned at or above
    /// the floor can observe. Pins only ever arrive at fresh (larger)
    /// LSNs and releases remove entries, so the floor is monotonically
    /// non-decreasing — a once-sampled floor stays safe for the rest of
    /// an in-flight merge.
    pub(crate) fn pin_floor(&self) -> SeqNo {
        self.pins
            .lock()
            .keys()
            .next()
            .copied()
            .unwrap_or(SeqNo::MAX)
    }

    /// Allocates and pins a snapshot LSN. Runs under the write mutex so
    /// no write can slip between the LSN allocation and the retention
    /// floor reaching the memtable — the pinned prefix is exactly every
    /// record sequenced before the snapshot.
    fn create_pin(&self) -> u64 {
        let mut w = self.write.lock();
        let lsn = w.manifest.allocate_seqno();
        let floor = {
            let mut pins = self.pins.lock();
            *pins.entry(lsn).or_insert(0) += 1;
            *pins.keys().next().expect("just inserted")
        };
        self.memtable.write().set_retain_floor(floor);
        drop(w);
        self.stats.lock().snapshots_created += 1;
        lsn
    }

    /// Releases one pin on `lsn`, raising the retention floor if that
    /// was the oldest snapshot.
    fn release_pin(&self, lsn: u64) {
        let w = self.write.lock();
        let floor = {
            let mut pins = self.pins.lock();
            if let Some(count) = pins.get_mut(&lsn) {
                *count -= 1;
                if *count == 0 {
                    pins.remove(&lsn);
                }
            }
            pins.keys().next().copied().unwrap_or(SeqNo::MAX)
        };
        self.memtable.write().set_retain_floor(floor);
        drop(w);
    }

    fn write_batch(&self, batch: WriteBatch) -> Result<(), Error> {
        let started = Instant::now();
        let result = self.write_batch_inner(batch);
        self.metrics.write_batch.record_duration(started.elapsed());
        result
    }

    fn write_batch_inner(&self, batch: WriteBatch) -> Result<(), Error> {
        if batch.is_empty() {
            return Ok(());
        }
        self.throttle_write();
        let mut w = self.write.lock();
        let records: Vec<WalRecord> = batch
            .into_ops()
            .into_iter()
            .map(|op| WalRecord {
                seqno: w.manifest.allocate_seqno(),
                key: op.key,
                value: op.value,
                kind: op.kind,
            })
            .collect();
        if let Some(wal) = &mut w.wal {
            wal.append_batch(self.storage.as_ref(), &records)?;
        }
        {
            let mut memtable = self.memtable.write();
            let mut stats = self.stats.lock();
            for record in records {
                match record.kind {
                    ValueKind::Put => {
                        memtable.put(record.key, record.value, record.seqno);
                        stats.puts += 1;
                    }
                    ValueKind::Tombstone => {
                        memtable.delete(record.key, record.seqno);
                        stats.deletes += 1;
                    }
                    ValueKind::RangeDelete => {
                        memtable.delete_range(record.key, record.value, record.seqno);
                        stats.range_deletes += 1;
                    }
                }
            }
            stats.write_batches += 1;
        }
        self.maybe_flush(&mut w)
    }

    fn maybe_flush(&self, w: &mut WriteState) -> Result<(), Error> {
        if self.memtable.read().is_full() {
            if self.background() {
                self.freeze_active(w);
            } else {
                self.flush_locked(w)?;
            }
        }
        Ok(())
    }

    /// O(1) memtable rotation (background mode): swap the full active
    /// memtable onto the frozen queue and park its WAL segment with it;
    /// a fresh segment becomes the active one. No storage I/O happens
    /// here — the flush thread does the heavy lifting.
    ///
    /// Runs under the write mutex. The swap and the queue publication
    /// happen inside one memtable-write-lock critical section, so a
    /// concurrent reader sees either the pre-swap active memtable or
    /// the published frozen generation — never the empty in-between.
    ///
    /// If the queue is already at [`LsmOptions::frozen_queue_limit`],
    /// the rotation is skipped: the active memtable keeps absorbing
    /// writes past capacity while the stop stall tier (which fires at
    /// queue saturation) bounds how far that grows.
    fn freeze_active(&self, w: &mut WriteState) {
        let queue = self.frozen.load_full();
        if queue.len() >= self.options.frozen_queue_limit_generations() {
            self.maint.flush_signal.notify();
            return;
        }
        let wal_segment = w.wal.take().map(|wal| wal.segment_name().to_string());
        if self.options.wal_enabled() {
            let generation = w.next_wal_generation;
            w.next_wal_generation += 1;
            w.wal = Some(Wal::new(Wal::generation_blob_name(generation)));
        }
        let generation = self.next_flush_generation.fetch_add(1, Ordering::Relaxed);
        // The replacement memtable inherits the current retention floor
        // so pinned snapshots keep their versions across the rotation.
        let mut fresh = Memtable::new(self.options.memtable_capacity_keys());
        fresh.set_retain_floor(self.pin_floor());
        let (entries, queue_depth) = {
            let mut active = self.memtable.write();
            let frozen_memtable = std::mem::replace(&mut *active, fresh);
            let entries = frozen_memtable.len() as u64;
            let mut next: Vec<Arc<FrozenGen>> = queue.as_ref().clone();
            next.push(Arc::new(FrozenGen {
                generation,
                memtable: frozen_memtable,
                wal_segment,
            }));
            let queue_depth = next.len() as u64;
            self.frozen.store(Arc::new(next));
            (entries, queue_depth)
        };
        self.emit(
            EventKind::MemtableFreeze,
            vec![
                ("generation", generation),
                ("entries", entries),
                ("queue_depth", queue_depth),
            ],
        );
        self.maint.flush_signal.notify();
    }

    fn get(&self, key: &[u8]) -> Result<Option<Value>, Error> {
        self.get_at(key, SeqNo::MAX)
    }

    /// Point read pinned at `upto`: the newest version with
    /// `seqno <= upto`, with range tombstones applied. `SeqNo::MAX` is
    /// the ordinary latest-visible read.
    pub(crate) fn get_at(&self, key: &[u8], upto: SeqNo) -> Result<Option<Value>, Error> {
        let started = Instant::now();
        let result = self.get_at_inner(key, upto);
        self.metrics.get.record_duration(started.elapsed());
        result
    }

    fn get_at_inner(&self, key: &[u8], upto: SeqNo) -> Result<Option<Value>, Error> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        loop {
            // Read in data-flow order (active → frozen → tables): an
            // entry that migrates between stages mid-read moves *toward*
            // a stage checked later, so it cannot be missed.
            //
            // Range-tombstone visibility is layer-local with one
            // cross-layer rule: every record in a newer layer outranks
            // (has a larger seqno than) every record in an older layer,
            // so a covering range tombstone found in some layer shadows
            // *all* older layers' versions of the key — once one is seen
            // without a same-layer point hit above it, the answer is
            // "deleted" and no older layer needs probing.
            {
                let memtable = self.memtable.read();
                let shadow = memtable.max_covering_range_del(key, upto);
                if let Some(entry) = memtable.get_visible(key, upto) {
                    self.memtable_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(resolve(entry, shadow));
                }
                if shadow.is_some() {
                    return Ok(None);
                }
            }
            let frozen = self.frozen.load_full();
            for gen in frozen.iter().rev() {
                let shadow = gen.memtable.max_covering_range_del(key, upto);
                if let Some(entry) = gen.memtable.get_visible(key, upto) {
                    self.memtable_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(resolve(entry, shadow));
                }
                if shadow.is_some() {
                    return Ok(None);
                }
            }
            let snap = self.snapshot.load_full();
            match self.probe_tables(&snap, key, upto) {
                Ok(found) => return Ok(found),
                Err(e) if is_retired_table(&e) && self.read_view_changed(&snap) => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Probes the snapshot's tables newest-first for `key` at `upto`,
    /// applying each table's resident range tombstones. Returns the
    /// user-visible answer: tables are the oldest layer, so "absent"
    /// and "deleted" have both become `None` by the time it returns.
    fn probe_tables(
        &self,
        snap: &ReadView,
        key: &[u8],
        upto: SeqNo,
    ) -> Result<Option<Value>, Error> {
        let ctx = ReadContext {
            block_cache: &self.block_cache,
            fill_cache: self.options.fills_cache(),
            readahead_blocks: 1,
            counters: &self.read_counters,
        };
        for meta in &snap.tables {
            self.tables_probed.fetch_add(1, Ordering::Relaxed);
            let reader = self.table_cache.get_or_open(
                &self.storage,
                meta.table_id,
                Some(meta.encoded_len),
            )?;
            // Consult the table's own range tombstones before its point
            // entries: a table's tombstones can shadow its own points.
            // Gated on the manifest count so the pre-v4 fleet pays
            // nothing.
            let shadow = if meta.range_tombstone_count > 0 {
                reader.max_covering_range_del(key, upto)
            } else {
                None
            };
            if let Some(entry) = reader.get_visible(key, upto, ctx)? {
                return Ok(resolve(entry, shadow));
            }
            if shadow.is_some() {
                return Ok(None);
            }
        }
        Ok(None)
    }

    fn live_tables(&self) -> Vec<TableMeta> {
        self.snapshot
            .load_full()
            .tables
            .iter()
            .rev()
            .cloned()
            .collect()
    }

    /// `true` when the live read view has been swapped since `seen` was
    /// loaded (a flush or compaction published new tables).
    pub(crate) fn read_view_changed(&self, seen: &Arc<ReadView>) -> bool {
        !Arc::ptr_eq(seen, &self.snapshot.load_full())
    }

    /// The current read view (live tables, newest first).
    pub(crate) fn read_view(&self) -> Arc<ReadView> {
        self.snapshot.load_full()
    }

    /// Opens (or fetches from the table cache) the lazy reader for a
    /// live table.
    pub(crate) fn open_reader(&self, meta: &TableMeta) -> Result<Arc<crate::SstableReader>, Error> {
        self.table_cache
            .get_or_open(&self.storage, meta.table_id, Some(meta.encoded_len))
    }

    /// The read context range scans fetch blocks through (cache-fill
    /// policy from [`LsmOptions::scan_fill_cache`], readahead width
    /// from [`LsmOptions::scan_readahead_blocks`]).
    pub(crate) fn scan_read_ctx(&self) -> ReadContext<'_> {
        ReadContext {
            block_cache: &self.block_cache,
            fill_cache: self.options.scan_fills_cache(),
            readahead_blocks: self.options.scan_readahead(),
            counters: &self.read_counters,
        }
    }

    /// Copies the active memtable's in-range entries out under a brief
    /// read lock (the scan's frozen memtable view).
    pub(crate) fn memtable_range(
        &self,
        start: &std::ops::Bound<Key>,
        end: &std::ops::Bound<Key>,
    ) -> Vec<Entry> {
        self.memtable.read().range(start, end)
    }

    /// In-range entries of each frozen memtable generation, oldest
    /// first — spliced into a scan between the sstables and the active
    /// memtable (newer frozen generations take precedence over older).
    pub(crate) fn frozen_ranges(
        &self,
        start: &std::ops::Bound<Key>,
        end: &std::ops::Bound<Key>,
    ) -> Vec<Vec<Entry>> {
        self.frozen
            .load_full()
            .iter()
            .map(|gen| gen.memtable.range(start, end))
            .collect()
    }

    /// Every buffered range tombstone visible at `upto`, from the
    /// active memtable and all frozen generations — the memtable side
    /// of a scan's range-delete filter (table-resident tombstones are
    /// collected from the scan's pinned readers).
    pub(crate) fn memtable_range_dels(&self, upto: SeqNo) -> Vec<RangeTombstone> {
        let mut rds: Vec<RangeTombstone> = self
            .memtable
            .read()
            .range_dels()
            .iter()
            .filter(|rd| rd.seqno <= upto)
            .cloned()
            .collect();
        for gen in self.frozen.load_full().iter() {
            rds.extend(
                gen.memtable
                    .range_dels()
                    .iter()
                    .filter(|rd| rd.seqno <= upto)
                    .cloned(),
            );
        }
        rds
    }

    /// Counts tables a range scan skipped by their min/max key range.
    pub(crate) fn record_range_pruned(&self, pruned: u64) {
        if pruned > 0 {
            self.range_pruned_tables
                .fetch_add(pruned, Ordering::Relaxed);
        }
    }

    /// Records one range-scan `next()` call's latency
    /// ([`RangeIter`](crate::scan::RangeIter) reports each step here).
    pub(crate) fn record_scan_next(&self, elapsed: Duration) {
        self.metrics.scan_next.record_duration(elapsed);
    }

    fn flush(&self) -> Result<Option<u64>, Error> {
        if !self.background() {
            let mut w = self.write.lock();
            return self.flush_locked(&mut w);
        }
        // Background mode: rotate the active memtable onto the queue
        // and wait for the flush thread to drain everything.
        loop {
            self.drain_frozen_queue()?;
            let mut w = self.write.lock();
            if self.memtable.read().is_empty() {
                break;
            }
            self.freeze_active(&mut w);
        }
        let stamped = self.last_bg_flush_table.load(Ordering::Relaxed);
        Ok(stamped.checked_sub(1))
    }

    /// Blocks until the frozen queue is empty (or shutdown), kicking
    /// the flush thread along the way.
    ///
    /// Gives up with the flush thread's own error once it has failed
    /// [`FLUSH_FAILURE_GIVE_UP`] consecutive attempts: a dead backend
    /// would otherwise wedge every explicit `flush()` caller forever.
    /// (The streak only resets on a successful flush, and the queue
    /// only drains through successes, so a stale streak cannot outlive
    /// the condition it reports while the queue is non-empty.)
    fn drain_frozen_queue(&self) -> Result<(), Error> {
        while !self.frozen.load_full().is_empty() {
            if self.maint.shutdown.load(Ordering::SeqCst) {
                return Ok(());
            }
            if self.maint.flush_failure_streak.load(Ordering::SeqCst) >= FLUSH_FAILURE_GIVE_UP {
                let detail = self
                    .maint
                    .last_flush_error
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .clone()
                    .unwrap_or_else(|| "unknown error".to_string());
                return Err(Error::Io(std::io::Error::other(format!(
                    "background flush cannot make progress: {detail}"
                ))));
            }
            self.maint.flush_signal.notify();
            self.maint.progress_signal.wait_timeout(STALL_WAIT_SLICE);
        }
        Ok(())
    }

    /// Inline flush: memtable → sstable under the write mutex
    /// (synchronous mode, and the building block background mode skips).
    fn flush_locked(&self, w: &mut WriteState) -> Result<Option<u64>, Error> {
        // Snapshot the entries without draining: concurrent reads keep
        // hitting the memtable until the new table is published.
        let (entries, range_dels): (Vec<Entry>, Vec<RangeTombstone>) = {
            let memtable = self.memtable.read();
            if memtable.is_empty() {
                return Ok(None);
            }
            (memtable.iter().collect(), memtable.range_dels().to_vec())
        };
        // Inline flushes are their own freeze: the memtable goes
        // straight to a table, so one generation id covers the whole
        // freeze → flush → retire lifecycle in the trace.
        let generation = self.next_flush_generation.fetch_add(1, Ordering::Relaxed);
        let entry_total = entries.len() as u64;
        self.emit(
            EventKind::FlushStart,
            vec![("generation", generation), ("entries", entry_total)],
        );
        let started = Instant::now();
        let table_id = w.manifest.allocate_table_id();
        let meta = self.build_sstable(table_id, &entries, &range_dels)?;
        w.manifest.apply(ManifestEdit::AddTable(meta))?;
        w.manifest.persist(self.storage.as_ref())?;
        // Publish the new table, *then* clear the memtable: a read
        // between the two sees the data twice (deduplicated by seqno),
        // never zero times.
        self.publish_snapshot(&w.manifest);
        self.memtable.write().clear();
        self.metrics.flush.record_duration(started.elapsed());
        self.emit(
            EventKind::FlushPublish,
            vec![
                ("generation", generation),
                ("table", table_id),
                ("entries", entry_total),
            ],
        );
        if let Some(wal) = &mut w.wal {
            wal.reset(self.storage.as_ref())?;
            self.emit(
                EventKind::WalSegmentRetire,
                vec![("generation", generation)],
            );
        }
        self.stats.lock().flushes += 1;
        w.flushes_since_compaction += 1;
        self.maybe_compact_locked(w)?;
        Ok(Some(table_id))
    }

    /// Builds and persists the sstable (and its key-observation
    /// sidecar) for `entries`, returning its manifest metadata. No
    /// engine lock is required — callers decide what to hold.
    fn build_sstable(
        &self,
        table_id: u64,
        entries: &[Entry],
        range_dels: &[RangeTombstone],
    ) -> Result<TableMeta, Error> {
        let mut builder = SstableBuilder::new(
            table_id,
            self.options.block_size_bytes(),
            self.options.bloom_bits(),
        )
        .compression(self.options.compression_type());
        let mut observed = Vec::with_capacity(entries.len());
        for entry in entries {
            observed.push(observed_key(&entry.key));
            builder.add(entry);
        }
        for rd in range_dels {
            builder.add_range_del(rd.clone());
        }
        let (data, meta) = builder.finish();
        self.storage
            .write_blob(&Sstable::blob_name(table_id), &data)?;
        // Persist the key observation before the manifest references the
        // table: a crash in between leaves only orphans (swept on open),
        // never a live table without its sidecar. Best-effort — the
        // planner falls back to reading the table if the sidecar is
        // missing, so a failed cache write must not fail the flush.
        let _ = TableKeyObservation::new(table_id, observed).persist(self.storage.as_ref());
        Ok(TableMeta {
            table_id,
            entry_count: meta.entry_count,
            encoded_len: meta.encoded_len,
            tombstone_count: meta.tombstone_count,
            range_tombstone_count: meta.range_tombstone_count,
            max_seqno: meta.max_seqno,
        })
    }

    // ---- background flush thread ----

    /// The flush thread's main loop: drain the frozen queue
    /// oldest-first into sstables. Keeps draining after shutdown is
    /// signalled until the queue is empty, so drop never abandons an
    /// acked write to a memory-only memtable.
    fn flush_worker(&self) {
        loop {
            let Some(gen) = self.frozen.load_full().first().cloned() else {
                if self.maint.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                self.maint.flush_signal.wait_timeout(STALL_WAIT_SLICE);
                continue;
            };
            match self.flush_frozen(&gen) {
                Ok(()) => {
                    self.maint.flush_failure_streak.store(0, Ordering::SeqCst);
                    self.maint.compact_signal.notify();
                    self.maint.progress_signal.notify();
                }
                Err(e) => {
                    // The generation stays queued (and its WAL segment
                    // live), so nothing is lost; retry after a pause.
                    // At shutdown, give up — the WAL still has it.
                    *self
                        .maint
                        .last_flush_error
                        .lock()
                        .unwrap_or_else(|p| p.into_inner()) = Some(e.to_string());
                    self.maint
                        .flush_failure_streak
                        .fetch_add(1, Ordering::SeqCst);
                    // Wake blocked flush() callers so they can observe
                    // the streak rather than sleep out their slice.
                    self.maint.progress_signal.notify();
                    if self.maint.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    std::thread::sleep(WORKER_RETRY_DELAY);
                }
            }
        }
    }

    /// Flushes one frozen generation: build its sstable with **no
    /// engine lock held** (the expensive part), then commit under a
    /// brief write-lock section and only then retire the generation and
    /// its WAL segment. Publication order matters: the sstable enters
    /// the read snapshot *before* the generation leaves the frozen
    /// queue, so a concurrent reader sees the data in at least one of
    /// the two (duplicates deduplicate by source precedence).
    fn flush_frozen(&self, gen: &Arc<FrozenGen>) -> Result<(), Error> {
        let entries: Vec<Entry> = gen.memtable.iter().collect();
        let range_dels = gen.memtable.range_dels();
        let started = Instant::now();
        // A generation holding only range tombstones still flushes — the
        // records must out-live the WAL segment retired below.
        let added = if entries.is_empty() && range_dels.is_empty() {
            None
        } else {
            self.emit(
                EventKind::FlushStart,
                vec![
                    ("generation", gen.generation),
                    ("entries", entries.len() as u64),
                ],
            );
            let table_id = self.write.lock().manifest.allocate_table_id();
            Some(self.build_sstable(table_id, &entries, range_dels)?)
        };
        let table_id = added.as_ref().map(|meta| meta.table_id);
        self.retire_frozen(gen, added)?;
        if let Some(table_id) = table_id {
            self.metrics.flush.record_duration(started.elapsed());
            self.stats.lock().flushes += 1;
            self.bg_flushes.fetch_add(1, Ordering::Relaxed);
            self.last_bg_flush_table
                .store(table_id + 1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Commits a flushed generation: publish its sstable (if any), pop
    /// the generation off the frozen queue, and retire its WAL segment
    /// — strictly in that order, so a crash at any point leaves the
    /// data recoverable from either the table or the segment.
    fn retire_frozen(&self, gen: &Arc<FrozenGen>, added: Option<TableMeta>) -> Result<(), Error> {
        {
            let mut w = self.write.lock();
            if let Some(meta) = added {
                let (table_id, entry_count) = (meta.table_id, meta.entry_count);
                w.manifest.apply(ManifestEdit::AddTable(meta))?;
                w.manifest.persist(self.storage.as_ref())?;
                self.publish_snapshot(&w.manifest);
                w.flushes_since_compaction += 1;
                self.emit(
                    EventKind::FlushPublish,
                    vec![
                        ("generation", gen.generation),
                        ("table", table_id),
                        ("entries", entry_count),
                    ],
                );
            }
            let queue = self.frozen.load_full();
            let remaining: Vec<Arc<FrozenGen>> = queue
                .iter()
                .filter(|g| !Arc::ptr_eq(g, gen))
                .cloned()
                .collect();
            self.frozen.store(Arc::new(remaining));
        }
        if let Some(segment) = &gen.wal_segment {
            Wal::retire_segment(self.storage.as_ref(), segment)?;
            self.emit(
                EventKind::WalSegmentRetire,
                vec![("generation", gen.generation)],
            );
        }
        Ok(())
    }

    // ---- compaction ----

    fn maybe_compact(&self) -> Result<Option<AutoCompaction>, Error> {
        if self.background() && self.options.policy().is_automatic() {
            self.maint.compact_signal.notify();
            return Ok(None);
        }
        let mut w = self.write.lock();
        self.maybe_compact_locked(&mut w)
    }

    fn maybe_compact_locked(&self, w: &mut WriteState) -> Result<Option<AutoCompaction>, Error> {
        let fire = match self.options.policy() {
            CompactionPolicy::Disabled | CompactionPolicy::Manual => false,
            CompactionPolicy::Threshold { live_tables } => w.manifest.table_count() >= live_tables,
            CompactionPolicy::EveryNFlushes { flushes } => w.flushes_since_compaction >= flushes,
        };
        if !fire {
            return Ok(None);
        }
        self.run_planned_compaction(w)
    }

    fn auto_compact(&self) -> Result<Option<AutoCompaction>, Error> {
        if self.options.policy() == CompactionPolicy::Disabled {
            return Ok(None);
        }
        let _serial = self.compaction_mx.lock();
        let mut w = self.write.lock();
        self.run_planned_compaction(&mut w)
    }

    /// Inline planned compaction: the whole plan+merge under the write
    /// mutex (callers hold `compaction_mx` first unless they already
    /// own the write mutex via the inline flush path, which runs with
    /// no scheduler to race).
    fn run_planned_compaction(&self, w: &mut WriteState) -> Result<Option<AutoCompaction>, Error> {
        let start = Instant::now();
        let _mark = self.mark_compacting();
        let Some(plan) =
            plan_compaction(self.storage.as_ref(), w.manifest.tables(), &self.options)?
        else {
            return Ok(None);
        };
        let initial: Vec<u64> = w.manifest.tables().iter().map(|t| t.table_id).collect();
        let steps: Vec<CompactionStep> = plan
            .steps()
            .iter()
            .map(|inputs| CompactionStep::new(inputs.clone()))
            .collect();
        let predicted = plan.predicted_cost_actual();
        let outcome = if steps.is_empty() {
            CompactionOutcome::default()
        } else {
            self.emit(
                EventKind::CompactionPlanned,
                vec![
                    ("tables", initial.len() as u64),
                    ("steps", steps.len() as u64),
                    ("waves", plan.waves().len() as u64),
                    ("predicted_cost", predicted),
                ],
            );
            let executor = self.instrumented_executor(self.options.clone(), predicted);
            let prepared =
                executor.prepare(&mut w.manifest, &initial, &steps, Some(plan.waves()))?;
            let merged = executor.merge_prepared(&prepared)?;
            let outcome =
                ParallelExecutor::commit(&mut w.manifest, &merged, self.storage.as_ref(), |m| {
                    self.on_manifest_flip(&initial, m);
                })?;
            self.emit(
                EventKind::CompactionManifestFlip,
                vec![
                    ("tables_after", w.manifest.table_count() as u64),
                    ("predicted_cost", predicted),
                    ("measured_cost", outcome.entry_cost()),
                ],
            );
            executor.retire_consumed(&merged)?;
            self.emit(
                EventKind::CompactionInputsRetired,
                vec![
                    ("inputs", merged.consumed_count() as u64),
                    ("predicted_cost", predicted),
                    ("measured_cost", outcome.entry_cost()),
                ],
            );
            outcome
        };
        // Inline compaction ran on the write path: the caller's write
        // stalled for the whole run, so it is one stall sample.
        let stall = start.elapsed();
        self.metrics.stall.record_duration(stall);
        {
            let mut stats = self.stats.lock();
            stats.record_compaction(&outcome);
            stats.auto_compactions += 1;
            stats.compaction_predicted_cost += predicted;
        }
        w.flushes_since_compaction = 0;
        Ok(Some(AutoCompaction {
            plan,
            outcome,
            stall,
        }))
    }

    fn major_compact(&self, steps: &[CompactionStep]) -> Result<CompactionOutcome, Error> {
        let _serial = self.compaction_mx.lock();
        let start = Instant::now();
        let mut w = self.write.lock();
        let _mark = self.mark_compacting();
        let initial: Vec<u64> = w.manifest.tables().iter().map(|t| t.table_id).collect();
        // Manual schedules carry no planner prediction: cost fields
        // trace as 0 predicted, measured only.
        let outcome = if steps.is_empty() {
            CompactionOutcome::default()
        } else {
            let waves = ParallelExecutor::waves_for_steps(initial.len(), steps);
            self.emit(
                EventKind::CompactionPlanned,
                vec![
                    ("tables", initial.len() as u64),
                    ("steps", steps.len() as u64),
                    ("waves", waves.len() as u64),
                    ("predicted_cost", 0),
                ],
            );
            let executor = self.instrumented_executor(self.options.clone(), 0);
            let prepared = executor.prepare(&mut w.manifest, &initial, steps, Some(&waves))?;
            let merged = executor.merge_prepared(&prepared)?;
            let outcome =
                ParallelExecutor::commit(&mut w.manifest, &merged, self.storage.as_ref(), |m| {
                    self.on_manifest_flip(&initial, m);
                })?;
            self.emit(
                EventKind::CompactionManifestFlip,
                vec![
                    ("tables_after", w.manifest.table_count() as u64),
                    ("predicted_cost", 0),
                    ("measured_cost", outcome.entry_cost()),
                ],
            );
            executor.retire_consumed(&merged)?;
            self.emit(
                EventKind::CompactionInputsRetired,
                vec![
                    ("inputs", merged.consumed_count() as u64),
                    ("predicted_cost", 0),
                    ("measured_cost", outcome.entry_cost()),
                ],
            );
            outcome
        };
        let stall = start.elapsed();
        self.metrics.stall.record_duration(stall);
        self.stats.lock().record_compaction(&outcome);
        w.flushes_since_compaction = 0;
        Ok(outcome)
    }

    // ---- background compaction scheduler ----

    /// The scheduler thread's main loop: whenever the policy is due,
    /// run one planned compaction off the write lock; otherwise doze
    /// until a flush kicks the signal.
    fn compaction_worker(&self) {
        loop {
            if self.maint.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if self.compaction_due() {
                if self.run_background_compaction().is_err() {
                    if self.maint.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    std::thread::sleep(WORKER_RETRY_DELAY);
                }
            } else if self.gc_due() {
                // Merge work always outranks space reclamation: GC only
                // runs when the policy has nothing to merge, so it
                // competes for the scheduler without delaying the
                // compactions the stall tiers depend on.
                if !matches!(self.run_tombstone_gc(), Ok(n) if n > 0) {
                    if self.maint.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    self.maint.compact_signal.wait_timeout(STALL_WAIT_SLICE);
                }
            } else {
                self.maint.compact_signal.wait_timeout(STALL_WAIT_SLICE);
            }
        }
    }

    fn compaction_due(&self) -> bool {
        let w = self.write.lock();
        match self.options.policy() {
            CompactionPolicy::Disabled | CompactionPolicy::Manual => false,
            CompactionPolicy::Threshold { live_tables } => w.manifest.table_count() >= live_tables,
            CompactionPolicy::EveryNFlushes { flushes } => w.flushes_since_compaction >= flushes,
        }
    }

    /// The planner options for the next background run. With
    /// [`LsmOptions::adaptive_strategy`] enabled, pick the cheap
    /// smallest-output strategy while maintenance is keeping up and
    /// escalate to the configured (deeper-optimizing) strategy once
    /// debt crosses the slowdown trigger — the pressure-adaptive
    /// scheduling the paper gestures at.
    fn planning_options(&self) -> LsmOptions {
        if !self.options.adaptive_strategy_enabled() {
            return self.options.clone();
        }
        let (debt, _) = self.maintenance_debt();
        if debt >= self.options.slowdown_trigger_debt() {
            self.options.clone()
        } else {
            self.options
                .clone()
                .compaction_strategy(compaction_core::Strategy::SmallestOutput)
        }
    }

    /// One scheduler-driven compaction, off the write lock: plan from a
    /// table snapshot, `prepare` under a brief lock, merge unlocked
    /// (the expensive part), commit + manifest flip under a brief lock,
    /// retire consumed blobs unlocked. Writers only ever wait for the
    /// two brief bracket sections — the merge itself stalls nothing.
    fn run_background_compaction(&self) -> Result<Option<AutoCompaction>, Error> {
        let _serial = self.compaction_mx.lock();
        self.bg_compacting.store(true, Ordering::Relaxed);
        let _flag = BgCompactingGuard(self);
        let start = Instant::now();
        let options = self.planning_options();
        // Planning reads observation sidecars (I/O) — do it from a
        // snapshot of the table list, not under the write mutex. The
        // flush thread can only *add* tables concurrently, and
        // `compaction_mx` excludes other compactions, so every planned
        // input still exists at prepare time.
        let tables: Vec<TableMeta> = self.write.lock().manifest.tables().to_vec();
        let Some(plan) = plan_compaction(self.storage.as_ref(), &tables, &options)? else {
            self.write.lock().flushes_since_compaction = 0;
            return Ok(None);
        };
        let initial: Vec<u64> = tables.iter().map(|t| t.table_id).collect();
        let steps: Vec<CompactionStep> = plan
            .steps()
            .iter()
            .map(|inputs| CompactionStep::new(inputs.clone()))
            .collect();
        let predicted = plan.predicted_cost_actual();
        self.emit(
            EventKind::CompactionPlanned,
            vec![
                ("tables", initial.len() as u64),
                ("steps", steps.len() as u64),
                ("waves", plan.waves().len() as u64),
                ("predicted_cost", predicted),
            ],
        );
        let executor = self.instrumented_executor(options, predicted);
        let prepared = {
            let mut w = self.write.lock();
            executor.prepare(&mut w.manifest, &initial, &steps, Some(plan.waves()))?
        };
        let merged = executor.merge_prepared(&prepared)?;
        let outcome = {
            let mut w = self.write.lock();
            let outcome = ParallelExecutor::commit(
                &mut w.manifest,
                &merged,
                self.storage.as_ref(),
                |manifest| self.on_manifest_flip(&initial, manifest),
            )?;
            w.flushes_since_compaction = 0;
            self.emit(
                EventKind::CompactionManifestFlip,
                vec![
                    ("tables_after", w.manifest.table_count() as u64),
                    ("predicted_cost", predicted),
                    ("measured_cost", outcome.entry_cost()),
                ],
            );
            outcome
        };
        executor.retire_consumed(&merged)?;
        self.emit(
            EventKind::CompactionInputsRetired,
            vec![
                ("inputs", merged.consumed_count() as u64),
                ("predicted_cost", predicted),
                ("measured_cost", outcome.entry_cost()),
            ],
        );
        let stall = start.elapsed();
        {
            // Elapsed time is scheduler time, not write stall: no
            // writer waited on this merge, so nothing is recorded into
            // the stall histogram.
            let mut stats = self.stats.lock();
            stats.record_compaction(&outcome);
            stats.auto_compactions += 1;
            stats.compaction_predicted_cost += predicted;
        }
        self.maint.progress_signal.notify();
        Ok(Some(AutoCompaction {
            plan,
            outcome,
            stall,
        }))
    }

    // ---- tombstone GC ----

    /// `true` when the background scheduler should attempt a GC
    /// rewrite: the option is on and some live table carries enough
    /// tombstones and hasn't already proven barren.
    fn gc_due(&self) -> bool {
        if !self.options.tombstone_gc_enabled() {
            return false;
        }
        let threshold = self.options.gc_min_tombstones_per_table();
        let tables: Vec<TableMeta> = self.write.lock().manifest.tables().to_vec();
        let barren = self.gc_barren.lock();
        tables
            .iter()
            .any(|t| t.tombstone_count >= threshold && !barren.contains(&t.table_id))
    }

    /// One tombstone-GC rewrite (see [`Lsm::gc_tombstones`]). Holds
    /// `compaction_mx` for the whole run so no merge can consume the
    /// candidate or its shadow-check peers mid-rewrite; concurrent
    /// flushes only *add* tables, whose entries are strictly newer than
    /// the candidate's tombstones and therefore never depend on them.
    fn run_tombstone_gc(&self) -> Result<u64, Error> {
        let _serial = self.compaction_mx.lock();
        let tables: Vec<TableMeta> = self.write.lock().manifest.tables().to_vec();
        let threshold = self.options.gc_min_tombstones_per_table();
        let candidate = {
            let barren = self.gc_barren.lock();
            tables
                .iter()
                .filter(|t| t.tombstone_count >= threshold && !barren.contains(&t.table_id))
                .max_by_key(|t| t.tombstone_count)
                .cloned()
        };
        let Some(candidate) = candidate else {
            return Ok(0);
        };
        // The safety oracle: a tombstone is droppable iff no *other*
        // live table may contain its key (min/max + bloom, zero block
        // I/O — false positives keep a droppable tombstone, false
        // negatives cannot happen).
        let mut others = Vec::with_capacity(tables.len().saturating_sub(1));
        for t in tables.iter().filter(|t| t.table_id != candidate.table_id) {
            others.push(SstableReader::open(
                self.storage.clone(),
                t.table_id,
                Some(t.encoded_len),
            )?);
        }
        // Every drop below must also be invisible to pinned snapshots:
        // nothing sequenced above the floor is reclaimed, and shadowed
        // history is only cut below the newest version at or under it.
        let floor = self.pin_floor();
        let table = Sstable::load(self.storage.as_ref(), candidate.table_id)?;
        // The table's own range tombstones shadow its own points; they
        // are carried into the rewrite untouched (they may still shadow
        // other live tables).
        let own_rds = table.range_dels().to_vec();
        let mut kept: Vec<Entry> = Vec::new();
        let mut tombstones_dropped = 0u64;
        let mut versions_dropped = 0u64;
        let mut last_key: Option<Key> = None;
        // Once the newest surviving version at or below the floor is
        // kept (or a drop shadowed everything older), the key's
        // remaining history is unobservable by any reader.
        let mut key_done = false;
        for entry in table.iter() {
            let entry = entry?;
            if last_key.as_ref() != Some(&entry.key) {
                last_key = Some(entry.key.clone());
                key_done = false;
            }
            if key_done
                || own_rds
                    .iter()
                    .any(|rd| rd.seqno <= floor && rd.shadows(&entry.key, entry.seqno))
            {
                versions_dropped += 1;
                if entry.is_tombstone() {
                    tombstones_dropped += 1;
                }
                key_done = true;
                continue;
            }
            if entry.is_tombstone()
                && entry.seqno <= floor
                && !others.iter().any(|r| r.may_contain(&entry.key))
            {
                versions_dropped += 1;
                tombstones_dropped += 1;
                // Older versions of the key sit under the dropped
                // tombstone and the floor: equally unobservable.
                key_done = true;
                continue;
            }
            if entry.seqno <= floor {
                key_done = true;
            }
            kept.push(entry);
        }
        if versions_dropped == 0 {
            // Barrenness is only provable when no pin held the floor
            // down: a pinned pass may have kept tombstones solely for
            // the snapshot's sake, and those become droppable the
            // moment the pin is released — memoizing here would skip
            // the table forever (flushes never reset the memo).
            if floor == SeqNo::MAX {
                self.gc_barren.lock().push(candidate.table_id);
            }
            return Ok(0);
        }
        // The planner's cost currency (entries read + written) for this
        // rewrite, so GC spend is comparable with merge spend in the
        // predicted-cost accounting.
        let kept_count = kept.len() as u64;
        let predicted = candidate.entry_count + kept_count;
        let new_meta = if kept.is_empty() && own_rds.is_empty() {
            None
        } else {
            let table_id = self.write.lock().manifest.allocate_table_id();
            Some(self.build_sstable(table_id, &kept, &own_rds)?)
        };
        let output_id = new_meta.as_ref().map_or(0, |m| m.table_id);
        {
            let mut w = self.write.lock();
            w.manifest.apply(ManifestEdit::RemoveTable {
                table_id: candidate.table_id,
            })?;
            if let Some(meta) = new_meta {
                w.manifest.apply(ManifestEdit::AddTable(meta))?;
            }
            w.manifest.persist(self.storage.as_ref())?;
            self.on_manifest_flip(&[candidate.table_id], &w.manifest);
        }
        self.storage
            .delete_blob(&Sstable::blob_name(candidate.table_id))?;
        TableKeyObservation::delete(self.storage.as_ref(), candidate.table_id)?;
        self.emit(
            EventKind::CompactionGc,
            vec![
                ("input_table", candidate.table_id),
                ("output_table", output_id),
                ("tombstones_dropped", tombstones_dropped),
                ("predicted_cost", predicted),
            ],
        );
        {
            let mut stats = self.stats.lock();
            stats.tombstones_dropped += tombstones_dropped;
            stats.gc_rewrites += 1;
            stats.compaction_predicted_cost += predicted;
            stats.compaction_entries_read += candidate.entry_count;
            stats.compaction_entries_written += kept_count;
        }
        self.maint.progress_signal.notify();
        Ok(tombstones_dropped)
    }

    /// Stamps the in-progress-compaction marker for [`Lsm::pressure`];
    /// the returned guard clears it on every exit path.
    fn mark_compacting(&self) -> CompactionMark<'_> {
        self.compaction_started.store(
            self.epoch.elapsed().as_micros() as u64 + 1,
            Ordering::Relaxed,
        );
        CompactionMark(self)
    }

    /// Publishes the post-flip read view and purges retired tables from
    /// the caches. Runs after the manifest is persisted but before the
    /// consumed input blobs are deleted, so readers migrate to the new
    /// tables while the old ones still exist.
    fn on_manifest_flip(&self, previous_ids: &[u64], manifest: &Manifest) {
        self.publish_snapshot(manifest);
        for &id in previous_ids {
            if manifest.table(id).is_none() {
                self.table_cache.evict_table(id);
                self.block_cache.evict_table(id);
            }
        }
        // Retiring a table can unblock tombstones its bloom was
        // shadowing, so GC's examined-and-barren memo resets.
        self.gc_barren.lock().clear();
    }

    fn publish_snapshot(&self, manifest: &Manifest) {
        self.snapshot
            .store(Arc::new(ReadView::from_manifest(manifest)));
    }
}

impl WriteState {
    fn log_write(
        &mut self,
        storage: &dyn Storage,
        key: &Key,
        value: &Value,
        seqno: u64,
        kind: ValueKind,
    ) -> Result<(), Error> {
        if let Some(wal) = &mut self.wal {
            wal.append(
                storage,
                &WalRecord {
                    key: key.clone(),
                    value: value.clone(),
                    seqno,
                    kind,
                },
            )?;
        }
        Ok(())
    }
}

impl ReadView {
    /// Builds the probe-order (newest-first) view of a manifest.
    ///
    /// Probe order is by `max_seqno`, descending: live tables hold
    /// pairwise-disjoint sequence ranges, so the table with the larger
    /// `max_seqno` holds strictly newer data and a first-hit probe can
    /// stop there. Manifest position alone is not newest-first — a GC
    /// rewrite or partial merge re-appends *old* data at the manifest
    /// tail. The sort is stable and legacy metas all decode
    /// `max_seqno = 0`, so a pre-v3 table set keeps its historical
    /// reverse-manifest order exactly.
    fn from_manifest(manifest: &Manifest) -> Self {
        let mut tables: Vec<TableMeta> = manifest.tables().iter().rev().cloned().collect();
        tables.sort_by_key(|t| std::cmp::Reverse(t.max_seqno));
        Self { tables }
    }
}

/// Clears the in-progress-compaction stamp when the compacting scope
/// exits, success or error.
struct CompactionMark<'a>(&'a LsmInner);

impl Drop for CompactionMark<'_> {
    fn drop(&mut self) {
        self.0.compaction_started.store(0, Ordering::Relaxed);
    }
}

/// Clears the background-compaction flag when the scheduler's run
/// exits, success or error.
struct BgCompactingGuard<'a>(&'a LsmInner);

impl Drop for BgCompactingGuard<'_> {
    fn drop(&mut self) {
        self.0.bg_compacting.store(false, Ordering::Relaxed);
    }
}

/// `true` for the error a reader sees when a table it probes was
/// retired by compaction and its blob already deleted.
fn is_retired_table(e: &Error) -> bool {
    matches!(e, Error::Io(io) if io.kind() == std::io::ErrorKind::NotFound)
}

/// The wire encoding of a [`StallTier`] in `stall_tier_change` events.
fn tier_code(tier: StallTier) -> u64 {
    match tier {
        StallTier::None => 0,
        StallTier::Slowdown => 1,
        StallTier::Stop => 2,
    }
}

// The KV service shares one `Lsm` per shard across every worker thread:
// reads run lock-free against the snapshot while writes serialize on the
// internal write mutex. Checked at compile time.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = assert_send_sync::<Lsm>();

/// Maps a (possibly tombstone) entry to the user-visible value.
fn visible(entry: Entry) -> Option<Value> {
    if entry.is_tombstone() {
        None
    } else {
        Some(entry.value)
    }
}

/// Applies a covering range tombstone to a same-layer point hit: the
/// version is deleted when the tombstone is strictly newer.
fn resolve(entry: Entry, shadow: Option<SeqNo>) -> Option<Value> {
    if shadow.is_some_and(|rd| entry.seqno < rd) {
        None
    } else {
        visible(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::GatedStorage;

    fn small_db() -> Lsm {
        Lsm::open_in_memory(LsmOptions::default().memtable_capacity(10)).unwrap()
    }

    fn get_vec(db: &Lsm, key: u64) -> Option<Vec<u8>> {
        db.get_u64(key).unwrap().map(|v| v.to_vec())
    }

    /// Polls `cond` until it holds or `deadline` elapses.
    fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
        let start = Instant::now();
        while start.elapsed() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        cond()
    }

    /// Snapshots the durable bytes of `src` into a fresh memory store —
    /// what a crash-and-reboot would find on disk.
    fn copy_storage(src: &dyn Storage) -> Arc<dyn Storage> {
        let dst = MemoryStorage::new();
        for blob in src.list_blobs() {
            dst.write_blob(&blob, &src.read_blob(&blob).unwrap())
                .unwrap();
        }
        Arc::new(dst)
    }

    /// Background-maintenance options with the stall tiers pushed out
    /// of the way, so tests control exactly which mechanism fires.
    fn bg_options(capacity: usize) -> LsmOptions {
        LsmOptions::default()
            .memtable_capacity(capacity)
            .background_maintenance(true)
            .slowdown_trigger(100)
            .stop_trigger(100)
            .frozen_queue_limit(100)
    }

    #[test]
    fn put_get_delete_in_memtable() {
        let db = small_db();
        db.put_u64(1, b"one".to_vec()).unwrap();
        assert_eq!(get_vec(&db, 1), Some(b"one".to_vec()));
        db.delete_u64(1).unwrap();
        assert_eq!(get_vec(&db, 1), None);
        assert_eq!(get_vec(&db, 2), None);
        assert_eq!(db.stats().puts, 1);
        assert_eq!(db.stats().deletes, 1);
        assert_eq!(db.stats().gets, 3);
    }

    #[test]
    fn automatic_flush_on_capacity() {
        let db = small_db();
        for i in 0..25u64 {
            db.put_u64(i, vec![b'x']).unwrap();
        }
        assert!(db.stats().flushes >= 2, "memtable capacity 10 ⇒ ≥2 flushes");
        assert!(db.live_tables().len() >= 2);
        // All keys remain readable across memtable + sstables.
        for i in 0..25u64 {
            assert_eq!(get_vec(&db, i), Some(vec![b'x']), "key {i}");
        }
    }

    #[test]
    fn newest_version_wins_across_tables() {
        let db = small_db();
        db.put_u64(7, b"v1".to_vec()).unwrap();
        db.flush().unwrap();
        db.put_u64(7, b"v2".to_vec()).unwrap();
        db.flush().unwrap();
        assert_eq!(get_vec(&db, 7), Some(b"v2".to_vec()));

        db.delete_u64(7).unwrap();
        db.flush().unwrap();
        assert_eq!(get_vec(&db, 7), None, "tombstone shadows older puts");
    }

    #[test]
    fn major_compact_collapses_to_one_table() {
        let db = small_db();
        for i in 0..40u64 {
            db.put_u64(i % 20, format!("v{i}").into_bytes()).unwrap();
        }
        db.delete_u64(3).unwrap();
        db.flush().unwrap();
        let n = db.live_tables().len();
        assert!(n >= 2);

        // Left-to-right caterpillar schedule over the live tables.
        let mut steps = Vec::new();
        let mut acc = 0usize;
        for next in 1..n {
            let output_slot = n + steps.len();
            steps.push(CompactionStep::new(vec![acc, next]));
            acc = output_slot;
        }
        let outcome = db.major_compact(&steps).unwrap();
        assert_eq!(db.live_tables().len(), 1);
        assert_eq!(outcome.merge_ops, n - 1);
        assert!(outcome.entry_cost() > 0);

        // Data integrity after compaction.
        assert_eq!(get_vec(&db, 3), None);
        for i in 0..20u64 {
            if i == 3 {
                continue;
            }
            assert!(get_vec(&db, i).is_some(), "key {i} lost by compaction");
        }
        assert_eq!(db.stats().compactions, 1);
    }

    #[test]
    fn scan_all_merges_memtable_and_tables() {
        let db = small_db();
        for i in 0..15u64 {
            db.put_u64(i, vec![i as u8]).unwrap();
        }
        db.delete_u64(2).unwrap();
        // No explicit flush: some keys live in sstables (auto-flushed), the
        // rest in the memtable.
        let all = db.scan_all().unwrap();
        let keys: Vec<u64> = all
            .iter()
            .map(|(k, _)| crate::types::key_to_u64(k).unwrap())
            .collect();
        assert_eq!(keys.len(), 14);
        assert!(!keys.contains(&2));
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "scan is sorted");
    }

    #[test]
    fn wal_recovery_restores_unflushed_writes() {
        let storage: Arc<dyn Storage> = Arc::new(MemoryStorage::new());
        {
            let db = Lsm::open(
                Arc::clone(&storage),
                LsmOptions::default().memtable_capacity(100),
            )
            .unwrap();
            db.put_u64(1, b"persisted".to_vec()).unwrap();
            db.put_u64(2, b"also".to_vec()).unwrap();
            db.delete_u64(2).unwrap();
            // Dropped without flush: data only in WAL.
        }
        let reopened = Lsm::open(storage, LsmOptions::default().memtable_capacity(100)).unwrap();
        assert_eq!(get_vec(&reopened, 1), Some(b"persisted".to_vec()));
        assert_eq!(get_vec(&reopened, 2), None);
        assert_eq!(reopened.memtable_len(), 2);
    }

    #[test]
    fn disk_backed_store_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("lsm-db-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        {
            let db = Lsm::open_on_disk(&dir, LsmOptions::default().memtable_capacity(4)).unwrap();
            for i in 0..10u64 {
                db.put_u64(i, format!("d{i}").into_bytes()).unwrap();
            }
            db.flush().unwrap();
        }
        {
            let db = Lsm::open_on_disk(&dir, LsmOptions::default().memtable_capacity(4)).unwrap();
            for i in 0..10u64 {
                assert_eq!(get_vec(&db, i), Some(format!("d{i}").into_bytes()));
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn threshold_policy_compacts_without_manual_steps() {
        let db = Lsm::open_in_memory(
            LsmOptions::default()
                .memtable_capacity(10)
                .compaction_policy(CompactionPolicy::Threshold { live_tables: 4 })
                .wal(false),
        )
        .unwrap();
        for i in 0..200u64 {
            db.put_u64(i % 60, vec![i as u8]).unwrap();
        }
        db.flush().unwrap();
        assert!(
            db.live_tables().len() < 4,
            "policy keeps the live-table count below the threshold"
        );
        assert!(db.stats().auto_compactions >= 1);
        assert!(db.stats().compaction_entry_cost() > 0);
        assert!(db.stats().compaction_stall > Duration::ZERO);
        // Data integrity under policy-driven compaction.
        for i in 0..60u64 {
            assert!(get_vec(&db, i).is_some(), "key {i}");
        }
    }

    #[test]
    fn every_n_flushes_policy_fires_on_schedule() {
        let db = Lsm::open_in_memory(
            LsmOptions::default()
                .memtable_capacity(5)
                .compaction_policy(CompactionPolicy::EveryNFlushes { flushes: 3 })
                .wal(false),
        )
        .unwrap();
        for i in 0..70u64 {
            db.put_u64(i, b"x".to_vec()).unwrap();
        }
        db.flush().unwrap();
        assert!(db.stats().flushes >= 14);
        assert!(
            db.stats().auto_compactions >= 4,
            "one compaction per 3 flushes, got {}",
            db.stats().auto_compactions
        );
    }

    #[test]
    fn auto_compact_honors_disabled_and_manual_policies() {
        let disabled = Lsm::open_in_memory(
            LsmOptions::default()
                .memtable_capacity(5)
                .compaction_policy(CompactionPolicy::Disabled)
                .wal(false),
        )
        .unwrap();
        for i in 0..30u64 {
            disabled.put_u64(i, b"x".to_vec()).unwrap();
        }
        disabled.flush().unwrap();
        let tables = disabled.live_tables().len();
        assert!(tables >= 4, "no automatic compaction under Disabled");
        assert!(disabled.auto_compact().unwrap().is_none());
        assert_eq!(disabled.live_tables().len(), tables);

        // Manual: nothing fires automatically, but auto_compact works on
        // demand with zero manual CompactionStep construction.
        let manual =
            Lsm::open_in_memory(LsmOptions::default().memtable_capacity(5).wal(false)).unwrap();
        for i in 0..30u64 {
            manual.put_u64(i, b"x".to_vec()).unwrap();
        }
        manual.flush().unwrap();
        assert!(manual.live_tables().len() >= 4);
        let run = manual.auto_compact().unwrap().expect("tables to merge");
        assert_eq!(manual.live_tables().len(), 1);
        assert_eq!(run.outcome.merge_ops, run.plan.steps().len());
        assert_eq!(
            run.outcome.entry_cost(),
            run.plan.predicted_cost_actual(),
            "exact observations over u64 keys predict the physical cost exactly"
        );
        assert_eq!(manual.stats().auto_compactions, 1);
        assert_eq!(
            manual.stats().compaction_predicted_cost,
            run.plan.predicted_cost_actual()
        );
    }

    #[test]
    fn parallel_threads_preserve_contents_under_policy() {
        let run = |threads: usize| {
            let db = Lsm::open_in_memory(
                LsmOptions::default()
                    .memtable_capacity(8)
                    .compaction_policy(CompactionPolicy::Threshold { live_tables: 6 })
                    .compaction_strategy(compaction_core::Strategy::BalanceTreeInput)
                    .compaction_threads(threads)
                    .wal(false),
            )
            .unwrap();
            for i in 0..300u64 {
                db.put_u64(i % 100, format!("v{i}").into_bytes()).unwrap();
            }
            db.flush().unwrap();
            db.scan_all().unwrap()
        };
        assert_eq!(run(1), run(4), "contents are thread-count independent");
    }

    #[test]
    fn orphan_blobs_are_swept_on_open() {
        let storage: Arc<dyn Storage> = Arc::new(MemoryStorage::new());
        {
            let db = Lsm::open(
                Arc::clone(&storage),
                LsmOptions::default().memtable_capacity(5),
            )
            .unwrap();
            for i in 0..20u64 {
                db.put_u64(i, b"x".to_vec()).unwrap();
            }
            db.flush().unwrap();
        }
        // Simulate a crash that left a compaction output blob behind
        // without a manifest entry.
        storage
            .write_blob(&Sstable::blob_name(9_999), b"garbage-orphan")
            .unwrap();
        assert!(storage.contains_blob(&Sstable::blob_name(9_999)));
        let db = Lsm::open(
            Arc::clone(&storage),
            LsmOptions::default().memtable_capacity(5),
        )
        .unwrap();
        assert!(
            !storage.contains_blob(&Sstable::blob_name(9_999)),
            "orphan swept on open"
        );
        for i in 0..20u64 {
            assert_eq!(get_vec(&db, i), Some(b"x".to_vec()));
        }
    }

    #[test]
    fn write_batch_applies_in_order_with_one_flush() {
        let db = small_db();
        let mut batch = WriteBatch::with_capacity(25);
        for i in 0..25u64 {
            batch.put_u64(i, format!("b{i}").into_bytes());
        }
        batch.delete_u64(3).put_u64(4, b"rewritten".to_vec());
        db.write_batch(batch).unwrap();
        // 27 ops against a capacity-10 memtable: one pass, one flush.
        assert_eq!(db.stats().flushes, 1, "single flush at the end");
        assert_eq!(db.stats().write_batches, 1);
        assert_eq!(db.stats().puts, 26);
        assert_eq!(db.stats().deletes, 1);
        assert_eq!(get_vec(&db, 3), None, "in-batch order respected");
        assert_eq!(get_vec(&db, 4), Some(b"rewritten".to_vec()));
        for i in 5..25u64 {
            assert_eq!(get_vec(&db, i), Some(format!("b{i}").into_bytes()));
        }
        // Empty batch is a no-op.
        db.write_batch(WriteBatch::new()).unwrap();
        assert_eq!(db.stats().write_batches, 1);
    }

    #[test]
    fn write_batch_survives_crash_recovery() {
        let storage: Arc<dyn Storage> = Arc::new(MemoryStorage::new());
        {
            let db = Lsm::open(
                Arc::clone(&storage),
                LsmOptions::default().memtable_capacity(100),
            )
            .unwrap();
            let mut batch = WriteBatch::new();
            batch
                .put_u64(1, b"one".to_vec())
                .put_u64(2, b"two".to_vec())
                .delete_u64(1);
            db.write_batch(batch).unwrap();
            // Dropped without flush: the batch lives only in the WAL.
        }
        let reopened = Lsm::open(storage, LsmOptions::default().memtable_capacity(100)).unwrap();
        assert_eq!(get_vec(&reopened, 1), None);
        assert_eq!(get_vec(&reopened, 2), Some(b"two".to_vec()));
    }

    #[test]
    fn stats_absorb_sums_counters() {
        let mut a = LsmStats {
            puts: 1,
            gets: 2,
            flushes: 3,
            block_cache_hits: 4,
            compaction_stall: Duration::from_millis(5),
            ..LsmStats::default()
        };
        let b = LsmStats {
            puts: 10,
            deletes: 4,
            write_batches: 2,
            block_cache_hits: 6,
            table_cache_misses: 3,
            data_block_reads: 9,
            bloom_negative_probes: 2,
            compaction_stall: Duration::from_millis(7),
            bg_flushes: 5,
            slowdown_stalls: 6,
            stop_stalls: 7,
            frozen_queue_depth: 2,
            ..LsmStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.puts, 11);
        assert_eq!(a.deletes, 4);
        assert_eq!(a.gets, 2);
        assert_eq!(a.flushes, 3);
        assert_eq!(a.write_batches, 2);
        assert_eq!(a.block_cache_hits, 10);
        assert_eq!(a.table_cache_misses, 3);
        assert_eq!(a.data_block_reads, 9);
        assert_eq!(a.bloom_negative_probes, 2);
        assert_eq!(a.compaction_stall, Duration::from_millis(12));
        assert_eq!(a.bg_flushes, 5);
        assert_eq!(a.slowdown_stalls, 6);
        assert_eq!(a.stop_stalls, 7);
        assert_eq!(a.frozen_queue_depth, 2);
    }

    #[test]
    fn flush_persists_key_observation_sidecars() {
        let storage: Arc<dyn Storage> = Arc::new(MemoryStorage::new());
        let db = Lsm::open(
            Arc::clone(&storage),
            LsmOptions::default().memtable_capacity(10).wal(false),
        )
        .unwrap();
        for i in 0..5u64 {
            db.put_u64(i, b"x".to_vec()).unwrap();
        }
        let table_id = db.flush().unwrap().expect("flush produced a table");
        let obs = TableKeyObservation::load(storage.as_ref(), table_id)
            .unwrap()
            .expect("sidecar written at flush");
        assert_eq!(obs.keys, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn orphan_observation_sidecars_are_swept_on_open() {
        let storage: Arc<dyn Storage> = Arc::new(MemoryStorage::new());
        {
            let db = Lsm::open(
                Arc::clone(&storage),
                LsmOptions::default().memtable_capacity(5),
            )
            .unwrap();
            for i in 0..5u64 {
                db.put_u64(i, b"x".to_vec()).unwrap();
            }
            db.flush().unwrap();
        }
        TableKeyObservation::new(8_888, vec![1, 2])
            .persist(storage.as_ref())
            .unwrap();
        let _db = Lsm::open(
            Arc::clone(&storage),
            LsmOptions::default().memtable_capacity(5),
        )
        .unwrap();
        assert!(
            !storage.contains_blob(&TableKeyObservation::blob_name(8_888)),
            "orphan sidecar swept on open"
        );
    }

    #[test]
    fn compaction_retires_input_observation_sidecars() {
        let db = Lsm::open_in_memory(
            LsmOptions::default()
                .memtable_capacity(5)
                .compaction_policy(CompactionPolicy::Threshold { live_tables: 4 })
                .wal(false),
        )
        .unwrap();
        for i in 0..60u64 {
            db.put_u64(i % 20, vec![i as u8]).unwrap();
        }
        db.flush().unwrap();
        assert!(db.stats().auto_compactions >= 1);
        let storage = db.storage();
        let live: Vec<u64> = db.live_tables().iter().map(|t| t.table_id).collect();
        for blob in storage.list_blobs() {
            if let Some(id) = TableKeyObservation::id_from_blob_name(&blob) {
                assert!(live.contains(&id), "sidecar {blob} outlived its table");
            }
        }
        // Every live table still has its sidecar.
        for id in live {
            assert!(
                storage.contains_blob(&TableKeyObservation::blob_name(id)),
                "live table {id} lost its sidecar"
            );
        }
    }

    #[test]
    fn wal_disabled_still_works_without_durability() {
        let db =
            Lsm::open_in_memory(LsmOptions::default().memtable_capacity(5).wal(false)).unwrap();
        for i in 0..12u64 {
            db.put_u64(i, b"x".to_vec()).unwrap();
        }
        assert_eq!(get_vec(&db, 11), Some(b"x".to_vec()));
    }

    #[test]
    fn get_is_sharable_across_threads() {
        let db = Arc::new(
            Lsm::open_in_memory(LsmOptions::default().memtable_capacity(8).wal(false)).unwrap(),
        );
        for i in 0..64u64 {
            db.put_u64(i, vec![i as u8]).unwrap();
        }
        db.flush().unwrap();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let db = Arc::clone(&db);
                scope.spawn(move || {
                    for i in 0..64u64 {
                        assert_eq!(get_vec(&db, i), Some(vec![i as u8]), "thread {t} key {i}");
                    }
                });
            }
        });
        assert_eq!(db.stats().gets, 4 * 64);
    }

    #[test]
    fn warm_reads_serve_from_caches() {
        let db = Lsm::open_in_memory(
            LsmOptions::default()
                .memtable_capacity(50)
                .block_size(256)
                .wal(false),
        )
        .unwrap();
        for i in 0..200u64 {
            db.put_u64(i, format!("value-{i}").into_bytes()).unwrap();
        }
        db.flush().unwrap();
        assert!(db.live_tables().len() >= 2);

        // Cold read: opens readers, fetches one block per probed table.
        assert_eq!(get_vec(&db, 77), Some(b"value-77".to_vec()));
        let cold = db.stats();
        assert!(cold.data_block_reads >= 1);

        // Warm read of the same key: zero new storage block fetches.
        let bytes_before = db.storage().bytes_read();
        assert_eq!(get_vec(&db, 77), Some(b"value-77".to_vec()));
        let warm = db.stats();
        assert_eq!(
            warm.data_block_reads, cold.data_block_reads,
            "warm read fetched a block"
        );
        assert_eq!(
            db.storage().bytes_read(),
            bytes_before,
            "warm read did storage I/O"
        );
        assert!(warm.block_cache_hits > cold.block_cache_hits);
        assert!(db.table_cache_len() >= 1);
        assert!(db.block_cache_usage_bytes() > 0);
    }

    // ---- background flush & compaction ----

    #[test]
    fn background_flush_serves_reads_and_persists() {
        let db = Lsm::open_in_memory(bg_options(4).wal(false)).unwrap();
        for i in 0..20u64 {
            db.put_u64(i, format!("v{i}").into_bytes()).unwrap();
        }
        db.flush().unwrap();
        assert_eq!(db.frozen_queue_depth(), 0, "flush drains the queue");
        assert!(!db.live_tables().is_empty());
        let stats = db.stats();
        assert!(stats.bg_flushes >= 1, "the flush thread did the work");
        assert_eq!(
            stats.flushes, stats.bg_flushes,
            "no inline flush happened in background mode"
        );
        for i in 0..20u64 {
            assert_eq!(get_vec(&db, i), Some(format!("v{i}").into_bytes()));
        }
    }

    #[test]
    fn crash_with_frozen_queue_replays_all_acked_writes() {
        let gated = Arc::new(GatedStorage::new());
        gated.close_gate();
        let db = Lsm::open(Arc::clone(&gated) as Arc<dyn Storage>, bg_options(4)).unwrap();
        for i in 0..10u64 {
            db.put_u64(i, format!("v{i}").into_bytes()).unwrap();
        }
        // Capacity 4 ⇒ rotations after keys 3 and 7; the flush thread is
        // parked on the storage gate, so both generations stay queued.
        assert!(
            db.frozen_queue_depth() >= 2,
            "two memtable generations frozen behind the gated flush"
        );
        // Simulate a crash: the process vanishes without drop (a normal
        // drop would join the flush thread, which is parked on the gate
        // for the rest of this test).
        std::mem::forget(db);
        let reopened = Lsm::open(
            copy_storage(gated.as_ref()),
            LsmOptions::default().memtable_capacity(100),
        )
        .unwrap();
        for i in 0..10u64 {
            assert_eq!(
                get_vec(&reopened, i),
                Some(format!("v{i}").into_bytes()),
                "acked write {i} lost across the crash"
            );
        }
        assert_eq!(reopened.memtable_len(), 10, "all records replayed from WAL");
    }

    #[test]
    fn gated_flush_thread_still_serves_frozen_reads_and_scans() {
        let gated = Arc::new(GatedStorage::new());
        gated.close_gate();
        let db = Lsm::open(Arc::clone(&gated) as Arc<dyn Storage>, bg_options(4)).unwrap();
        for i in 0..10u64 {
            db.put_u64(i, format!("v{i}").into_bytes()).unwrap();
        }
        assert!(db.frozen_queue_depth() >= 2);
        assert_eq!(db.live_tables().len(), 0, "nothing flushed yet");
        // Point reads and scans serve straight from the frozen queue.
        for i in 0..10u64 {
            assert_eq!(get_vec(&db, i), Some(format!("v{i}").into_bytes()));
        }
        let all = db.scan_all().unwrap();
        assert_eq!(all.len(), 10, "scan sees frozen-queue data");
        let keys: Vec<u64> = all
            .iter()
            .map(|(k, _)| crate::types::key_to_u64(k).unwrap())
            .collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "scan is sorted");

        gated.open_gate();
        db.flush().unwrap();
        assert_eq!(db.frozen_queue_depth(), 0);
        assert!(db.live_tables().len() >= 2);
        assert!(db.stats().bg_flushes >= 2);
        for i in 0..10u64 {
            assert_eq!(get_vec(&db, i), Some(format!("v{i}").into_bytes()));
        }
    }

    #[test]
    fn wal_segments_survive_until_their_generation_flushes() {
        let gated = Arc::new(GatedStorage::new());
        gated.close_gate();
        let db = Lsm::open(Arc::clone(&gated) as Arc<dyn Storage>, bg_options(2)).unwrap();
        for i in 0..6u64 {
            db.put_u64(i, b"x".to_vec()).unwrap();
        }
        assert_eq!(db.frozen_queue_depth(), 3);
        let live = Wal::live_segments(gated.as_ref() as &dyn Storage);
        assert!(
            live.len() >= 3,
            "one live WAL segment per unflushed generation, got {live:?}"
        );
        gated.open_gate();
        db.flush().unwrap();
        let after = Wal::live_segments(gated.as_ref() as &dyn Storage);
        assert!(
            after.len() <= 1,
            "flushed generations retired their segments, got {after:?}"
        );
    }

    #[test]
    fn drop_drains_frozen_queue() {
        let storage: Arc<dyn Storage> = Arc::new(MemoryStorage::new());
        {
            let gated = Arc::new(GatedStorage::new());
            gated.close_gate();
            // WAL off: after drop, the data can only have survived via
            // the flush thread draining the queue into sstables.
            let db = Lsm::open(
                Arc::clone(&gated) as Arc<dyn Storage>,
                bg_options(4).wal(false),
            )
            .unwrap();
            for i in 0..8u64 {
                db.put_u64(i, format!("v{i}").into_bytes()).unwrap();
            }
            assert!(db.frozen_queue_depth() >= 1);
            gated.open_gate();
            drop(db);
            // Copy the drained bytes onto the outer storage for reopen.
            for blob in gated.list_blobs() {
                storage
                    .write_blob(&blob, &gated.read_blob(&blob).unwrap())
                    .unwrap();
            }
        }
        let reopened = Lsm::open(storage, LsmOptions::default().memtable_capacity(100)).unwrap();
        for i in 0..8u64 {
            assert_eq!(
                get_vec(&reopened, i),
                Some(format!("v{i}").into_bytes()),
                "drop abandoned key {i} in a frozen memtable"
            );
        }
        assert_eq!(reopened.memtable_len(), 0, "data came from sstables");
    }

    #[test]
    fn slowdown_tier_delays_and_releases() {
        let gated = Arc::new(GatedStorage::new());
        gated.close_gate();
        let db = Lsm::open(
            Arc::clone(&gated) as Arc<dyn Storage>,
            LsmOptions::default()
                .memtable_capacity(2)
                .background_maintenance(true)
                .slowdown_trigger(1)
                .stop_trigger(100)
                .frozen_queue_limit(100),
        )
        .unwrap();
        db.put_u64(0, b"x".to_vec()).unwrap();
        db.put_u64(1, b"x".to_vec()).unwrap();
        assert_eq!(db.frozen_queue_depth(), 1);
        assert_eq!(db.pressure().stall_tier, StallTier::Slowdown);
        db.put_u64(2, b"x".to_vec()).unwrap();
        let stats = db.stats();
        assert!(stats.slowdown_stalls >= 1, "write was delayed");
        assert!(
            stats.compaction_stall > Duration::ZERO,
            "the slowdown sleep is timed into the unified stall source"
        );

        gated.open_gate();
        assert!(
            wait_until(Duration::from_secs(2), || db.frozen_queue_depth() == 0),
            "flush thread drained after the gate opened"
        );
        assert_eq!(db.pressure().stall_tier, StallTier::None, "tier released");
        let before = db.stats().slowdown_stalls;
        db.put_u64(3, b"x".to_vec()).unwrap();
        assert_eq!(
            db.stats().slowdown_stalls,
            before,
            "no delay once maintenance caught up"
        );
    }

    #[test]
    fn stop_tier_blocks_and_releases() {
        let gated = Arc::new(GatedStorage::new());
        gated.close_gate();
        let db = Lsm::open(
            Arc::clone(&gated) as Arc<dyn Storage>,
            LsmOptions::default()
                .memtable_capacity(2)
                .background_maintenance(true)
                .slowdown_trigger(1)
                .stop_trigger(2)
                .frozen_queue_limit(100),
        )
        .unwrap();
        for i in 0..4u64 {
            db.put_u64(i, b"x".to_vec()).unwrap();
        }
        assert_eq!(db.frozen_queue_depth(), 2);
        assert_eq!(db.pressure().stall_tier, StallTier::Stop);
        assert_eq!(db.stats().frozen_queue_depth, 2, "stats gauge agrees");

        let blocked_done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                db.put_u64(99, b"blocked".to_vec()).unwrap();
                blocked_done.store(true, Ordering::SeqCst);
            });
            std::thread::sleep(Duration::from_millis(50));
            assert!(
                !blocked_done.load(Ordering::SeqCst),
                "stop tier blocks the writer while maintenance is stuck"
            );
            gated.open_gate();
            // Scope join: the writer must complete once the queue drains.
        });
        assert!(blocked_done.load(Ordering::SeqCst));
        assert!(db.stats().stop_stalls >= 1);
        assert_eq!(get_vec(&db, 99), Some(b"blocked".to_vec()));
        assert!(
            wait_until(Duration::from_secs(2), || {
                db.pressure().stall_tier == StallTier::None
            }),
            "tier released after drain"
        );
    }

    #[test]
    fn background_threshold_policy_bounds_tables() {
        let db = Lsm::open_in_memory(
            bg_options(8)
                .wal(false)
                .compaction_policy(CompactionPolicy::Threshold { live_tables: 4 }),
        )
        .unwrap();
        for i in 0..400u64 {
            db.put_u64(i % 100, format!("v{i}").into_bytes()).unwrap();
        }
        db.flush().unwrap();
        assert!(
            wait_until(Duration::from_secs(5), || {
                db.stats().auto_compactions >= 1 && db.live_tables().len() < 4
            }),
            "the scheduler thread compacted below the threshold, tables={}",
            db.live_tables().len()
        );
        for i in 0..100u64 {
            assert!(get_vec(&db, i).is_some(), "key {i}");
        }
        let stats = db.stats();
        assert!(stats.bg_flushes >= 1);
        assert!(stats.auto_compactions >= 1);
    }

    #[test]
    fn adaptive_strategy_follows_pressure() {
        let gated = Arc::new(GatedStorage::new());
        gated.close_gate();
        let db = Lsm::open(
            Arc::clone(&gated) as Arc<dyn Storage>,
            LsmOptions::default()
                .memtable_capacity(2)
                .background_maintenance(true)
                .adaptive_strategy(true)
                .compaction_strategy(compaction_core::Strategy::BalanceTreeInput)
                .slowdown_trigger(1)
                .stop_trigger(100)
                .frozen_queue_limit(100),
        )
        .unwrap();
        assert!(
            matches!(
                db.inner.planning_options().strategy(),
                compaction_core::Strategy::SmallestOutput
            ),
            "idle engine plans with the cheap strategy"
        );
        db.put_u64(0, b"x".to_vec()).unwrap();
        db.put_u64(1, b"x".to_vec()).unwrap();
        assert_eq!(db.frozen_queue_depth(), 1);
        assert!(
            matches!(
                db.inner.planning_options().strategy(),
                compaction_core::Strategy::BalanceTreeInput
            ),
            "backlogged engine escalates to the configured strategy"
        );
        gated.open_gate();
    }
}
