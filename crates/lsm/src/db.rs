//! The database facade tying memtable, WAL, sstables and compaction
//! together.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use compaction_core::MergePlan;

use crate::batch::WriteBatch;
use crate::compaction::{CompactionOutcome, CompactionStep};
use crate::manifest::{Manifest, ManifestEdit, TableMeta};
use crate::memtable::Memtable;
use crate::observation::TableKeyObservation;
use crate::options::{CompactionPolicy, LsmOptions};
use crate::parallel::ParallelExecutor;
use crate::planner::{observed_key, plan_compaction};
use crate::sstable::{Sstable, SstableBuilder};
use crate::storage::{FileStorage, MemoryStorage, Storage};
use crate::types::{key_from_u64, Entry, Key, Value, ValueKind};
use crate::wal::{Wal, WalRecord};
use crate::Error;

const WAL_SEGMENT: &str = "wal-current";

/// A single-node LSM key-value store.
///
/// Writes go to the memtable (and WAL); when the memtable reaches its key
/// capacity it is flushed into a new immutable sstable. Reads consult the
/// memtable first and then the live sstables newest-first, using each
/// table's bloom filter to skip runs. [`Lsm::major_compact`] executes a
/// merge schedule and leaves a single sstable behind.
///
/// # Examples
///
/// ```
/// use lsm_engine::{Lsm, LsmOptions};
///
/// # fn main() -> Result<(), lsm_engine::Error> {
/// let mut db = Lsm::open_in_memory(LsmOptions::default().memtable_capacity(10))?;
/// db.put_u64(1, b"one".to_vec())?;
/// db.delete_u64(1)?;
/// assert_eq!(db.get_u64(1)?, None);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Lsm {
    options: LsmOptions,
    storage: Arc<dyn Storage>,
    manifest: Manifest,
    memtable: Memtable,
    wal: Option<Wal>,
    stats: LsmStats,
    flushes_since_compaction: u64,
}

/// Counters describing the work an [`Lsm`] instance has performed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LsmStats {
    /// Number of put operations accepted.
    pub puts: u64,
    /// Number of delete operations accepted.
    pub deletes: u64,
    /// Number of [`WriteBatch`] applications accepted (their individual
    /// operations also count into [`LsmStats::puts`] / [`LsmStats::deletes`]).
    pub write_batches: u64,
    /// Number of point reads served.
    pub gets: u64,
    /// Number of memtable flushes performed.
    pub flushes: u64,
    /// Number of sstables consulted across all reads (read amplification
    /// numerator).
    pub tables_probed: u64,
    /// Number of reads answered from the memtable.
    pub memtable_hits: u64,
    /// Number of major compaction runs executed (manual and automatic).
    pub compactions: u64,
    /// Number of compactions fired by the configured
    /// [`CompactionPolicy`] (a subset of [`LsmStats::compactions`]).
    pub auto_compactions: u64,
    /// Entries read from input tables across all compaction merges.
    pub compaction_entries_read: u64,
    /// Entries written to output tables across all compaction merges.
    pub compaction_entries_written: u64,
    /// Bytes read from storage by compaction merges.
    pub compaction_bytes_read: u64,
    /// Bytes written to storage by compaction merges.
    pub compaction_bytes_written: u64,
    /// Wall-clock time writes were stalled behind compaction work.
    pub compaction_stall: Duration,
    /// Sum of the planner's predicted `cost_actual` (in keys) over all
    /// policy-driven compactions, for planned-vs-measured comparison.
    pub compaction_predicted_cost: u64,
}

impl LsmStats {
    /// The paper's `cost_actual` in entries, measured over every
    /// compaction this store has executed: entries read + written.
    #[must_use]
    pub fn compaction_entry_cost(&self) -> u64 {
        self.compaction_entries_read + self.compaction_entries_written
    }

    /// Measured `cost_actual` in bytes of compaction storage traffic.
    #[must_use]
    pub fn compaction_byte_cost(&self) -> u64 {
        self.compaction_bytes_read + self.compaction_bytes_written
    }

    /// Adds every counter of `other` into `self`. This is how a sharded
    /// deployment aggregates statistics across shards: each shard keeps
    /// its own `LsmStats` and the service folds them together on demand.
    pub fn absorb(&mut self, other: &LsmStats) {
        self.puts += other.puts;
        self.deletes += other.deletes;
        self.write_batches += other.write_batches;
        self.gets += other.gets;
        self.flushes += other.flushes;
        self.tables_probed += other.tables_probed;
        self.memtable_hits += other.memtable_hits;
        self.compactions += other.compactions;
        self.auto_compactions += other.auto_compactions;
        self.compaction_entries_read += other.compaction_entries_read;
        self.compaction_entries_written += other.compaction_entries_written;
        self.compaction_bytes_read += other.compaction_bytes_read;
        self.compaction_bytes_written += other.compaction_bytes_written;
        self.compaction_stall += other.compaction_stall;
        self.compaction_predicted_cost += other.compaction_predicted_cost;
    }

    fn record_compaction(&mut self, outcome: &CompactionOutcome, stall: Duration) {
        self.compactions += 1;
        self.compaction_entries_read += outcome.entries_read;
        self.compaction_entries_written += outcome.entries_written;
        self.compaction_bytes_read += outcome.bytes_read;
        self.compaction_bytes_written += outcome.bytes_written;
        self.compaction_stall += stall;
    }
}

/// The result of one policy-driven compaction: what the planner chose
/// and what executing it physically cost.
#[derive(Debug, Clone)]
pub struct AutoCompaction {
    /// The plan (strategy, schedule, waves, predicted costs).
    pub plan: MergePlan,
    /// The physical outcome (entries/bytes read and written).
    pub outcome: CompactionOutcome,
    /// Wall-clock time the compaction took (planning + merging).
    pub stall: Duration,
}

impl Lsm {
    /// Opens a store over an arbitrary storage backend, recovering state
    /// from the manifest and WAL if present.
    ///
    /// # Errors
    ///
    /// Propagates storage and corruption errors encountered during
    /// recovery.
    pub fn open(storage: Arc<dyn Storage>, options: LsmOptions) -> Result<Self, Error> {
        let manifest = Manifest::load(storage.as_ref())?;
        // Sweep orphan sstable blobs and their key-observation sidecars:
        // a crash between writing compaction outputs and persisting the
        // manifest (or between persisting and deleting consumed inputs)
        // leaves blobs the manifest does not reference. They are
        // invisible to reads and safe to delete.
        for blob in storage.list_blobs() {
            let orphan_id = Sstable::id_from_blob_name(&blob)
                .or_else(|| TableKeyObservation::id_from_blob_name(&blob));
            if let Some(orphan_id) = orphan_id {
                if manifest.table(orphan_id).is_none() {
                    storage.delete_blob(&blob)?;
                }
            }
        }
        let mut memtable = Memtable::new(options.memtable_capacity_keys());
        let wal = if options.wal_enabled() {
            // Recover any writes that had not been flushed. Re-persist
            // them as one frame: a single segment write instead of one
            // full-segment rewrite per record (and a quiet upgrade of
            // legacy segments to the count-framed format).
            let records = Wal::replay(storage.as_ref(), WAL_SEGMENT)?;
            let mut wal = Wal::new(WAL_SEGMENT);
            for r in &records {
                match r.kind {
                    ValueKind::Put => memtable.put(r.key.clone(), r.value.clone(), r.seqno),
                    ValueKind::Tombstone => memtable.delete(r.key.clone(), r.seqno),
                }
            }
            wal.append_batch(storage.as_ref(), &records)?;
            Some(wal)
        } else {
            None
        };
        Ok(Self {
            options,
            storage,
            manifest,
            memtable,
            wal,
            stats: LsmStats::default(),
            flushes_since_compaction: 0,
        })
    }

    /// Opens a fresh in-memory store (the simulator default).
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature matches [`Lsm::open`].
    pub fn open_in_memory(options: LsmOptions) -> Result<Self, Error> {
        Self::open(Arc::new(MemoryStorage::new()), options)
    }

    /// Opens (or reopens) a file-backed store rooted at `path`.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created or recovery fails.
    pub fn open_on_disk(
        path: impl Into<std::path::PathBuf>,
        options: LsmOptions,
    ) -> Result<Self, Error> {
        Self::open(Arc::new(FileStorage::open(path)?), options)
    }

    /// The configuration this store was opened with.
    #[must_use]
    pub fn options(&self) -> &LsmOptions {
        &self.options
    }

    /// The storage backend (shared with compaction executors).
    #[must_use]
    pub fn storage(&self) -> Arc<dyn Storage> {
        Arc::clone(&self.storage)
    }

    /// Work counters.
    #[must_use]
    pub fn stats(&self) -> &LsmStats {
        &self.stats
    }

    /// Metadata of the live sstables, oldest first.
    #[must_use]
    pub fn live_tables(&self) -> &[TableMeta] {
        self.manifest.tables()
    }

    /// Number of distinct keys currently buffered in the memtable.
    #[must_use]
    pub fn memtable_len(&self) -> usize {
        self.memtable.len()
    }

    /// Inserts or overwrites `key`.
    ///
    /// # Errors
    ///
    /// Propagates WAL/storage failures; flush failures if the write fills
    /// the memtable.
    pub fn put(&mut self, key: Key, value: Value) -> Result<(), Error> {
        let seqno = self.manifest.allocate_seqno();
        self.log_write(&key, &value, seqno, ValueKind::Put)?;
        self.memtable.put(key, value, seqno);
        self.stats.puts += 1;
        self.maybe_flush()
    }

    /// Deletes `key` by writing a tombstone.
    ///
    /// # Errors
    ///
    /// Propagates WAL/storage failures.
    pub fn delete(&mut self, key: Key) -> Result<(), Error> {
        let seqno = self.manifest.allocate_seqno();
        self.log_write(&key, &Bytes::new(), seqno, ValueKind::Tombstone)?;
        self.memtable.delete(key, seqno);
        self.stats.deletes += 1;
        self.maybe_flush()
    }

    /// Applies a [`WriteBatch`]: every operation is appended to the WAL
    /// as **one frame** and applied to the memtable in **one pass**, with
    /// at most one flush at the end — instead of one WAL write (and
    /// possible flush) per key as the single-op path pays.
    ///
    /// Crash atomicity: the WAL frame is the unit of checksum
    /// protection, so recovery replays either the whole batch or none of
    /// it ([`Wal::append_batch`]). Once this method returns `Ok`, every
    /// operation of the batch is durable (WAL-persisted) and visible.
    ///
    /// An empty batch is a no-op.
    ///
    /// # Errors
    ///
    /// Propagates WAL/storage failures; flush failures if the batch
    /// fills the memtable. If the WAL append itself fails the memtable
    /// is untouched (nothing was applied, and a torn frame replays
    /// all-or-nothing); if a subsequent flush fails the batch has
    /// already been applied and logged — it is durable and visible
    /// despite the error.
    pub fn write_batch(&mut self, batch: WriteBatch) -> Result<(), Error> {
        if batch.is_empty() {
            return Ok(());
        }
        let records: Vec<WalRecord> = batch
            .into_ops()
            .into_iter()
            .map(|op| WalRecord {
                seqno: self.manifest.allocate_seqno(),
                key: op.key,
                value: op.value,
                kind: op.kind,
            })
            .collect();
        if let Some(wal) = &mut self.wal {
            wal.append_batch(self.storage.as_ref(), &records)?;
        }
        for record in records {
            match record.kind {
                ValueKind::Put => {
                    self.memtable.put(record.key, record.value, record.seqno);
                    self.stats.puts += 1;
                }
                ValueKind::Tombstone => {
                    self.memtable.delete(record.key, record.seqno);
                    self.stats.deletes += 1;
                }
            }
        }
        self.stats.write_batches += 1;
        self.maybe_flush()
    }

    /// Convenience: [`Lsm::put`] with a big-endian-encoded integer key.
    ///
    /// # Errors
    ///
    /// Same as [`Lsm::put`].
    pub fn put_u64(&mut self, key: u64, value: impl Into<Vec<u8>>) -> Result<(), Error> {
        self.put(key_from_u64(key), Bytes::from(value.into()))
    }

    /// Convenience: [`Lsm::delete`] with an integer key.
    ///
    /// # Errors
    ///
    /// Same as [`Lsm::delete`].
    pub fn delete_u64(&mut self, key: u64) -> Result<(), Error> {
        self.delete(key_from_u64(key))
    }

    /// Point read: newest visible value for `key`, or `None` if the key
    /// was never written or its newest version is a tombstone.
    ///
    /// # Errors
    ///
    /// Propagates storage and corruption errors.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Value>, Error> {
        self.stats.gets += 1;
        if let Some(entry) = self.memtable.get(key) {
            self.stats.memtable_hits += 1;
            return Ok(visible(entry));
        }
        // Newest table first: tables are listed oldest-first in the
        // manifest, so iterate in reverse.
        let ids: Vec<u64> = self
            .manifest
            .tables()
            .iter()
            .rev()
            .map(|t| t.table_id)
            .collect();
        for id in ids {
            self.stats.tables_probed += 1;
            let table = Sstable::load(self.storage.as_ref(), id)?;
            if let Some(entry) = table.get(key)? {
                return Ok(visible(entry));
            }
        }
        Ok(None)
    }

    /// Convenience: [`Lsm::get`] with an integer key, returning an owned
    /// `Vec<u8>`.
    ///
    /// # Errors
    ///
    /// Same as [`Lsm::get`].
    pub fn get_u64(&mut self, key: u64) -> Result<Option<Vec<u8>>, Error> {
        Ok(self.get(&key_from_u64(key))?.map(|v| v.to_vec()))
    }

    /// Flushes the memtable to a new sstable even if it is not full.
    /// A no-op on an empty memtable.
    ///
    /// After a successful flush the configured [`CompactionPolicy`] is
    /// consulted ([`Lsm::maybe_compact`]); under an automatic policy the
    /// returned table may therefore already have been merged away by the
    /// time this returns.
    ///
    /// # Errors
    ///
    /// Propagates storage failures (from the flush itself or from a
    /// policy-triggered compaction).
    pub fn flush(&mut self) -> Result<Option<u64>, Error> {
        if self.memtable.is_empty() {
            return Ok(None);
        }
        let table_id = self.manifest.allocate_table_id();
        let mut builder = SstableBuilder::new(
            table_id,
            self.options.block_size_bytes(),
            self.options.bloom_bits(),
        );
        let mut observed = Vec::with_capacity(self.memtable.len());
        for entry in self.memtable.drain_sorted() {
            observed.push(observed_key(&entry.key));
            builder.add(&entry);
        }
        let (data, meta) = builder.finish();
        self.storage
            .write_blob(&Sstable::blob_name(table_id), &data)?;
        // Persist the key observation before the manifest references the
        // table: a crash in between leaves only orphans (swept on open),
        // never a live table without its sidecar. Best-effort — the
        // memtable is already drained, so failing the flush over
        // derivable cache data (the planner falls back to reading the
        // table) would strand the drained entries.
        let _ = TableKeyObservation::new(table_id, observed).persist(self.storage.as_ref());
        self.manifest.apply(ManifestEdit::AddTable(TableMeta {
            table_id,
            entry_count: meta.entry_count,
            encoded_len: meta.encoded_len,
        }))?;
        self.manifest.persist(self.storage.as_ref())?;
        if let Some(wal) = &mut self.wal {
            wal.reset(self.storage.as_ref())?;
        }
        self.stats.flushes += 1;
        self.flushes_since_compaction += 1;
        self.maybe_compact()?;
        Ok(Some(table_id))
    }

    /// Consults the configured [`CompactionPolicy`] and, if it fires,
    /// plans and executes a full compaction of the live tables. Called
    /// automatically after every flush; callable directly to re-check
    /// the policy at any time.
    ///
    /// Returns `Ok(None)` when the policy does not fire (or is not
    /// automatic).
    ///
    /// # Errors
    ///
    /// Propagates planning and storage failures.
    pub fn maybe_compact(&mut self) -> Result<Option<AutoCompaction>, Error> {
        let fire = match self.options.policy() {
            CompactionPolicy::Disabled | CompactionPolicy::Manual => false,
            CompactionPolicy::Threshold { live_tables } => {
                self.manifest.table_count() >= live_tables
            }
            CompactionPolicy::EveryNFlushes { flushes } => self.flushes_since_compaction >= flushes,
        };
        if !fire {
            return Ok(None);
        }
        self.run_planned_compaction()
    }

    /// Plans a compaction of the live tables with the configured
    /// strategy and estimator and executes it (parallel across
    /// independent steps when [`LsmOptions::threads`] > 1), regardless
    /// of whether the policy would fire. Returns `Ok(None)` when the
    /// policy is [`CompactionPolicy::Disabled`] or there are fewer than
    /// two live tables.
    ///
    /// This is the "compact now, your way" entry point: no manual
    /// [`CompactionStep`] construction involved.
    ///
    /// # Errors
    ///
    /// Propagates planning and storage failures.
    pub fn auto_compact(&mut self) -> Result<Option<AutoCompaction>, Error> {
        if self.options.policy() == CompactionPolicy::Disabled {
            return Ok(None);
        }
        self.run_planned_compaction()
    }

    fn run_planned_compaction(&mut self) -> Result<Option<AutoCompaction>, Error> {
        let start = Instant::now();
        let Some(plan) =
            plan_compaction(self.storage.as_ref(), self.manifest.tables(), &self.options)?
        else {
            return Ok(None);
        };
        let initial: Vec<u64> = self.manifest.tables().iter().map(|t| t.table_id).collect();
        let executor = ParallelExecutor::new(Arc::clone(&self.storage), self.options.clone());
        let outcome = executor.execute_plan(&mut self.manifest, &initial, &plan)?;
        let stall = start.elapsed();
        self.stats.record_compaction(&outcome, stall);
        self.stats.auto_compactions += 1;
        self.stats.compaction_predicted_cost += plan.predicted_cost_actual();
        self.flushes_since_compaction = 0;
        Ok(Some(AutoCompaction {
            plan,
            outcome,
            stall,
        }))
    }

    /// Executes a full major-compaction merge schedule over the live
    /// sstables.
    ///
    /// `steps` reference tables by *slot*: slots `0..n` are the current
    /// live tables in manifest (oldest-first) order, and each step's
    /// output becomes the next slot, exactly like the merge schedules
    /// produced by `compaction-core` (see
    /// [`MergeSchedule::slot_steps`](compaction_core::MergeSchedule::slot_steps)).
    /// Independent steps execute concurrently when
    /// [`LsmOptions::threads`] > 1, and manifest edits are applied
    /// atomically after every step succeeds.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidCompaction`] for malformed schedules and
    /// propagates storage errors.
    pub fn major_compact(&mut self, steps: &[CompactionStep]) -> Result<CompactionOutcome, Error> {
        let start = Instant::now();
        let initial: Vec<u64> = self.manifest.tables().iter().map(|t| t.table_id).collect();
        let executor = ParallelExecutor::new(Arc::clone(&self.storage), self.options.clone());
        let outcome = executor.execute(&mut self.manifest, &initial, steps)?;
        self.stats.record_compaction(&outcome, start.elapsed());
        self.flushes_since_compaction = 0;
        Ok(outcome)
    }

    /// Returns every live key/value pair, merged across the memtable and
    /// all sstables with newest-wins semantics and tombstones applied.
    /// Intended for verification and small scans, not as a streaming API.
    ///
    /// # Errors
    ///
    /// Propagates storage and corruption errors.
    pub fn scan_all(&self) -> Result<Vec<(Key, Value)>, Error> {
        let mut sources: Vec<Vec<Entry>> = Vec::new();
        // Oldest tables first so the merging iterator's newest-wins rule
        // (by seqno) sees consistent ordering.
        for meta in self.manifest.tables() {
            let table = Sstable::load(self.storage.as_ref(), meta.table_id)?;
            let entries: Result<Vec<Entry>, Error> = table.iter().collect();
            sources.push(entries?);
        }
        sources.push(self.memtable.iter().collect());
        let merged = crate::iter::MergingIter::new(sources, true);
        Ok(merged.map(|e| (e.key, e.value)).collect())
    }

    fn log_write(
        &mut self,
        key: &Key,
        value: &Value,
        seqno: u64,
        kind: ValueKind,
    ) -> Result<(), Error> {
        if let Some(wal) = &mut self.wal {
            wal.append(
                self.storage.as_ref(),
                &WalRecord {
                    key: key.clone(),
                    value: value.clone(),
                    seqno,
                    kind,
                },
            )?;
        }
        Ok(())
    }

    fn maybe_flush(&mut self) -> Result<(), Error> {
        if self.memtable.is_full() {
            self.flush()?;
        }
        Ok(())
    }
}

// The KV service moves `Lsm` shards across threads (each behind its own
// lock); keep the engine `Send`, checked at compile time.
const fn assert_send<T: Send>() {}
const _: () = assert_send::<Lsm>();

/// Maps a (possibly tombstone) entry to the user-visible value.
fn visible(entry: Entry) -> Option<Value> {
    if entry.is_tombstone() {
        None
    } else {
        Some(entry.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_db() -> Lsm {
        Lsm::open_in_memory(LsmOptions::default().memtable_capacity(10)).unwrap()
    }

    #[test]
    fn put_get_delete_in_memtable() {
        let mut db = small_db();
        db.put_u64(1, b"one".to_vec()).unwrap();
        assert_eq!(db.get_u64(1).unwrap(), Some(b"one".to_vec()));
        db.delete_u64(1).unwrap();
        assert_eq!(db.get_u64(1).unwrap(), None);
        assert_eq!(db.get_u64(2).unwrap(), None);
        assert_eq!(db.stats().puts, 1);
        assert_eq!(db.stats().deletes, 1);
        assert_eq!(db.stats().gets, 3);
    }

    #[test]
    fn automatic_flush_on_capacity() {
        let mut db = small_db();
        for i in 0..25u64 {
            db.put_u64(i, vec![b'x']).unwrap();
        }
        assert!(db.stats().flushes >= 2, "memtable capacity 10 ⇒ ≥2 flushes");
        assert!(db.live_tables().len() >= 2);
        // All keys remain readable across memtable + sstables.
        for i in 0..25u64 {
            assert_eq!(db.get_u64(i).unwrap(), Some(vec![b'x']), "key {i}");
        }
    }

    #[test]
    fn newest_version_wins_across_tables() {
        let mut db = small_db();
        db.put_u64(7, b"v1".to_vec()).unwrap();
        db.flush().unwrap();
        db.put_u64(7, b"v2".to_vec()).unwrap();
        db.flush().unwrap();
        assert_eq!(db.get_u64(7).unwrap(), Some(b"v2".to_vec()));

        db.delete_u64(7).unwrap();
        db.flush().unwrap();
        assert_eq!(db.get_u64(7).unwrap(), None, "tombstone shadows older puts");
    }

    #[test]
    fn major_compact_collapses_to_one_table() {
        let mut db = small_db();
        for i in 0..40u64 {
            db.put_u64(i % 20, format!("v{i}").into_bytes()).unwrap();
        }
        db.delete_u64(3).unwrap();
        db.flush().unwrap();
        let n = db.live_tables().len();
        assert!(n >= 2);

        // Left-to-right caterpillar schedule over the live tables.
        let mut steps = Vec::new();
        let mut acc = 0usize;
        for next in 1..n {
            let output_slot = n + steps.len();
            steps.push(CompactionStep::new(vec![acc, next]));
            acc = output_slot;
        }
        let outcome = db.major_compact(&steps).unwrap();
        assert_eq!(db.live_tables().len(), 1);
        assert_eq!(outcome.merge_ops, n - 1);
        assert!(outcome.entry_cost() > 0);

        // Data integrity after compaction.
        assert_eq!(db.get_u64(3).unwrap(), None);
        for i in 0..20u64 {
            if i == 3 {
                continue;
            }
            assert!(
                db.get_u64(i).unwrap().is_some(),
                "key {i} lost by compaction"
            );
        }
        assert_eq!(db.stats().compactions, 1);
    }

    #[test]
    fn scan_all_merges_memtable_and_tables() {
        let mut db = small_db();
        for i in 0..15u64 {
            db.put_u64(i, vec![i as u8]).unwrap();
        }
        db.delete_u64(2).unwrap();
        // No explicit flush: some keys live in sstables (auto-flushed), the
        // rest in the memtable.
        let all = db.scan_all().unwrap();
        let keys: Vec<u64> = all
            .iter()
            .map(|(k, _)| crate::types::key_to_u64(k).unwrap())
            .collect();
        assert_eq!(keys.len(), 14);
        assert!(!keys.contains(&2));
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "scan is sorted");
    }

    #[test]
    fn wal_recovery_restores_unflushed_writes() {
        let storage: Arc<dyn Storage> = Arc::new(MemoryStorage::new());
        {
            let mut db = Lsm::open(
                Arc::clone(&storage),
                LsmOptions::default().memtable_capacity(100),
            )
            .unwrap();
            db.put_u64(1, b"persisted".to_vec()).unwrap();
            db.put_u64(2, b"also".to_vec()).unwrap();
            db.delete_u64(2).unwrap();
            // Dropped without flush: data only in WAL.
        }
        let mut reopened =
            Lsm::open(storage, LsmOptions::default().memtable_capacity(100)).unwrap();
        assert_eq!(reopened.get_u64(1).unwrap(), Some(b"persisted".to_vec()));
        assert_eq!(reopened.get_u64(2).unwrap(), None);
        assert_eq!(reopened.memtable_len(), 2);
    }

    #[test]
    fn disk_backed_store_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("lsm-db-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        {
            let mut db =
                Lsm::open_on_disk(&dir, LsmOptions::default().memtable_capacity(4)).unwrap();
            for i in 0..10u64 {
                db.put_u64(i, format!("d{i}").into_bytes()).unwrap();
            }
            db.flush().unwrap();
        }
        {
            let mut db =
                Lsm::open_on_disk(&dir, LsmOptions::default().memtable_capacity(4)).unwrap();
            for i in 0..10u64 {
                assert_eq!(db.get_u64(i).unwrap(), Some(format!("d{i}").into_bytes()));
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn threshold_policy_compacts_without_manual_steps() {
        let mut db = Lsm::open_in_memory(
            LsmOptions::default()
                .memtable_capacity(10)
                .compaction_policy(CompactionPolicy::Threshold { live_tables: 4 })
                .wal(false),
        )
        .unwrap();
        for i in 0..200u64 {
            db.put_u64(i % 60, vec![i as u8]).unwrap();
        }
        db.flush().unwrap();
        assert!(
            db.live_tables().len() < 4,
            "policy keeps the live-table count below the threshold"
        );
        assert!(db.stats().auto_compactions >= 1);
        assert!(db.stats().compaction_entry_cost() > 0);
        assert!(db.stats().compaction_stall > Duration::ZERO);
        // Data integrity under policy-driven compaction.
        for i in 0..60u64 {
            assert!(db.get_u64(i).unwrap().is_some(), "key {i}");
        }
    }

    #[test]
    fn every_n_flushes_policy_fires_on_schedule() {
        let mut db = Lsm::open_in_memory(
            LsmOptions::default()
                .memtable_capacity(5)
                .compaction_policy(CompactionPolicy::EveryNFlushes { flushes: 3 })
                .wal(false),
        )
        .unwrap();
        for i in 0..70u64 {
            db.put_u64(i, b"x".to_vec()).unwrap();
        }
        db.flush().unwrap();
        assert!(db.stats().flushes >= 14);
        assert!(
            db.stats().auto_compactions >= 4,
            "one compaction per 3 flushes, got {}",
            db.stats().auto_compactions
        );
    }

    #[test]
    fn auto_compact_honors_disabled_and_manual_policies() {
        let mut disabled = Lsm::open_in_memory(
            LsmOptions::default()
                .memtable_capacity(5)
                .compaction_policy(CompactionPolicy::Disabled)
                .wal(false),
        )
        .unwrap();
        for i in 0..30u64 {
            disabled.put_u64(i, b"x".to_vec()).unwrap();
        }
        disabled.flush().unwrap();
        let tables = disabled.live_tables().len();
        assert!(tables >= 4, "no automatic compaction under Disabled");
        assert!(disabled.auto_compact().unwrap().is_none());
        assert_eq!(disabled.live_tables().len(), tables);

        // Manual: nothing fires automatically, but auto_compact works on
        // demand with zero manual CompactionStep construction.
        let mut manual =
            Lsm::open_in_memory(LsmOptions::default().memtable_capacity(5).wal(false)).unwrap();
        for i in 0..30u64 {
            manual.put_u64(i, b"x".to_vec()).unwrap();
        }
        manual.flush().unwrap();
        assert!(manual.live_tables().len() >= 4);
        let run = manual.auto_compact().unwrap().expect("tables to merge");
        assert_eq!(manual.live_tables().len(), 1);
        assert_eq!(run.outcome.merge_ops, run.plan.steps().len());
        assert_eq!(
            run.outcome.entry_cost(),
            run.plan.predicted_cost_actual(),
            "exact observations over u64 keys predict the physical cost exactly"
        );
        assert_eq!(manual.stats().auto_compactions, 1);
        assert_eq!(
            manual.stats().compaction_predicted_cost,
            run.plan.predicted_cost_actual()
        );
    }

    #[test]
    fn parallel_threads_preserve_contents_under_policy() {
        let run = |threads: usize| {
            let mut db = Lsm::open_in_memory(
                LsmOptions::default()
                    .memtable_capacity(8)
                    .compaction_policy(CompactionPolicy::Threshold { live_tables: 6 })
                    .compaction_strategy(compaction_core::Strategy::BalanceTreeInput)
                    .compaction_threads(threads)
                    .wal(false),
            )
            .unwrap();
            for i in 0..300u64 {
                db.put_u64(i % 100, format!("v{i}").into_bytes()).unwrap();
            }
            db.flush().unwrap();
            db.scan_all().unwrap()
        };
        assert_eq!(run(1), run(4), "contents are thread-count independent");
    }

    #[test]
    fn orphan_blobs_are_swept_on_open() {
        let storage: Arc<dyn Storage> = Arc::new(MemoryStorage::new());
        {
            let mut db = Lsm::open(
                Arc::clone(&storage),
                LsmOptions::default().memtable_capacity(5),
            )
            .unwrap();
            for i in 0..20u64 {
                db.put_u64(i, b"x".to_vec()).unwrap();
            }
            db.flush().unwrap();
        }
        // Simulate a crash that left a compaction output blob behind
        // without a manifest entry.
        storage
            .write_blob(&Sstable::blob_name(9_999), b"garbage-orphan")
            .unwrap();
        assert!(storage.contains_blob(&Sstable::blob_name(9_999)));
        let mut db = Lsm::open(
            Arc::clone(&storage),
            LsmOptions::default().memtable_capacity(5),
        )
        .unwrap();
        assert!(
            !storage.contains_blob(&Sstable::blob_name(9_999)),
            "orphan swept on open"
        );
        for i in 0..20u64 {
            assert_eq!(db.get_u64(i).unwrap(), Some(b"x".to_vec()));
        }
    }

    #[test]
    fn write_batch_applies_in_order_with_one_flush() {
        let mut db = small_db();
        let mut batch = WriteBatch::with_capacity(25);
        for i in 0..25u64 {
            batch.put_u64(i, format!("b{i}").into_bytes());
        }
        batch.delete_u64(3).put_u64(4, b"rewritten".to_vec());
        db.write_batch(batch).unwrap();
        // 27 ops against a capacity-10 memtable: one pass, one flush.
        assert_eq!(db.stats().flushes, 1, "single flush at the end");
        assert_eq!(db.stats().write_batches, 1);
        assert_eq!(db.stats().puts, 26);
        assert_eq!(db.stats().deletes, 1);
        assert_eq!(db.get_u64(3).unwrap(), None, "in-batch order respected");
        assert_eq!(db.get_u64(4).unwrap(), Some(b"rewritten".to_vec()));
        for i in 5..25u64 {
            assert_eq!(db.get_u64(i).unwrap(), Some(format!("b{i}").into_bytes()));
        }
        // Empty batch is a no-op.
        db.write_batch(WriteBatch::new()).unwrap();
        assert_eq!(db.stats().write_batches, 1);
    }

    #[test]
    fn write_batch_survives_crash_recovery() {
        let storage: Arc<dyn Storage> = Arc::new(MemoryStorage::new());
        {
            let mut db = Lsm::open(
                Arc::clone(&storage),
                LsmOptions::default().memtable_capacity(100),
            )
            .unwrap();
            let mut batch = WriteBatch::new();
            batch
                .put_u64(1, b"one".to_vec())
                .put_u64(2, b"two".to_vec())
                .delete_u64(1);
            db.write_batch(batch).unwrap();
            // Dropped without flush: the batch lives only in the WAL.
        }
        let mut reopened =
            Lsm::open(storage, LsmOptions::default().memtable_capacity(100)).unwrap();
        assert_eq!(reopened.get_u64(1).unwrap(), None);
        assert_eq!(reopened.get_u64(2).unwrap(), Some(b"two".to_vec()));
    }

    #[test]
    fn stats_absorb_sums_counters() {
        let mut a = LsmStats {
            puts: 1,
            gets: 2,
            flushes: 3,
            compaction_stall: Duration::from_millis(5),
            ..LsmStats::default()
        };
        let b = LsmStats {
            puts: 10,
            deletes: 4,
            write_batches: 2,
            compaction_stall: Duration::from_millis(7),
            ..LsmStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.puts, 11);
        assert_eq!(a.deletes, 4);
        assert_eq!(a.gets, 2);
        assert_eq!(a.flushes, 3);
        assert_eq!(a.write_batches, 2);
        assert_eq!(a.compaction_stall, Duration::from_millis(12));
    }

    #[test]
    fn flush_persists_key_observation_sidecars() {
        let storage: Arc<dyn Storage> = Arc::new(MemoryStorage::new());
        let mut db = Lsm::open(
            Arc::clone(&storage),
            LsmOptions::default().memtable_capacity(10).wal(false),
        )
        .unwrap();
        for i in 0..5u64 {
            db.put_u64(i, b"x".to_vec()).unwrap();
        }
        let table_id = db.flush().unwrap().expect("flush produced a table");
        let obs = TableKeyObservation::load(storage.as_ref(), table_id)
            .unwrap()
            .expect("sidecar written at flush");
        assert_eq!(obs.keys, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn orphan_observation_sidecars_are_swept_on_open() {
        let storage: Arc<dyn Storage> = Arc::new(MemoryStorage::new());
        {
            let mut db = Lsm::open(
                Arc::clone(&storage),
                LsmOptions::default().memtable_capacity(5),
            )
            .unwrap();
            for i in 0..5u64 {
                db.put_u64(i, b"x".to_vec()).unwrap();
            }
            db.flush().unwrap();
        }
        TableKeyObservation::new(8_888, vec![1, 2])
            .persist(storage.as_ref())
            .unwrap();
        let _db = Lsm::open(
            Arc::clone(&storage),
            LsmOptions::default().memtable_capacity(5),
        )
        .unwrap();
        assert!(
            !storage.contains_blob(&TableKeyObservation::blob_name(8_888)),
            "orphan sidecar swept on open"
        );
    }

    #[test]
    fn compaction_retires_input_observation_sidecars() {
        let mut db = Lsm::open_in_memory(
            LsmOptions::default()
                .memtable_capacity(5)
                .compaction_policy(CompactionPolicy::Threshold { live_tables: 4 })
                .wal(false),
        )
        .unwrap();
        for i in 0..60u64 {
            db.put_u64(i % 20, vec![i as u8]).unwrap();
        }
        db.flush().unwrap();
        assert!(db.stats().auto_compactions >= 1);
        let storage = db.storage();
        let live: Vec<u64> = db.live_tables().iter().map(|t| t.table_id).collect();
        for blob in storage.list_blobs() {
            if let Some(id) = TableKeyObservation::id_from_blob_name(&blob) {
                assert!(live.contains(&id), "sidecar {blob} outlived its table");
            }
        }
        // Every live table still has its sidecar.
        for id in live {
            assert!(
                storage.contains_blob(&TableKeyObservation::blob_name(id)),
                "live table {id} lost its sidecar"
            );
        }
    }

    #[test]
    fn wal_disabled_still_works_without_durability() {
        let mut db =
            Lsm::open_in_memory(LsmOptions::default().memtable_capacity(5).wal(false)).unwrap();
        for i in 0..12u64 {
            db.put_u64(i, b"x".to_vec()).unwrap();
        }
        assert_eq!(db.get_u64(11).unwrap(), Some(b"x".to_vec()));
    }
}
