//! The database facade tying memtable, WAL, sstables and compaction
//! together.

use std::sync::Arc;

use bytes::Bytes;

use crate::compaction::{CompactionExecutor, CompactionOutcome, CompactionStep};
use crate::manifest::{Manifest, ManifestEdit, TableMeta};
use crate::memtable::Memtable;
use crate::options::LsmOptions;
use crate::sstable::{Sstable, SstableBuilder};
use crate::storage::{FileStorage, MemoryStorage, Storage};
use crate::types::{key_from_u64, Entry, Key, Value, ValueKind};
use crate::wal::{Wal, WalRecord};
use crate::Error;

const WAL_SEGMENT: &str = "wal-current";

/// A single-node LSM key-value store.
///
/// Writes go to the memtable (and WAL); when the memtable reaches its key
/// capacity it is flushed into a new immutable sstable. Reads consult the
/// memtable first and then the live sstables newest-first, using each
/// table's bloom filter to skip runs. [`Lsm::major_compact`] executes a
/// merge schedule and leaves a single sstable behind.
///
/// # Examples
///
/// ```
/// use lsm_engine::{Lsm, LsmOptions};
///
/// # fn main() -> Result<(), lsm_engine::Error> {
/// let mut db = Lsm::open_in_memory(LsmOptions::default().memtable_capacity(10))?;
/// db.put_u64(1, b"one".to_vec())?;
/// db.delete_u64(1)?;
/// assert_eq!(db.get_u64(1)?, None);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Lsm {
    options: LsmOptions,
    storage: Arc<dyn Storage>,
    manifest: Manifest,
    memtable: Memtable,
    wal: Option<Wal>,
    stats: LsmStats,
}

/// Counters describing the work an [`Lsm`] instance has performed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LsmStats {
    /// Number of put operations accepted.
    pub puts: u64,
    /// Number of delete operations accepted.
    pub deletes: u64,
    /// Number of point reads served.
    pub gets: u64,
    /// Number of memtable flushes performed.
    pub flushes: u64,
    /// Number of sstables consulted across all reads (read amplification
    /// numerator).
    pub tables_probed: u64,
    /// Number of reads answered from the memtable.
    pub memtable_hits: u64,
    /// Number of major compaction runs executed.
    pub compactions: u64,
}

impl Lsm {
    /// Opens a store over an arbitrary storage backend, recovering state
    /// from the manifest and WAL if present.
    ///
    /// # Errors
    ///
    /// Propagates storage and corruption errors encountered during
    /// recovery.
    pub fn open(storage: Arc<dyn Storage>, options: LsmOptions) -> Result<Self, Error> {
        let manifest = Manifest::load(storage.as_ref())?;
        let mut memtable = Memtable::new(options.memtable_capacity_keys());
        let wal = if options.wal_enabled() {
            // Recover any writes that had not been flushed.
            let records = Wal::replay(storage.as_ref(), WAL_SEGMENT)?;
            let mut wal = Wal::new(WAL_SEGMENT);
            for r in &records {
                match r.kind {
                    ValueKind::Put => memtable.put(r.key.clone(), r.value.clone(), r.seqno),
                    ValueKind::Tombstone => memtable.delete(r.key.clone(), r.seqno),
                }
                wal.append(storage.as_ref(), r)?;
            }
            Some(wal)
        } else {
            None
        };
        Ok(Self {
            options,
            storage,
            manifest,
            memtable,
            wal,
            stats: LsmStats::default(),
        })
    }

    /// Opens a fresh in-memory store (the simulator default).
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature matches [`Lsm::open`].
    pub fn open_in_memory(options: LsmOptions) -> Result<Self, Error> {
        Self::open(Arc::new(MemoryStorage::new()), options)
    }

    /// Opens (or reopens) a file-backed store rooted at `path`.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created or recovery fails.
    pub fn open_on_disk(path: impl Into<std::path::PathBuf>, options: LsmOptions) -> Result<Self, Error> {
        Self::open(Arc::new(FileStorage::open(path)?), options)
    }

    /// The configuration this store was opened with.
    #[must_use]
    pub fn options(&self) -> &LsmOptions {
        &self.options
    }

    /// The storage backend (shared with compaction executors).
    #[must_use]
    pub fn storage(&self) -> Arc<dyn Storage> {
        Arc::clone(&self.storage)
    }

    /// Work counters.
    #[must_use]
    pub fn stats(&self) -> &LsmStats {
        &self.stats
    }

    /// Metadata of the live sstables, oldest first.
    #[must_use]
    pub fn live_tables(&self) -> &[TableMeta] {
        self.manifest.tables()
    }

    /// Number of distinct keys currently buffered in the memtable.
    #[must_use]
    pub fn memtable_len(&self) -> usize {
        self.memtable.len()
    }

    /// Inserts or overwrites `key`.
    ///
    /// # Errors
    ///
    /// Propagates WAL/storage failures; flush failures if the write fills
    /// the memtable.
    pub fn put(&mut self, key: Key, value: Value) -> Result<(), Error> {
        let seqno = self.manifest.allocate_seqno();
        self.log_write(&key, &value, seqno, ValueKind::Put)?;
        self.memtable.put(key, value, seqno);
        self.stats.puts += 1;
        self.maybe_flush()
    }

    /// Deletes `key` by writing a tombstone.
    ///
    /// # Errors
    ///
    /// Propagates WAL/storage failures.
    pub fn delete(&mut self, key: Key) -> Result<(), Error> {
        let seqno = self.manifest.allocate_seqno();
        self.log_write(&key, &Bytes::new(), seqno, ValueKind::Tombstone)?;
        self.memtable.delete(key, seqno);
        self.stats.deletes += 1;
        self.maybe_flush()
    }

    /// Convenience: [`Lsm::put`] with a big-endian-encoded integer key.
    ///
    /// # Errors
    ///
    /// Same as [`Lsm::put`].
    pub fn put_u64(&mut self, key: u64, value: impl Into<Vec<u8>>) -> Result<(), Error> {
        self.put(key_from_u64(key), Bytes::from(value.into()))
    }

    /// Convenience: [`Lsm::delete`] with an integer key.
    ///
    /// # Errors
    ///
    /// Same as [`Lsm::delete`].
    pub fn delete_u64(&mut self, key: u64) -> Result<(), Error> {
        self.delete(key_from_u64(key))
    }

    /// Point read: newest visible value for `key`, or `None` if the key
    /// was never written or its newest version is a tombstone.
    ///
    /// # Errors
    ///
    /// Propagates storage and corruption errors.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Value>, Error> {
        self.stats.gets += 1;
        if let Some(entry) = self.memtable.get(key) {
            self.stats.memtable_hits += 1;
            return Ok(visible(entry));
        }
        // Newest table first: tables are listed oldest-first in the
        // manifest, so iterate in reverse.
        let ids: Vec<u64> = self
            .manifest
            .tables()
            .iter()
            .rev()
            .map(|t| t.table_id)
            .collect();
        for id in ids {
            self.stats.tables_probed += 1;
            let table = Sstable::load(self.storage.as_ref(), id)?;
            if let Some(entry) = table.get(key)? {
                return Ok(visible(entry));
            }
        }
        Ok(None)
    }

    /// Convenience: [`Lsm::get`] with an integer key, returning an owned
    /// `Vec<u8>`.
    ///
    /// # Errors
    ///
    /// Same as [`Lsm::get`].
    pub fn get_u64(&mut self, key: u64) -> Result<Option<Vec<u8>>, Error> {
        Ok(self.get(&key_from_u64(key))?.map(|v| v.to_vec()))
    }

    /// Flushes the memtable to a new sstable even if it is not full.
    /// A no-op on an empty memtable.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn flush(&mut self) -> Result<Option<u64>, Error> {
        if self.memtable.is_empty() {
            return Ok(None);
        }
        let table_id = self.manifest.allocate_table_id();
        let mut builder = SstableBuilder::new(
            table_id,
            self.options.block_size_bytes(),
            self.options.bloom_bits(),
        );
        for entry in self.memtable.drain_sorted() {
            builder.add(&entry);
        }
        let (data, meta) = builder.finish();
        self.storage
            .write_blob(&Sstable::blob_name(table_id), &data)?;
        self.manifest.apply(ManifestEdit::AddTable(TableMeta {
            table_id,
            entry_count: meta.entry_count,
            encoded_len: meta.encoded_len,
        }))?;
        self.manifest.persist(self.storage.as_ref())?;
        if let Some(wal) = &mut self.wal {
            wal.reset(self.storage.as_ref())?;
        }
        self.stats.flushes += 1;
        Ok(Some(table_id))
    }

    /// Executes a full major-compaction merge schedule over the live
    /// sstables.
    ///
    /// `steps` reference tables by *slot*: slots `0..n` are the current
    /// live tables in manifest (oldest-first) order, and each step's
    /// output becomes the next slot, exactly like the merge schedules
    /// produced by `compaction-core`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidCompaction`] for malformed schedules and
    /// propagates storage errors.
    pub fn major_compact(&mut self, steps: &[CompactionStep]) -> Result<CompactionOutcome, Error> {
        let initial: Vec<u64> = self.manifest.tables().iter().map(|t| t.table_id).collect();
        let executor = CompactionExecutor::new(Arc::clone(&self.storage), self.options.clone());
        let outcome = executor.execute(&mut self.manifest, &initial, steps)?;
        self.manifest.persist(self.storage.as_ref())?;
        self.stats.compactions += 1;
        Ok(outcome)
    }

    /// Returns every live key/value pair, merged across the memtable and
    /// all sstables with newest-wins semantics and tombstones applied.
    /// Intended for verification and small scans, not as a streaming API.
    ///
    /// # Errors
    ///
    /// Propagates storage and corruption errors.
    pub fn scan_all(&self) -> Result<Vec<(Key, Value)>, Error> {
        let mut sources: Vec<Vec<Entry>> = Vec::new();
        // Oldest tables first so the merging iterator's newest-wins rule
        // (by seqno) sees consistent ordering.
        for meta in self.manifest.tables() {
            let table = Sstable::load(self.storage.as_ref(), meta.table_id)?;
            let entries: Result<Vec<Entry>, Error> = table.iter().collect();
            sources.push(entries?);
        }
        sources.push(self.memtable.iter().collect());
        let merged = crate::iter::MergingIter::new(sources, true);
        Ok(merged.map(|e| (e.key, e.value)).collect())
    }

    fn log_write(&mut self, key: &Key, value: &Value, seqno: u64, kind: ValueKind) -> Result<(), Error> {
        if let Some(wal) = &mut self.wal {
            wal.append(
                self.storage.as_ref(),
                &WalRecord {
                    key: key.clone(),
                    value: value.clone(),
                    seqno,
                    kind,
                },
            )?;
        }
        Ok(())
    }

    fn maybe_flush(&mut self) -> Result<(), Error> {
        if self.memtable.is_full() {
            self.flush()?;
        }
        Ok(())
    }
}

/// Maps a (possibly tombstone) entry to the user-visible value.
fn visible(entry: Entry) -> Option<Value> {
    if entry.is_tombstone() {
        None
    } else {
        Some(entry.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_db() -> Lsm {
        Lsm::open_in_memory(LsmOptions::default().memtable_capacity(10)).unwrap()
    }

    #[test]
    fn put_get_delete_in_memtable() {
        let mut db = small_db();
        db.put_u64(1, b"one".to_vec()).unwrap();
        assert_eq!(db.get_u64(1).unwrap(), Some(b"one".to_vec()));
        db.delete_u64(1).unwrap();
        assert_eq!(db.get_u64(1).unwrap(), None);
        assert_eq!(db.get_u64(2).unwrap(), None);
        assert_eq!(db.stats().puts, 1);
        assert_eq!(db.stats().deletes, 1);
        assert_eq!(db.stats().gets, 3);
    }

    #[test]
    fn automatic_flush_on_capacity() {
        let mut db = small_db();
        for i in 0..25u64 {
            db.put_u64(i, vec![b'x']).unwrap();
        }
        assert!(db.stats().flushes >= 2, "memtable capacity 10 ⇒ ≥2 flushes");
        assert!(db.live_tables().len() >= 2);
        // All keys remain readable across memtable + sstables.
        for i in 0..25u64 {
            assert_eq!(db.get_u64(i).unwrap(), Some(vec![b'x']), "key {i}");
        }
    }

    #[test]
    fn newest_version_wins_across_tables() {
        let mut db = small_db();
        db.put_u64(7, b"v1".to_vec()).unwrap();
        db.flush().unwrap();
        db.put_u64(7, b"v2".to_vec()).unwrap();
        db.flush().unwrap();
        assert_eq!(db.get_u64(7).unwrap(), Some(b"v2".to_vec()));

        db.delete_u64(7).unwrap();
        db.flush().unwrap();
        assert_eq!(db.get_u64(7).unwrap(), None, "tombstone shadows older puts");
    }

    #[test]
    fn major_compact_collapses_to_one_table() {
        let mut db = small_db();
        for i in 0..40u64 {
            db.put_u64(i % 20, format!("v{i}").into_bytes()).unwrap();
        }
        db.delete_u64(3).unwrap();
        db.flush().unwrap();
        let n = db.live_tables().len();
        assert!(n >= 2);

        // Left-to-right caterpillar schedule over the live tables.
        let mut steps = Vec::new();
        let mut acc = 0usize;
        for next in 1..n {
            let output_slot = n + steps.len();
            steps.push(CompactionStep::new(vec![acc, next]));
            acc = output_slot;
        }
        let outcome = db.major_compact(&steps).unwrap();
        assert_eq!(db.live_tables().len(), 1);
        assert_eq!(outcome.merge_ops, n - 1);
        assert!(outcome.entry_cost() > 0);

        // Data integrity after compaction.
        assert_eq!(db.get_u64(3).unwrap(), None);
        for i in 0..20u64 {
            if i == 3 {
                continue;
            }
            assert!(db.get_u64(i).unwrap().is_some(), "key {i} lost by compaction");
        }
        assert_eq!(db.stats().compactions, 1);
    }

    #[test]
    fn scan_all_merges_memtable_and_tables() {
        let mut db = small_db();
        for i in 0..15u64 {
            db.put_u64(i, vec![i as u8]).unwrap();
        }
        db.delete_u64(2).unwrap();
        // No explicit flush: some keys live in sstables (auto-flushed), the
        // rest in the memtable.
        let all = db.scan_all().unwrap();
        let keys: Vec<u64> = all
            .iter()
            .map(|(k, _)| crate::types::key_to_u64(k).unwrap())
            .collect();
        assert_eq!(keys.len(), 14);
        assert!(!keys.contains(&2));
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "scan is sorted");
    }

    #[test]
    fn wal_recovery_restores_unflushed_writes() {
        let storage: Arc<dyn Storage> = Arc::new(MemoryStorage::new());
        {
            let mut db = Lsm::open(Arc::clone(&storage), LsmOptions::default().memtable_capacity(100)).unwrap();
            db.put_u64(1, b"persisted".to_vec()).unwrap();
            db.put_u64(2, b"also".to_vec()).unwrap();
            db.delete_u64(2).unwrap();
            // Dropped without flush: data only in WAL.
        }
        let mut reopened = Lsm::open(storage, LsmOptions::default().memtable_capacity(100)).unwrap();
        assert_eq!(reopened.get_u64(1).unwrap(), Some(b"persisted".to_vec()));
        assert_eq!(reopened.get_u64(2).unwrap(), None);
        assert_eq!(reopened.memtable_len(), 2);
    }

    #[test]
    fn disk_backed_store_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("lsm-db-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        {
            let mut db = Lsm::open_on_disk(&dir, LsmOptions::default().memtable_capacity(4)).unwrap();
            for i in 0..10u64 {
                db.put_u64(i, format!("d{i}").into_bytes()).unwrap();
            }
            db.flush().unwrap();
        }
        {
            let mut db = Lsm::open_on_disk(&dir, LsmOptions::default().memtable_capacity(4)).unwrap();
            for i in 0..10u64 {
                assert_eq!(db.get_u64(i).unwrap(), Some(format!("d{i}").into_bytes()));
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_disabled_still_works_without_durability() {
        let mut db =
            Lsm::open_in_memory(LsmOptions::default().memtable_capacity(5).wal(false)).unwrap();
        for i in 0..12u64 {
            db.put_u64(i, b"x".to_vec()).unwrap();
        }
        assert_eq!(db.get_u64(11).unwrap(), Some(b"x".to_vec()));
    }
}
