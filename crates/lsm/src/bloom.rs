//! A blocked-free classic Bloom filter for sstable key membership.
//!
//! Each sstable carries a Bloom filter over its user keys so point reads
//! can skip runs that certainly do not contain the key. This matters for
//! the paper's motivation: before compaction a read may touch many runs,
//! and the filter is what keeps the miss cost bounded in practice.

use bytes::{BufMut, Bytes, BytesMut};

use crate::Error;

/// A Bloom filter with double hashing (Kirsch–Mitzenmacher).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u8>,
    num_hashes: u32,
}

impl BloomFilter {
    /// Builds a filter over `keys` using `bits_per_key` bits of budget per
    /// key. A `bits_per_key` of 10 gives roughly a 1 % false-positive rate.
    /// Passing `bits_per_key = 0` or an empty key set produces an empty
    /// filter that reports every key as possibly present.
    #[must_use]
    pub fn build<'a, I>(keys: I, bits_per_key: usize) -> Self
    where
        I: IntoIterator<Item = &'a [u8]>,
        I::IntoIter: ExactSizeIterator,
    {
        let keys = keys.into_iter();
        let n = keys.len();
        if n == 0 || bits_per_key == 0 {
            return Self {
                bits: Vec::new(),
                num_hashes: 0,
            };
        }
        // k = ln 2 * bits_per_key, clamped to a sensible range.
        let num_hashes = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 30);
        let nbits = (n * bits_per_key).max(64);
        let nbytes = nbits.div_ceil(8);
        let mut bits = vec![0u8; nbytes];
        for key in keys {
            let (h1, h2) = hash_pair(key);
            let mut h = h1;
            for _ in 0..num_hashes {
                let bit = (h % (nbytes as u64 * 8)) as usize;
                bits[bit / 8] |= 1 << (bit % 8);
                h = h.wrapping_add(h2);
            }
        }
        Self { bits, num_hashes }
    }

    /// Returns `false` only if `key` is definitely not in the underlying
    /// set; `true` means "possibly present".
    #[must_use]
    pub fn may_contain(&self, key: &[u8]) -> bool {
        if self.bits.is_empty() {
            return true;
        }
        let nbits = self.bits.len() as u64 * 8;
        let (h1, h2) = hash_pair(key);
        let mut h = h1;
        for _ in 0..self.num_hashes {
            let bit = (h % nbits) as usize;
            if self.bits[bit / 8] & (1 << (bit % 8)) == 0 {
                return false;
            }
            h = h.wrapping_add(h2);
        }
        true
    }

    /// Size of the encoded filter in bytes (excluding the length prefix).
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        self.bits.len() + 4
    }

    /// Serializes the filter (`num_hashes` then the bit array).
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        buf.put_u32_le(self.num_hashes);
        buf.put_slice(&self.bits);
        buf.freeze()
    }

    /// Deserializes a filter produced by [`BloomFilter::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] if the buffer is shorter than the
    /// 4-byte header.
    pub fn decode(data: &[u8]) -> Result<Self, Error> {
        if data.len() < 4 {
            return Err(Error::corruption("bloom filter shorter than header"));
        }
        let num_hashes = u32::from_le_bytes(data[..4].try_into().expect("length checked"));
        Ok(Self {
            bits: data[4..].to_vec(),
            num_hashes,
        })
    }
}

/// Two independent 64-bit hashes of `key` for double hashing.
fn hash_pair(key: &[u8]) -> (u64, u64) {
    let h1 = hll::hash_bytes(key);
    let h2 = hll::hash_u64(h1 ^ 0x5851_F42D_4C95_7F2D) | 1;
    (h1, h2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> Vec<Vec<u8>> {
        (0..n).map(|i| i.to_be_bytes().to_vec()).collect()
    }

    #[test]
    fn no_false_negatives() {
        let keys = keys(10_000);
        let filter = BloomFilter::build(keys.iter().map(Vec::as_slice), 10);
        for k in &keys {
            assert!(
                filter.may_contain(k),
                "bloom filter returned a false negative"
            );
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let present = keys(10_000);
        let filter = BloomFilter::build(present.iter().map(Vec::as_slice), 10);
        let mut false_positives = 0;
        let probes = 10_000u64;
        for i in 0..probes {
            let absent = (1_000_000 + i).to_be_bytes();
            if filter.may_contain(&absent) {
                false_positives += 1;
            }
        }
        let rate = f64::from(false_positives) / probes as f64;
        assert!(rate < 0.05, "false positive rate too high: {rate}");
    }

    #[test]
    fn empty_filter_admits_everything() {
        let filter = BloomFilter::build(std::iter::empty::<&[u8]>(), 10);
        assert!(filter.may_contain(b"anything"));
        let filter = BloomFilter::build(keys(5).iter().map(Vec::as_slice), 0);
        assert!(filter.may_contain(b"anything"));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let keys = keys(500);
        let filter = BloomFilter::build(keys.iter().map(Vec::as_slice), 8);
        let encoded = filter.encode();
        assert_eq!(encoded.len(), filter.encoded_len());
        let decoded = BloomFilter::decode(&encoded).unwrap();
        assert_eq!(filter, decoded);
        assert!(BloomFilter::decode(&[1, 2]).is_err());
    }
}
