//! The in-memory write buffer.

use std::collections::BTreeMap;

use bytes::Bytes;

use crate::types::{Entry, Key, SeqNo, Value, ValueKind};

/// A sorted in-memory buffer of recent writes.
//
/// The memtable keeps exactly one (the newest) version per user key:
/// repeated updates to the same key overwrite in place, which is why
/// flushed sstables "may be smaller and vary in size" (paper, Section
/// 5.1) even though every memtable receives the same number of
/// operations. Capacity is expressed in distinct keys to match the
/// paper's "memtable size" parameter.
///
/// # Examples
///
/// ```
/// use lsm_engine::Memtable;
/// use bytes::Bytes;
///
/// let mut mt = Memtable::new(2);
/// mt.put(Bytes::from_static(b"a"), Bytes::from_static(b"1"), 1);
/// mt.put(Bytes::from_static(b"a"), Bytes::from_static(b"2"), 2);
/// assert_eq!(mt.len(), 1, "updates to the same key collapse");
/// assert!(!mt.is_full());
/// mt.put(Bytes::from_static(b"b"), Bytes::from_static(b"3"), 3);
/// assert!(mt.is_full());
/// ```
#[derive(Debug, Clone)]
pub struct Memtable {
    entries: BTreeMap<Key, (Value, SeqNo, ValueKind)>,
    capacity_keys: usize,
    approximate_bytes: usize,
}

impl Memtable {
    /// Creates an empty memtable that is considered full once it holds
    /// `capacity_keys` distinct keys.
    #[must_use]
    pub fn new(capacity_keys: usize) -> Self {
        Self {
            entries: BTreeMap::new(),
            capacity_keys: capacity_keys.max(1),
            approximate_bytes: 0,
        }
    }

    /// Inserts or overwrites a live value for `key`.
    pub fn put(&mut self, key: Key, value: Value, seqno: SeqNo) {
        self.insert(key, value, seqno, ValueKind::Put);
    }

    /// Records a deletion tombstone for `key`.
    pub fn delete(&mut self, key: Key, seqno: SeqNo) {
        self.insert(key, Bytes::new(), seqno, ValueKind::Tombstone);
    }

    fn insert(&mut self, key: Key, value: Value, seqno: SeqNo, kind: ValueKind) {
        let added = key.len() + value.len() + 17;
        if let Some((old_value, _, _)) = self.entries.get(&key) {
            self.approximate_bytes = self
                .approximate_bytes
                .saturating_sub(key.len() + old_value.len() + 17);
        }
        self.approximate_bytes += added;
        self.entries.insert(key, (value, seqno, kind));
    }

    /// Looks up the newest version of `key`, if present. A tombstone is
    /// reported as `Some(entry)` with [`Entry::is_tombstone`] true so the
    /// read path can stop searching older sstables.
    #[must_use]
    pub fn get(&self, key: &[u8]) -> Option<Entry> {
        self.entries.get(key).map(|(value, seqno, kind)| Entry {
            key: Bytes::copy_from_slice(key),
            value: value.clone(),
            seqno: *seqno,
            kind: *kind,
        })
    }

    /// Number of distinct keys currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no writes are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` once the memtable has reached its key capacity and
    /// should be flushed.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity_keys
    }

    /// The configured key capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity_keys
    }

    /// Approximate memory footprint of the buffered entries in bytes.
    #[must_use]
    pub fn approximate_size(&self) -> usize {
        self.approximate_bytes
    }

    /// Collects the buffered entries whose keys fall inside
    /// `(start, end)`, in key order. Returns an owned snapshot — the
    /// scan path calls this under a brief read lock and then iterates
    /// without holding any lock. An inverted/empty range yields no
    /// entries (never panics, unlike raw `BTreeMap::range`).
    #[must_use]
    pub fn range(&self, start: &std::ops::Bound<Key>, end: &std::ops::Bound<Key>) -> Vec<Entry> {
        use std::ops::Bound;
        let empty = match (start, end) {
            (Bound::Included(s), Bound::Included(e)) => s > e,
            (Bound::Included(s), Bound::Excluded(e))
            | (Bound::Excluded(s), Bound::Included(e))
            | (Bound::Excluded(s), Bound::Excluded(e)) => s >= e,
            _ => false,
        };
        if empty {
            return Vec::new();
        }
        self.entries
            .range((start.clone(), end.clone()))
            .map(|(key, (value, seqno, kind))| Entry {
                key: key.clone(),
                value: value.clone(),
                seqno: *seqno,
                kind: *kind,
            })
            .collect()
    }

    /// Iterates the buffered entries in key order (the order they will be
    /// written to an sstable on flush).
    pub fn iter(&self) -> impl Iterator<Item = Entry> + '_ {
        self.entries
            .iter()
            .map(|(key, (value, seqno, kind))| Entry {
                key: key.clone(),
                value: value.clone(),
                seqno: *seqno,
                kind: *kind,
            })
    }

    /// Empties the memtable. The flush path snapshots entries with
    /// [`Memtable::iter`] first, publishes the new sstable to readers,
    /// and only then clears — so a concurrent read always finds the data
    /// in at least one of the two places.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.approximate_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::key_from_u64;

    #[test]
    fn put_get_overwrite() {
        let mut mt = Memtable::new(10);
        mt.put(key_from_u64(1), Bytes::from_static(b"v1"), 1);
        mt.put(key_from_u64(1), Bytes::from_static(b"v2"), 2);
        let e = mt.get(&key_from_u64(1)).unwrap();
        assert_eq!(e.value.as_ref(), b"v2");
        assert_eq!(e.seqno, 2);
        assert_eq!(mt.len(), 1);
        assert!(mt.get(&key_from_u64(9)).is_none());
    }

    #[test]
    fn delete_leaves_tombstone() {
        let mut mt = Memtable::new(10);
        mt.put(key_from_u64(1), Bytes::from_static(b"v"), 1);
        mt.delete(key_from_u64(1), 2);
        let e = mt.get(&key_from_u64(1)).unwrap();
        assert!(e.is_tombstone());
        assert_eq!(mt.len(), 1, "tombstone still occupies the key slot");
    }

    #[test]
    fn capacity_counts_distinct_keys() {
        let mut mt = Memtable::new(3);
        for _ in 0..100 {
            mt.put(key_from_u64(7), Bytes::from_static(b"x"), 1);
        }
        assert!(!mt.is_full(), "duplicates must not fill the memtable");
        mt.put(key_from_u64(8), Bytes::from_static(b"x"), 2);
        mt.put(key_from_u64(9), Bytes::from_static(b"x"), 3);
        assert!(mt.is_full());
        assert_eq!(mt.capacity(), 3);
    }

    #[test]
    fn iter_returns_key_order_and_clear_empties() {
        let mut mt = Memtable::new(10);
        for key in [5u64, 1, 9, 3] {
            mt.put(key_from_u64(key), Bytes::from_static(b"x"), key);
        }
        let keys: Vec<u64> = mt
            .iter()
            .map(|e| crate::types::key_to_u64(&e.key).unwrap())
            .collect();
        assert_eq!(keys, vec![1, 3, 5, 9]);
        assert_eq!(mt.len(), 4, "iter does not drain");
        mt.clear();
        assert!(mt.is_empty());
        assert_eq!(mt.approximate_size(), 0);
    }

    #[test]
    fn approximate_size_tracks_overwrites() {
        let mut mt = Memtable::new(10);
        mt.put(key_from_u64(1), Bytes::from(vec![0u8; 100]), 1);
        let size_big = mt.approximate_size();
        mt.put(key_from_u64(1), Bytes::from(vec![0u8; 10]), 2);
        assert!(mt.approximate_size() < size_big);
    }
}
