//! The in-memory write buffer.

use std::collections::BTreeMap;

use bytes::Bytes;

use crate::types::{Entry, Key, RangeTombstone, SeqNo, Value, ValueKind};

/// A sorted in-memory buffer of recent writes.
//
/// With no snapshot pinned the memtable keeps exactly one (the newest)
/// version per user key: repeated updates to the same key overwrite in
/// place, which is why flushed sstables "may be smaller and vary in
/// size" (paper, Section 5.1) even though every memtable receives the
/// same number of operations. Capacity is expressed in distinct keys to
/// match the paper's "memtable size" parameter.
///
/// When snapshots are pinned ([`Memtable::set_retain_floor`]), older
/// versions that a pinned reader can still observe are retained
/// alongside the newest one, ordered newest-first per key. Range
/// deletes ([`Memtable::delete_range`]) are kept in a side list — one
/// record per delete, never expanded per covered key.
///
/// # Examples
///
/// ```
/// use lsm_engine::Memtable;
/// use bytes::Bytes;
///
/// let mut mt = Memtable::new(2);
/// mt.put(Bytes::from_static(b"a"), Bytes::from_static(b"1"), 1);
/// mt.put(Bytes::from_static(b"a"), Bytes::from_static(b"2"), 2);
/// assert_eq!(mt.len(), 1, "updates to the same key collapse");
/// assert!(!mt.is_full());
/// mt.put(Bytes::from_static(b"b"), Bytes::from_static(b"3"), 3);
/// assert!(mt.is_full());
/// ```
#[derive(Debug, Clone)]
pub struct Memtable {
    /// Versions per key, newest (largest seqno) first.
    entries: BTreeMap<Key, Vec<(Value, SeqNo, ValueKind)>>,
    range_dels: Vec<RangeTombstone>,
    capacity_keys: usize,
    approximate_bytes: usize,
    /// Oldest pinned sequence number: versions a reader pinned at or
    /// above this floor could still observe are retained on overwrite.
    /// `u64::MAX` (the default) keeps only the newest version.
    retain_floor: SeqNo,
}

impl Memtable {
    /// Creates an empty memtable that is considered full once it holds
    /// `capacity_keys` distinct keys.
    #[must_use]
    pub fn new(capacity_keys: usize) -> Self {
        Self {
            entries: BTreeMap::new(),
            range_dels: Vec::new(),
            capacity_keys: capacity_keys.max(1),
            approximate_bytes: 0,
            retain_floor: SeqNo::MAX,
        }
    }

    /// Sets the multi-version retention floor: the smallest sequence
    /// number any active snapshot is pinned at (`u64::MAX` when none).
    /// An overwrite keeps every version down to — and including — the
    /// newest version at or below the floor; everything older is
    /// unobservable by any current or future reader and is dropped.
    pub fn set_retain_floor(&mut self, floor: SeqNo) {
        self.retain_floor = floor;
    }

    /// Inserts a live value for `key` (overwriting versions no pinned
    /// reader can observe).
    pub fn put(&mut self, key: Key, value: Value, seqno: SeqNo) {
        self.insert(key, value, seqno, ValueKind::Put);
    }

    /// Records a deletion tombstone for `key`.
    pub fn delete(&mut self, key: Key, seqno: SeqNo) {
        self.insert(key, Bytes::new(), seqno, ValueKind::Tombstone);
    }

    /// Records a range tombstone over `[start, end)` — a single record
    /// regardless of how many keys the interval covers.
    pub fn delete_range(&mut self, start: Key, end: Key, seqno: SeqNo) {
        let rd = RangeTombstone::new(start, end, seqno);
        self.approximate_bytes += rd.encoded_size();
        self.range_dels.push(rd);
    }

    fn insert(&mut self, key: Key, value: Value, seqno: SeqNo, kind: ValueKind) {
        self.approximate_bytes += key.len() + value.len() + 17;
        let versions = self.entries.entry(key.clone()).or_default();
        // Writes arrive in seqno order, so the new version is newest.
        versions.insert(0, (value, seqno, kind));
        // Keep the newest version plus everything a pinned reader could
        // still observe: scan newest-first and cut after the first
        // version at or below the retention floor.
        let mut keep = versions.len();
        for (i, (_, s, _)) in versions.iter().enumerate() {
            if *s <= self.retain_floor {
                keep = i + 1;
                break;
            }
        }
        for (old_value, _, _) in versions.drain(keep..) {
            self.approximate_bytes = self
                .approximate_bytes
                .saturating_sub(key.len() + old_value.len() + 17);
        }
    }

    /// Looks up the newest version of `key`, if present. A tombstone is
    /// reported as `Some(entry)` with [`Entry::is_tombstone`] true so the
    /// read path can stop searching older sstables. Range deletes are
    /// *not* consulted here — visibility against them is resolved by the
    /// caller, which must check every layer's range tombstones.
    #[must_use]
    pub fn get(&self, key: &[u8]) -> Option<Entry> {
        self.get_visible(key, SeqNo::MAX)
    }

    /// Looks up the newest version of `key` with `seqno <= upto` — the
    /// pinned-snapshot variant of [`Memtable::get`].
    #[must_use]
    pub fn get_visible(&self, key: &[u8], upto: SeqNo) -> Option<Entry> {
        let versions = self.entries.get(key)?;
        versions
            .iter()
            .find(|(_, seqno, _)| *seqno <= upto)
            .map(|(value, seqno, kind)| Entry {
                key: Bytes::copy_from_slice(key),
                value: value.clone(),
                seqno: *seqno,
                kind: *kind,
            })
    }

    /// The buffered range tombstones, in write order.
    #[must_use]
    pub fn range_dels(&self) -> &[RangeTombstone] {
        &self.range_dels
    }

    /// The largest range-tombstone seqno at or below `upto` covering
    /// `key`, or `None` when no buffered range delete covers it.
    #[must_use]
    pub fn max_covering_range_del(&self, key: &[u8], upto: SeqNo) -> Option<SeqNo> {
        self.range_dels
            .iter()
            .filter(|rd| rd.seqno <= upto && rd.covers(key))
            .map(|rd| rd.seqno)
            .max()
    }

    /// Number of distinct keys currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no writes (point or range) are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.range_dels.is_empty()
    }

    /// Returns `true` once the memtable has reached its key capacity and
    /// should be flushed.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity_keys
    }

    /// The configured key capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity_keys
    }

    /// Approximate memory footprint of the buffered entries in bytes.
    #[must_use]
    pub fn approximate_size(&self) -> usize {
        self.approximate_bytes
    }

    /// Collects the buffered entries whose keys fall inside
    /// `(start, end)`, in internal-key order (key ascending, versions
    /// newest-first). Returns an owned snapshot — the scan path calls
    /// this under a brief read lock and then iterates without holding
    /// any lock. An inverted/empty range yields no entries (never
    /// panics, unlike raw `BTreeMap::range`).
    #[must_use]
    pub fn range(&self, start: &std::ops::Bound<Key>, end: &std::ops::Bound<Key>) -> Vec<Entry> {
        use std::ops::Bound;
        let empty = match (start, end) {
            (Bound::Included(s), Bound::Included(e)) => s > e,
            (Bound::Included(s), Bound::Excluded(e))
            | (Bound::Excluded(s), Bound::Included(e))
            | (Bound::Excluded(s), Bound::Excluded(e)) => s >= e,
            _ => false,
        };
        if empty {
            return Vec::new();
        }
        self.entries
            .range((start.clone(), end.clone()))
            .flat_map(|(key, versions)| {
                versions.iter().map(move |(value, seqno, kind)| Entry {
                    key: key.clone(),
                    value: value.clone(),
                    seqno: *seqno,
                    kind: *kind,
                })
            })
            .collect()
    }

    /// Iterates the buffered entries in internal-key order (the order
    /// they will be written to an sstable on flush): key ascending,
    /// versions of one key newest-first.
    pub fn iter(&self) -> impl Iterator<Item = Entry> + '_ {
        self.entries.iter().flat_map(|(key, versions)| {
            versions.iter().map(move |(value, seqno, kind)| Entry {
                key: key.clone(),
                value: value.clone(),
                seqno: *seqno,
                kind: *kind,
            })
        })
    }

    /// Empties the memtable. The flush path snapshots entries with
    /// [`Memtable::iter`] first, publishes the new sstable to readers,
    /// and only then clears — so a concurrent read always finds the data
    /// in at least one of the two places.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.range_dels.clear();
        self.approximate_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::key_from_u64;

    #[test]
    fn put_get_overwrite() {
        let mut mt = Memtable::new(10);
        mt.put(key_from_u64(1), Bytes::from_static(b"v1"), 1);
        mt.put(key_from_u64(1), Bytes::from_static(b"v2"), 2);
        let e = mt.get(&key_from_u64(1)).unwrap();
        assert_eq!(e.value.as_ref(), b"v2");
        assert_eq!(e.seqno, 2);
        assert_eq!(mt.len(), 1);
        assert!(mt.get(&key_from_u64(9)).is_none());
    }

    #[test]
    fn delete_leaves_tombstone() {
        let mut mt = Memtable::new(10);
        mt.put(key_from_u64(1), Bytes::from_static(b"v"), 1);
        mt.delete(key_from_u64(1), 2);
        let e = mt.get(&key_from_u64(1)).unwrap();
        assert!(e.is_tombstone());
        assert_eq!(mt.len(), 1, "tombstone still occupies the key slot");
    }

    #[test]
    fn capacity_counts_distinct_keys() {
        let mut mt = Memtable::new(3);
        for _ in 0..100 {
            mt.put(key_from_u64(7), Bytes::from_static(b"x"), 1);
        }
        assert!(!mt.is_full(), "duplicates must not fill the memtable");
        mt.put(key_from_u64(8), Bytes::from_static(b"x"), 2);
        mt.put(key_from_u64(9), Bytes::from_static(b"x"), 3);
        assert!(mt.is_full());
        assert_eq!(mt.capacity(), 3);
    }

    #[test]
    fn iter_returns_key_order_and_clear_empties() {
        let mut mt = Memtable::new(10);
        for key in [5u64, 1, 9, 3] {
            mt.put(key_from_u64(key), Bytes::from_static(b"x"), key);
        }
        let keys: Vec<u64> = mt
            .iter()
            .map(|e| crate::types::key_to_u64(&e.key).unwrap())
            .collect();
        assert_eq!(keys, vec![1, 3, 5, 9]);
        assert_eq!(mt.len(), 4, "iter does not drain");
        mt.clear();
        assert!(mt.is_empty());
        assert_eq!(mt.approximate_size(), 0);
    }

    #[test]
    fn approximate_size_tracks_overwrites() {
        let mut mt = Memtable::new(10);
        mt.put(key_from_u64(1), Bytes::from(vec![0u8; 100]), 1);
        let size_big = mt.approximate_size();
        mt.put(key_from_u64(1), Bytes::from(vec![0u8; 10]), 2);
        assert!(mt.approximate_size() < size_big);
    }

    #[test]
    fn retain_floor_keeps_versions_pinned_readers_need() {
        let mut mt = Memtable::new(10);
        mt.put(key_from_u64(1), Bytes::from_static(b"v5"), 5);
        // A snapshot pinned at seqno 5 must keep seeing v5 across
        // overwrites.
        mt.set_retain_floor(5);
        mt.put(key_from_u64(1), Bytes::from_static(b"v8"), 8);
        mt.put(key_from_u64(1), Bytes::from_static(b"v9"), 9);
        assert_eq!(mt.len(), 1, "capacity still counts distinct keys");
        assert_eq!(mt.get(&key_from_u64(1)).unwrap().value.as_ref(), b"v9");
        assert_eq!(
            mt.get_visible(&key_from_u64(1), 5).unwrap().value.as_ref(),
            b"v5"
        );
        assert_eq!(
            mt.get_visible(&key_from_u64(1), 8).unwrap().value.as_ref(),
            b"v8",
            "intermediate versions above the floor are retained"
        );
        assert!(mt.get_visible(&key_from_u64(1), 4).is_none());
        // Releasing the pin lets the next overwrite collapse history.
        mt.set_retain_floor(SeqNo::MAX);
        mt.put(key_from_u64(1), Bytes::from_static(b"v12"), 12);
        assert!(mt.get_visible(&key_from_u64(1), 9).is_none());
        let versions: Vec<Entry> = mt.iter().collect();
        assert_eq!(versions.len(), 1, "history collapsed to the newest");
    }

    #[test]
    fn range_delete_is_one_record_and_coverage_queries_work() {
        let mut mt = Memtable::new(10);
        mt.put(key_from_u64(1), Bytes::from_static(b"a"), 1);
        mt.put(key_from_u64(5), Bytes::from_static(b"b"), 2);
        let before = mt.approximate_size();
        mt.delete_range(key_from_u64(0), key_from_u64(100), 3);
        assert_eq!(mt.range_dels().len(), 1);
        assert!(mt.approximate_size() > before);
        assert_eq!(mt.len(), 2, "range delete does not occupy key slots");
        assert!(!mt.is_empty());
        assert_eq!(mt.max_covering_range_del(&key_from_u64(5), u64::MAX), Some(3));
        assert_eq!(
            mt.max_covering_range_del(&key_from_u64(5), 2),
            None,
            "a snapshot pinned before the delete does not see it"
        );
        assert_eq!(mt.max_covering_range_del(&key_from_u64(100), u64::MAX), None);
        mt.clear();
        assert!(mt.range_dels().is_empty());
        assert!(mt.is_empty());
    }

    #[test]
    fn multi_version_range_returns_newest_first_per_key() {
        let mut mt = Memtable::new(10);
        mt.set_retain_floor(0);
        mt.put(key_from_u64(1), Bytes::from_static(b"old"), 1);
        mt.put(key_from_u64(1), Bytes::from_static(b"new"), 2);
        let entries = mt.range(
            &std::ops::Bound::Unbounded,
            &std::ops::Bound::Unbounded,
        );
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].seqno, 2, "newest version first");
        assert_eq!(entries[1].seqno, 1);
    }
}
