//! Streaming, snapshot-consistent range scans.
//!
//! [`Lsm::range`] returns a [`RangeIter`]: a lazy k-way merge over
//!
//! * a **memtable view** — the in-range entries of the active memtable
//!   *and* of every generation parked on the frozen-memtable queue
//!   (background-maintenance mode), copied out under brief read locks
//!   when the scan (re)builds its state;
//! * one cursor per live sstable that **can** contain keys in the range.
//!   Tables whose persisted min/max meta is disjoint from the scan
//!   bounds are pruned before their blooms or blocks are ever touched
//!   (key-range-partitioned probing, counted in
//!   [`LsmStats::range_pruned_tables`](crate::LsmStats)); tables whose
//!   v1-era meta lacks min/max keys are always probed, never skipped.
//!
//! Entries stream out newest-wins with tombstones suppressed. Each
//! table cursor walks the shared readahead-aware block cursor
//! ([`BlockCursor`]): one ranged read fetches up to
//! [`LsmOptions::scan_readahead_blocks`](crate::LsmOptions::scan_readahead_blocks)
//! consecutive blocks (never past the block covering the scan's end
//! bound), decoded lazily, bypassing the block cache by default
//! ([`LsmOptions::scan_fill_cache`](crate::LsmOptions::scan_fill_cache))
//! so a long scan cannot flush the hot set. Nothing is materialized
//! beyond one decoded block and one raw prefetched span per probed
//! table.
//!
//! # Consistency under concurrent compaction
//!
//! The scan pins the ArcSwap'd table snapshot current at build time. If
//! a compaction retires a pinned table mid-iteration and its blob is
//! already deleted, the scan — exactly like [`Lsm::get`] — reloads the
//! freshest snapshot and resumes after the last key it returned: the
//! merged data is, by construction, in the compaction output, so no key
//! is lost or duplicated. Entries past the resume point reflect the
//! newer snapshot (which can only contain newer versions).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

use crate::db::{LsmInner, ReadView};
use crate::reader::{BlockCursor, SstableReader};
use crate::types::{Entry, InternalKey, Key, RangeTombstone, SeqNo, Value};
use crate::Error;

/// Clones a borrowed `Bound<&Key>` into an owned one.
fn clone_bound(bound: Bound<&Key>) -> Bound<Key> {
    match bound {
        Bound::Included(k) => Bound::Included(k.clone()),
        Bound::Excluded(k) => Bound::Excluded(k.clone()),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// Borrows an owned bound as `Bound<&[u8]>` (what the reader's range
/// check takes).
fn as_byte_bound(bound: &Bound<Key>) -> Bound<&[u8]> {
    match bound {
        Bound::Included(k) => Bound::Included(k.as_ref()),
        Bound::Excluded(k) => Bound::Excluded(k.as_ref()),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// `true` when `key` lies beyond the scan's end bound.
fn past_end(key: &[u8], end: &Bound<Key>) -> bool {
    match end {
        Bound::Included(e) => key > e.as_ref(),
        Bound::Excluded(e) => key >= e.as_ref(),
        Bound::Unbounded => false,
    }
}

/// `true` when `key` precedes the scan's start bound.
fn before_start(key: &[u8], start: &Bound<Key>) -> bool {
    match start {
        Bound::Included(s) => key < s.as_ref(),
        Bound::Excluded(s) => key <= s.as_ref(),
        Bound::Unbounded => false,
    }
}

/// A streaming range scan over an [`Lsm`] store.
///
/// Yields `(key, value)` pairs in ascending key order, newest version
/// per key, tombstones suppressed. Produced by [`Lsm::range`] /
/// [`Lsm::range_u64`]; see the [module docs](self) for the consistency
/// contract.
#[derive(Debug)]
pub struct RangeIter<'a> {
    db: &'a LsmInner,
    /// Resume position: the original start bound, tightened to
    /// `Excluded(last emitted key)` as the scan advances so a rebuilt
    /// state continues exactly where the previous one stopped.
    cursor: Bound<Key>,
    end: Bound<Key>,
    /// Visibility ceiling: records sequenced after this LSN are skipped
    /// before newest-wins dedup, so a pinned scan resolves each key to
    /// the newest version *at the snapshot*, not the newest overall.
    /// `SeqNo::MAX` for plain [`Lsm::range`] scans.
    upto: SeqNo,
    state: Option<ScanState>,
    done: bool,
}

impl<'a> RangeIter<'a> {
    pub(crate) fn new(db: &'a LsmInner, range: impl RangeBounds<Key>) -> Self {
        Self::pinned(db, range, SeqNo::MAX)
    }

    /// A scan that only observes records with `seqno <= upto` — the
    /// engine side of [`Snapshot::range`](crate::Snapshot::range).
    pub(crate) fn pinned(db: &'a LsmInner, range: impl RangeBounds<Key>, upto: SeqNo) -> Self {
        Self {
            db,
            cursor: clone_bound(range.start_bound()),
            end: clone_bound(range.end_bound()),
            upto,
            state: None,
            done: false,
        }
    }

    /// Builds (or rebuilds, after a compaction retired a pinned table)
    /// the merge state from the freshest snapshot, retrying the build
    /// itself if it races another flip.
    fn build_state(&mut self) -> Result<ScanState, Error> {
        loop {
            // Read in the opposite order of data flow (active memtable →
            // frozen queue → tables): a freeze moves entries active →
            // frozen and a flush publishes its table *before* popping the
            // frozen generation, so an entry racing either hand-off is
            // seen by at least one stage (duplicates deduplicate
            // newest-wins in the merge).
            let memtable = self.db.memtable_range(&self.cursor, &self.end);
            let frozen = self.db.frozen_ranges(&self.cursor, &self.end);
            let snapshot = self.db.read_view();
            match ScanState::build(
                self.db,
                snapshot.clone(),
                frozen,
                memtable,
                &self.cursor,
                &self.end,
                self.upto,
            ) {
                Ok(state) => return Ok(state),
                Err(e) if is_retired_table(&e) && self.db.read_view_changed(&snapshot) => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl Iterator for RangeIter<'_> {
    type Item = Result<(Key, Value), Error>;

    fn next(&mut self) -> Option<Self::Item> {
        let started = std::time::Instant::now();
        let item = self.next_inner();
        self.db.record_scan_next(started.elapsed());
        item
    }
}

impl RangeIter<'_> {
    fn next_inner(&mut self) -> Option<Result<(Key, Value), Error>> {
        if self.done {
            return None;
        }
        loop {
            if self.state.is_none() {
                match self.build_state() {
                    Ok(state) => self.state = Some(state),
                    Err(e) => {
                        self.done = true;
                        return Some(Err(e));
                    }
                }
            }
            let state = self.state.as_mut().expect("state built above");
            match state.next_merged(self.db) {
                None => {
                    self.done = true;
                    return None;
                }
                Some(Ok(entry)) => {
                    self.cursor = Bound::Excluded(entry.key.clone());
                    if entry.is_tombstone() {
                        continue;
                    }
                    return Some(Ok((entry.key, entry.value)));
                }
                Some(Err(e)) => {
                    let snapshot = &self.state.as_ref().expect("state").snapshot;
                    if is_retired_table(&e) && self.db.read_view_changed(snapshot) {
                        // A pinned table was compacted away mid-scan:
                        // resume from the freshest snapshot after the
                        // last key this scan handled.
                        self.state = None;
                        continue;
                    }
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

/// `true` for the error a scan sees when a pinned table was retired by
/// compaction and its blob already deleted.
fn is_retired_table(e: &Error) -> bool {
    matches!(e, Error::Io(io) if io.kind() == std::io::ErrorKind::NotFound)
}

/// One merge source: a frozen memtable slice or a lazy sstable cursor.
#[derive(Debug)]
enum Source {
    Frozen(std::vec::IntoIter<Entry>),
    Table(TableCursor),
}

impl Source {
    fn next_entry(&mut self, db: &LsmInner, end: &Bound<Key>) -> Option<Result<Entry, Error>> {
        match self {
            Source::Frozen(iter) => iter.next().map(Ok),
            Source::Table(cursor) => cursor.next_entry(db, end),
        }
    }
}

/// Lazily walks one sstable's in-range entries on the shared
/// [`BlockCursor`]: seeked to the block covering the scan cursor at
/// build time (so a rebuilt scan never re-fetches fully-consumed
/// blocks), readahead-limited to the block covering the end bound,
/// yielding entries without the per-block clone pass the old cursor
/// paid.
#[derive(Debug)]
struct TableCursor {
    reader: Arc<SstableReader>,
    core: BlockCursor,
    /// Set once an entry at/past the end bound (or an error) is seen:
    /// no later entry can be in range.
    exhausted: bool,
    /// Entries inside the first block that precede this bound are
    /// skipped before anything is yielded.
    start: Bound<Key>,
    started: bool,
}

impl TableCursor {
    fn new(reader: Arc<SstableReader>, start: &Bound<Key>, end: &Bound<Key>) -> Self {
        let block_idx = reader.seek_block_idx(start);
        let limit = reader.end_block_limit(end);
        Self {
            reader,
            core: BlockCursor::with_limit(block_idx, limit),
            exhausted: false,
            start: start.clone(),
            started: false,
        }
    }

    fn next_entry(&mut self, db: &LsmInner, end: &Bound<Key>) -> Option<Result<Entry, Error>> {
        if self.exhausted {
            return None;
        }
        let ctx = db.scan_read_ctx();
        let next = if self.started {
            self.core.next_entry(&self.reader, ctx)
        } else {
            self.started = true;
            let start = self.start.clone();
            self.core
                .skip_while(&self.reader, ctx, |e| before_start(&e.key, &start))
        };
        match next {
            Some(Ok(entry)) => {
                if past_end(&entry.key, end) {
                    self.exhausted = true;
                    return None;
                }
                Some(Ok(entry))
            }
            Some(Err(e)) => {
                self.exhausted = true;
                Some(Err(e))
            }
            None => None,
        }
    }
}

/// A heap item: the next entry of one source, ordered so the smallest
/// internal key pops first and, on exact internal-key ties, the newer
/// source wins (sources are listed oldest-first).
#[derive(Debug, PartialEq, Eq)]
struct HeapItem {
    key: InternalKey,
    source: usize,
    entry: Entry,
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key
            .cmp(&other.key)
            .then_with(|| other.source.cmp(&self.source))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The merge state over one pinned snapshot.
#[derive(Debug)]
struct ScanState {
    pub(crate) snapshot: Arc<ReadView>,
    sources: Vec<Source>,
    heap: BinaryHeap<Reverse<HeapItem>>,
    end: Bound<Key>,
    /// Visibility ceiling inherited from the [`RangeIter`].
    upto: SeqNo,
    /// Every visible range tombstone (memtable, frozen queue, and all
    /// probed tables), applied globally: an entry is suppressed when any
    /// of these shadows it. Correct regardless of which layer holds the
    /// tombstone, because shadowing is pure seqno arithmetic.
    range_dels: Vec<RangeTombstone>,
    last_emitted: Option<Key>,
}

impl ScanState {
    /// Builds the merge over `snapshot`: opens (via the table cache) a
    /// cursor for every live table overlapping `(cursor, end)`, pruning
    /// the rest by their persisted min/max meta, and primes the heap.
    ///
    /// Pruning never loses a range tombstone: a table's persisted
    /// min/max keys are widened over its range-tombstone bounds, so any
    /// table whose tombstones could touch the scan interval overlaps it
    /// and is probed.
    #[allow(clippy::too_many_arguments)]
    fn build(
        db: &LsmInner,
        snapshot: Arc<ReadView>,
        frozen: Vec<Vec<Entry>>,
        memtable: Vec<Entry>,
        cursor: &Bound<Key>,
        end: &Bound<Key>,
        upto: SeqNo,
    ) -> Result<Self, Error> {
        let start_ref = as_byte_bound(cursor);
        let end_ref = as_byte_bound(end);
        // Sources oldest-first — tables, then frozen generations (oldest
        // queued first), then the active memtable last: on internal-key
        // ties the higher source index (the newer data) wins.
        let mut sources: Vec<Source> = Vec::new();
        let mut range_dels = db.memtable_range_dels(upto);
        let mut pruned = 0u64;
        for meta in snapshot.tables.iter().rev() {
            let reader = db.open_reader(meta)?;
            if reader.may_overlap(start_ref, end_ref) {
                range_dels.extend(
                    reader
                        .range_dels()
                        .iter()
                        .filter(|rd| rd.seqno <= upto)
                        .cloned(),
                );
                sources.push(Source::Table(TableCursor::new(reader, cursor, end)));
            } else {
                pruned += 1;
            }
        }
        for generation in frozen {
            sources.push(Source::Frozen(generation.into_iter()));
        }
        sources.push(Source::Frozen(memtable.into_iter()));
        db.record_range_pruned(pruned);

        let mut state = Self {
            snapshot,
            sources,
            heap: BinaryHeap::new(),
            end: end.clone(),
            upto,
            range_dels,
            last_emitted: None,
        };
        for idx in 0..state.sources.len() {
            state.advance_source(db, idx)?;
        }
        Ok(state)
    }

    /// Pulls the next entry from source `idx` onto the heap.
    fn advance_source(&mut self, db: &LsmInner, idx: usize) -> Result<(), Error> {
        if let Some(result) = self.sources[idx].next_entry(db, &self.end) {
            let entry = result?;
            self.heap.push(Reverse(HeapItem {
                key: entry.internal_key(),
                source: idx,
                entry,
            }));
        }
        Ok(())
    }

    /// The next in-range entry in internal-key order, newest version per
    /// user key (possibly a tombstone — the caller suppresses those).
    fn next_merged(&mut self, db: &LsmInner) -> Option<Result<Entry, Error>> {
        while let Some(Reverse(item)) = self.heap.pop() {
            if let Err(e) = self.advance_source(db, item.source) {
                return Some(Err(e));
            }
            if past_end(&item.entry.key, &self.end) {
                // Defensive: cursors filter per block, so this is only
                // reachable for frozen sources, which pre-filter too.
                continue;
            }
            if item.entry.seqno > self.upto {
                // Newer than the pinned LSN. Skipped *before* the dedup
                // below so an invisible newer version doesn't mask the
                // snapshot-visible older one behind it.
                continue;
            }
            if self
                .last_emitted
                .as_ref()
                .is_some_and(|last| *last == item.entry.key)
            {
                continue; // older version of an already-handled key
            }
            self.last_emitted = Some(item.entry.key.clone());
            if self
                .range_dels
                .iter()
                .any(|rd| rd.shadows(&item.entry.key, item.entry.seqno))
            {
                // The newest visible version is range-deleted; every
                // older version has a smaller seqno and is shadowed by
                // the same tombstone, so the dedup above retires the
                // whole key.
                continue;
            }
            return Some(Ok(item.entry));
        }
        None
    }
}
