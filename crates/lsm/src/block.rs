//! Data block encoding for sstables.
//!
//! A block is a sorted sequence of entries encoded as length-prefixed
//! records followed by a CRC32 checksum. Blocks are the unit of read I/O
//! within a single sstable; the sstable index maps the last key of each
//! block to its offset, so point lookups binary-search the index and
//! decode a single block.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::types::{Entry, ValueKind};
use crate::Error;

/// Incrementally builds one encoded data block from sorted entries.
#[derive(Debug, Default)]
pub struct BlockBuilder {
    buf: BytesMut,
    count: u32,
    first_key: Option<Bytes>,
    last_key: Option<Bytes>,
}

impl BlockBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry. Entries must be appended in internal-key order;
    /// the builder does not reorder them.
    pub fn add(&mut self, entry: &Entry) {
        if self.first_key.is_none() {
            self.first_key = Some(entry.key.clone());
        }
        self.last_key = Some(entry.key.clone());
        self.buf.put_u32_le(entry.key.len() as u32);
        self.buf.put_slice(&entry.key);
        self.buf.put_u32_le(entry.value.len() as u32);
        self.buf.put_slice(&entry.value);
        self.buf.put_u64_le(entry.seqno);
        self.buf.put_u8(entry.kind.as_u8());
        self.count += 1;
    }

    /// Number of entries added so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Returns `true` if no entry has been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Current encoded payload size in bytes (before the trailer).
    #[must_use]
    pub fn size_in_bytes(&self) -> usize {
        self.buf.len()
    }

    /// First key added to the block, if any.
    #[must_use]
    pub fn first_key(&self) -> Option<&Bytes> {
        self.first_key.as_ref()
    }

    /// Last key added to the block, if any.
    #[must_use]
    pub fn last_key(&self) -> Option<&Bytes> {
        self.last_key.as_ref()
    }

    /// Finishes the block: appends the entry count and CRC32 trailer and
    /// returns the encoded bytes, resetting the builder for reuse.
    #[must_use]
    pub fn finish(&mut self) -> Bytes {
        let mut out = BytesMut::with_capacity(self.buf.len() + 8);
        out.put_slice(&self.buf);
        out.put_u32_le(self.count);
        let crc = crc32(&out);
        out.put_u32_le(crc);
        self.buf.clear();
        self.count = 0;
        self.first_key = None;
        self.last_key = None;
        out.freeze()
    }
}

/// A decoded, immutable data block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    entries: Vec<Entry>,
}

impl Block {
    /// Decodes a block produced by [`BlockBuilder::finish`], verifying its
    /// checksum.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] if the trailer is missing, the CRC
    /// does not match, or a record is truncated.
    pub fn decode(data: &[u8]) -> Result<Self, Error> {
        if data.len() < 8 {
            return Err(Error::corruption("block shorter than trailer"));
        }
        let (payload_and_count, crc_bytes) = data.split_at(data.len() - 4);
        let stored_crc = u32::from_le_bytes(crc_bytes.try_into().expect("split at 4"));
        if crc32(payload_and_count) != stored_crc {
            return Err(Error::corruption("block checksum mismatch"));
        }
        let (payload, count_bytes) = payload_and_count.split_at(payload_and_count.len() - 4);
        let count = u32::from_le_bytes(count_bytes.try_into().expect("split at 4"));

        let mut entries = Vec::with_capacity(count as usize);
        let mut cursor = payload;
        for _ in 0..count {
            if cursor.remaining() < 4 {
                return Err(Error::corruption("truncated key length"));
            }
            let klen = cursor.get_u32_le() as usize;
            if cursor.remaining() < klen {
                return Err(Error::corruption("truncated key"));
            }
            let key = Bytes::copy_from_slice(&cursor[..klen]);
            cursor.advance(klen);
            if cursor.remaining() < 4 {
                return Err(Error::corruption("truncated value length"));
            }
            let vlen = cursor.get_u32_le() as usize;
            if cursor.remaining() < vlen {
                return Err(Error::corruption("truncated value"));
            }
            let value = Bytes::copy_from_slice(&cursor[..vlen]);
            cursor.advance(vlen);
            if cursor.remaining() < 9 {
                return Err(Error::corruption("truncated entry metadata"));
            }
            let seqno = cursor.get_u64_le();
            let kind = ValueKind::from_u8(cursor.get_u8())
                .ok_or_else(|| Error::corruption("unknown value kind tag"))?;
            entries.push(Entry {
                key,
                value,
                seqno,
                kind,
            });
        }
        if cursor.has_remaining() {
            return Err(Error::corruption("trailing bytes after last entry"));
        }
        Ok(Self { entries })
    }

    /// The decoded entries, in the order they were added.
    #[must_use]
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Number of entries in the block.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the block holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate resident size of the decoded block: the struct, its
    /// entry vector, and the key/value bytes the entries own. The
    /// block cache charges this — it stores *decoded* blocks, so
    /// charging encoded (possibly compressed) length would understate
    /// RAM by the compression ratio.
    #[must_use]
    pub fn mem_size(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.entries.capacity() * std::mem::size_of::<Entry>()
            + self
                .entries
                .iter()
                .map(|e| e.key.len() + e.value.len())
                .sum::<usize>()
    }

    /// Finds the newest entry for `key` within this block.
    #[must_use]
    pub fn get(&self, key: &[u8]) -> Option<&Entry> {
        // Entries are sorted by (user key asc, seqno desc); the first
        // entry at or after `key` is therefore the newest version of it,
        // reachable by binary search instead of a linear scan.
        let idx = self.entries.partition_point(|e| e.key.as_ref() < key);
        self.entries.get(idx).filter(|e| e.key.as_ref() == key)
    }

    /// Finds the newest entry for `key` with `seqno <= upto` — the
    /// pinned-snapshot variant of [`Block::get`]. Versions of one user
    /// key are adjacent (key asc, seqno desc) and the sstable builder
    /// never splits a key across blocks, so the walk stays local.
    #[must_use]
    pub fn get_visible(&self, key: &[u8], upto: u64) -> Option<&Entry> {
        let idx = self.entries.partition_point(|e| e.key.as_ref() < key);
        self.entries[idx..]
            .iter()
            .take_while(|e| e.key.as_ref() == key)
            .find(|e| e.seqno <= upto)
    }

    /// Consumes the block, returning its entries.
    #[must_use]
    pub fn into_entries(self) -> Vec<Entry> {
        self.entries
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) computed bytewise.
#[must_use]
pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::key_from_u64;

    fn sample_entries(n: u64) -> Vec<Entry> {
        (0..n)
            .map(|i| {
                if i % 7 == 0 {
                    Entry::tombstone(key_from_u64(i), 100 + i)
                } else {
                    Entry::put(key_from_u64(i), Bytes::from(format!("value-{i}")), 100 + i)
                }
            })
            .collect()
    }

    #[test]
    fn crc32_known_vector() {
        // "123456789" has the well-known CRC-32 of 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn build_and_decode_roundtrip() {
        let entries = sample_entries(100);
        let mut builder = BlockBuilder::new();
        for e in &entries {
            builder.add(e);
        }
        assert_eq!(builder.len(), 100);
        assert!(!builder.is_empty());
        assert_eq!(builder.first_key().unwrap(), &key_from_u64(0));
        assert_eq!(builder.last_key().unwrap(), &key_from_u64(99));
        let encoded = builder.finish();
        assert!(builder.is_empty(), "finish resets the builder");

        let block = Block::decode(&encoded).unwrap();
        assert_eq!(block.entries(), entries.as_slice());
        assert_eq!(block.get(&key_from_u64(13)).unwrap().seqno, 113);
        assert!(block.get(b"missing!").is_none());
    }

    #[test]
    fn decode_detects_corruption() {
        let mut builder = BlockBuilder::new();
        for e in sample_entries(10) {
            builder.add(&e);
        }
        let encoded = builder.finish();
        let mut tampered = encoded.to_vec();
        tampered[3] ^= 0xFF;
        assert!(matches!(
            Block::decode(&tampered),
            Err(Error::Corruption { .. })
        ));
        assert!(Block::decode(&encoded[..4]).is_err());
        assert!(Block::decode(&[]).is_err());
    }

    #[test]
    fn empty_block_roundtrips() {
        let mut builder = BlockBuilder::new();
        let encoded = builder.finish();
        let block = Block::decode(&encoded).unwrap();
        assert!(block.is_empty());
        assert_eq!(block.len(), 0);
    }
}
