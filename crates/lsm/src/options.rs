//! Engine configuration.

use compaction_core::{SizeEstimator, Strategy};
use obs::EventRing;

use crate::compress::CompressionType;

/// An injected maintenance-event sink, compared by ring identity so
/// `LsmOptions` keeps its derived `PartialEq`/`Eq` (two option sets are
/// equal when they share the same ring, not when two distinct rings
/// happen to hold equal contents).
#[derive(Debug, Clone)]
struct EventSinkOpt(EventRing);

impl PartialEq for EventSinkOpt {
    fn eq(&self, other: &Self) -> bool {
        self.0.same_ring(&other.0)
    }
}

impl Eq for EventSinkOpt {}

/// When the engine compacts on its own.
///
/// Checked by [`Lsm::maybe_compact`](crate::Lsm::maybe_compact) after
/// every memtable flush. This is the knob that turns the paper's
/// scheduling heuristics from a library the caller must drive into a
/// self-compacting engine: the policy decides *when* to compact, the
/// configured [`Strategy`] decides *what to merge in which order*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompactionPolicy {
    /// Never compact, not even via
    /// [`Lsm::auto_compact`](crate::Lsm::auto_compact) (manually
    /// constructed [`Lsm::major_compact`](crate::Lsm::major_compact)
    /// schedules still execute).
    Disabled,
    /// No automatic triggering; planner-driven compaction runs only when
    /// the caller invokes [`Lsm::auto_compact`](crate::Lsm::auto_compact).
    /// The default, matching the seed engine's behavior.
    #[default]
    Manual,
    /// Compact automatically whenever a flush leaves at least
    /// `live_tables` sstables live (the analogue of RocksDB's
    /// `level0_file_num_compaction_trigger`).
    Threshold {
        /// Live-table count that triggers a compaction (≥ 2).
        live_tables: usize,
    },
    /// Compact automatically after every `flushes` memtable flushes.
    EveryNFlushes {
        /// Flush count between automatic compactions (≥ 1).
        flushes: u64,
    },
}

impl CompactionPolicy {
    /// `true` if this policy ever fires automatically after a flush.
    #[must_use]
    pub fn is_automatic(&self) -> bool {
        matches!(self, Self::Threshold { .. } | Self::EveryNFlushes { .. })
    }
}

/// Configuration for an [`Lsm`](crate::Lsm) instance.
///
/// The defaults mirror the paper's simulator settings: memtables are
/// bounded by a *key-count* capacity (the paper's "memtable size" is the
/// number of keys before a flush), compaction fan-in `k = 2`, and
/// tombstones are dropped during major compaction. Compaction planning
/// defaults to the paper's recommended `BT(I)` strategy with exact size
/// observations, triggered manually.
///
/// # Examples
///
/// ```
/// use lsm_engine::{CompactionPolicy, LsmOptions};
/// use compaction_core::Strategy;
///
/// let opts = LsmOptions::default()
///     .memtable_capacity(1_000)
///     .compaction_fanin(2)
///     .compaction_policy(CompactionPolicy::Threshold { live_tables: 8 })
///     .compaction_strategy(Strategy::SmallestOutput)
///     .bloom_bits_per_key(10);
/// assert_eq!(opts.memtable_capacity_keys(), 1_000);
/// assert!(opts.policy().is_automatic());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LsmOptions {
    memtable_capacity_keys: usize,
    block_size: usize,
    bloom_bits_per_key: usize,
    compaction_fanin: usize,
    drop_tombstones_on_major_compaction: bool,
    wal_enabled: bool,
    compaction_policy: CompactionPolicy,
    compaction_strategy: Strategy,
    planning_estimator: SizeEstimator,
    compaction_threads: usize,
    table_cache_capacity: usize,
    block_cache_capacity_bytes: u64,
    fill_cache: bool,
    scan_fill_cache: bool,
    scan_readahead_blocks: usize,
    compression: CompressionType,
    background_maintenance: bool,
    slowdown_trigger: usize,
    stop_trigger: usize,
    frozen_queue_limit: usize,
    adaptive_strategy: bool,
    event_sink: Option<EventSinkOpt>,
    shard_tag: u32,
    strict_recovery: bool,
    tombstone_gc: bool,
    gc_min_tombstones: u64,
}

impl Default for LsmOptions {
    fn default() -> Self {
        Self {
            memtable_capacity_keys: 1_000,
            block_size: 4 * 1024,
            bloom_bits_per_key: 10,
            compaction_fanin: 2,
            drop_tombstones_on_major_compaction: true,
            wal_enabled: true,
            compaction_policy: CompactionPolicy::Manual,
            compaction_strategy: Strategy::BalanceTreeInput,
            planning_estimator: SizeEstimator::Exact,
            compaction_threads: 1,
            table_cache_capacity: 64,
            block_cache_capacity_bytes: 8 * 1024 * 1024,
            fill_cache: true,
            scan_fill_cache: false,
            scan_readahead_blocks: 8,
            compression: CompressionType::Lz,
            background_maintenance: false,
            slowdown_trigger: 2,
            stop_trigger: 4,
            frozen_queue_limit: 8,
            adaptive_strategy: false,
            event_sink: None,
            shard_tag: 0,
            strict_recovery: false,
            tombstone_gc: false,
            gc_min_tombstones: 1,
        }
    }
}

impl LsmOptions {
    /// Creates the default options (equivalent to [`Default::default`]).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets how many distinct keys a memtable holds before it is flushed.
    /// This is the paper's "memtable size" knob (varied 10–10 000 in
    /// Figure 8).
    #[must_use]
    pub fn memtable_capacity(mut self, keys: usize) -> Self {
        self.memtable_capacity_keys = keys.max(1);
        self
    }

    /// Sets the target uncompressed size of sstable data blocks in bytes.
    #[must_use]
    pub fn block_size(mut self, bytes: usize) -> Self {
        self.block_size = bytes.max(64);
        self
    }

    /// Sets the bloom-filter budget in bits per key (0 disables blooms).
    #[must_use]
    pub fn bloom_bits_per_key(mut self, bits: usize) -> Self {
        self.bloom_bits_per_key = bits;
        self
    }

    /// Sets the compaction fan-in `k`: how many sstables a single merge
    /// operation may read (the paper's `k`, default 2).
    #[must_use]
    pub fn compaction_fanin(mut self, k: usize) -> Self {
        self.compaction_fanin = k.max(2);
        self
    }

    /// Controls whether tombstones are physically dropped when a major
    /// compaction produces the final single sstable.
    #[must_use]
    pub fn drop_tombstones(mut self, drop: bool) -> Self {
        self.drop_tombstones_on_major_compaction = drop;
        self
    }

    /// Enables or disables the write-ahead log.
    #[must_use]
    pub fn wal(mut self, enabled: bool) -> Self {
        self.wal_enabled = enabled;
        self
    }

    /// Sets when the engine compacts on its own (default
    /// [`CompactionPolicy::Manual`]).
    #[must_use]
    pub fn compaction_policy(mut self, policy: CompactionPolicy) -> Self {
        self.compaction_policy = match policy {
            CompactionPolicy::Threshold { live_tables } => CompactionPolicy::Threshold {
                live_tables: live_tables.max(2),
            },
            CompactionPolicy::EveryNFlushes { flushes } => CompactionPolicy::EveryNFlushes {
                flushes: flushes.max(1),
            },
            other => other,
        };
        self
    }

    /// Sets the merge-scheduling strategy used by policy-driven
    /// compaction (default [`Strategy::BalanceTreeInput`], the paper's
    /// recommendation).
    #[must_use]
    pub fn compaction_strategy(mut self, strategy: Strategy) -> Self {
        self.compaction_strategy = strategy;
        self
    }

    /// Sets how the planner estimates union sizes: exact counting or
    /// HyperLogLog sketches (the paper's `SO(E)` variant).
    #[must_use]
    pub fn planning_estimator(mut self, estimator: SizeEstimator) -> Self {
        self.planning_estimator = estimator;
        self
    }

    /// Sets the maximum number of merge steps executed concurrently
    /// within one dependency wave of a compaction (default 1 =
    /// sequential; BALANCETREE schedules benefit most, as in the paper's
    /// parallel evaluation).
    #[must_use]
    pub fn compaction_threads(mut self, threads: usize) -> Self {
        self.compaction_threads = threads.max(1);
        self
    }

    /// Sets how many sstable reader handles (parsed footer + bloom +
    /// index, no data blocks) the engine keeps open, LRU-evicted beyond
    /// that (default 64; clamped to ≥ 8). A warm point read resolves its
    /// tables entirely from this cache.
    #[must_use]
    pub fn table_cache_capacity(mut self, tables: usize) -> Self {
        self.table_cache_capacity = tables.max(8);
        self
    }

    /// Sets the decoded-data-block cache budget in bytes (default
    /// 8 MiB). Blocks are charged at their decoded in-memory footprint
    /// — not the (possibly compressed) stored size — and LRU-evicted;
    /// a warm point read served from this cache does zero storage I/O.
    #[must_use]
    pub fn block_cache_capacity_bytes(mut self, bytes: u64) -> Self {
        self.block_cache_capacity_bytes = bytes.max(1);
        self
    }

    /// Controls whether point reads insert the blocks they fetch into
    /// the block cache (default `true`). Full scans always bypass the
    /// cache so they cannot flush the hot set.
    #[must_use]
    pub fn fill_cache(mut self, fill: bool) -> Self {
        self.fill_cache = fill;
        self
    }

    /// Controls whether range scans ([`Lsm::range`](crate::Lsm::range))
    /// insert the blocks they fetch into the block cache (default
    /// `false`: a long scan sweeping cold blocks must not flush the hot
    /// set a point-read workload built up).
    #[must_use]
    pub fn scan_fill_cache(mut self, fill: bool) -> Self {
        self.scan_fill_cache = fill;
        self
    }

    /// Sets how many consecutive data blocks one ranged read may fetch
    /// when a range scan walks an sstable (default 8, clamped to ≥ 1;
    /// 1 restores one-block-per-round-trip). Spans never extend past
    /// the block covering the scan's end bound, and the prefetched
    /// blocks decode lazily — readahead trades one larger read for
    /// fewer storage round-trips, which is what scan throughput on a
    /// latency-bound backend is made of. Point reads always fetch
    /// exactly one block.
    #[must_use]
    pub fn scan_readahead_blocks(mut self, blocks: usize) -> Self {
        self.scan_readahead_blocks = blocks.max(1);
        self
    }

    /// Sets the per-block compression applied by the sstable builder
    /// (default [`CompressionType::Lz`]). Newly built tables always
    /// carry the v3 per-block envelope — [`CompressionType::None`]
    /// stores blocks raw inside it — and blocks that do not shrink
    /// fall back to raw storage individually. Existing v1/v2 tables
    /// remain readable regardless of this knob.
    #[must_use]
    pub fn compression(mut self, compression: CompressionType) -> Self {
        self.compression = compression;
        self
    }

    /// Enables background maintenance: a full memtable freezes onto an
    /// immutable queue in O(1) (drained to sstables by a dedicated flush
    /// thread) and policy-driven compaction runs on a scheduler thread
    /// off the write lock, so client writes never wait on sstable I/O
    /// (default `false`: flush and compaction run inline, the seed
    /// engine's behavior).
    #[must_use]
    pub fn background_maintenance(mut self, enabled: bool) -> Self {
        self.background_maintenance = enabled;
        self
    }

    /// Sets the maintenance-debt level (frozen memtables waiting on the
    /// flush thread plus live tables past the compaction trigger) at
    /// which writes are delayed by a bounded sleep (default 2, clamped
    /// to ≥ 1). The analogue of RocksDB's `level0_slowdown_writes_trigger`;
    /// only consulted when background maintenance is enabled.
    #[must_use]
    pub fn slowdown_trigger(mut self, debt: usize) -> Self {
        self.slowdown_trigger = debt.max(1);
        self
    }

    /// Sets the maintenance-debt level at which writes block until the
    /// backlog drains below it (default 4, clamped to ≥ 2). The analogue
    /// of RocksDB's `level0_stop_writes_trigger`; only consulted when
    /// background maintenance is enabled.
    #[must_use]
    pub fn stop_trigger(mut self, debt: usize) -> Self {
        self.stop_trigger = debt.max(2);
        self
    }

    /// Sets the hard cap on frozen memtables queued for the flush thread
    /// (default 8, clamped to ≥ 2). A writer that would freeze past this
    /// limit blocks until the flush thread retires a generation,
    /// bounding memory regardless of the stall triggers.
    #[must_use]
    pub fn frozen_queue_limit(mut self, generations: usize) -> Self {
        self.frozen_queue_limit = generations.max(2);
        self
    }

    /// Enables pressure-adaptive strategy selection for background
    /// compaction (default `false`): an idle engine plans with
    /// `SmallestOutput` (cheapest total I/O), a backlogged one with the
    /// configured strategy (typically `BT(I)`, widest parallelism) — the
    /// scheduling result the paper gestures at.
    #[must_use]
    pub fn adaptive_strategy(mut self, enabled: bool) -> Self {
        self.adaptive_strategy = enabled;
        self
    }

    /// Injects a shared maintenance-event ring: the store records its
    /// lifecycle events (freezes, flushes, compactions, stall-tier
    /// transitions) into `ring` instead of a private one. A sharded
    /// deployment passes one ring to every shard so events interleave
    /// under a single drain cursor; pair with
    /// [`LsmOptions::shard_tag`] so each event says which shard emitted
    /// it.
    #[must_use]
    pub fn event_sink(mut self, ring: EventRing) -> Self {
        self.event_sink = Some(EventSinkOpt(ring));
        self
    }

    /// Tags every event and metric this store emits with a shard id
    /// (default 0). Only meaningful alongside a shared
    /// [`LsmOptions::event_sink`].
    #[must_use]
    pub fn shard_tag(mut self, shard: u32) -> Self {
        self.shard_tag = shard;
        self
    }

    /// Refuses to open instead of shedding history (default `false`).
    ///
    /// WAL recovery distinguishes a *torn tail* (a crash mid-append —
    /// the partial frame was never acknowledged, truncating it is
    /// lossless) from *bit rot* (a checksum-mismatched frame with valid
    /// frames after it — acknowledged history is gone). By default the
    /// engine quarantines the rotten frame, salvages the decodable
    /// frames after it, and reports the loss through
    /// [`LsmStats`](crate::LsmStats); with strict recovery the open
    /// fails with [`Error::Corruption`](crate::Error) instead, so an
    /// operator can intervene before the store serves a gapped history.
    #[must_use]
    pub fn strict_recovery(mut self, strict: bool) -> Self {
        self.strict_recovery = strict;
        self
    }

    /// Enables tombstone garbage collection (default `false`): the
    /// background scheduler may rewrite a single sstable to drop
    /// tombstones that provably shadow nothing — no *other* live
    /// table's bloom/min-max admits the key — reclaiming space without
    /// waiting for a full major compaction. GC competes with merge
    /// compaction through the planner's predicted-cost accounting and
    /// only runs when the configured policy has no merge to schedule.
    #[must_use]
    pub fn tombstone_gc(mut self, enabled: bool) -> Self {
        self.tombstone_gc = enabled;
        self
    }

    /// Sets how many tombstones a table must carry before tombstone GC
    /// considers rewriting it (default 1, clamped ≥ 1). Higher values
    /// trade space reclamation latency for fewer rewrites.
    #[must_use]
    pub fn gc_min_tombstones(mut self, tombstones: u64) -> Self {
        self.gc_min_tombstones = tombstones.max(1);
        self
    }

    /// Memtable capacity in distinct keys.
    #[must_use]
    pub fn memtable_capacity_keys(&self) -> usize {
        self.memtable_capacity_keys
    }

    /// Data block size in bytes.
    #[must_use]
    pub fn block_size_bytes(&self) -> usize {
        self.block_size
    }

    /// Bloom filter bits per key.
    #[must_use]
    pub fn bloom_bits(&self) -> usize {
        self.bloom_bits_per_key
    }

    /// Compaction fan-in `k`.
    #[must_use]
    pub fn fanin(&self) -> usize {
        self.compaction_fanin
    }

    /// Whether major compaction drops tombstones.
    #[must_use]
    pub fn drops_tombstones(&self) -> bool {
        self.drop_tombstones_on_major_compaction
    }

    /// Whether the WAL is enabled.
    #[must_use]
    pub fn wal_enabled(&self) -> bool {
        self.wal_enabled
    }

    /// The configured compaction policy.
    #[must_use]
    pub fn policy(&self) -> CompactionPolicy {
        self.compaction_policy
    }

    /// The configured planning strategy.
    #[must_use]
    pub fn strategy(&self) -> Strategy {
        self.compaction_strategy
    }

    /// The configured planning estimator.
    #[must_use]
    pub fn estimator(&self) -> SizeEstimator {
        self.planning_estimator
    }

    /// The configured per-wave merge concurrency.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.compaction_threads
    }

    /// Open-reader (table) cache capacity in tables.
    #[must_use]
    pub fn table_cache_tables(&self) -> usize {
        self.table_cache_capacity
    }

    /// Block cache budget in bytes.
    #[must_use]
    pub fn block_cache_bytes(&self) -> u64 {
        self.block_cache_capacity_bytes
    }

    /// Whether point reads populate the block cache.
    #[must_use]
    pub fn fills_cache(&self) -> bool {
        self.fill_cache
    }

    /// Whether range scans populate the block cache.
    #[must_use]
    pub fn scan_fills_cache(&self) -> bool {
        self.scan_fill_cache
    }

    /// Consecutive blocks one scan round-trip may fetch (≥ 1).
    #[must_use]
    pub fn scan_readahead(&self) -> usize {
        self.scan_readahead_blocks
    }

    /// The per-block compression newly built sstables use.
    #[must_use]
    pub fn compression_type(&self) -> CompressionType {
        self.compression
    }

    /// Whether flush and compaction run on background threads.
    #[must_use]
    pub fn background_maintenance_enabled(&self) -> bool {
        self.background_maintenance
    }

    /// Maintenance-debt level that delays writes (bounded sleep).
    #[must_use]
    pub fn slowdown_trigger_debt(&self) -> usize {
        self.slowdown_trigger
    }

    /// Maintenance-debt level that blocks writes until it drains.
    /// Never below the slowdown trigger: the tiers cannot invert.
    #[must_use]
    pub fn stop_trigger_debt(&self) -> usize {
        self.stop_trigger.max(self.slowdown_trigger)
    }

    /// Hard cap on queued frozen memtable generations.
    #[must_use]
    pub fn frozen_queue_limit_generations(&self) -> usize {
        self.frozen_queue_limit
    }

    /// Whether background compaction picks its strategy from pressure.
    #[must_use]
    pub fn adaptive_strategy_enabled(&self) -> bool {
        self.adaptive_strategy
    }

    /// The injected shared event ring, if any (a cheap handle clone).
    #[must_use]
    pub fn event_sink_ring(&self) -> Option<EventRing> {
        self.event_sink.as_ref().map(|sink| sink.0.clone())
    }

    /// The shard id stamped on this store's events.
    #[must_use]
    pub fn shard_tag_id(&self) -> u32 {
        self.shard_tag
    }

    /// Whether recovery refuses to open on acked-history loss.
    #[must_use]
    pub fn strict_recovery_enabled(&self) -> bool {
        self.strict_recovery
    }

    /// Whether tombstone GC may schedule single-table rewrites.
    #[must_use]
    pub fn tombstone_gc_enabled(&self) -> bool {
        self.tombstone_gc
    }

    /// Minimum tombstones in a table before GC considers it.
    #[must_use]
    pub fn gc_min_tombstones_per_table(&self) -> u64 {
        self.gc_min_tombstones
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_setters_clamp_and_store() {
        let opts = LsmOptions::new()
            .memtable_capacity(0)
            .block_size(1)
            .compaction_fanin(1)
            .bloom_bits_per_key(0)
            .drop_tombstones(false)
            .compaction_threads(0)
            .table_cache_capacity(0)
            .block_cache_capacity_bytes(0)
            .fill_cache(false)
            .scan_fill_cache(true)
            .scan_readahead_blocks(0)
            .compression(CompressionType::None)
            .background_maintenance(true)
            .slowdown_trigger(0)
            .stop_trigger(0)
            .frozen_queue_limit(0)
            .adaptive_strategy(true)
            .strict_recovery(true)
            .tombstone_gc(true)
            .gc_min_tombstones(0)
            .wal(false);
        assert_eq!(opts.memtable_capacity_keys(), 1, "capacity clamps to 1");
        assert_eq!(opts.block_size_bytes(), 64, "block size clamps to 64");
        assert_eq!(opts.fanin(), 2, "fan-in clamps to 2");
        assert_eq!(opts.threads(), 1, "threads clamp to 1");
        assert_eq!(opts.bloom_bits(), 0);
        assert_eq!(opts.table_cache_tables(), 8, "table cache clamps to 8");
        assert_eq!(opts.block_cache_bytes(), 1, "block cache clamps to 1");
        assert!(!opts.fills_cache());
        assert!(opts.scan_fills_cache());
        assert_eq!(opts.scan_readahead(), 1, "readahead clamps to 1");
        assert_eq!(opts.compression_type(), CompressionType::None);
        assert!(!opts.drops_tombstones());
        assert!(!opts.wal_enabled());
        assert!(opts.background_maintenance_enabled());
        assert!(opts.adaptive_strategy_enabled());
        assert_eq!(opts.slowdown_trigger_debt(), 1, "slowdown clamps to 1");
        assert_eq!(opts.stop_trigger_debt(), 2, "stop clamps to 2");
        assert_eq!(
            opts.frozen_queue_limit_generations(),
            2,
            "queue limit clamps to 2"
        );
        assert!(opts.strict_recovery_enabled());
        assert!(opts.tombstone_gc_enabled());
        assert_eq!(
            opts.gc_min_tombstones_per_table(),
            1,
            "gc threshold clamps to 1"
        );
    }

    #[test]
    fn stop_trigger_never_inverts_below_slowdown() {
        let opts = LsmOptions::new().slowdown_trigger(10).stop_trigger(3);
        assert_eq!(opts.slowdown_trigger_debt(), 10);
        assert_eq!(opts.stop_trigger_debt(), 10, "stop raised to slowdown");
    }

    #[test]
    fn defaults_match_paper_simulator() {
        let opts = LsmOptions::default();
        assert_eq!(opts.memtable_capacity_keys(), 1_000);
        assert_eq!(opts.fanin(), 2);
        assert!(opts.drops_tombstones());
        assert_eq!(opts.policy(), CompactionPolicy::Manual);
        assert_eq!(opts.strategy(), Strategy::BalanceTreeInput);
        assert_eq!(opts.estimator(), SizeEstimator::Exact);
        assert_eq!(opts.threads(), 1);
        assert_eq!(opts.table_cache_tables(), 64);
        assert_eq!(opts.block_cache_bytes(), 8 * 1024 * 1024);
        assert!(opts.fills_cache());
        assert!(
            !opts.scan_fills_cache(),
            "scans bypass the cache by default"
        );
        assert_eq!(opts.scan_readahead(), 8, "scans read ahead by default");
        assert_eq!(
            opts.compression_type(),
            CompressionType::Lz,
            "new tables compress their blocks by default"
        );
        assert!(
            !opts.background_maintenance_enabled(),
            "maintenance is inline by default, matching the seed engine"
        );
        assert!(!opts.adaptive_strategy_enabled());
        assert_eq!(opts.slowdown_trigger_debt(), 2);
        assert_eq!(opts.stop_trigger_debt(), 4);
        assert_eq!(opts.frozen_queue_limit_generations(), 8);
        assert!(
            !opts.strict_recovery_enabled(),
            "lenient recovery by default: salvage and report"
        );
        assert!(!opts.tombstone_gc_enabled());
        assert_eq!(opts.gc_min_tombstones_per_table(), 1);
    }

    #[test]
    fn event_sink_compares_by_ring_identity() {
        let ring = EventRing::new(8);
        let a = LsmOptions::default().event_sink(ring.clone()).shard_tag(3);
        let b = LsmOptions::default().event_sink(ring.clone()).shard_tag(3);
        assert_eq!(a, b, "clones of one ring compare equal");
        let c = LsmOptions::default()
            .event_sink(EventRing::new(8))
            .shard_tag(3);
        assert_ne!(a, c, "a distinct ring is a different configuration");
        assert!(a.event_sink_ring().unwrap().same_ring(&ring));
        assert_eq!(a.shard_tag_id(), 3);
        assert!(LsmOptions::default().event_sink_ring().is_none());
    }

    #[test]
    fn policy_clamps_and_classifies() {
        let opts =
            LsmOptions::default().compaction_policy(CompactionPolicy::Threshold { live_tables: 0 });
        assert_eq!(
            opts.policy(),
            CompactionPolicy::Threshold { live_tables: 2 }
        );
        assert!(opts.policy().is_automatic());

        let opts =
            LsmOptions::default().compaction_policy(CompactionPolicy::EveryNFlushes { flushes: 0 });
        assert_eq!(
            opts.policy(),
            CompactionPolicy::EveryNFlushes { flushes: 1 }
        );
        assert!(opts.policy().is_automatic());

        assert!(!CompactionPolicy::Manual.is_automatic());
        assert!(!CompactionPolicy::Disabled.is_automatic());
    }
}
