//! Engine configuration.

/// Configuration for an [`Lsm`](crate::Lsm) instance.
///
/// The defaults mirror the paper's simulator settings: memtables are
/// bounded by a *key-count* capacity (the paper's "memtable size" is the
/// number of keys before a flush), compaction fan-in `k = 2`, and
/// tombstones are dropped during major compaction.
///
/// # Examples
///
/// ```
/// use lsm_engine::LsmOptions;
///
/// let opts = LsmOptions::default()
///     .memtable_capacity(1_000)
///     .compaction_fanin(2)
///     .bloom_bits_per_key(10);
/// assert_eq!(opts.memtable_capacity_keys(), 1_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LsmOptions {
    memtable_capacity_keys: usize,
    block_size: usize,
    bloom_bits_per_key: usize,
    compaction_fanin: usize,
    drop_tombstones_on_major_compaction: bool,
    wal_enabled: bool,
}

impl Default for LsmOptions {
    fn default() -> Self {
        Self {
            memtable_capacity_keys: 1_000,
            block_size: 4 * 1024,
            bloom_bits_per_key: 10,
            compaction_fanin: 2,
            drop_tombstones_on_major_compaction: true,
            wal_enabled: true,
        }
    }
}

impl LsmOptions {
    /// Creates the default options (equivalent to [`Default::default`]).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets how many distinct keys a memtable holds before it is flushed.
    /// This is the paper's "memtable size" knob (varied 10–10 000 in
    /// Figure 8).
    #[must_use]
    pub fn memtable_capacity(mut self, keys: usize) -> Self {
        self.memtable_capacity_keys = keys.max(1);
        self
    }

    /// Sets the target uncompressed size of sstable data blocks in bytes.
    #[must_use]
    pub fn block_size(mut self, bytes: usize) -> Self {
        self.block_size = bytes.max(64);
        self
    }

    /// Sets the bloom-filter budget in bits per key (0 disables blooms).
    #[must_use]
    pub fn bloom_bits_per_key(mut self, bits: usize) -> Self {
        self.bloom_bits_per_key = bits;
        self
    }

    /// Sets the compaction fan-in `k`: how many sstables a single merge
    /// operation may read (the paper's `k`, default 2).
    #[must_use]
    pub fn compaction_fanin(mut self, k: usize) -> Self {
        self.compaction_fanin = k.max(2);
        self
    }

    /// Controls whether tombstones are physically dropped when a major
    /// compaction produces the final single sstable.
    #[must_use]
    pub fn drop_tombstones(mut self, drop: bool) -> Self {
        self.drop_tombstones_on_major_compaction = drop;
        self
    }

    /// Enables or disables the write-ahead log.
    #[must_use]
    pub fn wal(mut self, enabled: bool) -> Self {
        self.wal_enabled = enabled;
        self
    }

    /// Memtable capacity in distinct keys.
    #[must_use]
    pub fn memtable_capacity_keys(&self) -> usize {
        self.memtable_capacity_keys
    }

    /// Data block size in bytes.
    #[must_use]
    pub fn block_size_bytes(&self) -> usize {
        self.block_size
    }

    /// Bloom filter bits per key.
    #[must_use]
    pub fn bloom_bits(&self) -> usize {
        self.bloom_bits_per_key
    }

    /// Compaction fan-in `k`.
    #[must_use]
    pub fn fanin(&self) -> usize {
        self.compaction_fanin
    }

    /// Whether major compaction drops tombstones.
    #[must_use]
    pub fn drops_tombstones(&self) -> bool {
        self.drop_tombstones_on_major_compaction
    }

    /// Whether the WAL is enabled.
    #[must_use]
    pub fn wal_enabled(&self) -> bool {
        self.wal_enabled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_setters_clamp_and_store() {
        let opts = LsmOptions::new()
            .memtable_capacity(0)
            .block_size(1)
            .compaction_fanin(1)
            .bloom_bits_per_key(0)
            .drop_tombstones(false)
            .wal(false);
        assert_eq!(opts.memtable_capacity_keys(), 1, "capacity clamps to 1");
        assert_eq!(opts.block_size_bytes(), 64, "block size clamps to 64");
        assert_eq!(opts.fanin(), 2, "fan-in clamps to 2");
        assert_eq!(opts.bloom_bits(), 0);
        assert!(!opts.drops_tombstones());
        assert!(!opts.wal_enabled());
    }

    #[test]
    fn defaults_match_paper_simulator() {
        let opts = LsmOptions::default();
        assert_eq!(opts.memtable_capacity_keys(), 1_000);
        assert_eq!(opts.fanin(), 2);
        assert!(opts.drops_tombstones());
    }
}
