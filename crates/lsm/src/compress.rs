//! In-tree block compression for the v3 sstable format.
//!
//! Every v3 data block is stored inside a small envelope:
//!
//! ```text
//! +-----+----------------------+------------------------+
//! | tag |       payload        | crc32(tag || payload)  |
//! | u8  |                      | u32 LE                 |
//! +-----+----------------------+------------------------+
//! ```
//!
//! * tag 0 (`None`) — payload is the raw logical block bytes.
//! * tag 1 (`Lz`)   — payload is `u32 LE` logical length followed by an
//!   LZ stream (below).
//!
//! The envelope CRC is verified *before* the tag is trusted, so a
//! bit-flipped tag or a torn payload surfaces as
//! [`Error::Corruption`] — never a panic, never a misdecoded block.
//! The logical block bytes keep their own trailing CRC (see
//! [`Block::decode`](crate::Block)), so corruption introduced anywhere
//! between build and decode is caught at one of the two layers.
//!
//! The workspace is offline (no crates.io), so the codec is a small
//! Snappy-style byte-oriented LZ implemented here: greedy hash-table
//! matching over 4-byte sequences, emitted as literal runs and
//! (length, distance) copies. The wire format is the contract; the
//! codec only has to be correct and cheap enough that decompression
//! beats the storage round-trips it saves. Blocks the codec cannot
//! shrink are stored with tag `None`, so pathological input costs five
//! bytes of framing, never an inflated payload.
//!
//! LZ stream format, driven by a control byte:
//!
//! * `0xxxxxxx` — literal run of `x + 1` bytes (1..=128) follows.
//! * `1xxxxxxx` — copy of `x + 4` bytes (4..=131) from `distance`
//!   bytes back, where `distance` is the next `u16 LE` (1..=65535).
//!   Distances shorter than the copy length overlap, giving RLE for
//!   free.

use std::borrow::Cow;

use crate::block::crc32;
use crate::Error;

/// Per-block compression applied by the sstable builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompressionType {
    /// Store block bytes raw (still CRC-framed in the v3 envelope).
    None,
    /// The in-tree byte-oriented LZ codec (Snappy-style greedy
    /// matcher). Falls back to `None` per block when it cannot shrink
    /// the bytes.
    #[default]
    Lz,
}

impl CompressionType {
    /// Human-readable name, used by benches and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::None => "none",
            Self::Lz => "lz",
        }
    }
}

/// Envelope tag: payload is the raw logical bytes.
const TAG_NONE: u8 = 0;
/// Envelope tag: payload is `u32 LE` logical length + LZ stream.
const TAG_LZ: u8 = 1;

/// Envelope framing overhead: tag byte + trailing CRC32.
pub(crate) const ENVELOPE_OVERHEAD: usize = 1 + 4;

/// Shortest possible match the LZ codec emits.
const MIN_MATCH: usize = 4;
/// Longest copy one control byte can encode.
const MAX_MATCH: usize = MIN_MATCH + 0x7F;
/// Matches further back than a `u16` distance cannot be encoded.
const MAX_DISTANCE: usize = u16::MAX as usize;
const HASH_BITS: u32 = 13;

/// Upper bound on a declared logical block length; anything larger is
/// corruption (blocks are built to a few KiB), and bounding it keeps a
/// rotten length prefix from driving a giant allocation.
const MAX_LOGICAL_LEN: usize = 1 << 30;

/// Wraps one logical data block in the v3 envelope, compressing the
/// payload per `ty` (with per-block fallback to raw when compression
/// does not shrink the bytes).
pub(crate) fn encode_block_envelope(ty: CompressionType, logical: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(logical.len() + ENVELOPE_OVERHEAD);
    match ty {
        CompressionType::None => {
            out.push(TAG_NONE);
            out.extend_from_slice(logical);
        }
        CompressionType::Lz => {
            let stream = lz_compress(logical);
            // Only keep the compressed form when it pays for its own
            // length prefix; otherwise store raw under tag None.
            if stream.len() + 4 < logical.len() {
                out.push(TAG_LZ);
                out.extend_from_slice(&(logical.len() as u32).to_le_bytes());
                out.extend_from_slice(&stream);
            } else {
                out.push(TAG_NONE);
                out.extend_from_slice(logical);
            }
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Unwraps a v3 block envelope back to the logical block bytes.
///
/// The envelope CRC is checked before anything else is trusted; an
/// unknown tag, bad stream, or logical-length mismatch is
/// [`Error::Corruption`].
pub(crate) fn decode_block_envelope(raw: &[u8]) -> Result<Cow<'_, [u8]>, Error> {
    if raw.len() < ENVELOPE_OVERHEAD {
        return Err(Error::corruption("block envelope shorter than framing"));
    }
    let (body, crc_bytes) = raw.split_at(raw.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(body) != stored {
        return Err(Error::corruption("block envelope checksum mismatch"));
    }
    let (tag, payload) = (body[0], &body[1..]);
    match tag {
        TAG_NONE => Ok(Cow::Borrowed(payload)),
        TAG_LZ => {
            if payload.len() < 4 {
                return Err(Error::corruption("compressed block missing length prefix"));
            }
            let logical_len =
                u32::from_le_bytes(payload[..4].try_into().expect("4 bytes")) as usize;
            if logical_len > MAX_LOGICAL_LEN {
                return Err(Error::corruption(
                    "compressed block logical length implausible",
                ));
            }
            Ok(Cow::Owned(lz_decompress(&payload[4..], logical_len)?))
        }
        _ => Err(Error::corruption("unknown block compression tag")),
    }
}

fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compresses `input` into an LZ stream (no framing; the caller adds
/// the logical-length prefix and envelope CRC).
pub(crate) fn lz_compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut literal_start = 0usize;
    let mut i = 0usize;
    while i + MIN_MATCH <= input.len() {
        let h = hash4(&input[i..]);
        let candidate = table[h];
        table[h] = i;
        if candidate != usize::MAX
            && i - candidate <= MAX_DISTANCE
            && input[candidate..candidate + MIN_MATCH] == input[i..i + MIN_MATCH]
        {
            let limit = (input.len() - i).min(MAX_MATCH);
            let mut len = MIN_MATCH;
            while len < limit && input[candidate + len] == input[i + len] {
                len += 1;
            }
            flush_literals(&mut out, &input[literal_start..i]);
            out.push(0x80 | (len - MIN_MATCH) as u8);
            out.extend_from_slice(&((i - candidate) as u16).to_le_bytes());
            i += len;
            literal_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(&mut out, &input[literal_start..]);
    out
}

fn flush_literals(out: &mut Vec<u8>, mut literals: &[u8]) {
    while !literals.is_empty() {
        let take = literals.len().min(128);
        out.push((take - 1) as u8);
        out.extend_from_slice(&literals[..take]);
        literals = &literals[take..];
    }
}

/// Decompresses an LZ stream that must expand to exactly
/// `logical_len` bytes; any structural mismatch is corruption.
pub(crate) fn lz_decompress(stream: &[u8], logical_len: usize) -> Result<Vec<u8>, Error> {
    let mut out = Vec::with_capacity(logical_len);
    let mut i = 0usize;
    while i < stream.len() {
        let ctrl = stream[i];
        i += 1;
        if ctrl & 0x80 == 0 {
            let run = ctrl as usize + 1;
            let literals = stream
                .get(i..i + run)
                .ok_or_else(|| Error::corruption("lz literal run past end of stream"))?;
            out.extend_from_slice(literals);
            i += run;
        } else {
            let len = (ctrl & 0x7F) as usize + MIN_MATCH;
            let distance_bytes = stream
                .get(i..i + 2)
                .ok_or_else(|| Error::corruption("lz match truncated"))?;
            let distance = u16::from_le_bytes([distance_bytes[0], distance_bytes[1]]) as usize;
            i += 2;
            if distance == 0 || distance > out.len() {
                return Err(Error::corruption("lz match distance out of range"));
            }
            let start = out.len() - distance;
            // Byte-by-byte: distances shorter than the copy length
            // overlap the bytes this loop has just appended.
            for j in 0..len {
                let byte = out[start + j];
                out.push(byte);
            }
        }
        if out.len() > logical_len {
            return Err(Error::corruption("lz stream overruns declared length"));
        }
    }
    if out.len() != logical_len {
        return Err(Error::corruption("lz stream shorter than declared length"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(input: &[u8]) {
        let stream = lz_compress(input);
        let back = lz_decompress(&stream, input.len()).unwrap();
        assert_eq!(back, input, "lz roundtrip of {} bytes", input.len());
    }

    #[test]
    fn lz_roundtrips_structured_and_degenerate_inputs() {
        roundtrip(b"");
        roundtrip(b"abc");
        roundtrip(&[0u8; 10_000]);
        roundtrip(b"abcabcabcabcabcabcabcabcabcabc");
        let blockish: Vec<u8> = (0..2_000u32)
            .flat_map(|i| {
                let mut e = format!("user{:08}", i % 37).into_bytes();
                e.extend_from_slice(&i.to_le_bytes());
                e
            })
            .collect();
        roundtrip(&blockish);
    }

    #[test]
    fn lz_roundtrips_incompressible_bytes() {
        // A cheap PRNG stream: almost no 4-byte repeats in range.
        let mut state = 0x12345678u64;
        let noise: Vec<u8> = (0..4096)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect();
        roundtrip(&noise);
    }

    #[test]
    fn lz_shrinks_repetitive_block_payloads() {
        let payload: Vec<u8> = (0..500u32)
            .flat_map(|i| format!("key-{:06}=value-{:06};", i, i).into_bytes())
            .collect();
        let stream = lz_compress(&payload);
        assert!(
            stream.len() * 2 < payload.len(),
            "structured payload must compress at least 2x: {} -> {}",
            payload.len(),
            stream.len()
        );
    }

    #[test]
    fn envelope_roundtrips_both_types() {
        let logical: Vec<u8> = (0..300u32)
            .flat_map(|i| format!("entry-{i:04}").into_bytes())
            .collect();
        for ty in [CompressionType::None, CompressionType::Lz] {
            let raw = encode_block_envelope(ty, &logical);
            let back = decode_block_envelope(&raw).unwrap();
            assert_eq!(back.as_ref(), logical.as_slice(), "{ty:?}");
        }
        let lz = encode_block_envelope(CompressionType::Lz, &logical);
        assert!(
            lz.len() < logical.len(),
            "compressible payload must shrink: {} -> {}",
            logical.len(),
            lz.len()
        );
    }

    #[test]
    fn envelope_falls_back_to_raw_for_incompressible_payloads() {
        let mut state = 0xDEADBEEFu64;
        let noise: Vec<u8> = (0..1024)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect();
        let raw = encode_block_envelope(CompressionType::Lz, &noise);
        assert_eq!(raw[0], TAG_NONE, "codec must not inflate noise");
        assert_eq!(raw.len(), noise.len() + ENVELOPE_OVERHEAD);
        assert_eq!(
            decode_block_envelope(&raw).unwrap().as_ref(),
            noise.as_slice()
        );
    }

    #[test]
    fn every_single_bit_flip_in_the_envelope_is_caught() {
        let logical: Vec<u8> = (0..200u32)
            .flat_map(|i| format!("key-{i:05}:payload").into_bytes())
            .collect();
        let good = encode_block_envelope(CompressionType::Lz, &logical);
        for byte in 0..good.len() {
            let mut bad = good.clone();
            bad[byte] ^= 0x10;
            match decode_block_envelope(&bad) {
                Err(Error::Corruption { .. }) => {}
                Ok(decoded) => panic!(
                    "flip at byte {byte} silently decoded ({} bytes)",
                    decoded.len()
                ),
                Err(other) => panic!("flip at byte {byte} gave non-corruption error {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_envelopes_are_corruption_not_panics() {
        let logical = b"some block payload with enough bytes to compress nicely nicely";
        let good = encode_block_envelope(CompressionType::Lz, logical);
        for cut in 0..good.len() {
            assert!(
                matches!(
                    decode_block_envelope(&good[..cut]),
                    Err(Error::Corruption { .. })
                ),
                "truncation at {cut} must be corruption"
            );
        }
    }
}
