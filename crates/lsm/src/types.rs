//! Core value types shared by every module of the engine.

use bytes::Bytes;

/// A user key. Keys are arbitrary byte strings ordered lexicographically;
/// the helper [`key_from_u64`] produces big-endian encoded integer keys
/// whose byte order matches numeric order, which is what the workload
/// generator and the compaction theory use.
pub type Key = Bytes;

/// A user value (opaque bytes).
pub type Value = Bytes;

/// Monotonically increasing sequence number assigned to every write.
///
/// Newer writes have larger sequence numbers; during compaction the entry
/// with the largest sequence number for a key wins.
pub type SeqNo = u64;

/// Encodes a `u64` key as 8 big-endian bytes so lexicographic order equals
/// numeric order.
#[must_use]
pub fn key_from_u64(key: u64) -> Key {
    Bytes::copy_from_slice(&key.to_be_bytes())
}

/// Decodes a key produced by [`key_from_u64`]. Returns `None` if the key
/// is not exactly 8 bytes.
#[must_use]
pub fn key_to_u64(key: &[u8]) -> Option<u64> {
    let arr: [u8; 8] = key.try_into().ok()?;
    Some(u64::from_be_bytes(arr))
}

/// Whether an entry stores a live value or a deletion tombstone.
///
/// Deletes in LSM stores are writes: a tombstone is appended and the key
/// is physically removed only when a major compaction observes the
/// tombstone as the newest version (Section 5.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ValueKind {
    /// A live key/value pair.
    Put,
    /// A deletion tombstone.
    Tombstone,
    /// A range tombstone: deletes every key in `[start, end)` older than
    /// its sequence number. The record's key holds the start bound and
    /// its value holds the exclusive end bound. Range deletes travel
    /// through the WAL and memtable like point writes but are stored in
    /// a dedicated sstable section, never in data blocks.
    RangeDelete,
}

impl ValueKind {
    /// Single-byte wire encoding.
    #[must_use]
    pub fn as_u8(self) -> u8 {
        match self {
            ValueKind::Put => 0,
            ValueKind::Tombstone => 1,
            ValueKind::RangeDelete => 2,
        }
    }

    /// Decodes the wire byte. Returns `None` for unknown tags.
    #[must_use]
    pub fn from_u8(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(ValueKind::Put),
            1 => Some(ValueKind::Tombstone),
            2 => Some(ValueKind::RangeDelete),
            _ => None,
        }
    }
}

/// A range tombstone: suppresses every version of every key in
/// `[start, end)` whose sequence number is **below** `seqno`.
///
/// One range delete costs O(1) records regardless of how many keys it
/// covers: the WAL logs a single [`ValueKind::RangeDelete`] record, the
/// memtable keeps it in a side list, and v4 sstables persist it in a
/// small resident section (never in data blocks), so readers check
/// coverage with zero block I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeTombstone {
    /// Inclusive start of the deleted interval.
    pub start: Key,
    /// Exclusive end of the deleted interval.
    pub end: Key,
    /// Sequence number of the range delete; versions written earlier
    /// (smaller seqno) inside the interval are deleted.
    pub seqno: SeqNo,
}

impl RangeTombstone {
    /// Creates a range tombstone over `[start, end)`.
    #[must_use]
    pub fn new(start: Key, end: Key, seqno: SeqNo) -> Self {
        Self { start, end, seqno }
    }

    /// Whether `key` lies inside the deleted interval.
    #[must_use]
    pub fn covers(&self, key: &[u8]) -> bool {
        key >= self.start.as_ref() && key < self.end.as_ref()
    }

    /// Whether a version of `key` written at `seqno` is deleted by this
    /// range tombstone (covered and strictly older).
    #[must_use]
    pub fn shadows(&self, key: &[u8], seqno: SeqNo) -> bool {
        seqno < self.seqno && self.covers(key)
    }

    /// Approximate in-memory / on-disk footprint in bytes.
    #[must_use]
    pub fn encoded_size(&self) -> usize {
        self.start.len() + self.end.len() + 8 + 8
    }
}

/// Conversion into a [`Key`], the single keyed entry point for
/// [`Lsm`](crate::Lsm) and [`Snapshot`](crate::Snapshot) operations.
///
/// One generic `put`/`get`/`delete` family replaces the parallel
/// `*_u64` method set: byte-ish types pass through and `u64` keys are
/// big-endian encoded (via [`key_from_u64`]) so lexicographic order
/// matches numeric order.
pub trait IntoKey {
    /// Converts `self` into a key.
    fn into_key(self) -> Key;
}

impl IntoKey for Key {
    fn into_key(self) -> Key {
        self
    }
}

impl IntoKey for &Key {
    fn into_key(self) -> Key {
        self.clone()
    }
}

impl IntoKey for Vec<u8> {
    fn into_key(self) -> Key {
        Bytes::from(self)
    }
}

impl IntoKey for &[u8] {
    fn into_key(self) -> Key {
        Bytes::copy_from_slice(self)
    }
}

impl<const N: usize> IntoKey for &[u8; N] {
    fn into_key(self) -> Key {
        Bytes::copy_from_slice(self)
    }
}

impl IntoKey for &str {
    fn into_key(self) -> Key {
        Bytes::copy_from_slice(self.as_bytes())
    }
}

impl IntoKey for String {
    fn into_key(self) -> Key {
        Bytes::from(self.into_bytes())
    }
}

impl IntoKey for u64 {
    fn into_key(self) -> Key {
        key_from_u64(self)
    }
}

/// An internal key: the user key plus the metadata that orders versions.
///
/// Internal keys sort by user key ascending, then by sequence number
/// *descending*, so that a forward scan visits the newest version of each
/// user key first.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InternalKey {
    /// The user key.
    pub user_key: Key,
    /// The sequence number of the write that produced this version.
    pub seqno: SeqNo,
    /// Whether the version is a put or a tombstone.
    pub kind: ValueKind,
}

impl InternalKey {
    /// Creates an internal key.
    #[must_use]
    pub fn new(user_key: Key, seqno: SeqNo, kind: ValueKind) -> Self {
        Self {
            user_key,
            seqno,
            kind,
        }
    }
}

impl Ord for InternalKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.user_key
            .cmp(&other.user_key)
            .then_with(|| other.seqno.cmp(&self.seqno))
            .then_with(|| self.kind.cmp(&other.kind))
    }
}

impl PartialOrd for InternalKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A full entry: internal key plus value payload.
///
/// This is the unit stored in memtables, written to sstables and fed
/// through merging iterators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// The user key.
    pub key: Key,
    /// The value payload; empty for tombstones.
    pub value: Value,
    /// Sequence number of the write.
    pub seqno: SeqNo,
    /// Put or tombstone.
    pub kind: ValueKind,
}

impl Entry {
    /// Creates a live (put) entry.
    #[must_use]
    pub fn put(key: Key, value: Value, seqno: SeqNo) -> Self {
        Self {
            key,
            value,
            seqno,
            kind: ValueKind::Put,
        }
    }

    /// Creates a tombstone entry for `key`.
    #[must_use]
    pub fn tombstone(key: Key, seqno: SeqNo) -> Self {
        Self {
            key,
            value: Bytes::new(),
            seqno,
            kind: ValueKind::Tombstone,
        }
    }

    /// Returns `true` if this entry is a deletion tombstone.
    #[must_use]
    pub fn is_tombstone(&self) -> bool {
        self.kind == ValueKind::Tombstone
    }

    /// The internal key of this entry.
    #[must_use]
    pub fn internal_key(&self) -> InternalKey {
        InternalKey::new(self.key.clone(), self.seqno, self.kind)
    }

    /// Approximate in-memory / on-disk footprint of the entry in bytes
    /// (key + value + fixed per-entry metadata). Used for size-based
    /// memtable thresholds and for disk-I/O accounting.
    #[must_use]
    pub fn encoded_size(&self) -> usize {
        self.key.len() + self.value.len() + 8 + 1 + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_key_roundtrip_preserves_order() {
        let a = key_from_u64(5);
        let b = key_from_u64(1_000_000);
        assert!(a < b, "byte order must match numeric order");
        assert_eq!(key_to_u64(&a), Some(5));
        assert_eq!(key_to_u64(&b), Some(1_000_000));
        assert_eq!(key_to_u64(b"short"), None);
    }

    #[test]
    fn value_kind_wire_roundtrip() {
        for kind in [ValueKind::Put, ValueKind::Tombstone, ValueKind::RangeDelete] {
            assert_eq!(ValueKind::from_u8(kind.as_u8()), Some(kind));
        }
        assert_eq!(ValueKind::from_u8(7), None);
    }

    #[test]
    fn range_tombstone_coverage_is_half_open_and_seqno_strict() {
        let rd = RangeTombstone::new(key_from_u64(10), key_from_u64(20), 100);
        assert!(rd.covers(&key_from_u64(10)), "start is inclusive");
        assert!(rd.covers(&key_from_u64(19)));
        assert!(!rd.covers(&key_from_u64(20)), "end is exclusive");
        assert!(!rd.covers(&key_from_u64(9)));
        assert!(rd.shadows(&key_from_u64(15), 99), "older versions die");
        assert!(!rd.shadows(&key_from_u64(15), 100), "same seqno survives");
        assert!(!rd.shadows(&key_from_u64(15), 101), "newer versions survive");
        assert!(!rd.shadows(&key_from_u64(25), 1), "outside the interval");
    }

    #[test]
    fn into_key_accepts_every_keyed_shape() {
        let canonical = key_from_u64(7);
        assert_eq!(7u64.into_key(), canonical);
        assert_eq!(canonical.clone().into_key(), canonical);
        assert_eq!((&canonical).into_key(), canonical);
        assert_eq!(canonical.to_vec().into_key(), canonical);
        assert_eq!(canonical.as_ref().into_key(), canonical);
        assert_eq!(b"ab".into_key(), Bytes::from_static(b"ab"));
        assert_eq!("ab".into_key(), Bytes::from_static(b"ab"));
        assert_eq!(String::from("ab").into_key(), Bytes::from_static(b"ab"));
    }

    #[test]
    fn internal_keys_order_newest_first_within_user_key() {
        let old = InternalKey::new(key_from_u64(1), 5, ValueKind::Put);
        let new = InternalKey::new(key_from_u64(1), 9, ValueKind::Put);
        let other = InternalKey::new(key_from_u64(2), 1, ValueKind::Put);
        assert!(new < old, "higher seqno sorts first");
        assert!(old < other, "user key dominates");
    }

    #[test]
    fn entry_constructors() {
        let e = Entry::put(key_from_u64(3), Bytes::from_static(b"v"), 10);
        assert!(!e.is_tombstone());
        assert_eq!(e.internal_key().seqno, 10);
        let t = Entry::tombstone(key_from_u64(3), 11);
        assert!(t.is_tombstone());
        assert!(t.value.is_empty());
        assert!(t.encoded_size() >= 8 + 17);
    }
}
