//! Core value types shared by every module of the engine.

use bytes::Bytes;

/// A user key. Keys are arbitrary byte strings ordered lexicographically;
/// the helper [`key_from_u64`] produces big-endian encoded integer keys
/// whose byte order matches numeric order, which is what the workload
/// generator and the compaction theory use.
pub type Key = Bytes;

/// A user value (opaque bytes).
pub type Value = Bytes;

/// Monotonically increasing sequence number assigned to every write.
///
/// Newer writes have larger sequence numbers; during compaction the entry
/// with the largest sequence number for a key wins.
pub type SeqNo = u64;

/// Encodes a `u64` key as 8 big-endian bytes so lexicographic order equals
/// numeric order.
#[must_use]
pub fn key_from_u64(key: u64) -> Key {
    Bytes::copy_from_slice(&key.to_be_bytes())
}

/// Decodes a key produced by [`key_from_u64`]. Returns `None` if the key
/// is not exactly 8 bytes.
#[must_use]
pub fn key_to_u64(key: &[u8]) -> Option<u64> {
    let arr: [u8; 8] = key.try_into().ok()?;
    Some(u64::from_be_bytes(arr))
}

/// Whether an entry stores a live value or a deletion tombstone.
///
/// Deletes in LSM stores are writes: a tombstone is appended and the key
/// is physically removed only when a major compaction observes the
/// tombstone as the newest version (Section 5.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ValueKind {
    /// A live key/value pair.
    Put,
    /// A deletion tombstone.
    Tombstone,
}

impl ValueKind {
    /// Single-byte wire encoding.
    #[must_use]
    pub fn as_u8(self) -> u8 {
        match self {
            ValueKind::Put => 0,
            ValueKind::Tombstone => 1,
        }
    }

    /// Decodes the wire byte. Returns `None` for unknown tags.
    #[must_use]
    pub fn from_u8(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(ValueKind::Put),
            1 => Some(ValueKind::Tombstone),
            _ => None,
        }
    }
}

/// An internal key: the user key plus the metadata that orders versions.
///
/// Internal keys sort by user key ascending, then by sequence number
/// *descending*, so that a forward scan visits the newest version of each
/// user key first.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InternalKey {
    /// The user key.
    pub user_key: Key,
    /// The sequence number of the write that produced this version.
    pub seqno: SeqNo,
    /// Whether the version is a put or a tombstone.
    pub kind: ValueKind,
}

impl InternalKey {
    /// Creates an internal key.
    #[must_use]
    pub fn new(user_key: Key, seqno: SeqNo, kind: ValueKind) -> Self {
        Self {
            user_key,
            seqno,
            kind,
        }
    }
}

impl Ord for InternalKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.user_key
            .cmp(&other.user_key)
            .then_with(|| other.seqno.cmp(&self.seqno))
            .then_with(|| self.kind.cmp(&other.kind))
    }
}

impl PartialOrd for InternalKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A full entry: internal key plus value payload.
///
/// This is the unit stored in memtables, written to sstables and fed
/// through merging iterators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// The user key.
    pub key: Key,
    /// The value payload; empty for tombstones.
    pub value: Value,
    /// Sequence number of the write.
    pub seqno: SeqNo,
    /// Put or tombstone.
    pub kind: ValueKind,
}

impl Entry {
    /// Creates a live (put) entry.
    #[must_use]
    pub fn put(key: Key, value: Value, seqno: SeqNo) -> Self {
        Self {
            key,
            value,
            seqno,
            kind: ValueKind::Put,
        }
    }

    /// Creates a tombstone entry for `key`.
    #[must_use]
    pub fn tombstone(key: Key, seqno: SeqNo) -> Self {
        Self {
            key,
            value: Bytes::new(),
            seqno,
            kind: ValueKind::Tombstone,
        }
    }

    /// Returns `true` if this entry is a deletion tombstone.
    #[must_use]
    pub fn is_tombstone(&self) -> bool {
        self.kind == ValueKind::Tombstone
    }

    /// The internal key of this entry.
    #[must_use]
    pub fn internal_key(&self) -> InternalKey {
        InternalKey::new(self.key.clone(), self.seqno, self.kind)
    }

    /// Approximate in-memory / on-disk footprint of the entry in bytes
    /// (key + value + fixed per-entry metadata). Used for size-based
    /// memtable thresholds and for disk-I/O accounting.
    #[must_use]
    pub fn encoded_size(&self) -> usize {
        self.key.len() + self.value.len() + 8 + 1 + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_key_roundtrip_preserves_order() {
        let a = key_from_u64(5);
        let b = key_from_u64(1_000_000);
        assert!(a < b, "byte order must match numeric order");
        assert_eq!(key_to_u64(&a), Some(5));
        assert_eq!(key_to_u64(&b), Some(1_000_000));
        assert_eq!(key_to_u64(b"short"), None);
    }

    #[test]
    fn value_kind_wire_roundtrip() {
        for kind in [ValueKind::Put, ValueKind::Tombstone] {
            assert_eq!(ValueKind::from_u8(kind.as_u8()), Some(kind));
        }
        assert_eq!(ValueKind::from_u8(7), None);
    }

    #[test]
    fn internal_keys_order_newest_first_within_user_key() {
        let old = InternalKey::new(key_from_u64(1), 5, ValueKind::Put);
        let new = InternalKey::new(key_from_u64(1), 9, ValueKind::Put);
        let other = InternalKey::new(key_from_u64(2), 1, ValueKind::Put);
        assert!(new < old, "higher seqno sorts first");
        assert!(old < other, "user key dominates");
    }

    #[test]
    fn entry_constructors() {
        let e = Entry::put(key_from_u64(3), Bytes::from_static(b"v"), 10);
        assert!(!e.is_tombstone());
        assert_eq!(e.internal_key().seqno, 10);
        let t = Entry::tombstone(key_from_u64(3), 11);
        assert!(t.is_tombstone());
        assert!(t.value.is_empty());
        assert!(t.encoded_size() >= 8 + 17);
    }
}
