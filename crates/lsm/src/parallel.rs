//! Parallel, atomic execution of compaction plans.
//!
//! The sequential [`CompactionExecutor`](crate::CompactionExecutor)
//! applies manifest edits step by step. This executor is what
//! policy-driven compaction uses instead:
//!
//! * **parallel** — steps are grouped into dependency waves (see
//!   [`MergeSchedule::dependency_waves`](compaction_core::MergeSchedule::dependency_waves));
//!   independent steps of one wave (e.g. the merges inside one
//!   BALANCETREE level) run concurrently on scoped threads, bounded by
//!   [`LsmOptions::threads`];
//! * **atomic** — the manifest is only edited after *every* step has
//!   succeeded: all output runs are written first, then the manifest
//!   flips from the old table set to the new one in a single persisted
//!   update, and only then are the consumed input blobs deleted. A crash
//!   mid-compaction therefore leaves either the old state plus orphan
//!   blobs (cleaned on reopen) or the new state plus stale inputs
//!   (likewise cleaned) — never a manifest referencing missing tables.

use std::sync::Arc;
use std::time::Instant;

use obs::LatencyHistogram;

use crate::compaction::{CompactionOutcome, CompactionStep};
use crate::iter::MergingIter;
use crate::manifest::{Manifest, ManifestEdit, TableMeta};
use crate::observation::TableKeyObservation;
use crate::options::LsmOptions;
use crate::planner::observed_key;
use crate::sstable::{Sstable, SstableBuilder};
use crate::storage::Storage;
use crate::types::{Entry, RangeTombstone, SeqNo};
use crate::Error;

/// What one merge step produced, reported back from a worker.
#[derive(Debug)]
struct StepResult {
    output_id: u64,
    entry_count: u64,
    encoded_len: u64,
    tombstone_count: u64,
    range_tombstone_count: u64,
    max_seqno: u64,
    entries_read: u64,
    bytes_read: u64,
}

/// A validated merge schedule with its output table ids pre-allocated
/// from the manifest — everything the heavy merge I/O needs, captured
/// under a brief manifest lock so the merge itself can run with no lock
/// held. Produced by [`ParallelExecutor::prepare`], consumed by
/// [`ParallelExecutor::merge_prepared`].
#[derive(Debug)]
pub struct PreparedMerge {
    steps: Vec<CompactionStep>,
    step_inputs: Vec<Vec<u64>>,
    output_ids: Vec<u64>,
    surviving_outputs: Vec<usize>,
    consumed_initial: Vec<u64>,
    waves: Vec<Vec<usize>>,
}

impl PreparedMerge {
    /// `true` when the schedule has no steps (nothing to merge).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// The physical results of an executed [`PreparedMerge`]: every output
/// run is durable in storage, but the manifest still references the old
/// table set. [`ParallelExecutor::commit`] flips it;
/// [`ParallelExecutor::retire_consumed`] then deletes the consumed
/// blobs.
#[derive(Debug)]
pub struct MergedOutputs {
    results: Vec<StepResult>,
    surviving_outputs: Vec<usize>,
    consumed_initial: Vec<u64>,
}

impl MergedOutputs {
    /// How many input tables this merge consumed (what
    /// [`ParallelExecutor::retire_consumed`] will delete).
    #[must_use]
    pub fn consumed_count(&self) -> usize {
        self.consumed_initial.len()
    }
}

/// Called as each dependency wave starts: `(wave index, steps in wave)`.
type WaveHook = Box<dyn Fn(usize, usize) + Send + Sync>;

/// Executes compaction steps wave-parallel with atomic manifest edits.
pub struct ParallelExecutor {
    storage: Arc<dyn Storage>,
    options: LsmOptions,
    /// Records each merge step's wall-clock duration when set.
    step_timer: Option<LatencyHistogram>,
    wave_hook: Option<WaveHook>,
    /// Visibility floor for shadowed-version reclamation: versions are
    /// only dropped when doing so is invisible to every reader pinned at
    /// or above this sequence number. `SeqNo::MAX` (the default) means
    /// no pinned snapshots — classic newest-wins compaction.
    retain_floor: SeqNo,
}

impl std::fmt::Debug for ParallelExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelExecutor")
            .field("options", &self.options)
            .field("step_timer", &self.step_timer)
            .field("wave_hook", &self.wave_hook.as_ref().map(|_| "Fn"))
            .field("retain_floor", &self.retain_floor)
            .finish_non_exhaustive()
    }
}

impl ParallelExecutor {
    /// Creates an executor reading and writing through `storage`.
    #[must_use]
    pub fn new(storage: Arc<dyn Storage>, options: LsmOptions) -> Self {
        Self {
            storage,
            options,
            step_timer: None,
            wave_hook: None,
            retain_floor: SeqNo::MAX,
        }
    }

    /// Sets the snapshot retention floor: versions shadowed by newer
    /// writes or range tombstones are reclaimed only when the shadowing
    /// record's visibility does not extend below `floor` — i.e. no
    /// pinned snapshot could still observe the shadowed version. Sample
    /// the floor *before* capturing the input table set; pins created
    /// later only raise it, never lower it, so a once-sampled floor
    /// stays safe for the whole merge.
    #[must_use]
    pub fn with_retain_floor(mut self, floor: SeqNo) -> Self {
        self.retain_floor = floor;
        self
    }

    /// Records every merge step's duration into `histogram` (the
    /// engine's `compaction_step` latency histogram).
    #[must_use]
    pub fn with_step_timer(mut self, histogram: LatencyHistogram) -> Self {
        self.step_timer = Some(histogram);
        self
    }

    /// Invokes `hook(wave index, steps in wave)` as each dependency
    /// wave starts executing — where the engine emits its
    /// wave-start trace events.
    #[must_use]
    pub fn with_wave_hook(mut self, hook: impl Fn(usize, usize) + Send + Sync + 'static) -> Self {
        self.wave_hook = Some(Box::new(hook));
        self
    }

    /// Groups `steps` into dependency waves over `n_initial` input
    /// slots: a step is in wave `w` when every input is an initial slot
    /// or the output of a step in a wave `< w`. Steps within a wave are
    /// independent and may run concurrently.
    #[must_use]
    pub fn waves_for_steps(n_initial: usize, steps: &[CompactionStep]) -> Vec<Vec<usize>> {
        let mut slot_wave = vec![0usize; n_initial + steps.len()];
        let mut waves: Vec<Vec<usize>> = Vec::new();
        for (i, step) in steps.iter().enumerate() {
            let wave = step
                .inputs
                .iter()
                .map(|&s| slot_wave.get(s).copied().unwrap_or(0))
                .max()
                .unwrap_or(0)
                + 1;
            slot_wave[n_initial + i] = wave;
            if waves.len() < wave {
                waves.resize(wave, Vec::new());
            }
            waves[wave - 1].push(i);
        }
        waves
    }

    /// Executes `steps` over the tables listed in `initial_table_ids`
    /// (slot `i` = `initial_table_ids[i]`).
    ///
    /// On success the manifest reflects the post-compaction table set
    /// and has been persisted. On error the manifest is untouched and
    /// any partially written output blobs have been removed.
    ///
    /// Tombstones are dropped only by the final step, and only when the
    /// options request it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidCompaction`] for malformed schedules
    /// (validated up front, before any I/O) and propagates
    /// storage/corruption errors.
    pub fn execute(
        &self,
        manifest: &mut Manifest,
        initial_table_ids: &[u64],
        steps: &[CompactionStep],
    ) -> Result<CompactionOutcome, Error> {
        self.execute_inner(manifest, initial_table_ids, steps, None, |_| {})
    }

    /// [`ParallelExecutor::execute`] with a hook invoked at the manifest
    /// flip: after the new table set is persisted but *before* the
    /// consumed input blobs are deleted. The engine publishes its read
    /// snapshot there, so concurrent readers move to the new tables
    /// while the old blobs still exist — shrinking the already-handled
    /// stale-snapshot window to readers mid-probe.
    ///
    /// # Errors
    ///
    /// Same as [`ParallelExecutor::execute`].
    pub fn execute_with(
        &self,
        manifest: &mut Manifest,
        initial_table_ids: &[u64],
        steps: &[CompactionStep],
        on_flip: impl FnOnce(&Manifest),
    ) -> Result<CompactionOutcome, Error> {
        self.execute_inner(manifest, initial_table_ids, steps, None, on_flip)
    }

    /// Executes a planner-produced [`MergePlan`](compaction_core::MergePlan)
    /// directly, reusing the plan's precomputed dependency waves so the
    /// engine's parallelism is exactly what the plan describes.
    ///
    /// # Errors
    ///
    /// Same as [`ParallelExecutor::execute`].
    pub fn execute_plan(
        &self,
        manifest: &mut Manifest,
        initial_table_ids: &[u64],
        plan: &compaction_core::MergePlan,
    ) -> Result<CompactionOutcome, Error> {
        self.execute_plan_with(manifest, initial_table_ids, plan, |_| {})
    }

    /// [`ParallelExecutor::execute_plan`] with the manifest-flip hook of
    /// [`ParallelExecutor::execute_with`].
    ///
    /// # Errors
    ///
    /// Same as [`ParallelExecutor::execute`].
    pub fn execute_plan_with(
        &self,
        manifest: &mut Manifest,
        initial_table_ids: &[u64],
        plan: &compaction_core::MergePlan,
        on_flip: impl FnOnce(&Manifest),
    ) -> Result<CompactionOutcome, Error> {
        let steps: Vec<CompactionStep> = plan
            .steps()
            .iter()
            .map(|inputs| CompactionStep::new(inputs.clone()))
            .collect();
        self.execute_inner(
            manifest,
            initial_table_ids,
            &steps,
            Some(plan.waves()),
            on_flip,
        )
    }

    fn execute_inner(
        &self,
        manifest: &mut Manifest,
        initial_table_ids: &[u64],
        steps: &[CompactionStep],
        precomputed_waves: Option<&[Vec<usize>]>,
        on_flip: impl FnOnce(&Manifest),
    ) -> Result<CompactionOutcome, Error> {
        if steps.is_empty() {
            return Ok(CompactionOutcome::default());
        }
        let prepared = self.prepare(manifest, initial_table_ids, steps, precomputed_waves)?;
        let merged = self.merge_prepared(&prepared)?;
        let outcome = Self::commit(manifest, &merged, self.storage.as_ref(), on_flip)?;
        self.retire_consumed(&merged)?;
        Ok(outcome)
    }

    /// Phase 1 — validate the schedule and pre-allocate one output table
    /// id per step. Cheap and I/O-free: this is the only phase that
    /// needs `&mut Manifest`, so a background scheduler holds the write
    /// lock just long enough to call it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidCompaction`] for malformed schedules;
    /// nothing is read or written in that case.
    pub fn prepare(
        &self,
        manifest: &mut Manifest,
        initial_table_ids: &[u64],
        steps: &[CompactionStep],
        precomputed_waves: Option<&[Vec<usize>]>,
    ) -> Result<PreparedMerge, Error> {
        let n = initial_table_ids.len();
        // Pre-allocate one output id per step so workers can build tables
        // without touching the manifest.
        let output_ids: Vec<u64> = steps.iter().map(|_| manifest.allocate_table_id()).collect();

        // Validate every step and resolve its input table ids up front:
        // nothing is read or written for a malformed schedule.
        let mut slots: Vec<Option<u64>> = initial_table_ids.iter().copied().map(Some).collect();
        let mut step_inputs: Vec<Vec<u64>> = Vec::with_capacity(steps.len());
        for (step_idx, step) in steps.iter().enumerate() {
            if step.inputs.len() < 2 {
                return Err(Error::invalid_compaction(format!(
                    "step {step_idx} has {} inputs, need at least 2",
                    step.inputs.len()
                )));
            }
            if step.inputs.len() > self.options.fanin() {
                return Err(Error::invalid_compaction(format!(
                    "step {step_idx} reads {} tables but fan-in k = {}",
                    step.inputs.len(),
                    self.options.fanin()
                )));
            }
            let mut ids = Vec::with_capacity(step.inputs.len());
            for &slot in &step.inputs {
                let id = slots.get(slot).copied().flatten().ok_or_else(|| {
                    Error::invalid_compaction(format!(
                        "step {step_idx} references slot {slot} which is unknown or consumed"
                    ))
                })?;
                // Mark consumed immediately: catches duplicate inputs
                // within one step as well as reuse across steps.
                slots[slot] = None;
                ids.push(id);
            }
            step_inputs.push(ids);
            slots.push(Some(output_ids[step_idx]));
        }
        // Which output slots survive the whole schedule (for a complete
        // schedule: exactly the final output).
        let surviving_outputs: Vec<usize> = (0..steps.len())
            .filter(|&i| slots[n + i].is_some())
            .collect();
        let consumed_initial: Vec<u64> = (0..n)
            .filter(|&s| slots[s].is_none())
            .map(|s| initial_table_ids[s])
            .collect();

        let waves = match precomputed_waves {
            Some(waves) => waves.to_vec(),
            None => Self::waves_for_steps(n, steps),
        };
        Ok(PreparedMerge {
            steps: steps.to_vec(),
            step_inputs,
            output_ids,
            surviving_outputs,
            consumed_initial,
            waves,
        })
    }

    /// Phase 2 — the heavy I/O: run every merge step, wave-parallel, with
    /// **no lock required**. On success every output run (and its
    /// key-observation sidecar) is durable in storage; the manifest is
    /// untouched either way.
    ///
    /// # Errors
    ///
    /// Propagates storage/corruption errors; every blob written so far
    /// is removed first (best-effort).
    pub fn merge_prepared(&self, prepared: &PreparedMerge) -> Result<MergedOutputs, Error> {
        let steps = &prepared.steps;
        let mut results: Vec<Option<StepResult>> = (0..steps.len()).map(|_| None).collect();
        let mut written_blobs: Vec<String> = Vec::new();

        for (wave_idx, wave) in prepared.waves.iter().enumerate() {
            if let Some(hook) = &self.wave_hook {
                hook(wave_idx, wave.len());
            }
            for chunk in wave.chunks(self.options.threads().max(1)) {
                let chunk_results: Vec<(usize, Result<StepResult, Error>)> =
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = chunk
                            .iter()
                            .map(|&step_idx| {
                                let input_ids = &prepared.step_inputs[step_idx];
                                let output_id = prepared.output_ids[step_idx];
                                let drop_tombstones =
                                    step_idx + 1 == steps.len() && self.options.drops_tombstones();
                                scope.spawn(move || {
                                    let started = Instant::now();
                                    let result =
                                        self.merge_step(input_ids, output_id, drop_tombstones);
                                    if let Some(timer) = &self.step_timer {
                                        timer.record_duration(started.elapsed());
                                    }
                                    (step_idx, result)
                                })
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("compaction worker panicked"))
                            .collect()
                    });
                // Record every success first: a concurrently-run step may
                // have written its blob even if a sibling failed, and the
                // rollback below must see all of them.
                let mut first_error = None;
                for (step_idx, result) in chunk_results {
                    match result {
                        Ok(step_result) => {
                            written_blobs.push(Sstable::blob_name(step_result.output_id));
                            written_blobs
                                .push(TableKeyObservation::blob_name(step_result.output_id));
                            results[step_idx] = Some(step_result);
                        }
                        Err(e) => {
                            // Best-effort: a step can fail after its
                            // output blob (and sidecar) hit storage.
                            let _ = self
                                .storage
                                .delete_blob(&Sstable::blob_name(prepared.output_ids[step_idx]));
                            let _ = TableKeyObservation::delete(
                                self.storage.as_ref(),
                                prepared.output_ids[step_idx],
                            );
                            first_error = first_error.or(Some(e));
                        }
                    }
                }
                if let Some(e) = first_error {
                    // Roll back: remove everything written so far; the
                    // manifest was never touched.
                    for blob in &written_blobs {
                        let _ = self.storage.delete_blob(blob);
                    }
                    return Err(e);
                }
            }
        }

        Ok(MergedOutputs {
            results: results
                .into_iter()
                .map(|r| r.expect("step executed"))
                .collect(),
            surviving_outputs: prepared.surviving_outputs.clone(),
            consumed_initial: prepared.consumed_initial.clone(),
        })
    }

    /// Phase 3 — flip the manifest in one atomic update: remove the
    /// consumed inputs, add the surviving outputs, persist, and invoke
    /// `on_flip` (where the engine publishes its read snapshot). Brief —
    /// one small blob write — so a background scheduler re-takes the
    /// write lock only for this call. The consumed input blobs still
    /// exist afterwards; delete them with
    /// [`ParallelExecutor::retire_consumed`].
    ///
    /// # Errors
    ///
    /// Propagates manifest and storage errors.
    pub fn commit(
        manifest: &mut Manifest,
        merged: &MergedOutputs,
        storage: &dyn Storage,
        on_flip: impl FnOnce(&Manifest),
    ) -> Result<CompactionOutcome, Error> {
        let mut outcome = CompactionOutcome::default();
        for result in &merged.results {
            outcome.merge_ops += 1;
            outcome.entries_read += result.entries_read;
            outcome.bytes_read += result.bytes_read;
            outcome.entries_written += result.entry_count;
            outcome.bytes_written += result.encoded_len;
        }
        outcome.final_table_id = merged.results.last().map(|r| r.output_id);

        for &table_id in &merged.consumed_initial {
            manifest.apply(ManifestEdit::RemoveTable { table_id })?;
        }
        for &step_idx in &merged.surviving_outputs {
            let result = &merged.results[step_idx];
            manifest.apply(ManifestEdit::AddTable(TableMeta {
                table_id: result.output_id,
                entry_count: result.entry_count,
                encoded_len: result.encoded_len,
                tombstone_count: result.tombstone_count,
                range_tombstone_count: result.range_tombstone_count,
                max_seqno: result.max_seqno,
            }))?;
        }
        manifest.persist(storage)?;
        on_flip(manifest);
        Ok(outcome)
    }

    /// Phase 4 — delete the consumed input blobs and non-surviving
    /// intermediates (tables and key-observation sidecars alike). Only
    /// safe after [`ParallelExecutor::commit`]: readers migrated to the
    /// new table set at the flip. Needs no lock.
    ///
    /// # Errors
    ///
    /// Propagates storage errors.
    pub fn retire_consumed(&self, merged: &MergedOutputs) -> Result<(), Error> {
        for &table_id in &merged.consumed_initial {
            self.storage.delete_blob(&Sstable::blob_name(table_id))?;
            TableKeyObservation::delete(self.storage.as_ref(), table_id)?;
        }
        for (step_idx, result) in merged.results.iter().enumerate() {
            if !merged.surviving_outputs.contains(&step_idx) {
                self.storage
                    .delete_blob(&Sstable::blob_name(result.output_id))?;
                TableKeyObservation::delete(self.storage.as_ref(), result.output_id)?;
            }
        }
        Ok(())
    }

    /// One worker merge: read the input runs, merge-sort them with
    /// newest-wins semantics, write the output run under `output_id`.
    fn merge_step(
        &self,
        input_ids: &[u64],
        output_id: u64,
        drop_tombstones: bool,
    ) -> Result<StepResult, Error> {
        let mut sources: Vec<Vec<Entry>> = Vec::with_capacity(input_ids.len());
        let mut range_dels: Vec<RangeTombstone> = Vec::new();
        let mut entries_read = 0u64;
        let mut bytes_read = 0u64;
        for &id in input_ids {
            let table = Sstable::load(self.storage.as_ref(), id)?;
            bytes_read += table.encoded_len();
            entries_read += table.entry_count();
            range_dels.extend_from_slice(table.range_dels());
            let entries: Result<Vec<Entry>, Error> = table.iter().collect();
            sources.push(entries?);
        }
        // Deterministic output order regardless of which input held each
        // tombstone: start asc, then newest first.
        range_dels.sort_by(|a, b| {
            a.start
                .cmp(&b.start)
                .then(b.seqno.cmp(&a.seqno))
                .then(a.end.cmp(&b.end))
        });
        let merged = MergingIter::with_visibility(
            sources,
            drop_tombstones,
            self.retain_floor,
            range_dels.clone(),
        );
        let mut builder = SstableBuilder::new(
            output_id,
            self.options.block_size_bytes(),
            self.options.bloom_bits(),
        )
        .compression(self.options.compression_type());
        let mut observed = Vec::new();
        for entry in merged {
            observed.push(observed_key(&entry.key));
            builder.add(&entry);
        }
        // Range tombstones ride along into the output so they keep
        // shadowing older tables outside this merge; a final-step merge
        // may retire those at or below the floor — everything they could
        // ever delete was merged here, and no pinned snapshot can still
        // observe a version they shadow.
        for rd in range_dels {
            if drop_tombstones && rd.seqno <= self.retain_floor {
                continue;
            }
            builder.add_range_del(rd);
        }
        let (data, meta) = builder.finish();
        self.storage
            .write_blob(&Sstable::blob_name(output_id), &data)?;
        // Sidecar written with the output: future plans over this table
        // read the observation, not the table.
        TableKeyObservation::new(output_id, observed).persist(self.storage.as_ref())?;
        Ok(StepResult {
            output_id,
            entry_count: meta.entry_count,
            encoded_len: meta.encoded_len,
            tombstone_count: meta.tombstone_count,
            range_tombstone_count: meta.range_tombstone_count,
            max_seqno: meta.max_seqno,
            entries_read,
            bytes_read,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemoryStorage;
    use crate::types::key_from_u64;
    use bytes::Bytes;

    fn make_table(storage: &dyn Storage, manifest: &mut Manifest, keys: &[u64], seq: u64) -> u64 {
        let id = manifest.allocate_table_id();
        let mut builder = SstableBuilder::new(id, 4096, 10);
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        for &k in &sorted {
            builder.add(&Entry::put(
                key_from_u64(k),
                Bytes::from(format!("v{k}-s{seq}")),
                seq,
            ));
        }
        let (data, meta) = builder.finish();
        storage.write_blob(&Sstable::blob_name(id), &data).unwrap();
        manifest
            .apply(ManifestEdit::AddTable(TableMeta {
                table_id: id,
                entry_count: meta.entry_count,
                encoded_len: meta.encoded_len,
                tombstone_count: meta.tombstone_count,
                range_tombstone_count: meta.range_tombstone_count,
                max_seqno: meta.max_seqno,
            }))
            .unwrap();
        id
    }

    fn setup(threads: usize) -> (Arc<MemoryStorage>, Manifest, ParallelExecutor) {
        let storage = Arc::new(MemoryStorage::new());
        let manifest = Manifest::new();
        let exec = ParallelExecutor::new(
            storage.clone(),
            LsmOptions::default().compaction_threads(threads),
        );
        (storage, manifest, exec)
    }

    #[test]
    fn waves_group_independent_steps() {
        let balanced = vec![
            CompactionStep::new(vec![0, 1]),
            CompactionStep::new(vec![2, 3]),
            CompactionStep::new(vec![4, 5]),
        ];
        assert_eq!(
            ParallelExecutor::waves_for_steps(4, &balanced),
            vec![vec![0, 1], vec![2]]
        );
        let caterpillar = vec![
            CompactionStep::new(vec![0, 1]),
            CompactionStep::new(vec![3, 2]),
        ];
        assert_eq!(
            ParallelExecutor::waves_for_steps(3, &caterpillar),
            vec![vec![0], vec![1]]
        );
        assert!(ParallelExecutor::waves_for_steps(3, &[]).is_empty());
    }

    #[test]
    fn parallel_execution_matches_sequential_contents() {
        for threads in [1, 4] {
            let (storage, mut manifest, exec) = setup(threads);
            let ids = vec![
                make_table(storage.as_ref(), &mut manifest, &[1, 2, 3, 5], 1),
                make_table(storage.as_ref(), &mut manifest, &[1, 2, 3, 4], 2),
                make_table(storage.as_ref(), &mut manifest, &[3, 4, 5], 3),
                make_table(storage.as_ref(), &mut manifest, &[6, 7], 4),
            ];
            // Balanced schedule: wave 1 = {(0,1), (2,3)}, wave 2 = {(4,5)}.
            let steps = vec![
                CompactionStep::new(vec![0, 1]),
                CompactionStep::new(vec![2, 3]),
                CompactionStep::new(vec![4, 5]),
            ];
            let outcome = exec.execute(&mut manifest, &ids, &steps).unwrap();
            assert_eq!(outcome.merge_ops, 3, "threads={threads}");
            assert_eq!(manifest.table_count(), 1);
            let final_id = outcome.final_table_id.unwrap();
            let table = Sstable::load(storage.as_ref(), final_id).unwrap();
            assert_eq!(table.entry_count(), 7, "keys 1..=7 deduplicated");
            // Newest version of key 3 came from seq 3.
            let e = table.get(&key_from_u64(3)).unwrap().unwrap();
            assert_eq!(e.value.as_ref(), b"v3-s3");
            // All inputs and intermediates are gone from storage.
            for id in &ids {
                assert!(!storage.contains_blob(&Sstable::blob_name(*id)));
            }
            let blobs = storage.list_blobs();
            let sst_blobs: Vec<_> = blobs.iter().filter(|b| b.starts_with("sst-")).collect();
            assert_eq!(sst_blobs.len(), 1, "only the final table remains");
            // Accounting: reads 4+4, 3+2, 5+5 = 23; writes 5+5+7 = 17.
            assert_eq!(outcome.entries_read, 23);
            assert_eq!(outcome.entries_written, 17);
        }
    }

    #[test]
    fn malformed_schedules_fail_before_any_io() {
        let (storage, mut manifest, exec) = setup(2);
        let ids = vec![
            make_table(storage.as_ref(), &mut manifest, &[1], 1),
            make_table(storage.as_ref(), &mut manifest, &[2], 2),
        ];
        let bytes_before = storage.bytes_written();
        for steps in [
            vec![CompactionStep::new(vec![0])],
            vec![CompactionStep::new(vec![0, 9])],
            vec![CompactionStep::new(vec![0, 0])],
            vec![
                CompactionStep::new(vec![0, 1]),
                CompactionStep::new(vec![0, 2]),
            ],
        ] {
            let err = exec.execute(&mut manifest, &ids, &steps).unwrap_err();
            assert!(matches!(err, Error::InvalidCompaction { .. }));
        }
        assert_eq!(manifest.table_count(), 2, "manifest untouched on error");
        assert_eq!(storage.bytes_written(), bytes_before, "no I/O on error");
    }

    #[test]
    fn empty_schedule_is_a_noop() {
        let (storage, mut manifest, exec) = setup(2);
        make_table(storage.as_ref(), &mut manifest, &[1], 1);
        let ids: Vec<u64> = manifest.tables().iter().map(|t| t.table_id).collect();
        let outcome = exec.execute(&mut manifest, &ids, &[]).unwrap();
        assert_eq!(outcome, CompactionOutcome::default());
        assert_eq!(manifest.table_count(), 1);
    }

    #[test]
    fn instrumentation_observes_every_wave_and_step() {
        use std::sync::Mutex;

        let (storage, mut manifest, _) = setup(2);
        let ids = vec![
            make_table(storage.as_ref(), &mut manifest, &[1, 2], 1),
            make_table(storage.as_ref(), &mut manifest, &[3, 4], 2),
            make_table(storage.as_ref(), &mut manifest, &[5, 6], 3),
            make_table(storage.as_ref(), &mut manifest, &[7, 8], 4),
        ];
        // Balanced: wave 0 = steps {0, 1}, wave 1 = step {2}.
        let steps = vec![
            CompactionStep::new(vec![0, 1]),
            CompactionStep::new(vec![2, 3]),
            CompactionStep::new(vec![4, 5]),
        ];
        let timer = LatencyHistogram::new();
        let waves: Arc<Mutex<Vec<(usize, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        let seen = Arc::clone(&waves);
        let exec =
            ParallelExecutor::new(storage.clone(), LsmOptions::default().compaction_threads(2))
                .with_step_timer(timer.clone())
                .with_wave_hook(move |wave, n| seen.lock().unwrap().push((wave, n)));
        exec.execute(&mut manifest, &ids, &steps).unwrap();
        assert_eq!(timer.count(), 3, "one duration sample per merge step");
        assert_eq!(*waves.lock().unwrap(), vec![(0, 2), (1, 1)]);
    }

    #[test]
    fn manifest_persisted_atomically() {
        let (storage, mut manifest, exec) = setup(2);
        let ids = vec![
            make_table(storage.as_ref(), &mut manifest, &[1, 2], 1),
            make_table(storage.as_ref(), &mut manifest, &[2, 3], 2),
        ];
        let steps = vec![CompactionStep::new(vec![0, 1])];
        exec.execute(&mut manifest, &ids, &steps).unwrap();
        // The persisted manifest equals the in-memory one.
        let reloaded = Manifest::load(storage.as_ref()).unwrap();
        assert_eq!(reloaded, manifest);
    }
}
