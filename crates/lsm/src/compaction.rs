//! Physical execution of a compaction merge schedule.
//!
//! The scheduling problem (which sstables to merge in which order) is
//! solved by the `compaction-core` crate; this module is the machinery
//! that carries a chosen schedule out against real sstables: read the `k`
//! input runs, merge-sort them with newest-wins semantics, write one
//! output run, and retire the inputs. The outcome reports the disk I/O the
//! schedule actually incurred, which is the quantity the paper's cost
//! function (`cost_actual`, Section 2) models.

use std::sync::Arc;

use crate::manifest::Manifest;
use crate::options::LsmOptions;
use crate::storage::Storage;
use crate::Error;

/// One merge operation of a schedule, expressed over *slots*.
///
/// Slots number the sstables participating in a major compaction: slots
/// `0..n` are the initial live tables (in the order the caller lists
/// them), and each executed step appends one new slot for its output.
/// This mirrors how `compaction-core` merge schedules reference sets, so
/// a schedule can be replayed physically without translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionStep {
    /// Slot indices of the tables this step reads.
    pub inputs: Vec<usize>,
}

impl CompactionStep {
    /// Convenience constructor.
    #[must_use]
    pub fn new(inputs: Vec<usize>) -> Self {
        Self { inputs }
    }
}

/// Aggregate result of executing a schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactionOutcome {
    /// Number of merge operations executed.
    pub merge_ops: usize,
    /// Total entries read from input tables across all merges.
    pub entries_read: u64,
    /// Total entries written to output tables across all merges.
    pub entries_written: u64,
    /// Total bytes read from storage for input tables.
    pub bytes_read: u64,
    /// Total bytes written to storage for output tables.
    pub bytes_written: u64,
    /// Table id of the final output table, if at least one merge ran.
    pub final_table_id: Option<u64>,
}

impl CompactionOutcome {
    /// The paper's `cost_actual` in *entries*: every input entry is read
    /// once and every output entry is written once, summed over all merge
    /// operations.
    #[must_use]
    pub fn entry_cost(&self) -> u64 {
        self.entries_read + self.entries_written
    }

    /// `cost_actual` in bytes of storage traffic.
    #[must_use]
    pub fn byte_cost(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

/// Executes compaction steps against a storage backend and manifest,
/// one step at a time.
///
/// Since the introduction of [`ParallelExecutor`](crate::ParallelExecutor)
/// this type is a thin sequential façade over it (one merge at a time,
/// same validation, same atomic manifest flip), kept so callers that
/// want explicitly sequential execution have a named entry point.
#[derive(Debug)]
pub struct CompactionExecutor {
    inner: crate::parallel::ParallelExecutor,
}

impl CompactionExecutor {
    /// Creates an executor that reads and writes through `storage`.
    #[must_use]
    pub fn new(storage: Arc<dyn Storage>, options: LsmOptions) -> Self {
        Self {
            inner: crate::parallel::ParallelExecutor::new(storage, options.compaction_threads(1)),
        }
    }

    /// Executes `steps` over the tables listed in `initial_table_ids`
    /// (slot `i` = `initial_table_ids[i]`), updating `manifest` as tables
    /// are created and retired.
    ///
    /// Tombstones are dropped only on the last step and only if the
    /// options request it, because earlier intermediate outputs may still
    /// shadow older versions living in tables outside this compaction.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidCompaction`] if a step references an
    /// unknown or already-consumed slot or has fewer than two inputs, and
    /// propagates storage/corruption errors.
    pub fn execute(
        &self,
        manifest: &mut Manifest,
        initial_table_ids: &[u64],
        steps: &[CompactionStep],
    ) -> Result<CompactionOutcome, Error> {
        self.inner.execute(manifest, initial_table_ids, steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{ManifestEdit, TableMeta};
    use crate::sstable::{Sstable, SstableBuilder};
    use crate::storage::MemoryStorage;
    use crate::types::{key_from_u64, Entry};
    use bytes::Bytes;

    /// Builds an sstable holding `keys` and registers it in the manifest.
    fn make_table(
        storage: &dyn Storage,
        manifest: &mut Manifest,
        keys: &[u64],
        seq_base: u64,
    ) -> u64 {
        let id = manifest.allocate_table_id();
        let mut builder = SstableBuilder::new(id, 4096, 10);
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        for &k in &sorted {
            builder.add(&Entry::put(
                key_from_u64(k),
                Bytes::from(format!("v{k}-s{seq_base}")),
                seq_base,
            ));
        }
        let (data, meta) = builder.finish();
        storage.write_blob(&Sstable::blob_name(id), &data).unwrap();
        manifest
            .apply(ManifestEdit::AddTable(TableMeta {
                table_id: id,
                entry_count: meta.entry_count,
                encoded_len: meta.encoded_len,
                tombstone_count: meta.tombstone_count,
                range_tombstone_count: meta.range_tombstone_count,
                max_seqno: meta.max_seqno,
            }))
            .unwrap();
        id
    }

    fn setup() -> (Arc<MemoryStorage>, Manifest, CompactionExecutor) {
        let storage = Arc::new(MemoryStorage::new());
        let manifest = Manifest::new();
        let exec = CompactionExecutor::new(storage.clone(), LsmOptions::default());
        (storage, manifest, exec)
    }

    #[test]
    fn binary_merge_schedule_produces_single_table() {
        let (storage, mut manifest, exec) = setup();
        let t0 = make_table(
            storage.as_ref() as &dyn Storage,
            &mut manifest,
            &[1, 2, 3, 5],
            1,
        );
        let t1 = make_table(
            storage.as_ref() as &dyn Storage,
            &mut manifest,
            &[1, 2, 3, 4],
            2,
        );
        let t2 = make_table(
            storage.as_ref() as &dyn Storage,
            &mut manifest,
            &[3, 4, 5],
            3,
        );
        assert_eq!(manifest.table_count(), 3);

        // Merge slots (0,1) -> slot 3, then (3,2) -> slot 4.
        let steps = vec![
            CompactionStep::new(vec![0, 1]),
            CompactionStep::new(vec![3, 2]),
        ];
        let outcome = exec.execute(&mut manifest, &[t0, t1, t2], &steps).unwrap();

        assert_eq!(outcome.merge_ops, 2);
        assert_eq!(manifest.table_count(), 1);
        let final_id = outcome.final_table_id.unwrap();
        let table = Sstable::load(storage.as_ref(), final_id).unwrap();
        assert_eq!(table.entry_count(), 5, "keys 1..=5 deduplicated");
        // Newest version wins: key 3 was written by t2 (seq 3) last.
        let e = table.get(&key_from_u64(3)).unwrap().unwrap();
        assert_eq!(e.value.as_ref(), b"v3-s3");
        // Inputs are gone from storage.
        assert!(!storage.contains_blob(&Sstable::blob_name(t0)));
        assert!(!storage.contains_blob(&Sstable::blob_name(t1)));
        assert!(!storage.contains_blob(&Sstable::blob_name(t2)));
        // Entry accounting: step1 reads 4+4=8 writes 5; step2 reads 5+3 writes 5.
        assert_eq!(outcome.entries_read, 16);
        assert_eq!(outcome.entries_written, 10);
        assert_eq!(outcome.entry_cost(), 26);
        assert!(outcome.byte_cost() > 0);
    }

    #[test]
    fn tombstones_dropped_only_in_final_merge() {
        let (storage, mut manifest, exec) = setup();
        let t0 = make_table(storage.as_ref() as &dyn Storage, &mut manifest, &[1, 2], 1);
        // Table with a tombstone for key 1 (newer).
        let id = manifest.allocate_table_id();
        let mut builder = SstableBuilder::new(id, 4096, 10);
        builder.add(&Entry::tombstone(key_from_u64(1), 5));
        let (data, meta) = builder.finish();
        storage.write_blob(&Sstable::blob_name(id), &data).unwrap();
        manifest
            .apply(ManifestEdit::AddTable(TableMeta {
                table_id: id,
                entry_count: meta.entry_count,
                encoded_len: meta.encoded_len,
                tombstone_count: meta.tombstone_count,
                range_tombstone_count: meta.range_tombstone_count,
                max_seqno: meta.max_seqno,
            }))
            .unwrap();

        let steps = vec![CompactionStep::new(vec![0, 1])];
        let outcome = exec.execute(&mut manifest, &[t0, id], &steps).unwrap();
        let table = Sstable::load(storage.as_ref(), outcome.final_table_id.unwrap()).unwrap();
        assert_eq!(table.entry_count(), 1, "key 1 deleted, key 2 survives");
        assert!(table.get(&key_from_u64(1)).unwrap().is_none());
    }

    #[test]
    fn invalid_steps_are_rejected() {
        let (storage, mut manifest, exec) = setup();
        let t0 = make_table(storage.as_ref() as &dyn Storage, &mut manifest, &[1], 1);
        let t1 = make_table(storage.as_ref() as &dyn Storage, &mut manifest, &[2], 2);

        // Single-input step.
        let err = exec
            .execute(&mut manifest, &[t0, t1], &[CompactionStep::new(vec![0])])
            .unwrap_err();
        assert!(matches!(err, Error::InvalidCompaction { .. }));

        // Unknown slot.
        let err = exec
            .execute(&mut manifest, &[t0, t1], &[CompactionStep::new(vec![0, 7])])
            .unwrap_err();
        assert!(matches!(err, Error::InvalidCompaction { .. }));

        // Fan-in larger than k = 2.
        let err = exec
            .execute(
                &mut manifest,
                &[t0, t1],
                &[CompactionStep::new(vec![0, 1, 1])],
            )
            .unwrap_err();
        assert!(matches!(err, Error::InvalidCompaction { .. }));
    }

    #[test]
    fn kway_fanin_allows_wider_merges() {
        let storage = Arc::new(MemoryStorage::new());
        let mut manifest = Manifest::new();
        let exec =
            CompactionExecutor::new(storage.clone(), LsmOptions::default().compaction_fanin(4));
        let ids: Vec<u64> = (0..4)
            .map(|i| {
                make_table(
                    storage.as_ref() as &dyn Storage,
                    &mut manifest,
                    &[i, i + 10, i + 20],
                    i + 1,
                )
            })
            .collect();
        let steps = vec![CompactionStep::new(vec![0, 1, 2, 3])];
        let outcome = exec.execute(&mut manifest, &ids, &steps).unwrap();
        assert_eq!(outcome.merge_ops, 1);
        assert_eq!(manifest.table_count(), 1);
        let table = Sstable::load(storage.as_ref(), outcome.final_table_id.unwrap()).unwrap();
        assert_eq!(table.entry_count(), 12);
    }

    #[test]
    fn empty_schedule_is_a_noop() {
        let (storage, mut manifest, exec) = setup();
        let t0 = make_table(storage.as_ref() as &dyn Storage, &mut manifest, &[1], 1);
        let outcome = exec.execute(&mut manifest, &[t0], &[]).unwrap();
        assert_eq!(outcome.merge_ops, 0);
        assert_eq!(outcome.final_table_id, None);
        assert_eq!(manifest.table_count(), 1);
    }
}
