//! Observing live sstables and planning their compaction.
//!
//! This is the bridge between the engine's physical world (sstables on
//! storage, identified by table id) and `compaction-core`'s logical one
//! (key sets in slots). [`observe_tables`] reads each live table and
//! reduces it to a [`TableObservation`] — 8-byte big-endian keys are
//! decoded directly, anything else is hashed, which preserves the sizes
//! and overlap structure the strategies consume. [`plan_compaction`]
//! then asks a [`StrategyPlanner`] configured from [`LsmOptions`] for an
//! executable [`MergePlan`].

use compaction_core::{KeySet, MergePlan, Planner, StrategyPlanner, TableObservation};

use crate::manifest::TableMeta;
use crate::observation::TableKeyObservation;
use crate::options::LsmOptions;
use crate::sstable::Sstable;
use crate::storage::Storage;
use crate::types::key_to_u64;
use crate::Error;

/// Builds one observation per listed table, in the given (manifest)
/// order — observation index `i` becomes plan slot `i`.
///
/// Observations are loaded from the key-observation sidecars the engine
/// persists whenever it creates a table
/// ([`TableKeyObservation`](crate::TableKeyObservation)), so planning no
/// longer reads the full tables that the executor is about to read again
/// for the merge. Tables without a sidecar (written before the sidecar
/// format existed) fall back to a full read.
///
/// Tombstones count as keys: they occupy space and must be read and
/// rewritten by merges, exactly as the paper's model assumes.
///
/// # Errors
///
/// Propagates storage and corruption errors.
pub fn observe_tables(
    storage: &dyn Storage,
    tables: &[TableMeta],
) -> Result<Vec<TableObservation>, Error> {
    let mut observations = Vec::with_capacity(tables.len());
    for meta in tables {
        // A corrupt sidecar is treated like a missing one: it is purely
        // derivable cache data, and wedging every future compaction on
        // it would turn a flipped bit into a read-only store.
        let sidecar = match TableKeyObservation::load(storage, meta.table_id) {
            Ok(obs) => obs,
            Err(Error::Corruption { .. }) => None,
            Err(e) => return Err(e),
        };
        if let Some(obs) = sidecar {
            observations.push(TableObservation::new(
                meta.table_id,
                KeySet::from_vec(obs.keys),
            ));
            continue;
        }
        let table = Sstable::load(storage, meta.table_id)?;
        let mut keys = Vec::with_capacity(table.entry_count() as usize);
        for entry in table.iter() {
            let entry = entry?;
            keys.push(observed_key(&entry.key));
        }
        observations.push(TableObservation::new(meta.table_id, KeySet::from_vec(keys)));
    }
    Ok(observations)
}

/// Maps a user key to the logical 64-bit key space the planner models.
#[must_use]
pub fn observed_key(user_key: &[u8]) -> u64 {
    key_to_u64(user_key).unwrap_or_else(|| hll::hash_bytes(user_key))
}

/// Plans a full compaction of `tables` using the strategy, estimator and
/// fan-in configured in `options`.
///
/// Returns `Ok(None)` when there are fewer than two tables (nothing to
/// merge). The returned plan references tables by slot in `tables`
/// order, ready for physical execution via
/// [`ParallelExecutor::execute_plan`](crate::ParallelExecutor::execute_plan)
/// (or lower it yourself with
/// [`MergePlan::steps`](compaction_core::MergePlan::steps)).
///
/// # Errors
///
/// Propagates storage errors from observation and planning errors from
/// `compaction-core`.
pub fn plan_compaction(
    storage: &dyn Storage,
    tables: &[TableMeta],
    options: &LsmOptions,
) -> Result<Option<MergePlan>, Error> {
    if tables.len() < 2 {
        return Ok(None);
    }
    let observations = observe_tables(storage, tables)?;
    let planner = StrategyPlanner::new(options.strategy()).with_estimator(options.estimator());
    let plan = planner
        .plan(&observations, options.fanin())
        .map_err(|e| Error::invalid_compaction(format!("planning failed: {e}")))?;
    Ok(Some(plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{Manifest, ManifestEdit};
    use crate::sstable::SstableBuilder;
    use crate::storage::MemoryStorage;
    use crate::types::{key_from_u64, Entry};
    use bytes::Bytes;
    use compaction_core::Strategy;

    fn make_table(
        storage: &dyn Storage,
        manifest: &mut Manifest,
        keys: &[u64],
        seq: u64,
    ) -> TableMeta {
        let id = manifest.allocate_table_id();
        let mut builder = SstableBuilder::new(id, 4096, 10);
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for &k in &sorted {
            builder.add(&Entry::put(key_from_u64(k), Bytes::from_static(b"v"), seq));
        }
        let (data, built) = builder.finish();
        storage.write_blob(&Sstable::blob_name(id), &data).unwrap();
        let meta = TableMeta {
            table_id: id,
            entry_count: built.entry_count,
            encoded_len: built.encoded_len,
            tombstone_count: built.tombstone_count,
            range_tombstone_count: built.range_tombstone_count,
            max_seqno: built.max_seqno,
        };
        manifest
            .apply(ManifestEdit::AddTable(meta.clone()))
            .unwrap();
        meta
    }

    #[test]
    fn observations_reflect_table_contents() {
        let storage = MemoryStorage::new();
        let mut manifest = Manifest::new();
        let t0 = make_table(&storage, &mut manifest, &[1, 2, 3, 5], 1);
        let t1 = make_table(&storage, &mut manifest, &[3, 4, 5], 2);
        let obs = observe_tables(&storage, manifest.tables()).unwrap();
        assert_eq!(obs.len(), 2);
        assert_eq!(obs[0].table_id, t0.table_id);
        assert_eq!(obs[0].keys, KeySet::from_iter([1u64, 2, 3, 5]));
        assert_eq!(obs[1].table_id, t1.table_id);
        assert_eq!(obs[1].keys.intersection_size(&obs[0].keys), 2);
    }

    #[test]
    fn sidecar_observations_preempt_table_reads() {
        let storage = MemoryStorage::new();
        let mut manifest = Manifest::new();
        let t0 = make_table(&storage, &mut manifest, &[1, 2, 3], 1);
        // A sidecar that deliberately disagrees with the table contents:
        // if the planner still read the table, the observation would be
        // {1,2,3}, not this.
        TableKeyObservation::new(t0.table_id, vec![7, 8])
            .persist(&storage)
            .unwrap();
        let read_before = storage.bytes_read();
        let obs = observe_tables(&storage, manifest.tables()).unwrap();
        assert_eq!(obs[0].keys, KeySet::from_iter([7u64, 8]));
        let sidecar_len = storage
            .read_blob(&TableKeyObservation::blob_name(t0.table_id))
            .unwrap()
            .len() as u64;
        assert!(
            storage.bytes_read() - read_before <= 2 * sidecar_len,
            "planning read more than the sidecar"
        );
    }

    #[test]
    fn corrupt_sidecars_fall_back_instead_of_wedging_planning() {
        let storage = MemoryStorage::new();
        let mut manifest = Manifest::new();
        let t0 = make_table(&storage, &mut manifest, &[1, 2, 3], 1);
        // A sidecar that fails its checksum must be ignored, not fatal.
        storage
            .write_blob(
                &TableKeyObservation::blob_name(t0.table_id),
                b"not a valid observation",
            )
            .unwrap();
        let obs = observe_tables(&storage, manifest.tables()).unwrap();
        assert_eq!(
            obs[0].keys,
            KeySet::from_iter([1u64, 2, 3]),
            "fell back to reading the table"
        );
    }

    #[test]
    fn tables_without_sidecars_fall_back_to_a_full_read() {
        let storage = MemoryStorage::new();
        let mut manifest = Manifest::new();
        let t0 = make_table(&storage, &mut manifest, &[4, 5, 6], 1);
        assert!(!storage.contains_blob(&TableKeyObservation::blob_name(t0.table_id)));
        let obs = observe_tables(&storage, manifest.tables()).unwrap();
        assert_eq!(obs[0].keys, KeySet::from_iter([4u64, 5, 6]));
    }

    #[test]
    fn non_integer_keys_hash_consistently() {
        let a = observed_key(b"customer/1234");
        let b = observed_key(b"customer/1234");
        let c = observed_key(b"customer/1235");
        assert_eq!(a, b, "hashing is deterministic");
        assert_ne!(a, c);
        assert_eq!(
            observed_key(&key_from_u64(7)),
            7,
            "8-byte keys decode exactly"
        );
    }

    #[test]
    fn plan_compaction_lowers_to_steps() {
        let storage = MemoryStorage::new();
        let mut manifest = Manifest::new();
        make_table(&storage, &mut manifest, &[1, 2, 3, 5], 1);
        make_table(&storage, &mut manifest, &[1, 2, 3, 4], 2);
        make_table(&storage, &mut manifest, &[3, 4, 5], 3);
        let options = LsmOptions::default().compaction_strategy(Strategy::SmallestInput);
        let plan = plan_compaction(&storage, manifest.tables(), &options)
            .unwrap()
            .unwrap();
        assert_eq!(plan.steps().len(), 2, "3 tables, binary fan-in");
        assert!(plan.steps().iter().all(|inputs| inputs.len() == 2));
        assert_eq!(plan.waves().iter().map(Vec::len).sum::<usize>(), 2);
        assert!(plan.predicted_cost_actual() > 0);
    }

    #[test]
    fn fewer_than_two_tables_is_a_noop_plan() {
        let storage = MemoryStorage::new();
        let mut manifest = Manifest::new();
        let options = LsmOptions::default();
        assert!(plan_compaction(&storage, manifest.tables(), &options)
            .unwrap()
            .is_none());
        make_table(&storage, &mut manifest, &[1], 1);
        assert!(plan_compaction(&storage, manifest.tables(), &options)
            .unwrap()
            .is_none());
    }
}
