//! The immutable sorted-run (sstable) format.
//!
//! Layout of an encoded sstable blob (format v3):
//!
//! ```text
//! +-------------------+
//! | data block 0      |   compression envelope: tag + payload + CRC
//! | data block 1      |   (logical block bytes are CRC'd too, see `block`)
//! | ...               |
//! | bloom filter      |
//! | meta block        |   min/max user key of the table
//! | index block       |   (last_key, offset, stored_len) per data block
//! | footer            |   offsets + counts + magic + CRC
//! +-------------------+
//! ```
//!
//! Everything a point read needs to route itself — bloom filter, min/max
//! keys, block index — lives in the *tail* of the blob, so the lazy
//! reader ([`SstableReader`](crate::SstableReader)) opens a table with
//! two ranged reads (footer, then tail) and afterwards fetches exactly
//! one data block per lookup. Two legacy formats are still decoded:
//! v1 (no meta block, raw data blocks) and v2 (meta block, raw data
//! blocks). Since v3, each data block is stored inside a per-block
//! [compression envelope](crate::compress) — tag byte, possibly-LZ
//! payload, envelope CRC — and the index records the *stored* length,
//! so ranged reads fetch exactly the compressed bytes.
//!
//! Sstables are immutable once built: compaction never edits a table, it
//! reads whole tables and writes a new one, which is exactly the I/O the
//! paper's cost function charges for.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::block::{crc32, Block, BlockBuilder};
use crate::bloom::BloomFilter;
use crate::compress::{decode_block_envelope, encode_block_envelope, CompressionType};
use crate::storage::Storage;
use crate::types::{Entry, Key, RangeTombstone};
use crate::Error;

/// Magic of the v1 format: no meta block, min key only recoverable by
/// decoding data block 0.
pub(crate) const FOOTER_MAGIC_V1: u64 = 0x4C53_4D54_4142_4C45; // "LSMTABLE"
/// Magic of the v2 format: min/max-key meta block, raw data blocks.
pub(crate) const FOOTER_MAGIC_V2: u64 = 0x4C53_4D54_4142_4C32; // "LSMTABL2"
/// Magic of the v3 format: v2 layout with every data block wrapped in a
/// per-block compression envelope.
pub(crate) const FOOTER_MAGIC_V3: u64 = 0x4C53_4D54_4142_4C33; // "LSMTABL3"
/// Magic of the current format: v3 layout plus a resident range-
/// tombstone section between the meta and index blocks, so interval
/// deletes cost one record and readers check coverage with zero block
/// I/O. v1–v3 blobs keep decoding (they simply carry no range dels).
pub(crate) const FOOTER_MAGIC_V4: u64 = 0x4C53_4D54_4142_4C34; // "LSMTABL4"

/// Parsed sstable footer, shared between the eager [`Sstable`] decoder
/// and the lazy [`SstableReader`](crate::SstableReader).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Footer {
    /// Absolute offset of the bloom filter.
    pub bloom_offset: usize,
    /// Encoded bloom length in bytes.
    pub bloom_len: usize,
    /// Absolute offset of the meta block (`None` in v1 blobs).
    pub meta_offset: Option<usize>,
    /// Absolute offset of the range-tombstone section (`None` in
    /// v1–v3 blobs, which predate range deletes).
    pub range_del_offset: Option<usize>,
    /// Absolute offset of the index block.
    pub index_offset: usize,
    /// Number of entries in the table.
    pub entry_count: u64,
    /// Encoded footer length (depends on the format version).
    pub footer_len: usize,
    /// `true` for v3+ blobs, whose data blocks are wrapped in the
    /// per-block compression envelope; v1/v2 blocks are raw.
    pub compressed_blocks: bool,
}

impl Footer {
    /// v4 footer: 7 u64 fields + CRC32. Also the longest footer any
    /// format uses — the size of the tail probe a reader must fetch.
    pub(crate) const MAX_LEN: usize = 7 * 8 + 4;
    /// v2/v3 footer: 6 u64 fields + CRC32.
    pub(crate) const V2_LEN: usize = 6 * 8 + 4;
    /// v1 footer: 5 u64 fields + CRC32.
    pub(crate) const V1_LEN: usize = 5 * 8 + 4;

    /// Parses the footer from `tail`, the last `tail.len()` bytes of a
    /// blob of `total_len` bytes. `tail` must contain at least the whole
    /// footer ([`Footer::MAX_LEN`] bytes, or the entire blob if shorter).
    pub(crate) fn parse(tail: &[u8], total_len: usize) -> Result<Self, Error> {
        if tail.len() < 12 || total_len < Self::V1_LEN {
            return Err(Error::corruption("sstable shorter than footer"));
        }
        let magic_probe = &tail[tail.len() - 12..tail.len() - 4];
        let magic = u64::from_le_bytes(magic_probe.try_into().expect("8 bytes"));
        let (footer_len, fields, compressed_blocks) = match magic {
            FOOTER_MAGIC_V4 => (Self::MAX_LEN, 7, true),
            FOOTER_MAGIC_V3 => (Self::V2_LEN, 6, true),
            FOOTER_MAGIC_V2 => (Self::V2_LEN, 6, false),
            FOOTER_MAGIC_V1 => (Self::V1_LEN, 5, false),
            _ => return Err(Error::corruption("bad sstable magic")),
        };
        if tail.len() < footer_len || total_len < footer_len {
            return Err(Error::corruption("sstable shorter than footer"));
        }
        let footer = &tail[tail.len() - footer_len..];
        let crc_stored = u32::from_le_bytes(footer[footer_len - 4..].try_into().expect("4 bytes"));
        if crc32(&footer[..footer_len - 4]) != crc_stored {
            return Err(Error::corruption("sstable footer checksum mismatch"));
        }
        let mut cursor = footer;
        let bloom_offset = cursor.get_u64_le() as usize;
        let bloom_len = cursor.get_u64_le() as usize;
        let meta_offset = (fields >= 6).then(|| cursor.get_u64_le() as usize);
        let range_del_offset = (fields >= 7).then(|| cursor.get_u64_le() as usize);
        let index_offset = cursor.get_u64_le() as usize;
        let entry_count = cursor.get_u64_le();
        let body_end = total_len - footer_len;
        let bloom_end = bloom_offset
            .checked_add(bloom_len)
            .ok_or_else(|| Error::corruption("sstable bloom range overflows"))?;
        if bloom_end > body_end
            || index_offset > body_end
            || index_offset < bloom_end
            || meta_offset.is_some_and(|m| m < bloom_end || m > index_offset)
            || range_del_offset.is_some_and(|r| {
                r > index_offset || meta_offset.is_some_and(|m| r < m) || r < bloom_end
            })
        {
            return Err(Error::corruption("sstable footer offsets out of range"));
        }
        Ok(Self {
            bloom_offset,
            bloom_len,
            meta_offset,
            range_del_offset,
            index_offset,
            entry_count,
            footer_len,
            compressed_blocks,
        })
    }
}

/// Decodes one data block from its stored bytes: v3 blobs wrap every
/// block in the compression envelope, v1/v2 blobs store the logical
/// bytes raw. Returns the block and its logical (decompressed) byte
/// length, which the read-path counters report next to the physical
/// bytes actually fetched.
pub(crate) fn decode_table_block(raw: &[u8], enveloped: bool) -> Result<(Block, usize), Error> {
    if enveloped {
        let logical = decode_block_envelope(raw)?;
        Ok((Block::decode(&logical)?, logical.len()))
    } else {
        Ok((Block::decode(raw)?, raw.len()))
    }
}

/// Encodes the range-tombstone section: count, per-record bounds +
/// seqno, and a section CRC.
pub(crate) fn encode_range_dels(buf: &mut BytesMut, range_dels: &[RangeTombstone]) {
    let start = buf.len();
    buf.put_u32_le(range_dels.len() as u32);
    for rd in range_dels {
        buf.put_u32_le(rd.start.len() as u32);
        buf.put_slice(&rd.start);
        buf.put_u32_le(rd.end.len() as u32);
        buf.put_slice(&rd.end);
        buf.put_u64_le(rd.seqno);
    }
    let crc = crc32(&buf[start..]);
    buf.put_u32_le(crc);
}

/// Decodes a range-tombstone section produced by [`encode_range_dels`].
/// `section` must span exactly the section bytes (offset to the next
/// block's offset).
pub(crate) fn decode_range_dels(section: &[u8]) -> Result<Vec<RangeTombstone>, Error> {
    if section.len() < 8 {
        return Err(Error::corruption("truncated range-tombstone section"));
    }
    let (payload, crc_bytes) = section.split_at(section.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(payload) != stored {
        return Err(Error::corruption("range-tombstone section checksum mismatch"));
    }
    let mut cursor = payload;
    let count = cursor.get_u32_le();
    let mut range_dels = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let start = decode_meta_key(&mut cursor)?;
        let end = decode_meta_key(&mut cursor)?;
        if cursor.remaining() < 8 {
            return Err(Error::corruption("truncated range-tombstone record"));
        }
        let seqno = cursor.get_u64_le();
        range_dels.push(RangeTombstone::new(start, end, seqno));
    }
    Ok(range_dels)
}

/// Builds an sstable from entries supplied in internal-key order.
#[derive(Debug)]
pub struct SstableBuilder {
    table_id: u64,
    block_size: usize,
    bloom_bits_per_key: usize,
    compression: CompressionType,
    current: BlockBuilder,
    finished_blocks: Vec<(Key, Bytes)>,
    all_keys: Vec<Key>,
    range_dels: Vec<RangeTombstone>,
    entry_count: u64,
    tombstone_count: u64,
    max_seqno: u64,
    min_key: Option<Key>,
    max_key: Option<Key>,
}

impl SstableBuilder {
    /// Creates a builder for table `table_id`.
    #[must_use]
    pub fn new(table_id: u64, block_size: usize, bloom_bits_per_key: usize) -> Self {
        Self {
            table_id,
            block_size: block_size.max(64),
            bloom_bits_per_key,
            compression: CompressionType::default(),
            current: BlockBuilder::new(),
            finished_blocks: Vec::new(),
            all_keys: Vec::new(),
            range_dels: Vec::new(),
            entry_count: 0,
            tombstone_count: 0,
            max_seqno: 0,
            min_key: None,
            max_key: None,
        }
    }

    /// Appends an entry. Entries must arrive sorted by internal key
    /// (user key ascending, newest version first). All versions of one
    /// user key always land in the same data block — a full block
    /// rotates at the next user-key boundary, never mid-key — so a
    /// visibility walk over a key's versions stays within one block.
    pub fn add(&mut self, entry: &Entry) {
        if self.current.size_in_bytes() >= self.block_size
            && self.current.last_key().is_some_and(|last| *last != entry.key)
        {
            self.rotate_block();
        }
        if self.min_key.is_none() {
            self.min_key = Some(entry.key.clone());
        }
        self.max_key = Some(entry.key.clone());
        self.all_keys.push(entry.key.clone());
        self.entry_count += 1;
        self.max_seqno = self.max_seqno.max(entry.seqno);
        if entry.is_tombstone() {
            self.tombstone_count += 1;
        }
        self.current.add(entry);
    }

    /// Appends a range tombstone. Range dels live in a dedicated
    /// resident section, not in data blocks, so one call costs O(1)
    /// bytes regardless of how many keys `[start, end)` covers.
    pub fn add_range_del(&mut self, rd: RangeTombstone) {
        self.max_seqno = self.max_seqno.max(rd.seqno);
        self.range_dels.push(rd);
    }

    fn rotate_block(&mut self) {
        if self.current.is_empty() {
            return;
        }
        let last_key = self.current.last_key().expect("non-empty block").clone();
        let encoded = self.current.finish();
        self.finished_blocks.push((last_key, encoded));
    }

    /// Sets the per-block compression applied at [`SstableBuilder::finish`]
    /// time. Defaults to [`CompressionType::Lz`]; every block still
    /// falls back to raw storage when compression would not shrink it.
    #[must_use]
    pub fn compression(mut self, compression: CompressionType) -> Self {
        self.compression = compression;
        self
    }

    /// Number of entries added so far.
    #[must_use]
    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }

    /// Serializes the table and returns (encoded bytes, metadata).
    #[must_use]
    pub fn finish(mut self) -> (Bytes, SstableMeta) {
        self.rotate_block();

        let bloom = BloomFilter::build(
            self.all_keys.iter().map(|k| k.as_ref()),
            self.bloom_bits_per_key,
        );

        // The table's key range must cover its range tombstones too, so
        // range pruning never skips a table whose only relevant content
        // is an interval delete outside its point-key span.
        let mut min_key = self.min_key;
        let mut max_key = self.max_key;
        for rd in &self.range_dels {
            if min_key.as_ref().is_none_or(|m| rd.start < *m) {
                min_key = Some(rd.start.clone());
            }
            if max_key.as_ref().is_none_or(|m| rd.end > *m) {
                max_key = Some(rd.end.clone());
            }
        }

        let mut buf = BytesMut::new();
        let mut index: Vec<(Key, u64, u64)> = Vec::with_capacity(self.finished_blocks.len());
        for (last_key, encoded) in &self.finished_blocks {
            let offset = buf.len() as u64;
            let stored = encode_block_envelope(self.compression, encoded);
            buf.put_slice(&stored);
            index.push((last_key.clone(), offset, stored.len() as u64));
        }

        let bloom_offset = buf.len() as u64;
        let bloom_bytes = bloom.encode();
        buf.put_slice(&bloom_bytes);

        // Meta block: the table's min/max user keys, so key-range checks
        // and `min_key`/`max_key` never have to decode a data block.
        let meta_offset = buf.len() as u64;
        encode_meta(&mut buf, min_key.as_ref(), max_key.as_ref());

        // Range-tombstone section: resident in the tail next to the
        // meta block, so coverage checks never touch a data block.
        let range_del_offset = buf.len() as u64;
        encode_range_dels(&mut buf, &self.range_dels);

        let index_offset = buf.len() as u64;
        buf.put_u32_le(index.len() as u32);
        for (last_key, offset, len) in &index {
            buf.put_u32_le(last_key.len() as u32);
            buf.put_slice(last_key);
            buf.put_u64_le(*offset);
            buf.put_u64_le(*len);
        }

        // Footer: bloom_offset, bloom_len, meta_offset,
        // range_del_offset, index_offset, entry_count, magic, crc
        let footer_start = buf.len();
        buf.put_u64_le(bloom_offset);
        buf.put_u64_le(bloom_bytes.len() as u64);
        buf.put_u64_le(meta_offset);
        buf.put_u64_le(range_del_offset);
        buf.put_u64_le(index_offset);
        buf.put_u64_le(self.entry_count);
        buf.put_u64_le(FOOTER_MAGIC_V4);
        let crc = crc32(&buf[footer_start..]);
        buf.put_u32_le(crc);

        let meta = SstableMeta {
            table_id: self.table_id,
            entry_count: self.entry_count,
            tombstone_count: self.tombstone_count,
            range_tombstone_count: self.range_dels.len() as u64,
            max_seqno: self.max_seqno,
            encoded_len: buf.len() as u64,
            min_key,
            max_key,
        };
        (buf.freeze(), meta)
    }
}

/// Summary metadata returned by [`SstableBuilder::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SstableMeta {
    /// The table's id.
    pub table_id: u64,
    /// Number of entries (one per retained *version* — several per user
    /// key while a pinned snapshot keeps history alive).
    pub entry_count: u64,
    /// How many of the entries are tombstones (tombstone GC's input
    /// signal, carried into the manifest's [`TableMeta`](crate::TableMeta)).
    pub tombstone_count: u64,
    /// How many range tombstones the table carries in its resident
    /// section. The read path consults only tables where this is
    /// non-zero when resolving interval-delete visibility.
    pub range_tombstone_count: u64,
    /// Largest sequence number in the table, over point entries and
    /// range tombstones alike. Live tables hold pairwise-disjoint seqno
    /// ranges (flush generations; merges union whole tables), so this
    /// single number totally orders tables newest-first for the read
    /// path regardless of manifest position.
    pub max_seqno: u64,
    /// Size of the encoded table in bytes.
    pub encoded_len: u64,
    /// Smallest user key in the table (range-del bounds included).
    pub min_key: Option<Key>,
    /// Largest user key in the table (range-del bounds included).
    pub max_key: Option<Key>,
}

/// Encodes the min/max-key meta block: a presence flag followed by the
/// two length-prefixed keys (absent for an empty table).
pub(crate) fn encode_meta(buf: &mut BytesMut, min_key: Option<&Key>, max_key: Option<&Key>) {
    match (min_key, max_key) {
        (Some(min), Some(max)) => {
            buf.put_u8(1);
            buf.put_u32_le(min.len() as u32);
            buf.put_slice(min);
            buf.put_u32_le(max.len() as u32);
            buf.put_slice(max);
        }
        _ => buf.put_u8(0),
    }
}

/// Decodes a meta block produced by [`encode_meta`].
pub(crate) fn decode_meta(mut cursor: &[u8]) -> Result<(Option<Key>, Option<Key>), Error> {
    if cursor.is_empty() {
        return Err(Error::corruption("truncated sstable meta block"));
    }
    match cursor.get_u8() {
        0 => Ok((None, None)),
        1 => {
            let min = decode_meta_key(&mut cursor)?;
            let max = decode_meta_key(&mut cursor)?;
            Ok((Some(min), Some(max)))
        }
        _ => Err(Error::corruption("unknown sstable meta flag")),
    }
}

fn decode_meta_key(cursor: &mut &[u8]) -> Result<Key, Error> {
    if cursor.remaining() < 4 {
        return Err(Error::corruption("truncated sstable meta key length"));
    }
    let len = cursor.get_u32_le() as usize;
    if cursor.remaining() < len {
        return Err(Error::corruption("truncated sstable meta key"));
    }
    let key = Bytes::copy_from_slice(&cursor[..len]);
    cursor.advance(len);
    Ok(key)
}

/// Slices a data block's byte range out of a fully-loaded table,
/// surfacing a corrupt index entry (the footer CRC does not cover the
/// index) as [`Error::Corruption`] instead of a slice panic.
fn block_slice(data: &[u8], offset: u64, len: u64) -> Result<&[u8], Error> {
    let start =
        usize::try_from(offset).map_err(|_| Error::corruption("block offset overflows usize"))?;
    let end = len
        .checked_add(offset)
        .and_then(|end| usize::try_from(end).ok())
        .ok_or_else(|| Error::corruption("block range overflows"))?;
    data.get(start..end)
        .ok_or_else(|| Error::corruption("block range past end of table"))
}

/// Decodes the block index: `(last_key, offset, len)` per data block.
pub(crate) fn decode_index(mut cursor: &[u8]) -> Result<Vec<(Key, u64, u64)>, Error> {
    if cursor.remaining() < 4 {
        return Err(Error::corruption("truncated sstable index"));
    }
    let block_count = cursor.get_u32_le();
    let mut index = Vec::with_capacity(block_count as usize);
    for _ in 0..block_count {
        if cursor.remaining() < 4 {
            return Err(Error::corruption("truncated index entry"));
        }
        let klen = cursor.get_u32_le() as usize;
        if cursor.remaining() < klen + 16 {
            return Err(Error::corruption("truncated index entry body"));
        }
        let key = Bytes::copy_from_slice(&cursor[..klen]);
        cursor.advance(klen);
        let offset = cursor.get_u64_le();
        let len = cursor.get_u64_le();
        index.push((key, offset, len));
    }
    Ok(index)
}

/// An immutable, fully-loaded sstable.
///
/// This is the *eager* view: the entire blob is in memory, which is what
/// compaction merges want (they read every entry anyway). The point-read
/// path uses the lazy [`SstableReader`](crate::SstableReader) instead,
/// which keeps only the tail (bloom + meta + index) resident and fetches
/// data blocks on demand.
#[derive(Debug, Clone)]
pub struct Sstable {
    table_id: u64,
    data: Bytes,
    bloom: BloomFilter,
    /// (last_key, offset, stored_len) per data block, in key order.
    index: Vec<(Key, u64, u64)>,
    range_dels: Vec<RangeTombstone>,
    entry_count: u64,
    min_key: Option<Key>,
    max_key: Option<Key>,
    /// `true` for v3+ blobs: data blocks sit inside compression envelopes.
    compressed_blocks: bool,
}

impl Sstable {
    /// The canonical blob name for a table id.
    #[must_use]
    pub fn blob_name(table_id: u64) -> String {
        format!("sst-{table_id:012}.sst")
    }

    /// Parses a table id back out of a blob name produced by
    /// [`Sstable::blob_name`]; `None` for any other blob (manifest, WAL
    /// segments, temporaries).
    #[must_use]
    pub fn id_from_blob_name(name: &str) -> Option<u64> {
        name.strip_prefix("sst-")?
            .strip_suffix(".sst")?
            .parse()
            .ok()
    }

    /// Decodes an sstable from its encoded bytes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] if the footer, index or checksums are
    /// malformed.
    pub fn decode(table_id: u64, data: Bytes) -> Result<Self, Error> {
        let footer = Footer::parse(&data, data.len())?;
        let bloom = BloomFilter::decode(
            &data[footer.bloom_offset..footer.bloom_offset + footer.bloom_len],
        )?;
        let body_end = data.len() - footer.footer_len;
        let index = decode_index(&data[footer.index_offset..body_end])?;
        let range_dels = match footer.range_del_offset {
            Some(offset) => decode_range_dels(&data[offset..footer.index_offset])?,
            None => Vec::new(),
        };

        let (min_key, max_key) = match footer.meta_offset {
            Some(meta_offset) => decode_meta(&data[meta_offset..footer.index_offset])?,
            // Legacy v1 blob: no meta block. Recover the min key by
            // decoding data block 0 — propagating corruption instead of
            // swallowing it — and the max from the last index entry.
            None => match index.first() {
                Some(&(_, offset, len)) => {
                    let (block, _) = decode_table_block(
                        block_slice(&data, offset, len)?,
                        footer.compressed_blocks,
                    )?;
                    let min = block
                        .entries()
                        .first()
                        .map(|e| e.key.clone())
                        .ok_or_else(|| Error::corruption("empty first data block"))?;
                    (Some(min), index.last().map(|(k, _, _)| k.clone()))
                }
                None => (None, None),
            },
        };

        Ok(Self {
            table_id,
            data,
            bloom,
            index,
            range_dels,
            entry_count: footer.entry_count,
            min_key,
            max_key,
            compressed_blocks: footer.compressed_blocks,
        })
    }

    /// Loads and decodes the sstable blob for `table_id` from `storage`.
    ///
    /// # Errors
    ///
    /// Fails if the blob is missing or corrupt.
    pub fn load(storage: &dyn Storage, table_id: u64) -> Result<Self, Error> {
        let data = storage.read_blob(&Self::blob_name(table_id))?;
        Self::decode(table_id, data)
    }

    /// The table's id.
    #[must_use]
    pub fn table_id(&self) -> u64 {
        self.table_id
    }

    /// Number of entries in the table.
    #[must_use]
    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }

    /// Encoded size of the table in bytes.
    #[must_use]
    pub fn encoded_len(&self) -> u64 {
        self.data.len() as u64
    }

    /// Smallest user key, if the table is non-empty. Served from the
    /// persisted table meta — no block read, no swallowed errors (any
    /// corruption surfaced at [`Sstable::decode`] time).
    #[must_use]
    pub fn min_key(&self) -> Option<Key> {
        self.min_key.clone()
    }

    /// Largest user key, if the table is non-empty. Served from the
    /// persisted table meta.
    #[must_use]
    pub fn max_key(&self) -> Option<Key> {
        self.max_key.clone()
    }

    /// The table's range tombstones (empty for v1–v3 blobs). Resident —
    /// reading them costs no block I/O.
    #[must_use]
    pub fn range_dels(&self) -> &[RangeTombstone] {
        &self.range_dels
    }

    /// Point lookup: returns the newest version of `key` stored in this
    /// table (which may be a tombstone), or `None`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] if the containing block fails its
    /// checksum.
    pub fn get(&self, key: &[u8]) -> Result<Option<Entry>, Error> {
        if !self.bloom.may_contain(key) {
            return Ok(None);
        }
        // Binary search the index for the first block whose last key >= key.
        let block_idx = self
            .index
            .partition_point(|(last, _, _)| last.as_ref() < key);
        if block_idx >= self.index.len() {
            return Ok(None);
        }
        let block = self.read_block(block_idx)?;
        Ok(block.get(key).cloned())
    }

    /// Number of data blocks.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.index.len()
    }

    fn read_block(&self, idx: usize) -> Result<Block, Error> {
        let (_, offset, len) = self.index[idx];
        let (block, _) = decode_table_block(
            block_slice(&self.data, offset, len)?,
            self.compressed_blocks,
        )?;
        Ok(block)
    }

    /// Iterates every entry in the table in internal-key order.
    #[must_use]
    pub fn iter(&self) -> SstableIter<'_> {
        SstableIter {
            table: self,
            block_idx: 0,
            entries: Vec::new(),
            entry_idx: 0,
        }
    }
}

/// Iterator over all entries of an [`Sstable`] in key order.
#[derive(Debug)]
pub struct SstableIter<'a> {
    table: &'a Sstable,
    block_idx: usize,
    entries: Vec<Entry>,
    entry_idx: usize,
}

impl Iterator for SstableIter<'_> {
    type Item = Result<Entry, Error>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.entry_idx < self.entries.len() {
                let entry = self.entries[self.entry_idx].clone();
                self.entry_idx += 1;
                return Some(Ok(entry));
            }
            if self.block_idx >= self.table.index.len() {
                return None;
            }
            match self.table.read_block(self.block_idx) {
                Ok(block) => {
                    self.block_idx += 1;
                    self.entries = block.into_entries();
                    self.entry_idx = 0;
                }
                Err(e) => {
                    self.block_idx = self.table.index.len();
                    return Some(Err(e));
                }
            }
        }
    }
}

/// Test-only helpers shared between this module's tests and the reader
/// tests (the real legacy encoders live in [`crate::test_support`] so
/// integration tests can build mixed-version table sets too).
#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crate::types::key_from_u64;

    /// Encodes `n` sequential-key entries (values `v1-<i>`) as a legacy
    /// v1 sstable blob.
    pub(crate) fn build_v1_table(n: u64, block_size: usize) -> Bytes {
        let entries: Vec<Entry> = (0..n)
            .map(|i| Entry::put(key_from_u64(i), Bytes::from(format!("v1-{i}")), 1_000 + i))
            .collect();
        crate::test_support::encode_v1_sstable(&entries, block_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemoryStorage;
    use crate::types::key_from_u64;

    fn build_table(n: u64, block_size: usize) -> (Bytes, SstableMeta) {
        let mut builder = SstableBuilder::new(7, block_size, 10);
        for i in 0..n {
            let entry = if i % 11 == 0 {
                Entry::tombstone(key_from_u64(i), 1_000 + i)
            } else {
                Entry::put(
                    key_from_u64(i),
                    Bytes::from(format!("value-{i}")),
                    1_000 + i,
                )
            };
            builder.add(&entry);
        }
        assert_eq!(builder.entry_count(), n);
        builder.finish()
    }

    #[test]
    fn build_decode_and_point_lookup() {
        let (data, meta) = build_table(1_000, 256);
        assert_eq!(meta.entry_count, 1_000);
        assert_eq!(meta.min_key, Some(key_from_u64(0)));
        assert_eq!(meta.max_key, Some(key_from_u64(999)));

        let table = Sstable::decode(7, data).unwrap();
        assert_eq!(table.table_id(), 7);
        assert_eq!(table.entry_count(), 1_000);
        assert!(
            table.block_count() > 1,
            "small block size must yield several blocks"
        );
        assert_eq!(table.min_key(), Some(key_from_u64(0)));
        assert_eq!(table.max_key(), Some(key_from_u64(999)));

        let entry = table.get(&key_from_u64(500)).unwrap().unwrap();
        assert_eq!(entry.value.as_ref(), b"value-500");
        let tomb = table.get(&key_from_u64(990)).unwrap().unwrap();
        assert!(tomb.is_tombstone());
        assert!(table.get(&key_from_u64(5_000)).unwrap().is_none());
    }

    #[test]
    fn iter_returns_all_entries_in_order() {
        let (data, _) = build_table(500, 200);
        let table = Sstable::decode(1, data).unwrap();
        let entries: Result<Vec<Entry>, Error> = table.iter().collect();
        let entries = entries.unwrap();
        assert_eq!(entries.len(), 500);
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.key, key_from_u64(i as u64));
        }
    }

    #[test]
    fn empty_table_roundtrips() {
        let builder = SstableBuilder::new(2, 4096, 10);
        let (data, meta) = builder.finish();
        assert_eq!(meta.entry_count, 0);
        let table = Sstable::decode(2, data).unwrap();
        assert_eq!(table.entry_count(), 0);
        assert_eq!(table.block_count(), 0);
        assert!(table.get(b"x").unwrap().is_none());
        assert_eq!(table.iter().count(), 0);
        assert_eq!(table.min_key(), None);
        assert_eq!(table.max_key(), None);
    }

    use super::test_support::build_v1_table;

    #[test]
    fn legacy_v1_tables_still_decode() {
        let data = build_v1_table(300, 256);
        let table = Sstable::decode(9, data).unwrap();
        assert_eq!(table.entry_count(), 300);
        assert!(table.block_count() > 1);
        assert_eq!(table.min_key(), Some(key_from_u64(0)), "min from block 0");
        assert_eq!(table.max_key(), Some(key_from_u64(299)), "max from index");
        let e = table.get(&key_from_u64(123)).unwrap().unwrap();
        assert_eq!(e.value.as_ref(), b"v1-123");

        // A corrupt first block must surface as an error at decode time,
        // not be silently swallowed into `min_key() == None`.
        let good = build_v1_table(300, 256);
        let mut tampered = good.to_vec();
        tampered[10] ^= 0xFF; // inside data block 0
        assert!(matches!(
            Sstable::decode(9, Bytes::from(tampered)),
            Err(Error::Corruption { .. })
        ));
    }

    #[test]
    fn decode_rejects_corruption() {
        let (data, _) = build_table(50, 4096);
        let mut tampered = data.to_vec();
        let last = tampered.len() - 1;
        tampered[last] ^= 0xFF;
        assert!(Sstable::decode(1, Bytes::from(tampered)).is_err());
        assert!(Sstable::decode(1, Bytes::from_static(b"tiny")).is_err());
    }

    #[test]
    fn load_from_storage() {
        let storage = MemoryStorage::new();
        let (data, _) = build_table(100, 512);
        storage.write_blob(&Sstable::blob_name(42), &data).unwrap();
        let table = Sstable::load(&storage, 42).unwrap();
        assert_eq!(table.entry_count(), 100);
        assert!(Sstable::load(&storage, 43).is_err());
    }

    #[test]
    fn blob_names_are_stable_and_sortable() {
        assert_eq!(Sstable::blob_name(1), "sst-000000000001.sst");
        assert!(Sstable::blob_name(2) < Sstable::blob_name(10));
    }

    #[test]
    fn range_tombstones_roundtrip_through_v4() {
        let mut builder = SstableBuilder::new(3, 256, 10);
        for i in 10u64..20 {
            builder.add(&Entry::put(key_from_u64(i), Bytes::from_static(b"v"), i));
        }
        builder.add_range_del(RangeTombstone::new(key_from_u64(0), key_from_u64(5), 30));
        builder.add_range_del(RangeTombstone::new(key_from_u64(12), key_from_u64(40), 31));
        let (data, meta) = builder.finish();
        assert_eq!(meta.range_tombstone_count, 2);
        assert_eq!(
            meta.min_key,
            Some(key_from_u64(0)),
            "min widened to the range-del start"
        );
        assert_eq!(
            meta.max_key,
            Some(key_from_u64(40)),
            "max widened to the range-del end"
        );

        let table = Sstable::decode(3, data).unwrap();
        assert_eq!(table.range_dels().len(), 2);
        assert_eq!(table.range_dels()[0].seqno, 30);
        assert_eq!(table.range_dels()[1].start, key_from_u64(12));
        // Point entries still resolve normally.
        assert!(table.get(&key_from_u64(15)).unwrap().is_some());
    }

    #[test]
    fn range_del_only_table_roundtrips() {
        let mut builder = SstableBuilder::new(4, 256, 10);
        builder.add_range_del(RangeTombstone::new(key_from_u64(5), key_from_u64(9), 77));
        let (data, meta) = builder.finish();
        assert_eq!(meta.entry_count, 0);
        assert_eq!(meta.range_tombstone_count, 1);
        assert_eq!(meta.min_key, Some(key_from_u64(5)));
        let table = Sstable::decode(4, data).unwrap();
        assert_eq!(table.entry_count(), 0);
        assert_eq!(table.range_dels().len(), 1);
        assert!(table.range_dels()[0].shadows(&key_from_u64(6), 70));
    }

    #[test]
    fn versions_of_one_key_never_split_across_blocks() {
        // Tiny blocks force rotation; the builder must still keep all
        // versions of each user key inside a single block so the
        // visibility walk never crosses a block boundary.
        let mut builder = SstableBuilder::new(5, 64, 10);
        for key in 0u64..50 {
            for version in 0..4u64 {
                builder.add(&Entry::put(
                    key_from_u64(key),
                    Bytes::from(vec![b'x'; 40]),
                    1_000 + (50 - key) * 10 - version,
                ));
            }
        }
        let (data, _) = builder.finish();
        let table = Sstable::decode(5, data).unwrap();
        assert!(table.block_count() > 5, "rotation still happens");
        let mut seen_last: Option<Key> = None;
        for idx in 0..table.block_count() {
            let block = table.read_block(idx).unwrap();
            let first = block.entries().first().unwrap().key.clone();
            if let Some(prev_last) = &seen_last {
                assert_ne!(
                    *prev_last, first,
                    "user key split across adjacent blocks"
                );
            }
            seen_last = Some(block.entries().last().unwrap().key.clone());
        }
    }

    #[test]
    fn corrupt_range_del_section_is_detected() {
        let mut builder = SstableBuilder::new(6, 256, 10);
        builder.add(&Entry::put(key_from_u64(1), Bytes::from_static(b"v"), 1));
        builder.add_range_del(RangeTombstone::new(key_from_u64(2), key_from_u64(9), 5));
        let (data, _) = builder.finish();
        let decoded = Sstable::decode(6, data.clone()).unwrap();
        assert_eq!(decoded.range_dels().len(), 1);

        // Flip a byte inside the range-del section (between meta and
        // index): locate it via the footer.
        let footer = Footer::parse(&data, data.len()).unwrap();
        let mut tampered = data.to_vec();
        tampered[footer.range_del_offset.unwrap() + 4] ^= 0xFF;
        assert!(matches!(
            Sstable::decode(6, Bytes::from(tampered)),
            Err(Error::Corruption { .. })
        ));
    }
}
