//! The immutable sorted-run (sstable) format.
//!
//! Layout of an encoded sstable blob:
//!
//! ```text
//! +-------------------+
//! | data block 0      |   length-prefixed, CRC-protected (see `block`)
//! | data block 1      |
//! | ...               |
//! | bloom filter      |
//! | index block       |   (last_key, offset, len) per data block
//! | footer            |   offsets + counts + magic + CRC
//! +-------------------+
//! ```
//!
//! Sstables are immutable once built: compaction never edits a table, it
//! reads whole tables and writes a new one, which is exactly the I/O the
//! paper's cost function charges for.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::block::{crc32, Block, BlockBuilder};
use crate::bloom::BloomFilter;
use crate::storage::Storage;
use crate::types::{Entry, Key};
use crate::Error;

const FOOTER_MAGIC: u64 = 0x4C53_4D54_4142_4C45; // "LSMTABLE"

/// Builds an sstable from entries supplied in internal-key order.
#[derive(Debug)]
pub struct SstableBuilder {
    table_id: u64,
    block_size: usize,
    bloom_bits_per_key: usize,
    current: BlockBuilder,
    finished_blocks: Vec<(Key, Bytes)>,
    all_keys: Vec<Key>,
    entry_count: u64,
    min_key: Option<Key>,
    max_key: Option<Key>,
}

impl SstableBuilder {
    /// Creates a builder for table `table_id`.
    #[must_use]
    pub fn new(table_id: u64, block_size: usize, bloom_bits_per_key: usize) -> Self {
        Self {
            table_id,
            block_size: block_size.max(64),
            bloom_bits_per_key,
            current: BlockBuilder::new(),
            finished_blocks: Vec::new(),
            all_keys: Vec::new(),
            entry_count: 0,
            min_key: None,
            max_key: None,
        }
    }

    /// Appends an entry. Entries must arrive sorted by internal key
    /// (user key ascending, newest version first).
    pub fn add(&mut self, entry: &Entry) {
        if self.min_key.is_none() {
            self.min_key = Some(entry.key.clone());
        }
        self.max_key = Some(entry.key.clone());
        self.all_keys.push(entry.key.clone());
        self.entry_count += 1;
        self.current.add(entry);
        if self.current.size_in_bytes() >= self.block_size {
            self.rotate_block();
        }
    }

    fn rotate_block(&mut self) {
        if self.current.is_empty() {
            return;
        }
        let last_key = self.current.last_key().expect("non-empty block").clone();
        let encoded = self.current.finish();
        self.finished_blocks.push((last_key, encoded));
    }

    /// Number of entries added so far.
    #[must_use]
    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }

    /// Serializes the table and returns (encoded bytes, metadata).
    #[must_use]
    pub fn finish(mut self) -> (Bytes, SstableMeta) {
        self.rotate_block();

        let bloom = BloomFilter::build(
            self.all_keys.iter().map(|k| k.as_ref()),
            self.bloom_bits_per_key,
        );

        let mut buf = BytesMut::new();
        let mut index: Vec<(Key, u64, u64)> = Vec::with_capacity(self.finished_blocks.len());
        for (last_key, encoded) in &self.finished_blocks {
            let offset = buf.len() as u64;
            buf.put_slice(encoded);
            index.push((last_key.clone(), offset, encoded.len() as u64));
        }

        let bloom_offset = buf.len() as u64;
        let bloom_bytes = bloom.encode();
        buf.put_slice(&bloom_bytes);

        let index_offset = buf.len() as u64;
        buf.put_u32_le(index.len() as u32);
        for (last_key, offset, len) in &index {
            buf.put_u32_le(last_key.len() as u32);
            buf.put_slice(last_key);
            buf.put_u64_le(*offset);
            buf.put_u64_le(*len);
        }

        // Footer: bloom_offset, bloom_len, index_offset, entry_count, magic, crc
        let footer_start = buf.len();
        buf.put_u64_le(bloom_offset);
        buf.put_u64_le(bloom_bytes.len() as u64);
        buf.put_u64_le(index_offset);
        buf.put_u64_le(self.entry_count);
        buf.put_u64_le(FOOTER_MAGIC);
        let crc = crc32(&buf[footer_start..]);
        buf.put_u32_le(crc);

        let meta = SstableMeta {
            table_id: self.table_id,
            entry_count: self.entry_count,
            encoded_len: buf.len() as u64,
            min_key: self.min_key,
            max_key: self.max_key,
        };
        (buf.freeze(), meta)
    }
}

/// Summary metadata returned by [`SstableBuilder::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SstableMeta {
    /// The table's id.
    pub table_id: u64,
    /// Number of entries (distinct user keys, since flushes and
    /// compactions both emit one version per key).
    pub entry_count: u64,
    /// Size of the encoded table in bytes.
    pub encoded_len: u64,
    /// Smallest user key in the table.
    pub min_key: Option<Key>,
    /// Largest user key in the table.
    pub max_key: Option<Key>,
}

/// An immutable, decoded-on-demand sstable.
#[derive(Debug, Clone)]
pub struct Sstable {
    table_id: u64,
    data: Bytes,
    bloom: BloomFilter,
    /// (last_key, offset, len) per data block, in key order.
    index: Vec<(Key, u64, u64)>,
    entry_count: u64,
}

impl Sstable {
    /// The canonical blob name for a table id.
    #[must_use]
    pub fn blob_name(table_id: u64) -> String {
        format!("sst-{table_id:012}.sst")
    }

    /// Parses a table id back out of a blob name produced by
    /// [`Sstable::blob_name`]; `None` for any other blob (manifest, WAL
    /// segments, temporaries).
    #[must_use]
    pub fn id_from_blob_name(name: &str) -> Option<u64> {
        name.strip_prefix("sst-")?
            .strip_suffix(".sst")?
            .parse()
            .ok()
    }

    /// Decodes an sstable from its encoded bytes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] if the footer, index or checksums are
    /// malformed.
    pub fn decode(table_id: u64, data: Bytes) -> Result<Self, Error> {
        const FOOTER_LEN: usize = 8 * 5 + 4;
        if data.len() < FOOTER_LEN {
            return Err(Error::corruption("sstable shorter than footer"));
        }
        let footer = &data[data.len() - FOOTER_LEN..];
        let crc_stored = u32::from_le_bytes(footer[FOOTER_LEN - 4..].try_into().expect("4 bytes"));
        if crc32(&footer[..FOOTER_LEN - 4]) != crc_stored {
            return Err(Error::corruption("sstable footer checksum mismatch"));
        }
        let mut cursor = footer;
        let bloom_offset = cursor.get_u64_le() as usize;
        let bloom_len = cursor.get_u64_le() as usize;
        let index_offset = cursor.get_u64_le() as usize;
        let entry_count = cursor.get_u64_le();
        let magic = cursor.get_u64_le();
        if magic != FOOTER_MAGIC {
            return Err(Error::corruption("bad sstable magic"));
        }
        if bloom_offset + bloom_len > data.len() || index_offset > data.len() {
            return Err(Error::corruption("sstable footer offsets out of range"));
        }

        let bloom = BloomFilter::decode(&data[bloom_offset..bloom_offset + bloom_len])?;

        let mut index_cursor = &data[index_offset..data.len() - FOOTER_LEN];
        if index_cursor.remaining() < 4 {
            return Err(Error::corruption("truncated sstable index"));
        }
        let block_count = index_cursor.get_u32_le();
        let mut index = Vec::with_capacity(block_count as usize);
        for _ in 0..block_count {
            if index_cursor.remaining() < 4 {
                return Err(Error::corruption("truncated index entry"));
            }
            let klen = index_cursor.get_u32_le() as usize;
            if index_cursor.remaining() < klen + 16 {
                return Err(Error::corruption("truncated index entry body"));
            }
            let key = Bytes::copy_from_slice(&index_cursor[..klen]);
            index_cursor.advance(klen);
            let offset = index_cursor.get_u64_le();
            let len = index_cursor.get_u64_le();
            index.push((key, offset, len));
        }

        Ok(Self {
            table_id,
            data,
            bloom,
            index,
            entry_count,
        })
    }

    /// Loads and decodes the sstable blob for `table_id` from `storage`.
    ///
    /// # Errors
    ///
    /// Fails if the blob is missing or corrupt.
    pub fn load(storage: &dyn Storage, table_id: u64) -> Result<Self, Error> {
        let data = storage.read_blob(&Self::blob_name(table_id))?;
        Self::decode(table_id, data)
    }

    /// The table's id.
    #[must_use]
    pub fn table_id(&self) -> u64 {
        self.table_id
    }

    /// Number of entries in the table.
    #[must_use]
    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }

    /// Encoded size of the table in bytes.
    #[must_use]
    pub fn encoded_len(&self) -> u64 {
        self.data.len() as u64
    }

    /// Smallest user key, if the table is non-empty.
    #[must_use]
    pub fn min_key(&self) -> Option<Key> {
        self.index.first().and_then(|_| {
            self.read_block(0)
                .ok()
                .and_then(|b| b.entries().first().map(|e| e.key.clone()))
        })
    }

    /// Largest user key, if the table is non-empty.
    #[must_use]
    pub fn max_key(&self) -> Option<Key> {
        self.index.last().map(|(k, _, _)| k.clone())
    }

    /// Point lookup: returns the newest version of `key` stored in this
    /// table (which may be a tombstone), or `None`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] if the containing block fails its
    /// checksum.
    pub fn get(&self, key: &[u8]) -> Result<Option<Entry>, Error> {
        if !self.bloom.may_contain(key) {
            return Ok(None);
        }
        // Binary search the index for the first block whose last key >= key.
        let block_idx = self
            .index
            .partition_point(|(last, _, _)| last.as_ref() < key);
        if block_idx >= self.index.len() {
            return Ok(None);
        }
        let block = self.read_block(block_idx)?;
        Ok(block.get(key).cloned())
    }

    /// Number of data blocks.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.index.len()
    }

    fn read_block(&self, idx: usize) -> Result<Block, Error> {
        let (_, offset, len) = &self.index[idx];
        let start = *offset as usize;
        let end = start + *len as usize;
        Block::decode(&self.data[start..end])
    }

    /// Iterates every entry in the table in internal-key order.
    #[must_use]
    pub fn iter(&self) -> SstableIter<'_> {
        SstableIter {
            table: self,
            block_idx: 0,
            entries: Vec::new(),
            entry_idx: 0,
        }
    }
}

/// Iterator over all entries of an [`Sstable`] in key order.
#[derive(Debug)]
pub struct SstableIter<'a> {
    table: &'a Sstable,
    block_idx: usize,
    entries: Vec<Entry>,
    entry_idx: usize,
}

impl Iterator for SstableIter<'_> {
    type Item = Result<Entry, Error>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.entry_idx < self.entries.len() {
                let entry = self.entries[self.entry_idx].clone();
                self.entry_idx += 1;
                return Some(Ok(entry));
            }
            if self.block_idx >= self.table.index.len() {
                return None;
            }
            match self.table.read_block(self.block_idx) {
                Ok(block) => {
                    self.block_idx += 1;
                    self.entries = block.into_entries();
                    self.entry_idx = 0;
                }
                Err(e) => {
                    self.block_idx = self.table.index.len();
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemoryStorage;
    use crate::types::key_from_u64;

    fn build_table(n: u64, block_size: usize) -> (Bytes, SstableMeta) {
        let mut builder = SstableBuilder::new(7, block_size, 10);
        for i in 0..n {
            let entry = if i % 11 == 0 {
                Entry::tombstone(key_from_u64(i), 1_000 + i)
            } else {
                Entry::put(
                    key_from_u64(i),
                    Bytes::from(format!("value-{i}")),
                    1_000 + i,
                )
            };
            builder.add(&entry);
        }
        assert_eq!(builder.entry_count(), n);
        builder.finish()
    }

    #[test]
    fn build_decode_and_point_lookup() {
        let (data, meta) = build_table(1_000, 256);
        assert_eq!(meta.entry_count, 1_000);
        assert_eq!(meta.min_key, Some(key_from_u64(0)));
        assert_eq!(meta.max_key, Some(key_from_u64(999)));

        let table = Sstable::decode(7, data).unwrap();
        assert_eq!(table.table_id(), 7);
        assert_eq!(table.entry_count(), 1_000);
        assert!(
            table.block_count() > 1,
            "small block size must yield several blocks"
        );
        assert_eq!(table.min_key(), Some(key_from_u64(0)));
        assert_eq!(table.max_key(), Some(key_from_u64(999)));

        let entry = table.get(&key_from_u64(500)).unwrap().unwrap();
        assert_eq!(entry.value.as_ref(), b"value-500");
        let tomb = table.get(&key_from_u64(990)).unwrap().unwrap();
        assert!(tomb.is_tombstone());
        assert!(table.get(&key_from_u64(5_000)).unwrap().is_none());
    }

    #[test]
    fn iter_returns_all_entries_in_order() {
        let (data, _) = build_table(500, 200);
        let table = Sstable::decode(1, data).unwrap();
        let entries: Result<Vec<Entry>, Error> = table.iter().collect();
        let entries = entries.unwrap();
        assert_eq!(entries.len(), 500);
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.key, key_from_u64(i as u64));
        }
    }

    #[test]
    fn empty_table_roundtrips() {
        let builder = SstableBuilder::new(2, 4096, 10);
        let (data, meta) = builder.finish();
        assert_eq!(meta.entry_count, 0);
        let table = Sstable::decode(2, data).unwrap();
        assert_eq!(table.entry_count(), 0);
        assert_eq!(table.block_count(), 0);
        assert!(table.get(b"x").unwrap().is_none());
        assert_eq!(table.iter().count(), 0);
        assert_eq!(table.min_key(), None);
        assert_eq!(table.max_key(), None);
    }

    #[test]
    fn decode_rejects_corruption() {
        let (data, _) = build_table(50, 4096);
        let mut tampered = data.to_vec();
        let last = tampered.len() - 1;
        tampered[last] ^= 0xFF;
        assert!(Sstable::decode(1, Bytes::from(tampered)).is_err());
        assert!(Sstable::decode(1, Bytes::from_static(b"tiny")).is_err());
    }

    #[test]
    fn load_from_storage() {
        let storage = MemoryStorage::new();
        let (data, _) = build_table(100, 512);
        storage.write_blob(&Sstable::blob_name(42), &data).unwrap();
        let table = Sstable::load(&storage, 42).unwrap();
        assert_eq!(table.entry_count(), 100);
        assert!(Sstable::load(&storage, 43).is_err());
    }

    #[test]
    fn blob_names_are_stable_and_sortable() {
        assert_eq!(Sstable::blob_name(1), "sst-000000000001.sst");
        assert!(Sstable::blob_name(2) < Sstable::blob_name(10));
    }
}
