//! Write-ahead log.
//!
//! Every write is appended to the WAL before it is applied to the
//! memtable, so an engine restart can rebuild the memtable that had not
//! yet been flushed to an sstable. Records are length-prefixed and
//! CRC-protected; replay stops cleanly at the first torn or corrupt
//! record, which models the standard crash-recovery contract.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::block::crc32;
use crate::storage::Storage;
use crate::types::{Key, SeqNo, Value, ValueKind};
use crate::Error;

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The user key being written.
    pub key: Key,
    /// The value (empty for tombstones).
    pub value: Value,
    /// Sequence number assigned to the write.
    pub seqno: SeqNo,
    /// Put or tombstone.
    pub kind: ValueKind,
}

/// An append-only write-ahead log stored as a single blob per segment.
///
/// The engine uses one segment per memtable generation: the segment is
/// truncated (re-created empty) after the memtable it protects has been
/// flushed into an sstable.
#[derive(Debug)]
pub struct Wal {
    segment_name: String,
    buffer: BytesMut,
    record_count: u64,
}

impl Wal {
    /// Creates an empty WAL that will persist into blob `segment_name`.
    #[must_use]
    pub fn new(segment_name: impl Into<String>) -> Self {
        Self {
            segment_name: segment_name.into(),
            buffer: BytesMut::new(),
            record_count: 0,
        }
    }

    /// The blob name this WAL persists to.
    #[must_use]
    pub fn segment_name(&self) -> &str {
        &self.segment_name
    }

    /// Number of records appended since the last reset.
    #[must_use]
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// Appends a record to the in-memory segment buffer and persists the
    /// whole segment to `storage`.
    ///
    /// Persisting the full segment on every append is simple and safe; for
    /// the simulator workloads segments are small (one memtable's worth of
    /// writes).
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn append(&mut self, storage: &dyn Storage, record: &WalRecord) -> Result<(), Error> {
        let mut payload = BytesMut::new();
        payload.put_u32_le(record.key.len() as u32);
        payload.put_slice(&record.key);
        payload.put_u32_le(record.value.len() as u32);
        payload.put_slice(&record.value);
        payload.put_u64_le(record.seqno);
        payload.put_u8(record.kind.as_u8());

        self.buffer.put_u32_le(payload.len() as u32);
        self.buffer.put_u32_le(crc32(&payload));
        self.buffer.put_slice(&payload);
        self.record_count += 1;

        storage.write_blob(&self.segment_name, &self.buffer)
    }

    /// Clears the segment (after a successful memtable flush).
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn reset(&mut self, storage: &dyn Storage) -> Result<(), Error> {
        self.buffer.clear();
        self.record_count = 0;
        storage.write_blob(&self.segment_name, &[])
    }

    /// Replays a WAL segment from `storage`, returning every intact record
    /// in append order. A missing segment replays as empty; replay stops
    /// silently at the first torn/corrupt record.
    ///
    /// # Errors
    ///
    /// Propagates storage failures other than "not found".
    pub fn replay(storage: &dyn Storage, segment_name: &str) -> Result<Vec<WalRecord>, Error> {
        let data: Bytes = match storage.read_blob(segment_name) {
            Ok(data) => data,
            Err(Error::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut records = Vec::new();
        let mut cursor = data.as_ref();
        while cursor.remaining() >= 8 {
            let len = cursor.get_u32_le() as usize;
            let stored_crc = cursor.get_u32_le();
            if cursor.remaining() < len {
                break; // torn tail
            }
            let payload = &cursor[..len];
            if crc32(payload) != stored_crc {
                break; // corrupt tail
            }
            cursor.advance(len);

            let mut p = payload;
            if p.remaining() < 4 {
                break;
            }
            let klen = p.get_u32_le() as usize;
            if p.remaining() < klen + 4 {
                break;
            }
            let key = Bytes::copy_from_slice(&p[..klen]);
            p.advance(klen);
            let vlen = p.get_u32_le() as usize;
            if p.remaining() < vlen + 9 {
                break;
            }
            let value = Bytes::copy_from_slice(&p[..vlen]);
            p.advance(vlen);
            let seqno = p.get_u64_le();
            let Some(kind) = ValueKind::from_u8(p.get_u8()) else {
                break;
            };
            records.push(WalRecord {
                key,
                value,
                seqno,
                kind,
            });
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemoryStorage;
    use crate::types::key_from_u64;

    fn record(i: u64) -> WalRecord {
        WalRecord {
            key: key_from_u64(i),
            value: Bytes::from(format!("v{i}")),
            seqno: i,
            kind: if i.is_multiple_of(5) {
                ValueKind::Tombstone
            } else {
                ValueKind::Put
            },
        }
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let storage = MemoryStorage::new();
        let mut wal = Wal::new("wal-0");
        let records: Vec<WalRecord> = (0..50).map(record).collect();
        for r in &records {
            wal.append(&storage, r).unwrap();
        }
        assert_eq!(wal.record_count(), 50);
        let replayed = Wal::replay(&storage, "wal-0").unwrap();
        assert_eq!(replayed, records);
    }

    #[test]
    fn missing_segment_replays_empty() {
        let storage = MemoryStorage::new();
        assert!(Wal::replay(&storage, "nope").unwrap().is_empty());
    }

    #[test]
    fn reset_clears_segment() {
        let storage = MemoryStorage::new();
        let mut wal = Wal::new("wal-1");
        wal.append(&storage, &record(1)).unwrap();
        wal.reset(&storage).unwrap();
        assert_eq!(wal.record_count(), 0);
        assert!(Wal::replay(&storage, "wal-1").unwrap().is_empty());
    }

    #[test]
    fn replay_stops_at_corrupt_tail() {
        let storage = MemoryStorage::new();
        let mut wal = Wal::new("wal-2");
        for i in 0..10 {
            wal.append(&storage, &record(i)).unwrap();
        }
        // Corrupt the last few bytes of the segment.
        let mut blob = storage.read_blob("wal-2").unwrap().to_vec();
        let len = blob.len();
        blob[len - 3..].iter_mut().for_each(|b| *b ^= 0xFF);
        storage.write_blob("wal-2", &blob).unwrap();
        let replayed = Wal::replay(&storage, "wal-2").unwrap();
        assert_eq!(replayed.len(), 9, "only the torn final record is dropped");
        assert_eq!(replayed[..], (0..9).map(record).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn replay_handles_truncated_segment() {
        let storage = MemoryStorage::new();
        let mut wal = Wal::new("wal-3");
        for i in 0..5 {
            wal.append(&storage, &record(i)).unwrap();
        }
        let blob = storage.read_blob("wal-3").unwrap();
        storage
            .write_blob("wal-3", &blob[..blob.len() - 5])
            .unwrap();
        let replayed = Wal::replay(&storage, "wal-3").unwrap();
        assert_eq!(replayed.len(), 4);
    }
}
