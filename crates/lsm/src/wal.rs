//! Write-ahead log.
//!
//! Every write is appended to the WAL before it is applied to the
//! memtable, so an engine restart can rebuild the memtable that had not
//! yet been flushed to an sstable. Records are grouped into
//! length-prefixed, CRC-protected *frames*; a frame holds one record for
//! a plain put/delete or every record of a
//! [`WriteBatch`](crate::WriteBatch). Replay stops cleanly at the first
//! torn or corrupt frame, so a batch whose frame was torn mid-write
//! replays all-or-nothing — the crash-atomicity contract batched writes
//! rely on.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::block::crc32;
use crate::storage::Storage;
use crate::types::{Key, SeqNo, Value, ValueKind};
use crate::Error;

/// Magic prefix of a count-framed (v2) WAL segment. Segments without it
/// are replayed with the original one-record-per-frame decoding, so a
/// store written before batched WALs existed still recovers its tail.
const WAL_V2_MAGIC: &[u8; 8] = b"LSMWAL02";

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The user key being written.
    pub key: Key,
    /// The value (empty for tombstones).
    pub value: Value,
    /// Sequence number assigned to the write.
    pub seqno: SeqNo,
    /// Put or tombstone.
    pub kind: ValueKind,
}

/// An append-only write-ahead log stored as a single blob per segment.
///
/// The engine uses one segment per memtable generation: the segment is
/// truncated (re-created empty) after the memtable it protects has been
/// flushed into an sstable.
#[derive(Debug)]
pub struct Wal {
    segment_name: String,
    buffer: BytesMut,
    record_count: u64,
}

/// Blob-name prefix shared by every WAL segment.
const WAL_PREFIX: &str = "wal-";

/// Name of the single-segment WAL written before per-generation
/// segments existed. Replayed first on open (it predates any numbered
/// generation) so old stores keep recovering.
pub(crate) const LEGACY_WAL_SEGMENT: &str = "wal-current";

impl Wal {
    /// Creates an empty WAL that will persist into blob `segment_name`.
    #[must_use]
    pub fn new(segment_name: impl Into<String>) -> Self {
        Self {
            segment_name: segment_name.into(),
            buffer: BytesMut::new(),
            record_count: 0,
        }
    }

    /// Blob name of the segment protecting memtable generation
    /// `generation`. Zero-padded so lexicographic blob order equals
    /// generation order.
    #[must_use]
    pub fn generation_blob_name(generation: u64) -> String {
        format!("{WAL_PREFIX}{generation:020}")
    }

    /// Parses a generation number back out of a segment blob name.
    /// Returns `None` for the legacy segment and for non-WAL blobs.
    #[must_use]
    pub fn parse_generation(blob_name: &str) -> Option<u64> {
        blob_name.strip_prefix(WAL_PREFIX)?.parse().ok()
    }

    /// Every live WAL segment in `storage`, oldest first: the legacy
    /// single segment (if present), then numbered generations ascending.
    /// Reopen must replay them in exactly this order so newer writes to
    /// the same key win.
    #[must_use]
    pub fn live_segments(storage: &dyn Storage) -> Vec<String> {
        let mut generations: Vec<(u64, String)> = Vec::new();
        let mut legacy = None;
        for name in storage.list_blobs() {
            if name == LEGACY_WAL_SEGMENT {
                legacy = Some(name);
            } else if let Some(generation) = Self::parse_generation(&name) {
                generations.push((generation, name));
            }
        }
        generations.sort_unstable();
        let mut segments: Vec<String> = legacy.into_iter().collect();
        segments.extend(generations.into_iter().map(|(_, name)| name));
        segments
    }

    /// Deletes a retired segment blob (after the memtable generation it
    /// protected became a durable sstable). A missing blob is fine.
    ///
    /// # Errors
    ///
    /// Propagates storage failures other than "not found".
    pub fn retire_segment(storage: &dyn Storage, segment_name: &str) -> Result<(), Error> {
        match storage.delete_blob(segment_name) {
            Ok(()) => Ok(()),
            Err(Error::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// The blob name this WAL persists to.
    #[must_use]
    pub fn segment_name(&self) -> &str {
        &self.segment_name
    }

    /// Number of records appended since the last reset.
    #[must_use]
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// Appends a record to the in-memory segment buffer and persists the
    /// whole segment to `storage`.
    ///
    /// Persisting the full segment on every append is simple and safe; for
    /// the simulator workloads segments are small (one memtable's worth of
    /// writes).
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn append(&mut self, storage: &dyn Storage, record: &WalRecord) -> Result<(), Error> {
        self.append_batch(storage, std::slice::from_ref(record))
    }

    /// Appends every record in `records` as a **single frame** and
    /// persists the segment. Because a frame is the unit of CRC
    /// protection, replay recovers either all of the records or (after a
    /// torn write) none of them — the crash-atomic contract behind
    /// [`Lsm::write_batch`](crate::Lsm::write_batch). An empty slice is a
    /// no-op.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn append_batch(
        &mut self,
        storage: &dyn Storage,
        records: &[WalRecord],
    ) -> Result<(), Error> {
        if records.is_empty() {
            return Ok(());
        }
        if self.buffer.is_empty() {
            self.buffer.put_slice(WAL_V2_MAGIC);
        }
        let mut payload = BytesMut::new();
        payload.put_u32_le(records.len() as u32);
        for record in records {
            payload.put_u32_le(record.key.len() as u32);
            payload.put_slice(&record.key);
            payload.put_u32_le(record.value.len() as u32);
            payload.put_slice(&record.value);
            payload.put_u64_le(record.seqno);
            payload.put_u8(record.kind.as_u8());
        }

        self.buffer.put_u32_le(payload.len() as u32);
        self.buffer.put_u32_le(crc32(&payload));
        self.buffer.put_slice(&payload);
        self.record_count += records.len() as u64;

        storage.write_blob(&self.segment_name, &self.buffer)
    }

    /// Clears the segment (after a successful memtable flush).
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn reset(&mut self, storage: &dyn Storage) -> Result<(), Error> {
        self.buffer.clear();
        self.record_count = 0;
        storage.write_blob(&self.segment_name, &[])
    }

    /// Replays a WAL segment from `storage`, returning every record of
    /// every intact frame in append order. A missing segment replays as
    /// empty; replay stops silently at the first torn/corrupt frame, and
    /// a frame is recovered only in full — a torn batch contributes no
    /// records at all.
    ///
    /// # Errors
    ///
    /// Propagates storage failures other than "not found".
    pub fn replay(storage: &dyn Storage, segment_name: &str) -> Result<Vec<WalRecord>, Error> {
        let data: Bytes = match storage.read_blob(segment_name) {
            Ok(data) => data,
            Err(Error::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut records = Vec::new();
        let mut cursor = data.as_ref();
        // Segments written before count framing carry no magic header;
        // their frames hold exactly one record with no count prefix.
        let legacy = !cursor.starts_with(WAL_V2_MAGIC);
        if !legacy {
            cursor.advance(WAL_V2_MAGIC.len());
        }
        while cursor.remaining() >= 8 {
            let len = cursor.get_u32_le() as usize;
            let stored_crc = cursor.get_u32_le();
            if cursor.remaining() < len {
                break; // torn tail
            }
            let payload = &cursor[..len];
            if crc32(payload) != stored_crc {
                break; // corrupt tail
            }
            cursor.advance(len);

            let decoded = if legacy {
                decode_legacy_record(payload).map(|r| vec![r])
            } else {
                decode_frame(payload)
            };
            let Some(frame) = decoded else {
                break; // malformed frame body: stop, dropping it whole
            };
            records.extend(frame);
        }
        Ok(records)
    }
}

/// Decodes the records of one count-framed payload, or `None` if the
/// payload is malformed (in which case the whole frame must be
/// discarded).
fn decode_frame(payload: &[u8]) -> Option<Vec<WalRecord>> {
    let mut p = payload;
    if p.remaining() < 4 {
        return None;
    }
    let count = p.get_u32_le() as usize;
    // Cap the pre-allocation by what the payload could physically hold
    // (17 bytes is the smallest encodable record): the count is
    // frame-internal data and must not size an allocation unchecked.
    let mut records = Vec::with_capacity(count.min(p.remaining() / 17 + 1));
    for _ in 0..count {
        records.push(decode_record(&mut p)?);
    }
    Some(records)
}

/// Decodes a pre-count-framing payload: exactly one record, no prefix.
fn decode_legacy_record(payload: &[u8]) -> Option<WalRecord> {
    let mut p = payload;
    let record = decode_record(&mut p)?;
    p.is_empty().then_some(record)
}

/// Decodes one record (key, value, seqno, kind) off the cursor.
fn decode_record(p: &mut &[u8]) -> Option<WalRecord> {
    if p.remaining() < 4 {
        return None;
    }
    let klen = p.get_u32_le() as usize;
    if p.remaining() < klen + 4 {
        return None;
    }
    let key = Bytes::copy_from_slice(&p[..klen]);
    p.advance(klen);
    let vlen = p.get_u32_le() as usize;
    if p.remaining() < vlen + 9 {
        return None;
    }
    let value = Bytes::copy_from_slice(&p[..vlen]);
    p.advance(vlen);
    let seqno = p.get_u64_le();
    let kind = ValueKind::from_u8(p.get_u8())?;
    Some(WalRecord {
        key,
        value,
        seqno,
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemoryStorage;
    use crate::types::key_from_u64;

    fn record(i: u64) -> WalRecord {
        WalRecord {
            key: key_from_u64(i),
            value: Bytes::from(format!("v{i}")),
            seqno: i,
            kind: if i.is_multiple_of(5) {
                ValueKind::Tombstone
            } else {
                ValueKind::Put
            },
        }
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let storage = MemoryStorage::new();
        let mut wal = Wal::new("wal-0");
        let records: Vec<WalRecord> = (0..50).map(record).collect();
        for r in &records {
            wal.append(&storage, r).unwrap();
        }
        assert_eq!(wal.record_count(), 50);
        let replayed = Wal::replay(&storage, "wal-0").unwrap();
        assert_eq!(replayed, records);
    }

    #[test]
    fn missing_segment_replays_empty() {
        let storage = MemoryStorage::new();
        assert!(Wal::replay(&storage, "nope").unwrap().is_empty());
    }

    #[test]
    fn reset_clears_segment() {
        let storage = MemoryStorage::new();
        let mut wal = Wal::new("wal-1");
        wal.append(&storage, &record(1)).unwrap();
        wal.reset(&storage).unwrap();
        assert_eq!(wal.record_count(), 0);
        assert!(Wal::replay(&storage, "wal-1").unwrap().is_empty());
    }

    #[test]
    fn replay_stops_at_corrupt_tail() {
        let storage = MemoryStorage::new();
        let mut wal = Wal::new("wal-2");
        for i in 0..10 {
            wal.append(&storage, &record(i)).unwrap();
        }
        // Corrupt the last few bytes of the segment.
        let mut blob = storage.read_blob("wal-2").unwrap().to_vec();
        let len = blob.len();
        blob[len - 3..].iter_mut().for_each(|b| *b ^= 0xFF);
        storage.write_blob("wal-2", &blob).unwrap();
        let replayed = Wal::replay(&storage, "wal-2").unwrap();
        assert_eq!(replayed.len(), 9, "only the torn final record is dropped");
        assert_eq!(replayed[..], (0..9).map(record).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn batch_frames_replay_in_order_with_singles() {
        let storage = MemoryStorage::new();
        let mut wal = Wal::new("wal-b0");
        wal.append(&storage, &record(0)).unwrap();
        let batch: Vec<WalRecord> = (1..5).map(record).collect();
        wal.append_batch(&storage, &batch).unwrap();
        wal.append(&storage, &record(5)).unwrap();
        assert_eq!(wal.record_count(), 6);
        let replayed = Wal::replay(&storage, "wal-b0").unwrap();
        assert_eq!(replayed, (0..6).map(record).collect::<Vec<_>>());
    }

    #[test]
    fn torn_batch_replays_all_or_nothing() {
        let storage = MemoryStorage::new();
        let mut wal = Wal::new("wal-b1");
        wal.append(&storage, &record(0)).unwrap();
        let intact_len = storage.read_blob("wal-b1").unwrap().len();
        let batch: Vec<WalRecord> = (1..20).map(record).collect();
        wal.append_batch(&storage, &batch).unwrap();
        // Tear the segment in the middle of the batch frame: several of
        // its records are still byte-complete, but none may replay.
        let blob = storage.read_blob("wal-b1").unwrap();
        let torn = intact_len + (blob.len() - intact_len) / 2;
        storage.write_blob("wal-b1", &blob[..torn]).unwrap();
        let replayed = Wal::replay(&storage, "wal-b1").unwrap();
        assert_eq!(replayed, vec![record(0)], "torn batch contributes nothing");
    }

    #[test]
    fn legacy_segments_without_magic_still_replay() {
        // Hand-build a segment in the pre-count-framing format: frames
        // of exactly one record, no magic header, no count prefix.
        let storage = MemoryStorage::new();
        let records: Vec<WalRecord> = (0..6).map(record).collect();
        let mut blob = BytesMut::new();
        for r in &records {
            let mut payload = BytesMut::new();
            payload.put_u32_le(r.key.len() as u32);
            payload.put_slice(&r.key);
            payload.put_u32_le(r.value.len() as u32);
            payload.put_slice(&r.value);
            payload.put_u64_le(r.seqno);
            payload.put_u8(r.kind.as_u8());
            blob.put_u32_le(payload.len() as u32);
            blob.put_u32_le(crc32(&payload));
            blob.put_slice(&payload);
        }
        storage.write_blob("wal-legacy", &blob).unwrap();
        let replayed = Wal::replay(&storage, "wal-legacy").unwrap();
        assert_eq!(replayed, records, "pre-magic segments must not be lost");
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let storage = MemoryStorage::new();
        let mut wal = Wal::new("wal-b2");
        wal.append_batch(&storage, &[]).unwrap();
        assert_eq!(wal.record_count(), 0);
        assert!(Wal::replay(&storage, "wal-b2").unwrap().is_empty());
    }

    #[test]
    fn generation_names_roundtrip_and_sort() {
        let names: Vec<String> = [0, 1, 9, 10, 11, 100, u64::MAX]
            .iter()
            .map(|&g| Wal::generation_blob_name(g))
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(sorted, names, "lexicographic order = generation order");
        for (i, g) in [0, 1, 9, 10, 11, 100, u64::MAX].iter().enumerate() {
            assert_eq!(Wal::parse_generation(&names[i]), Some(*g));
        }
        assert_eq!(Wal::parse_generation(LEGACY_WAL_SEGMENT), None);
        assert_eq!(Wal::parse_generation("sst-0000000001"), None);
    }

    #[test]
    fn live_segments_lists_legacy_first_then_generations_in_order() {
        let storage = MemoryStorage::new();
        // Write out of order, plus non-WAL noise that must be ignored.
        for name in [
            &Wal::generation_blob_name(7),
            "sst-0000000003",
            &Wal::generation_blob_name(2),
            LEGACY_WAL_SEGMENT,
            "MANIFEST",
            &Wal::generation_blob_name(10),
        ] {
            storage.write_blob(name, b"x").unwrap();
        }
        assert_eq!(
            Wal::live_segments(&storage),
            vec![
                LEGACY_WAL_SEGMENT.to_string(),
                Wal::generation_blob_name(2),
                Wal::generation_blob_name(7),
                Wal::generation_blob_name(10),
            ]
        );
    }

    #[test]
    fn retire_segment_deletes_and_tolerates_missing() {
        let storage = MemoryStorage::new();
        let name = Wal::generation_blob_name(3);
        storage.write_blob(&name, b"x").unwrap();
        Wal::retire_segment(&storage, &name).unwrap();
        assert!(!storage.contains_blob(&name));
        Wal::retire_segment(&storage, &name).unwrap();
    }

    #[test]
    fn replay_handles_truncated_segment() {
        let storage = MemoryStorage::new();
        let mut wal = Wal::new("wal-3");
        for i in 0..5 {
            wal.append(&storage, &record(i)).unwrap();
        }
        let blob = storage.read_blob("wal-3").unwrap();
        storage
            .write_blob("wal-3", &blob[..blob.len() - 5])
            .unwrap();
        let replayed = Wal::replay(&storage, "wal-3").unwrap();
        assert_eq!(replayed.len(), 4);
    }
}
