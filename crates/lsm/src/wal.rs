//! Write-ahead log.
//!
//! Every write is appended to the WAL before it is applied to the
//! memtable, so an engine restart can rebuild the memtable that had not
//! yet been flushed to an sstable. Records are grouped into
//! length-prefixed, CRC-protected *frames*; a frame holds one record for
//! a plain put/delete or every record of a
//! [`WriteBatch`](crate::WriteBatch). A frame is recovered only in full,
//! so a batch whose frame was torn mid-write replays all-or-nothing —
//! the crash-atomicity contract batched writes rely on.
//!
//! Replay distinguishes two failure taxa ([`SegmentReplay`]):
//!
//! * **torn tail** — the segment ends mid-frame (fewer bytes than the
//!   frame's length prefix promises, or a dangling header). This is the
//!   normal crash shape under prefix-persisting storage: the tail bytes
//!   are dropped, everything before them replays, and the loss is only
//!   of writes that were never acked.
//! * **bit rot** — a *byte-complete* frame fails its checksum or decode.
//!   A crash cannot produce this shape (a tear leaves a prefix), so the
//!   frame is quarantined, later frames are salvaged by following the
//!   length chain, and the loss of **acked** writes is surfaced in the
//!   counts instead of being silently absorbed. (If the rot corrupted a
//!   length prefix itself the chain is lost and the remainder reads as a
//!   torn tail — the report's truncated-byte count still exposes it.)

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::block::crc32;
use crate::storage::Storage;
use crate::types::{Key, SeqNo, Value, ValueKind};
use crate::Error;

/// Magic prefix of a count-framed (v2) WAL segment. Segments without it
/// are replayed with the original one-record-per-frame decoding, so a
/// store written before batched WALs existed still recovers its tail.
const WAL_V2_MAGIC: &[u8; 8] = b"LSMWAL02";

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The user key being written.
    pub key: Key,
    /// The value (empty for tombstones).
    pub value: Value,
    /// Sequence number assigned to the write.
    pub seqno: SeqNo,
    /// Put or tombstone.
    pub kind: ValueKind,
}

/// An append-only write-ahead log stored as a single blob per segment.
///
/// The engine uses one segment per memtable generation: the segment is
/// truncated (re-created empty) after the memtable it protects has been
/// flushed into an sstable.
#[derive(Debug)]
pub struct Wal {
    segment_name: String,
    buffer: BytesMut,
    record_count: u64,
}

/// Blob-name prefix shared by every WAL segment.
const WAL_PREFIX: &str = "wal-";

/// Name of the single-segment WAL written before per-generation
/// segments existed. Replayed first on open (it predates any numbered
/// generation) so old stores keep recovering.
pub(crate) const LEGACY_WAL_SEGMENT: &str = "wal-current";

impl Wal {
    /// Creates an empty WAL that will persist into blob `segment_name`.
    #[must_use]
    pub fn new(segment_name: impl Into<String>) -> Self {
        Self {
            segment_name: segment_name.into(),
            buffer: BytesMut::new(),
            record_count: 0,
        }
    }

    /// Blob name of the segment protecting memtable generation
    /// `generation`. Zero-padded so lexicographic blob order equals
    /// generation order.
    #[must_use]
    pub fn generation_blob_name(generation: u64) -> String {
        format!("{WAL_PREFIX}{generation:020}")
    }

    /// Parses a generation number back out of a segment blob name.
    /// Returns `None` for the legacy segment and for non-WAL blobs.
    #[must_use]
    pub fn parse_generation(blob_name: &str) -> Option<u64> {
        blob_name.strip_prefix(WAL_PREFIX)?.parse().ok()
    }

    /// Every live WAL segment in `storage`, oldest first: the legacy
    /// single segment (if present), then numbered generations ascending.
    /// Reopen must replay them in exactly this order so newer writes to
    /// the same key win.
    #[must_use]
    pub fn live_segments(storage: &dyn Storage) -> Vec<String> {
        let mut generations: Vec<(u64, String)> = Vec::new();
        let mut legacy = None;
        for name in storage.list_blobs() {
            if name == LEGACY_WAL_SEGMENT {
                legacy = Some(name);
            } else if let Some(generation) = Self::parse_generation(&name) {
                generations.push((generation, name));
            }
        }
        generations.sort_unstable();
        let mut segments: Vec<String> = legacy.into_iter().collect();
        segments.extend(generations.into_iter().map(|(_, name)| name));
        segments
    }

    /// Deletes a retired segment blob (after the memtable generation it
    /// protected became a durable sstable). A missing blob is fine.
    ///
    /// # Errors
    ///
    /// Propagates storage failures other than "not found".
    pub fn retire_segment(storage: &dyn Storage, segment_name: &str) -> Result<(), Error> {
        match storage.delete_blob(segment_name) {
            Ok(()) => Ok(()),
            Err(Error::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// The blob name this WAL persists to.
    #[must_use]
    pub fn segment_name(&self) -> &str {
        &self.segment_name
    }

    /// Number of records appended since the last reset.
    #[must_use]
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// Appends a record to the in-memory segment buffer and persists the
    /// whole segment to `storage`.
    ///
    /// Persisting the full segment on every append is simple and safe; for
    /// the simulator workloads segments are small (one memtable's worth of
    /// writes).
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn append(&mut self, storage: &dyn Storage, record: &WalRecord) -> Result<(), Error> {
        self.append_batch(storage, std::slice::from_ref(record))
    }

    /// Appends every record in `records` as a **single frame** and
    /// persists the segment. Because a frame is the unit of CRC
    /// protection, replay recovers either all of the records or (after a
    /// torn write) none of them — the crash-atomic contract behind
    /// [`Lsm::write_batch`](crate::Lsm::write_batch). An empty slice is a
    /// no-op.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn append_batch(
        &mut self,
        storage: &dyn Storage,
        records: &[WalRecord],
    ) -> Result<(), Error> {
        if records.is_empty() {
            return Ok(());
        }
        if self.buffer.is_empty() {
            self.buffer.put_slice(WAL_V2_MAGIC);
        }
        let mut payload = BytesMut::new();
        payload.put_u32_le(records.len() as u32);
        for record in records {
            payload.put_u32_le(record.key.len() as u32);
            payload.put_slice(&record.key);
            payload.put_u32_le(record.value.len() as u32);
            payload.put_slice(&record.value);
            payload.put_u64_le(record.seqno);
            payload.put_u8(record.kind.as_u8());
        }

        self.buffer.put_u32_le(payload.len() as u32);
        self.buffer.put_u32_le(crc32(&payload));
        self.buffer.put_slice(&payload);
        self.record_count += records.len() as u64;

        storage.write_blob(&self.segment_name, &self.buffer)
    }

    /// Clears the segment (after a successful memtable flush).
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn reset(&mut self, storage: &dyn Storage) -> Result<(), Error> {
        self.buffer.clear();
        self.record_count = 0;
        storage.write_blob(&self.segment_name, &[])
    }

    /// Replays a WAL segment from `storage`, returning every recovered
    /// record in append order. Shorthand for
    /// [`Wal::replay_segment`]`.records` where the caller does not need
    /// the taxonomy.
    ///
    /// # Errors
    ///
    /// Propagates storage failures other than "not found".
    pub fn replay(storage: &dyn Storage, segment_name: &str) -> Result<Vec<WalRecord>, Error> {
        Ok(Self::replay_segment(storage, segment_name)?.records)
    }

    /// Replays a WAL segment from `storage`, classifying every byte as
    /// replayed, truncated (torn tail) or quarantined (bit rot) — see
    /// the module docs for the taxonomy. A missing segment replays as
    /// empty and clean. A frame is recovered only in full; a torn or
    /// rotten batch contributes no records at all.
    ///
    /// # Errors
    ///
    /// Propagates storage failures other than "not found".
    pub fn replay_segment(
        storage: &dyn Storage,
        segment_name: &str,
    ) -> Result<SegmentReplay, Error> {
        let mut replay = SegmentReplay {
            segment: segment_name.to_owned(),
            ..SegmentReplay::default()
        };
        let data: Bytes = match storage.read_blob(segment_name) {
            Ok(data) => data,
            Err(Error::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => return Ok(replay),
            Err(e) => return Err(e),
        };
        let mut cursor = data.as_ref();
        // Segments written before count framing carry no magic header;
        // their frames hold exactly one record with no count prefix.
        let legacy = !cursor.starts_with(WAL_V2_MAGIC);
        if !legacy {
            cursor.advance(WAL_V2_MAGIC.len());
        }
        loop {
            if cursor.remaining() < 8 {
                // A dangling header (or nothing) past the last frame:
                // torn tail, the normal crash shape.
                replay.bytes_truncated += cursor.remaining() as u64;
                break;
            }
            let len = cursor.get_u32_le() as usize;
            let stored_crc = cursor.get_u32_le();
            if cursor.remaining() < len {
                // Torn tail: the frame's bytes never finished landing.
                replay.bytes_truncated += 8 + cursor.remaining() as u64;
                break;
            }
            let payload = &cursor[..len];
            cursor.advance(len);
            let decoded = if crc32(payload) != stored_crc {
                // Byte-complete frame with a bad checksum: a tear cannot
                // produce this (tears leave prefixes), so this is bit
                // rot of an *acked* frame. Quarantine it and keep
                // following the length chain — later frames are intact.
                None
            } else if legacy {
                decode_legacy_record(payload).map(|r| vec![r])
            } else {
                decode_frame(payload)
            };
            match decoded {
                Some(frame) => {
                    replay.frames_replayed += 1;
                    replay.records.extend(frame);
                }
                None => replay.frames_quarantined += 1,
            }
        }
        Ok(replay)
    }
}

/// The classified outcome of replaying one WAL segment
/// ([`Wal::replay_segment`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SegmentReplay {
    /// The segment blob name.
    pub segment: String,
    /// Every recovered record, in append order.
    pub records: Vec<WalRecord>,
    /// Intact frames replayed.
    pub frames_replayed: u64,
    /// Byte-complete frames dropped for checksum/decode failure — bit
    /// rot of acked writes. Nonzero here means history was lost that a
    /// clean crash could not have lost.
    pub frames_quarantined: u64,
    /// Bytes dropped off the segment's tail because the final frame was
    /// incomplete (the normal crash shape; only unacked writes).
    pub bytes_truncated: u64,
}

impl SegmentReplay {
    /// `true` when the segment replayed without any torn or rotten
    /// bytes.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.frames_quarantined == 0 && self.bytes_truncated == 0
    }
}

/// Aggregate recovery outcome across every segment replayed at open,
/// surfaced through [`LsmStats`](crate::LsmStats) and the METRICS wire
/// frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// WAL segments scanned at open.
    pub segments_scanned: u64,
    /// Intact frames replayed across all segments.
    pub frames_replayed: u64,
    /// Records recovered into the memtable.
    pub records_replayed: u64,
    /// Torn-tail bytes truncated (normal crash shape, unacked writes).
    pub bytes_truncated: u64,
    /// Byte-complete frames quarantined for checksum/decode failure
    /// (bit rot — acked history was lost).
    pub frames_quarantined: u64,
    /// Segments preserved as `quarantined-*` blobs because they carried
    /// rotten frames.
    pub segments_quarantined: u64,
}

impl RecoveryReport {
    /// Folds one segment's replay into the aggregate.
    pub fn absorb_segment(&mut self, segment: &SegmentReplay) {
        self.segments_scanned += 1;
        self.frames_replayed += segment.frames_replayed;
        self.records_replayed += segment.records.len() as u64;
        self.bytes_truncated += segment.bytes_truncated;
        self.frames_quarantined += segment.frames_quarantined;
        if segment.frames_quarantined > 0 {
            self.segments_quarantined += 1;
        }
    }

    /// `true` when acked history was shed (quarantined frames exist) —
    /// the condition `strict_recovery` refuses to open under.
    #[must_use]
    pub fn lost_acked_history(&self) -> bool {
        self.frames_quarantined > 0
    }
}

/// Decodes the records of one count-framed payload, or `None` if the
/// payload is malformed (in which case the whole frame must be
/// discarded).
fn decode_frame(payload: &[u8]) -> Option<Vec<WalRecord>> {
    let mut p = payload;
    if p.remaining() < 4 {
        return None;
    }
    let count = p.get_u32_le() as usize;
    // Cap the pre-allocation by what the payload could physically hold
    // (17 bytes is the smallest encodable record): the count is
    // frame-internal data and must not size an allocation unchecked.
    let mut records = Vec::with_capacity(count.min(p.remaining() / 17 + 1));
    for _ in 0..count {
        records.push(decode_record(&mut p)?);
    }
    Some(records)
}

/// Decodes a pre-count-framing payload: exactly one record, no prefix.
fn decode_legacy_record(payload: &[u8]) -> Option<WalRecord> {
    let mut p = payload;
    let record = decode_record(&mut p)?;
    p.is_empty().then_some(record)
}

/// Decodes one record (key, value, seqno, kind) off the cursor.
fn decode_record(p: &mut &[u8]) -> Option<WalRecord> {
    if p.remaining() < 4 {
        return None;
    }
    let klen = p.get_u32_le() as usize;
    if p.remaining() < klen + 4 {
        return None;
    }
    let key = Bytes::copy_from_slice(&p[..klen]);
    p.advance(klen);
    let vlen = p.get_u32_le() as usize;
    if p.remaining() < vlen + 9 {
        return None;
    }
    let value = Bytes::copy_from_slice(&p[..vlen]);
    p.advance(vlen);
    let seqno = p.get_u64_le();
    let kind = ValueKind::from_u8(p.get_u8())?;
    Some(WalRecord {
        key,
        value,
        seqno,
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemoryStorage;
    use crate::types::key_from_u64;

    fn record(i: u64) -> WalRecord {
        WalRecord {
            key: key_from_u64(i),
            value: Bytes::from(format!("v{i}")),
            seqno: i,
            kind: if i.is_multiple_of(5) {
                ValueKind::Tombstone
            } else {
                ValueKind::Put
            },
        }
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let storage = MemoryStorage::new();
        let mut wal = Wal::new("wal-0");
        let records: Vec<WalRecord> = (0..50).map(record).collect();
        for r in &records {
            wal.append(&storage, r).unwrap();
        }
        assert_eq!(wal.record_count(), 50);
        let replayed = Wal::replay(&storage, "wal-0").unwrap();
        assert_eq!(replayed, records);
    }

    #[test]
    fn missing_segment_replays_empty() {
        let storage = MemoryStorage::new();
        assert!(Wal::replay(&storage, "nope").unwrap().is_empty());
    }

    #[test]
    fn reset_clears_segment() {
        let storage = MemoryStorage::new();
        let mut wal = Wal::new("wal-1");
        wal.append(&storage, &record(1)).unwrap();
        wal.reset(&storage).unwrap();
        assert_eq!(wal.record_count(), 0);
        assert!(Wal::replay(&storage, "wal-1").unwrap().is_empty());
    }

    #[test]
    fn replay_stops_at_corrupt_tail() {
        let storage = MemoryStorage::new();
        let mut wal = Wal::new("wal-2");
        for i in 0..10 {
            wal.append(&storage, &record(i)).unwrap();
        }
        // Corrupt the last few bytes of the segment.
        let mut blob = storage.read_blob("wal-2").unwrap().to_vec();
        let len = blob.len();
        blob[len - 3..].iter_mut().for_each(|b| *b ^= 0xFF);
        storage.write_blob("wal-2", &blob).unwrap();
        let replayed = Wal::replay(&storage, "wal-2").unwrap();
        assert_eq!(replayed.len(), 9, "only the torn final record is dropped");
        assert_eq!(replayed[..], (0..9).map(record).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn batch_frames_replay_in_order_with_singles() {
        let storage = MemoryStorage::new();
        let mut wal = Wal::new("wal-b0");
        wal.append(&storage, &record(0)).unwrap();
        let batch: Vec<WalRecord> = (1..5).map(record).collect();
        wal.append_batch(&storage, &batch).unwrap();
        wal.append(&storage, &record(5)).unwrap();
        assert_eq!(wal.record_count(), 6);
        let replayed = Wal::replay(&storage, "wal-b0").unwrap();
        assert_eq!(replayed, (0..6).map(record).collect::<Vec<_>>());
    }

    #[test]
    fn torn_batch_replays_all_or_nothing() {
        let storage = MemoryStorage::new();
        let mut wal = Wal::new("wal-b1");
        wal.append(&storage, &record(0)).unwrap();
        let intact_len = storage.read_blob("wal-b1").unwrap().len();
        let batch: Vec<WalRecord> = (1..20).map(record).collect();
        wal.append_batch(&storage, &batch).unwrap();
        // Tear the segment in the middle of the batch frame: several of
        // its records are still byte-complete, but none may replay.
        let blob = storage.read_blob("wal-b1").unwrap();
        let torn = intact_len + (blob.len() - intact_len) / 2;
        storage.write_blob("wal-b1", &blob[..torn]).unwrap();
        let replayed = Wal::replay(&storage, "wal-b1").unwrap();
        assert_eq!(replayed, vec![record(0)], "torn batch contributes nothing");
    }

    #[test]
    fn legacy_segments_without_magic_still_replay() {
        // Hand-build a segment in the pre-count-framing format: frames
        // of exactly one record, no magic header, no count prefix.
        let storage = MemoryStorage::new();
        let records: Vec<WalRecord> = (0..6).map(record).collect();
        let mut blob = BytesMut::new();
        for r in &records {
            let mut payload = BytesMut::new();
            payload.put_u32_le(r.key.len() as u32);
            payload.put_slice(&r.key);
            payload.put_u32_le(r.value.len() as u32);
            payload.put_slice(&r.value);
            payload.put_u64_le(r.seqno);
            payload.put_u8(r.kind.as_u8());
            blob.put_u32_le(payload.len() as u32);
            blob.put_u32_le(crc32(&payload));
            blob.put_slice(&payload);
        }
        storage.write_blob("wal-legacy", &blob).unwrap();
        let replayed = Wal::replay(&storage, "wal-legacy").unwrap();
        assert_eq!(replayed, records, "pre-magic segments must not be lost");
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let storage = MemoryStorage::new();
        let mut wal = Wal::new("wal-b2");
        wal.append_batch(&storage, &[]).unwrap();
        assert_eq!(wal.record_count(), 0);
        assert!(Wal::replay(&storage, "wal-b2").unwrap().is_empty());
    }

    #[test]
    fn generation_names_roundtrip_and_sort() {
        let names: Vec<String> = [0, 1, 9, 10, 11, 100, u64::MAX]
            .iter()
            .map(|&g| Wal::generation_blob_name(g))
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(sorted, names, "lexicographic order = generation order");
        for (i, g) in [0, 1, 9, 10, 11, 100, u64::MAX].iter().enumerate() {
            assert_eq!(Wal::parse_generation(&names[i]), Some(*g));
        }
        assert_eq!(Wal::parse_generation(LEGACY_WAL_SEGMENT), None);
        assert_eq!(Wal::parse_generation("sst-0000000001"), None);
    }

    #[test]
    fn live_segments_lists_legacy_first_then_generations_in_order() {
        let storage = MemoryStorage::new();
        // Write out of order, plus non-WAL noise that must be ignored.
        for name in [
            &Wal::generation_blob_name(7),
            "sst-0000000003",
            &Wal::generation_blob_name(2),
            LEGACY_WAL_SEGMENT,
            "MANIFEST",
            &Wal::generation_blob_name(10),
        ] {
            storage.write_blob(name, b"x").unwrap();
        }
        assert_eq!(
            Wal::live_segments(&storage),
            vec![
                LEGACY_WAL_SEGMENT.to_string(),
                Wal::generation_blob_name(2),
                Wal::generation_blob_name(7),
                Wal::generation_blob_name(10),
            ]
        );
    }

    #[test]
    fn retire_segment_deletes_and_tolerates_missing() {
        let storage = MemoryStorage::new();
        let name = Wal::generation_blob_name(3);
        storage.write_blob(&name, b"x").unwrap();
        Wal::retire_segment(&storage, &name).unwrap();
        assert!(!storage.contains_blob(&name));
        Wal::retire_segment(&storage, &name).unwrap();
    }

    #[test]
    fn mid_segment_bit_rot_quarantines_the_frame_and_salvages_the_rest() {
        let storage = MemoryStorage::new();
        let mut wal = Wal::new("wal-rot");
        for i in 0..10 {
            wal.append(&storage, &record(i)).unwrap();
        }
        // Flip one payload byte inside an *early* frame: frames after it
        // are intact and must replay.
        let mut blob = storage.read_blob("wal-rot").unwrap().to_vec();
        blob[WAL_V2_MAGIC.len() + 9] ^= 0xFF;
        storage.write_blob("wal-rot", &blob).unwrap();

        let replay = Wal::replay_segment(&storage, "wal-rot").unwrap();
        assert_eq!(replay.frames_quarantined, 1, "the rotten frame is counted");
        assert_eq!(replay.frames_replayed, 9);
        assert_eq!(replay.bytes_truncated, 0);
        assert!(!replay.is_clean());
        assert_eq!(
            replay.records,
            (1..10).map(record).collect::<Vec<_>>(),
            "every frame after the rotten one is salvaged"
        );
    }

    #[test]
    fn torn_tail_and_bit_rot_are_distinguished() {
        let storage = MemoryStorage::new();
        let mut wal = Wal::new("wal-taxa");
        for i in 0..5 {
            wal.append(&storage, &record(i)).unwrap();
        }
        let blob = storage.read_blob("wal-taxa").unwrap();

        // Torn tail: drop the last 5 bytes.
        storage
            .write_blob("wal-taxa", &blob[..blob.len() - 5])
            .unwrap();
        let torn = Wal::replay_segment(&storage, "wal-taxa").unwrap();
        assert_eq!(torn.frames_quarantined, 0, "a tear is not bit rot");
        assert!(torn.bytes_truncated > 0);
        assert_eq!(torn.records.len(), 4);

        // Bit rot: same segment intact, last frame's payload flipped.
        let mut rotten = blob.to_vec();
        let len = rotten.len();
        rotten[len - 3] ^= 0xFF;
        storage.write_blob("wal-taxa", &rotten).unwrap();
        let rot = Wal::replay_segment(&storage, "wal-taxa").unwrap();
        assert_eq!(rot.frames_quarantined, 1, "byte-complete bad CRC is rot");
        assert_eq!(rot.bytes_truncated, 0);
        assert_eq!(rot.records.len(), 4);
    }

    #[test]
    fn clean_segment_reports_clean() {
        let storage = MemoryStorage::new();
        let mut wal = Wal::new("wal-clean");
        for i in 0..3 {
            wal.append(&storage, &record(i)).unwrap();
        }
        let replay = Wal::replay_segment(&storage, "wal-clean").unwrap();
        assert!(replay.is_clean());
        assert_eq!(replay.frames_replayed, 3);
        // Missing segments are clean too.
        assert!(Wal::replay_segment(&storage, "absent").unwrap().is_clean());
    }

    #[test]
    fn recovery_report_aggregates_segments() {
        let mut report = RecoveryReport::default();
        report.absorb_segment(&SegmentReplay {
            segment: "a".into(),
            records: vec![record(1)],
            frames_replayed: 1,
            frames_quarantined: 0,
            bytes_truncated: 7,
        });
        report.absorb_segment(&SegmentReplay {
            segment: "b".into(),
            records: vec![record(2), record(3)],
            frames_replayed: 2,
            frames_quarantined: 3,
            bytes_truncated: 0,
        });
        assert_eq!(report.segments_scanned, 2);
        assert_eq!(report.frames_replayed, 3);
        assert_eq!(report.records_replayed, 3);
        assert_eq!(report.bytes_truncated, 7);
        assert_eq!(report.frames_quarantined, 3);
        assert_eq!(report.segments_quarantined, 1);
        assert!(report.lost_acked_history());
        assert!(!RecoveryReport::default().lost_acked_history());
    }

    #[test]
    fn replay_handles_truncated_segment() {
        let storage = MemoryStorage::new();
        let mut wal = Wal::new("wal-3");
        for i in 0..5 {
            wal.append(&storage, &record(i)).unwrap();
        }
        let blob = storage.read_blob("wal-3").unwrap();
        storage
            .write_blob("wal-3", &blob[..blob.len() - 5])
            .unwrap();
        let replayed = Wal::replay(&storage, "wal-3").unwrap();
        assert_eq!(replayed.len(), 4);
    }
}
