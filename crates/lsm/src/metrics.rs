//! Per-store latency histograms and the maintenance event ring.
//!
//! Every [`Lsm`](crate::Lsm) owns one [`EngineMetrics`]: lock-free
//! log-bucketed histograms ([`obs::LatencyHistogram`]) for the
//! operation latencies the engine controls, plus a shared
//! [`obs::EventRing`] the maintenance lifecycle is traced into. A
//! sharded deployment aggregates shards by histogram merge
//! ([`EngineMetrics::named_snapshots`] + [`obs::HistogramSnapshot::merge`])
//! and injects one common event ring via
//! [`LsmOptions::event_sink`](crate::LsmOptions::event_sink) so events
//! from all shards interleave causally under a single drain cursor.

use obs::{EventRing, HistogramSnapshot, LatencyHistogram};

/// Default capacity of a store's own event ring when none is injected
/// via [`LsmOptions::event_sink`](crate::LsmOptions::event_sink).
pub const DEFAULT_EVENT_RING_CAPACITY: usize = 2048;

/// The per-store latency histograms, all in microseconds.
///
/// Histograms are cheap cloneable handles over shared atomics; the
/// struct itself is created by the store and exposed by
/// [`Lsm::metrics`](crate::Lsm::metrics).
#[derive(Debug, Clone, Default)]
pub struct EngineMetrics {
    /// Point-read latency ([`Lsm::get`](crate::Lsm::get)), end to end.
    pub get: LatencyHistogram,
    /// Single-key write latency (`put` and `delete`), including any
    /// write stall the operation paid.
    pub put: LatencyHistogram,
    /// [`Lsm::write_batch`](crate::Lsm::write_batch) latency per batch.
    pub write_batch: LatencyHistogram,
    /// Latency of one `next()` on a range scan iterator.
    pub scan_next: LatencyHistogram,
    /// Duration of one memtable flush (sstable build + publish),
    /// inline or background.
    pub flush: LatencyHistogram,
    /// Duration of one compaction merge step (read k runs, merge,
    /// write one run).
    pub compaction_step: LatencyHistogram,
    /// Per-write stall time: slowdown sleeps, stop blocks, and inline
    /// compaction time a writer paid. The **single source of truth**
    /// for stall accounting — `LsmStats::compaction_stall` and
    /// `LsmPressure::total_stall` are both derived from this
    /// histogram's sum.
    pub stall: LatencyHistogram,
}

impl EngineMetrics {
    /// Fresh, empty histograms.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshots every histogram under its stable exposition name.
    #[must_use]
    pub fn named_snapshots(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        vec![
            ("engine_get_us", self.get.snapshot()),
            ("engine_put_us", self.put.snapshot()),
            ("engine_write_batch_us", self.write_batch.snapshot()),
            ("engine_scan_next_us", self.scan_next.snapshot()),
            ("engine_flush_us", self.flush.snapshot()),
            ("engine_compaction_step_us", self.compaction_step.snapshot()),
            ("engine_stall_us", self.stall.snapshot()),
        ]
    }
}

/// Creates the store's event ring: the injected shared sink if the
/// options carry one, otherwise a private ring.
pub(crate) fn event_ring_for(options: &crate::LsmOptions) -> EventRing {
    options
        .event_sink_ring()
        .unwrap_or_else(|| EventRing::new(DEFAULT_EVENT_RING_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_snapshots_cover_every_histogram() {
        let m = EngineMetrics::new();
        m.get.record(1);
        m.put.record(2);
        m.write_batch.record(3);
        m.scan_next.record(4);
        m.flush.record(5);
        m.compaction_step.record(6);
        m.stall.record(7);
        let snaps = m.named_snapshots();
        assert_eq!(snaps.len(), 7);
        for (name, snap) in &snaps {
            assert_eq!(snap.count(), 1, "{name} lost its sample");
        }
        let names: Vec<&str> = snaps.iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"engine_stall_us"));
        assert!(names.contains(&"engine_compaction_step_us"));
    }
}
