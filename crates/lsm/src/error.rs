//! Error type for the LSM engine.

use std::fmt;

/// Errors returned by the LSM engine.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// An I/O error from the file-backed storage.
    Io(std::io::Error),
    /// A block, sstable footer or WAL record failed its checksum.
    Corruption {
        /// Human-readable description of what was corrupt.
        detail: String,
    },
    /// A referenced sstable id is not present in the storage backend or
    /// manifest.
    UnknownTable {
        /// The missing table id.
        table_id: u64,
    },
    /// A compaction merge operation referenced fewer than two inputs or
    /// otherwise violated schedule invariants.
    InvalidCompaction {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// The engine was asked to do something that requires a file-backed
    /// store (for example reopening from a directory) but is in-memory.
    UnsupportedOperation {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Corruption { detail } => write!(f, "corruption detected: {detail}"),
            Error::UnknownTable { table_id } => write!(f, "unknown sstable id {table_id}"),
            Error::InvalidCompaction { detail } => write!(f, "invalid compaction: {detail}"),
            Error::UnsupportedOperation { detail } => write!(f, "unsupported operation: {detail}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl Error {
    /// Convenience constructor for corruption errors.
    #[must_use]
    pub fn corruption(detail: impl Into<String>) -> Self {
        Error::Corruption {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for invalid-compaction errors.
    #[must_use]
    pub fn invalid_compaction(detail: impl Into<String>) -> Self {
        Error::InvalidCompaction {
            detail: detail.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(Error::corruption("bad crc").to_string().contains("bad crc"));
        assert!(Error::UnknownTable { table_id: 9 }
            .to_string()
            .contains('9'));
        assert!(Error::invalid_compaction("empty input")
            .to_string()
            .contains("empty input"));
        let io: Error = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
