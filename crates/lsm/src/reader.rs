//! The lazy, footer-oriented sstable reader.
//!
//! [`Sstable`](crate::Sstable) is the *eager* view: it loads the whole
//! blob, which is the right shape for compaction merges (they consume
//! every entry). The read path must not pay that: a point read that
//! probes five tables would read five whole files to return eight bytes.
//!
//! [`SstableReader`] opens a table with two ranged reads — the footer,
//! then the tail (bloom filter + min/max meta + block index) — and keeps
//! only that tail resident. A lookup then:
//!
//! 1. rejects the key with the bloom filter or the min/max range,
//!    touching **zero** data blocks;
//! 2. binary-searches the index for the single candidate block;
//! 3. serves the block from the [`BlockCache`] or fetches exactly that
//!    block with one ranged read.
//!
//! Readers are immutable and shared (`Arc`) through the
//! [`TableCache`](crate::TableCache); the counters they feed surface in
//! [`LsmStats`](crate::LsmStats).

use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;

use crate::block::Block;
use crate::bloom::BloomFilter;
use crate::cache::BlockCache;
use crate::sstable::{
    decode_index, decode_meta, decode_range_dels, decode_table_block, Footer, Sstable,
};
use crate::storage::Storage;
use crate::types::{Entry, Key, RangeTombstone, SeqNo};
use crate::Error;

/// Atomic counters describing the physical work of the lazy read path,
/// shared by every reader of one store and folded into
/// [`LsmStats`](crate::LsmStats).
#[derive(Debug, Default)]
pub struct ReadPathCounters {
    bloom_negatives: AtomicU64,
    block_reads: AtomicU64,
    block_read_bytes: AtomicU64,
    block_logical_bytes: AtomicU64,
}

impl ReadPathCounters {
    /// Probes rejected by a bloom filter or min/max range without
    /// touching a data block.
    #[must_use]
    pub fn bloom_negatives(&self) -> u64 {
        self.bloom_negatives.load(Ordering::Relaxed)
    }

    /// Data-block round-trips to storage on the read path (block-cache
    /// misses that reached storage). One ranged read spanning several
    /// blocks — scan readahead — counts once.
    #[must_use]
    pub fn block_reads(&self) -> u64 {
        self.block_reads.load(Ordering::Relaxed)
    }

    /// Bytes of data blocks fetched from storage on the read path, as
    /// stored on disk (compressed for v3 blobs).
    #[must_use]
    pub fn block_read_bytes(&self) -> u64 {
        self.block_read_bytes.load(Ordering::Relaxed)
    }

    /// Logical (decompressed) bytes of the data blocks decoded on the
    /// read path. The spread between this and
    /// [`ReadPathCounters::block_read_bytes`] is the compression
    /// ratio the store is actually realizing.
    #[must_use]
    pub fn block_logical_bytes(&self) -> u64 {
        self.block_logical_bytes.load(Ordering::Relaxed)
    }

    fn record_bloom_negative(&self) {
        self.bloom_negatives.fetch_add(1, Ordering::Relaxed);
    }

    fn record_block_read(&self, bytes: u64) {
        self.block_reads.fetch_add(1, Ordering::Relaxed);
        self.block_read_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    fn record_block_decode(&self, logical_bytes: u64) {
        self.block_logical_bytes
            .fetch_add(logical_bytes, Ordering::Relaxed);
    }
}

/// Everything a reader needs to resolve a block: the cache, the fill
/// policy, the readahead width and the counters. Borrowed per call so
/// one reader can serve cached gets and cache-bypassing scans
/// concurrently.
#[derive(Debug, Clone, Copy)]
pub struct ReadContext<'a> {
    /// The shared block cache.
    pub block_cache: &'a BlockCache,
    /// Whether blocks fetched for this operation populate the cache
    /// (point reads: yes; large scans: usually no, to avoid flushing
    /// the hot set).
    pub fill_cache: bool,
    /// How many consecutive blocks one ranged read may fetch when a
    /// cursor walks this table (clamped to ≥ 1). Point reads pass 1;
    /// scans pass
    /// [`LsmOptions::scan_readahead_blocks`](crate::LsmOptions::scan_readahead_blocks).
    pub readahead_blocks: usize,
    /// Physical-work counters to feed.
    pub counters: &'a ReadPathCounters,
}

/// A lazily-loading sstable reader: tail resident, data blocks on
/// demand.
#[derive(Debug)]
pub struct SstableReader {
    table_id: u64,
    blob_name: String,
    storage: Arc<dyn Storage>,
    bloom: BloomFilter,
    min_key: Option<Key>,
    max_key: Option<Key>,
    /// (last_key, offset, stored_len) per data block, in key order.
    index: Vec<(Key, u64, u64)>,
    /// Range tombstones (v4 blobs), resident like the rest of the tail
    /// so coverage checks cost zero block I/O.
    range_dels: Vec<RangeTombstone>,
    entry_count: u64,
    total_len: u64,
    open_bytes: u64,
    /// `true` for v3+ blobs: data blocks sit inside compression
    /// envelopes and must be unwrapped before [`Block::decode`].
    compressed_blocks: bool,
}

impl SstableReader {
    /// Opens the reader for `table_id`, loading only the footer and the
    /// tail (bloom + meta + index). `len_hint` is the blob length when
    /// the caller already knows it (the manifest records it); `None`
    /// asks the storage backend.
    ///
    /// # Errors
    ///
    /// Fails if the blob is missing, the footer/tail is corrupt, or the
    /// backend errors.
    pub fn open(
        storage: Arc<dyn Storage>,
        table_id: u64,
        len_hint: Option<u64>,
    ) -> Result<Self, Error> {
        let blob_name = Sstable::blob_name(table_id);
        let total_len = match len_hint {
            Some(len) => len,
            None => storage.blob_len(&blob_name)?,
        };
        let probe_len = (total_len as usize).min(Footer::MAX_LEN);
        let probe = storage.read_blob_range(&blob_name, total_len - probe_len as u64, probe_len)?;
        let footer = Footer::parse(&probe, total_len as usize)?;

        // One ranged read covers bloom + meta + index: they are written
        // contiguously right before the footer.
        let body_end = total_len as usize - footer.footer_len;
        let tail_len = body_end - footer.bloom_offset;
        let tail = storage.read_blob_range(&blob_name, footer.bloom_offset as u64, tail_len)?;
        let rel = |abs: usize| abs - footer.bloom_offset;

        let bloom = BloomFilter::decode(&tail[..footer.bloom_len])?;
        let index = decode_index(&tail[rel(footer.index_offset)..])?;
        let range_dels = match footer.range_del_offset {
            Some(offset) => decode_range_dels(&tail[rel(offset)..rel(footer.index_offset)])?,
            None => Vec::new(),
        };
        let (min_key, max_key) = match footer.meta_offset {
            Some(meta_offset) => decode_meta(&tail[rel(meta_offset)..rel(footer.index_offset)])?,
            // Legacy v1 blob: no persisted meta block. The min key is
            // unknown without decoding data block 0 — which the lazy
            // reader refuses to do at open time — so it stays `None` and
            // every range check treats the table as "always probe"
            // ([`SstableReader::may_overlap`]). The max key is still
            // exact: the last index entry.
            None => (None, index.last().map(|(k, _, _)| k.clone())),
        };

        let open_bytes = (probe_len + tail_len) as u64;
        Ok(Self {
            table_id,
            blob_name,
            storage,
            bloom,
            min_key,
            max_key,
            index,
            range_dels,
            entry_count: footer.entry_count,
            total_len,
            open_bytes,
            compressed_blocks: footer.compressed_blocks,
        })
    }

    /// The table's id.
    #[must_use]
    pub fn table_id(&self) -> u64 {
        self.table_id
    }

    /// Number of entries in the table.
    #[must_use]
    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }

    /// Encoded size of the whole table blob in bytes.
    #[must_use]
    pub fn encoded_len(&self) -> u64 {
        self.total_len
    }

    /// Number of data blocks.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.index.len()
    }

    /// Smallest user key, from the persisted table meta (no block read).
    #[must_use]
    pub fn min_key(&self) -> Option<&Key> {
        self.min_key.as_ref()
    }

    /// Largest user key, from the persisted table meta (no block read).
    #[must_use]
    pub fn max_key(&self) -> Option<&Key> {
        self.max_key.as_ref()
    }

    /// Bytes read from storage to open this reader (footer + tail).
    #[must_use]
    pub fn open_bytes(&self) -> u64 {
        self.open_bytes
    }

    /// Whether this table can contain any key inside `(start, end)`,
    /// judged purely by the persisted min/max meta — no bloom probe, no
    /// block I/O. This is the key-range-partitioned-probing primitive:
    /// a range scan skips every table whose key range is disjoint from
    /// the scan bounds.
    ///
    /// Tables whose meta lacks min/max keys (v1-era blobs persisted no
    /// meta block, so the min key is unknown) report `true` — an
    /// unknown range must be probed, never silently skipped.
    ///
    /// A table can hold range tombstones and no point entries at all (a
    /// memtable that absorbed only a `delete_range` flushes to exactly
    /// that). Its data-block index is empty but its persisted min/max
    /// are widened over the tombstone bounds, so the min/max test below
    /// still decides overlap — pruning it on the empty index would
    /// silently drop the tombstones from every scan.
    #[must_use]
    pub fn may_overlap(&self, start: Bound<&[u8]>, end: Bound<&[u8]>) -> bool {
        if self.index.is_empty() && self.range_dels.is_empty() {
            return false;
        }
        // Each side prunes only if that side's key is actually known: a
        // v1 table knows its max (last index entry) but not its min.
        let starts_after_max = match (&self.max_key, start) {
            (Some(max), Bound::Included(s)) => s > max.as_ref(),
            (Some(max), Bound::Excluded(s)) => s >= max.as_ref(),
            _ => false,
        };
        let ends_before_min = match (&self.min_key, end) {
            (Some(min), Bound::Included(e)) => e < min.as_ref(),
            (Some(min), Bound::Excluded(e)) => e <= min.as_ref(),
            _ => false,
        };
        !(starts_after_max || ends_before_min)
    }

    /// Whether this table *may* contain `key`, judged purely by the
    /// resident tail — min/max range plus bloom probe — with **zero**
    /// block I/O. False positives are possible (bloom), false negatives
    /// are not. This is tombstone GC's safety oracle: a tombstone in one
    /// table is droppable only when no *other* live table answers `true`
    /// for its key.
    #[must_use]
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let in_range = match (&self.min_key, &self.max_key) {
            (Some(min), Some(max)) => key >= min.as_ref() && key <= max.as_ref(),
            _ => !self.index.is_empty(),
        };
        in_range && self.bloom.may_contain(key)
    }

    /// Index of the first data block that can contain a key satisfying
    /// the `start` bound (blocks are indexed by their *last* key).
    /// Returns [`SstableReader::block_count`] when no block qualifies.
    pub(crate) fn seek_block_idx(&self, start: &Bound<Key>) -> usize {
        match start {
            Bound::Unbounded => 0,
            Bound::Included(s) => self.index.partition_point(|(last, _, _)| last < s),
            Bound::Excluded(s) => self.index.partition_point(|(last, _, _)| last <= s),
        }
    }

    /// One past the index of the last data block that can contain a key
    /// satisfying the `end` bound — the exclusive readahead limit for a
    /// bounded scan, so prefetching never fetches blocks that are
    /// entirely past the scan window.
    pub(crate) fn end_block_limit(&self, end: &Bound<Key>) -> usize {
        match end {
            Bound::Unbounded => self.index.len(),
            // The block covering `e` is the first whose last key is
            // ≥ `e`; it may still hold in-range keys, so include it.
            Bound::Included(e) | Bound::Excluded(e) => {
                (self.index.partition_point(|(last, _, _)| last < e) + 1).min(self.index.len())
            }
        }
    }

    /// The table's range tombstones (empty for v1–v3 blobs). Resident
    /// in the tail — reading them costs no block I/O.
    #[must_use]
    pub fn range_dels(&self) -> &[RangeTombstone] {
        &self.range_dels
    }

    /// The largest range-tombstone seqno at or below `upto` covering
    /// `key`, or `None`. Zero block I/O — the section is resident.
    #[must_use]
    pub fn max_covering_range_del(&self, key: &[u8], upto: SeqNo) -> Option<SeqNo> {
        self.range_dels
            .iter()
            .filter(|rd| rd.seqno <= upto && rd.covers(key))
            .map(|rd| rd.seqno)
            .max()
    }

    /// Point lookup: the newest version of `key` in this table (possibly
    /// a tombstone), or `None`. Touches at most one data block; bloom-
    /// and range-negative probes touch none.
    ///
    /// # Errors
    ///
    /// Propagates storage errors and block corruption.
    pub fn get(&self, key: &[u8], ctx: ReadContext<'_>) -> Result<Option<Entry>, Error> {
        self.get_visible(key, SeqNo::MAX, ctx)
    }

    /// Point lookup at a pinned sequence number: the newest version of
    /// `key` with `seqno <= upto`. Versions of one key never split
    /// across blocks (builder invariant), so this still touches at most
    /// one data block.
    ///
    /// # Errors
    ///
    /// Propagates storage errors and block corruption.
    pub fn get_visible(
        &self,
        key: &[u8],
        upto: SeqNo,
        ctx: ReadContext<'_>,
    ) -> Result<Option<Entry>, Error> {
        if !self.may_contain(key) {
            ctx.counters.record_bloom_negative();
            return Ok(None);
        }
        let block_idx = self
            .index
            .partition_point(|(last, _, _)| last.as_ref() < key);
        if block_idx >= self.index.len() {
            return Ok(None);
        }
        let block = self.block(block_idx, ctx)?;
        Ok(block.get_visible(key, upto).cloned())
    }

    /// Fetches block `idx` through the cache (or storage on a miss).
    ///
    /// # Errors
    ///
    /// Propagates storage errors and block corruption.
    pub fn block(&self, idx: usize, ctx: ReadContext<'_>) -> Result<Arc<Block>, Error> {
        if let Some(block) = ctx.block_cache.get(self.table_id, idx as u32) {
            return Ok(block);
        }
        let (_, offset, len) = self.index[idx];
        let raw = self
            .storage
            .read_blob_range(&self.blob_name, offset, len as usize)?;
        ctx.counters.record_block_read(len);
        self.decode_stored_block(&raw, idx, ctx)
    }

    /// Decodes one block's stored bytes (unwrapping the v3 envelope
    /// when present), records its logical size, and optionally fills
    /// the cache — charged at the block's decoded in-memory footprint,
    /// not its (possibly compressed) stored length.
    fn decode_stored_block(
        &self,
        raw: &[u8],
        idx: usize,
        ctx: ReadContext<'_>,
    ) -> Result<Arc<Block>, Error> {
        let (block, logical_len) = decode_table_block(raw, self.compressed_blocks)?;
        ctx.counters.record_block_decode(logical_len as u64);
        let block = Arc::new(block);
        if ctx.fill_cache {
            ctx.block_cache.insert(
                self.table_id,
                idx as u32,
                Arc::clone(&block),
                block.mem_size() as u64,
            );
        }
        Ok(block)
    }

    /// Iterates every entry in key order, fetching blocks through `ctx`
    /// as it advances (scans usually pass `fill_cache: false`; with
    /// `ctx.readahead_blocks > 1` each storage round-trip spans several
    /// blocks).
    #[must_use]
    pub fn iter<'a>(&'a self, ctx: ReadContext<'a>) -> SstableReaderIter<'a> {
        SstableReaderIter {
            reader: self,
            ctx,
            cursor: BlockCursor::new(0),
        }
    }
}

/// A raw byte run covering blocks `[start_block, end_block)` of one
/// table, fetched with a single ranged read.
#[derive(Debug)]
struct PrefetchedSpan {
    start_block: usize,
    end_block: usize,
    base_offset: u64,
    raw: Bytes,
}

/// The shared block-walking core behind every ranged read of one
/// table: [`SstableReaderIter`] and the scan path's per-table cursor
/// both drive it. It holds a position (block index + entry index into
/// the current decoded block) and a prefetched span, so that
///
/// * entries are yielded straight out of the decoded [`Block`] —
///   cheap `Bytes` clones, no per-block buffer copy; and
/// * on a cache miss it fetches up to `ctx.readahead_blocks`
///   consecutive blocks with **one** `read_blob_range`, decoding them
///   lazily as the cursor reaches them.
///
/// The cursor does not own the reader: callers pass `&SstableReader`
/// and a [`ReadContext`] per call, so the same core serves borrowing
/// iterators and `Arc`-holding scan cursors alike.
#[derive(Debug)]
pub(crate) struct BlockCursor {
    /// Next block to decode.
    block_idx: usize,
    /// Exclusive prefetch limit: readahead never spans blocks at or
    /// past this index (the cursor still *decodes* past it if driven
    /// there, one block per round-trip — correctness never depends on
    /// the limit being tight).
    limit_block: usize,
    /// Current decoded block and the cursor's position inside it.
    block: Option<Arc<Block>>,
    entry_idx: usize,
    span: Option<PrefetchedSpan>,
}

impl BlockCursor {
    /// A cursor positioned at the start of block `start_block`, with
    /// readahead free to run to the end of the table.
    pub(crate) fn new(start_block: usize) -> Self {
        Self::with_limit(start_block, usize::MAX)
    }

    /// A cursor positioned at `start_block` whose readahead spans stop
    /// before `limit_block` (use
    /// [`SstableReader::end_block_limit`] for a bounded scan).
    pub(crate) fn with_limit(start_block: usize, limit_block: usize) -> Self {
        Self {
            block_idx: start_block,
            limit_block,
            block: None,
            entry_idx: 0,
            span: None,
        }
    }

    /// Yields the next entry in key order, or `None` past the last
    /// block. After an error the cursor is exhausted.
    pub(crate) fn next_entry(
        &mut self,
        reader: &SstableReader,
        ctx: ReadContext<'_>,
    ) -> Option<Result<Entry, Error>> {
        loop {
            if let Some(block) = &self.block {
                if let Some(entry) = block.entries().get(self.entry_idx) {
                    self.entry_idx += 1;
                    return Some(Ok(entry.clone()));
                }
                self.block = None;
            }
            if self.block_idx >= reader.block_count() {
                return None;
            }
            match self.load_block(reader, ctx) {
                Ok(block) => {
                    self.block = Some(block);
                    self.entry_idx = 0;
                    self.block_idx += 1;
                }
                Err(e) => {
                    self.block_idx = reader.block_count();
                    return Some(Err(e));
                }
            }
        }
    }

    /// Skips entries of the current position while `skip` holds —
    /// used to honor a start bound inside the first block.
    pub(crate) fn skip_while(
        &mut self,
        reader: &SstableReader,
        ctx: ReadContext<'_>,
        mut skip: impl FnMut(&Entry) -> bool,
    ) -> Option<Result<Entry, Error>> {
        loop {
            match self.next_entry(reader, ctx) {
                Some(Ok(entry)) if skip(&entry) => {}
                other => return other,
            }
        }
    }

    /// Resolves block `block_idx`: cache, then the prefetched span,
    /// then one ranged read spanning up to `ctx.readahead_blocks`
    /// consecutive blocks.
    fn load_block(
        &mut self,
        reader: &SstableReader,
        ctx: ReadContext<'_>,
    ) -> Result<Arc<Block>, Error> {
        let idx = self.block_idx;
        if let Some(block) = ctx.block_cache.get(reader.table_id, idx as u32) {
            return Ok(block);
        }
        let covered = self
            .span
            .as_ref()
            .is_some_and(|s| idx >= s.start_block && idx < s.end_block);
        if !covered {
            self.prefetch_span(reader, ctx)?;
        }
        let span = self.span.as_ref().expect("span just ensured");
        let (_, offset, len) = reader.index[idx];
        let rel_start = offset
            .checked_sub(span.base_offset)
            .and_then(|rel| usize::try_from(rel).ok())
            .ok_or_else(|| Error::corruption("block offset before its span"))?;
        let rel_end = rel_start
            .checked_add(len as usize)
            .ok_or_else(|| Error::corruption("block range overflows"))?;
        let raw = span
            .raw
            .get(rel_start..rel_end)
            .ok_or_else(|| Error::corruption("block range past end of span"))?;
        reader.decode_stored_block(raw, idx, ctx)
    }

    /// Fetches blocks `[block_idx, block_idx + readahead)` (clamped to
    /// the table) with one ranged read, charged as a single round-trip.
    fn prefetch_span(&mut self, reader: &SstableReader, ctx: ReadContext<'_>) -> Result<(), Error> {
        let start = self.block_idx;
        // Clamp to the table and the end-bound limit, but always cover
        // the block being loaded itself.
        let cap = self
            .limit_block
            .min(reader.block_count())
            .max(start + 1)
            .min(reader.block_count());
        let count = ctx.readahead_blocks.max(1).min(cap - start);
        let (_, base_offset, _) = reader.index[start];
        let (_, last_offset, last_len) = reader.index[start + count - 1];
        let span_len = last_offset
            .checked_add(last_len)
            .and_then(|end| end.checked_sub(base_offset))
            .and_then(|len| usize::try_from(len).ok())
            .ok_or_else(|| Error::corruption("block span range overflows"))?;
        let raw = reader
            .storage
            .read_blob_range(&reader.blob_name, base_offset, span_len)?;
        ctx.counters.record_block_read(span_len as u64);
        self.span = Some(PrefetchedSpan {
            start_block: start,
            end_block: start + count,
            base_offset,
            raw,
        });
        Ok(())
    }
}

/// Iterator over all entries of an [`SstableReader`] in key order,
/// built on the shared [`BlockCursor`] (readahead-aware, no per-block
/// buffer copies).
#[derive(Debug)]
pub struct SstableReaderIter<'a> {
    reader: &'a SstableReader,
    ctx: ReadContext<'a>,
    cursor: BlockCursor,
}

impl Iterator for SstableReaderIter<'_> {
    type Item = Result<Entry, Error>;

    fn next(&mut self) -> Option<Self::Item> {
        self.cursor.next_entry(self.reader, self.ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sstable::SstableBuilder;
    use crate::storage::{MemoryStorage, Storage};
    use crate::types::key_from_u64;
    use bytes::Bytes;

    fn store_table(storage: &dyn Storage, id: u64, n: u64, block_size: usize) -> u64 {
        let mut builder = SstableBuilder::new(id, block_size, 10);
        for i in 0..n {
            builder.add(&Entry::put(
                key_from_u64(i * 2),
                Bytes::from(format!("value-{i}")),
                1_000 + i,
            ));
        }
        let (data, meta) = builder.finish();
        storage.write_blob(&Sstable::blob_name(id), &data).unwrap();
        meta.encoded_len
    }

    fn ctx_parts() -> (BlockCache, ReadPathCounters) {
        (BlockCache::new(1 << 20), ReadPathCounters::default())
    }

    #[test]
    fn open_reads_only_the_tail() {
        let storage = Arc::new(MemoryStorage::new());
        let encoded_len = store_table(storage.as_ref(), 1, 2_000, 256);
        let before = storage.bytes_read();
        let reader = SstableReader::open(storage.clone(), 1, Some(encoded_len)).unwrap();
        let open_bytes = storage.bytes_read() - before;
        assert!(reader.block_count() > 10);
        assert_eq!(reader.open_bytes(), open_bytes);
        assert!(
            open_bytes < encoded_len / 2,
            "open read {open_bytes} of {encoded_len} bytes — not lazy"
        );
        assert_eq!(reader.min_key(), Some(&key_from_u64(0)));
        assert_eq!(reader.max_key(), Some(&key_from_u64(3_998)));
        assert_eq!(reader.entry_count(), 2_000);
        assert_eq!(reader.encoded_len(), encoded_len);
    }

    #[test]
    fn get_touches_at_most_one_block() {
        let storage = Arc::new(MemoryStorage::new());
        let encoded_len = store_table(storage.as_ref(), 1, 2_000, 256);
        let reader = SstableReader::open(storage.clone(), 1, Some(encoded_len)).unwrap();
        let (cache, counters) = ctx_parts();
        let ctx = ReadContext {
            block_cache: &cache,
            fill_cache: true,
            readahead_blocks: 1,
            counters: &counters,
        };

        let entry = reader.get(&key_from_u64(1_000), ctx).unwrap().unwrap();
        assert_eq!(entry.value.as_ref(), b"value-500");
        assert_eq!(counters.block_reads(), 1, "exactly one block fetched");

        // Same key again: served from the block cache, zero storage reads.
        let before = storage.bytes_read();
        let again = reader.get(&key_from_u64(1_000), ctx).unwrap().unwrap();
        assert_eq!(again.value.as_ref(), b"value-500");
        assert_eq!(counters.block_reads(), 1);
        assert_eq!(storage.bytes_read(), before, "warm read does no I/O");

        // A key the table cannot contain: bloom/range negative, no block.
        assert!(reader.get(&key_from_u64(999_999), ctx).unwrap().is_none());
        assert!(counters.bloom_negatives() >= 1);
        assert_eq!(counters.block_reads(), 1);

        // An absent key *inside* the range (odd keys were never written)
        // either bloom-rejects or reads exactly one block.
        assert!(reader.get(&key_from_u64(1_001), ctx).unwrap().is_none());
        assert!(counters.block_reads() <= 2);
    }

    #[test]
    fn fill_cache_false_bypasses_the_cache() {
        let storage = Arc::new(MemoryStorage::new());
        let encoded_len = store_table(storage.as_ref(), 3, 500, 256);
        let reader = SstableReader::open(storage.clone(), 3, Some(encoded_len)).unwrap();
        let (cache, counters) = ctx_parts();
        let ctx = ReadContext {
            block_cache: &cache,
            fill_cache: false,
            readahead_blocks: 1,
            counters: &counters,
        };
        let all: Result<Vec<Entry>, Error> = reader.iter(ctx).collect();
        assert_eq!(all.unwrap().len(), 500);
        assert!(counters.block_reads() >= reader.block_count() as u64);
        assert_eq!(cache.usage_bytes(), 0, "scan left nothing in the cache");
    }

    #[test]
    fn readahead_spans_multiple_blocks_per_round_trip() {
        let storage = Arc::new(MemoryStorage::new());
        let encoded_len = store_table(storage.as_ref(), 6, 2_000, 256);
        let reader = SstableReader::open(storage, 6, Some(encoded_len)).unwrap();
        let blocks = reader.block_count() as u64;
        assert!(blocks > 16, "need a many-block table: {blocks}");

        let (cache, counters) = ctx_parts();
        let ctx = ReadContext {
            block_cache: &cache,
            fill_cache: false,
            readahead_blocks: 8,
            counters: &counters,
        };
        let all: Result<Vec<Entry>, Error> = reader.iter(ctx).collect();
        let all = all.unwrap();
        assert_eq!(all.len(), 2_000);
        for (i, e) in all.iter().enumerate() {
            assert_eq!(e.key, key_from_u64(i as u64 * 2), "order preserved");
        }
        assert!(
            counters.block_reads() <= blocks.div_ceil(8),
            "{} round-trips for {blocks} blocks at readahead 8",
            counters.block_reads()
        );
        assert!(
            counters.block_logical_bytes() >= counters.block_read_bytes(),
            "decompressed bytes can only grow: {} physical vs {} logical",
            counters.block_read_bytes(),
            counters.block_logical_bytes()
        );
    }

    /// Regression: the cache stores *decoded* blocks, so it must charge
    /// their in-memory footprint — charging the stored (compressed)
    /// length would inflate the effective budget by the compression
    /// ratio.
    #[test]
    fn cache_charges_decoded_footprint_not_stored_bytes() {
        let storage = Arc::new(MemoryStorage::new());
        // Highly repetitive values: v3 blocks compress well.
        let mut builder = SstableBuilder::new(9, 4096, 10);
        for i in 0..500u64 {
            builder.add(&Entry::put(
                key_from_u64(i),
                Bytes::from(vec![b'x'; 100]),
                1_000 + i,
            ));
        }
        let (data, meta) = builder.finish();
        storage.write_blob(&Sstable::blob_name(9), &data).unwrap();
        let reader = SstableReader::open(storage, 9, Some(meta.encoded_len)).unwrap();

        let (cache, counters) = ctx_parts();
        let ctx = ReadContext {
            block_cache: &cache,
            fill_cache: true,
            readahead_blocks: 1,
            counters: &counters,
        };
        for idx in 0..reader.block_count() {
            let _ = reader.block(idx, ctx).unwrap();
        }
        assert!(
            counters.block_read_bytes() < counters.block_logical_bytes(),
            "repetitive blocks must actually compress: {} stored vs {} logical",
            counters.block_read_bytes(),
            counters.block_logical_bytes()
        );
        assert!(
            cache.usage_bytes() >= counters.block_logical_bytes(),
            "cache charged {} bytes for blocks whose decoded payloads alone \
             are {} bytes — still charging stored length?",
            cache.usage_bytes(),
            counters.block_logical_bytes()
        );
    }

    #[test]
    fn open_without_len_hint_asks_storage() {
        let storage = Arc::new(MemoryStorage::new());
        store_table(storage.as_ref(), 7, 100, 512);
        let reader = SstableReader::open(storage.clone(), 7, None).unwrap();
        assert_eq!(reader.entry_count(), 100);
        assert!(SstableReader::open(storage, 8, None).is_err(), "missing");
    }

    #[test]
    fn may_overlap_prunes_by_persisted_min_max() {
        let storage = Arc::new(MemoryStorage::new());
        // v2 table over keys 0, 2, …, 198 (min 0, max 198 persisted).
        let encoded_len = store_table(storage.as_ref(), 1, 100, 256);
        let reader = SstableReader::open(storage, 1, Some(encoded_len)).unwrap();
        let k = key_from_u64;
        let overlap = |start: &[u8], end: &[u8]| {
            reader.may_overlap(Bound::Included(start), Bound::Excluded(end))
        };
        assert!(overlap(&k(0), &k(1)), "range touching the min key");
        assert!(overlap(&k(100), &k(150)), "interior range");
        assert!(overlap(&k(198), &k(500)), "range touching the max key");
        assert!(!overlap(&k(199), &k(500)), "entirely above the max key");
        assert!(!overlap(&k(300), &k(400)), "far above");
        assert!(
            !reader.may_overlap(Bound::Unbounded, Bound::Excluded(&k(0))),
            "ends before the min key"
        );
        assert!(
            !reader.may_overlap(Bound::Excluded(&k(198)), Bound::Unbounded),
            "starts exclusively at the max key"
        );
        assert!(reader.may_overlap(Bound::Unbounded, Bound::Unbounded));
    }

    /// Regression: a memtable that absorbed only a `delete_range`
    /// flushes to a table with range tombstones and **zero** point
    /// entries — empty data-block index, min/max widened over the
    /// tombstone bounds. `may_overlap` used to prune any empty-index
    /// table unconditionally, which dropped the tombstones from every
    /// scan and resurrected the deleted interval.
    #[test]
    fn tombstone_only_table_is_not_pruned_from_overlapping_scans() {
        let storage = Arc::new(MemoryStorage::new());
        let mut builder = SstableBuilder::new(6, 4096, 10);
        builder.add_range_del(crate::types::RangeTombstone::new(
            key_from_u64(49),
            key_from_u64(197),
            9,
        ));
        let (data, _meta) = builder.finish();
        storage.write_blob(&Sstable::blob_name(6), &data).unwrap();
        let reader = SstableReader::open(storage, 6, None).unwrap();

        assert_eq!(reader.entry_count(), 0);
        assert_eq!(reader.block_count(), 0);
        assert_eq!(reader.range_dels().len(), 1);
        let k = key_from_u64;
        assert!(
            reader.may_overlap(Bound::Included(&k(60)), Bound::Excluded(&k(80))),
            "a scan inside the tombstoned interval must probe this table"
        );
        assert!(
            reader.may_overlap(Bound::Unbounded, Bound::Unbounded),
            "full scans must probe it too"
        );
        assert!(
            !reader.may_overlap(Bound::Included(&k(300)), Bound::Excluded(&k(400))),
            "ranges past the tombstone still prune"
        );
        assert!(
            !reader.may_overlap(Bound::Unbounded, Bound::Excluded(&k(10))),
            "ranges before the tombstone still prune"
        );
    }

    /// A table with no entries *and* no range tombstones stays pruned.
    #[test]
    fn genuinely_empty_table_is_always_pruned() {
        let storage = Arc::new(MemoryStorage::new());
        let (data, _meta) = SstableBuilder::new(11, 4096, 10).finish();
        storage.write_blob(&Sstable::blob_name(11), &data).unwrap();
        let reader = SstableReader::open(storage, 11, None).unwrap();
        assert!(!reader.may_overlap(Bound::Unbounded, Bound::Unbounded));
    }

    /// Regression (v1-era meta): a legacy table persists no min/max
    /// meta block, so its key range is (partially) unknown. Range
    /// pruning must treat it as "always probe" — silently skipping it
    /// would make scans lose every key the table holds.
    #[test]
    fn legacy_v1_table_without_meta_is_always_probed() {
        let storage = Arc::new(MemoryStorage::new());
        let data = crate::sstable::test_support::build_v1_table(300, 256);
        storage.write_blob(&Sstable::blob_name(4), &data).unwrap();
        let reader = SstableReader::open(storage, 4, None).unwrap();

        assert_eq!(
            reader.min_key(),
            None,
            "v1 meta lacks a min key (and the lazy open must not decode \
             block 0 to recover it)"
        );
        assert_eq!(reader.max_key(), Some(&key_from_u64(299)));

        // Unknown range ⇒ every scan window must probe the table, even
        // one that looks disjoint from the known max-side bound.
        let k = key_from_u64;
        for (start, end) in [(0u64, 10u64), (100, 200), (290, 1_000)] {
            assert!(
                reader.may_overlap(
                    Bound::Included(k(start).as_ref()),
                    Bound::Excluded(k(end).as_ref())
                ),
                "v1 table silently skipped for range {start}..{end}"
            );
        }
        // The max key is still known exactly, so ranges past it prune.
        assert!(!reader.may_overlap(Bound::Included(k(300).as_ref()), Bound::Unbounded));

        // Point reads keep working (range check falls back to "probe").
        let (cache, counters) = ctx_parts();
        let ctx = ReadContext {
            block_cache: &cache,
            fill_cache: true,
            readahead_blocks: 1,
            counters: &counters,
        };
        let entry = reader.get(&k(123), ctx).unwrap().unwrap();
        assert_eq!(entry.value.as_ref(), b"v1-123");
    }

    #[test]
    fn seek_block_idx_lands_on_the_covering_block() {
        let storage = Arc::new(MemoryStorage::new());
        let encoded_len = store_table(storage.as_ref(), 2, 2_000, 256);
        let reader = SstableReader::open(storage, 2, Some(encoded_len)).unwrap();
        assert!(reader.block_count() > 10);
        assert_eq!(reader.seek_block_idx(&Bound::Unbounded), 0);
        assert_eq!(reader.seek_block_idx(&Bound::Included(key_from_u64(0))), 0);
        // Far past the max key: no block qualifies.
        assert_eq!(
            reader.seek_block_idx(&Bound::Included(key_from_u64(1 << 40))),
            reader.block_count()
        );
        // For an interior key the chosen block's predecessor ends below
        // the key (nothing in range is skipped).
        let target = key_from_u64(1_000);
        let idx = reader.seek_block_idx(&Bound::Included(target.clone()));
        assert!(idx < reader.block_count());
        let (cache, counters) = ctx_parts();
        let ctx = ReadContext {
            block_cache: &cache,
            fill_cache: false,
            readahead_blocks: 1,
            counters: &counters,
        };
        let block = reader.block(idx, ctx).unwrap();
        assert!(block.entries().last().unwrap().key >= target);
        if idx > 0 {
            let prev = reader.block(idx - 1, ctx).unwrap();
            assert!(prev.entries().last().unwrap().key < target);
        }
    }

    #[test]
    fn empty_table_roundtrips_through_reader() {
        let storage = Arc::new(MemoryStorage::new());
        let (data, meta) = SstableBuilder::new(5, 4096, 10).finish();
        storage.write_blob(&Sstable::blob_name(5), &data).unwrap();
        let reader = SstableReader::open(storage, 5, Some(meta.encoded_len)).unwrap();
        assert_eq!(reader.block_count(), 0);
        assert_eq!(reader.min_key(), None);
        let (cache, counters) = ctx_parts();
        let ctx = ReadContext {
            block_cache: &cache,
            fill_cache: true,
            readahead_blocks: 1,
            counters: &counters,
        };
        assert!(reader.get(b"anything", ctx).unwrap().is_none());
        assert_eq!(reader.iter(ctx).count(), 0);
    }
}
