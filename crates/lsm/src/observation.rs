//! Persisted per-table key observations.
//!
//! Policy-driven compaction plans over one
//! [`TableObservation`](compaction_core::TableObservation) per live
//! sstable. Originally those observations were rebuilt by reading every
//! live table in full at plan time — and then the executor read the same
//! tables *again* to merge them, doubling the scan cost of every
//! compaction (the ROADMAP's "planner observation cost" item).
//!
//! This module removes the first scan: whenever a table is created — at
//! memtable flush or as a compaction output — its observed key set (the
//! same [`observed_key`](crate::observed_key) mapping the planner uses)
//! is persisted as a small sidecar blob next to the table. At plan time
//! [`observe_tables`](crate::observe_tables) loads the sidecar instead
//! of the table; only tables written before this format existed fall
//! back to a full read.
//!
//! The sidecar always stores the **exact** observed key set, regardless
//! of the configured [`SizeEstimator`](compaction_core::SizeEstimator):
//! every scheduling strategy consumes key sets, and the HLL estimator
//! (the paper's `SO(E)`) derives its sketches from those sets at plan
//! time. A representation tag is encoded so a sketch-only format can be
//! added without breaking existing stores. Sidecars follow their table's
//! lifecycle: written before the manifest references the table, deleted
//! when the table is retired, and swept as orphans on reopen.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::block::crc32;
use crate::storage::Storage;
use crate::Error;

/// Representation tag: exact sorted key set.
const REPR_EXACT: u8 = 0;

/// The observed key set of one sstable, persisted alongside it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableKeyObservation {
    /// The table this observation describes.
    pub table_id: u64,
    /// Observed keys (see [`observed_key`](crate::observed_key)),
    /// sorted ascending and deduplicated.
    pub keys: Vec<u64>,
}

impl TableKeyObservation {
    /// Builds an observation from keys in any order.
    #[must_use]
    pub fn new(table_id: u64, mut keys: Vec<u64>) -> Self {
        keys.sort_unstable();
        keys.dedup();
        Self { table_id, keys }
    }

    /// The canonical sidecar blob name for a table id.
    #[must_use]
    pub fn blob_name(table_id: u64) -> String {
        format!("obs-{table_id:012}.keys")
    }

    /// Parses a table id back out of a sidecar blob name; `None` for any
    /// other blob.
    #[must_use]
    pub fn id_from_blob_name(name: &str) -> Option<u64> {
        name.strip_prefix("obs-")?
            .strip_suffix(".keys")?
            .parse()
            .ok()
    }

    /// Serializes the observation (tag + count + keys + CRC).
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(1 + 8 + self.keys.len() * 8 + 4);
        buf.put_u8(REPR_EXACT);
        buf.put_u64_le(self.keys.len() as u64);
        for &key in &self.keys {
            buf.put_u64_le(key);
        }
        let crc = crc32(&buf);
        buf.put_u32_le(crc);
        buf.freeze()
    }

    /// Deserializes an observation produced by
    /// [`TableKeyObservation::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] on checksum, tag or framing
    /// failures.
    pub fn decode(table_id: u64, data: &[u8]) -> Result<Self, Error> {
        if data.len() < 13 {
            return Err(Error::corruption("key observation too short"));
        }
        let (payload, crc_bytes) = data.split_at(data.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32(payload) != stored {
            return Err(Error::corruption("key observation checksum mismatch"));
        }
        let mut cursor = payload;
        let repr = cursor.get_u8();
        if repr != REPR_EXACT {
            return Err(Error::corruption(format!(
                "unknown key observation representation {repr}"
            )));
        }
        let count = cursor.get_u64_le() as usize;
        if cursor.remaining() != count * 8 {
            return Err(Error::corruption("key observation length mismatch"));
        }
        let mut keys = Vec::with_capacity(count);
        for _ in 0..count {
            keys.push(cursor.get_u64_le());
        }
        Ok(Self { table_id, keys })
    }

    /// Persists the observation to its canonical sidecar blob.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn persist(&self, storage: &dyn Storage) -> Result<(), Error> {
        storage.write_blob(&Self::blob_name(self.table_id), &self.encode())
    }

    /// Loads the persisted observation for `table_id`, or `Ok(None)` if
    /// no sidecar exists (a pre-observation table: the caller falls back
    /// to reading the table itself).
    ///
    /// # Errors
    ///
    /// Propagates storage failures and corruption of an existing blob.
    pub fn load(storage: &dyn Storage, table_id: u64) -> Result<Option<Self>, Error> {
        let name = Self::blob_name(table_id);
        if !storage.contains_blob(&name) {
            return Ok(None);
        }
        Ok(Some(Self::decode(table_id, &storage.read_blob(&name)?)?))
    }

    /// Deletes the sidecar blob for `table_id` (idempotent).
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn delete(storage: &dyn Storage, table_id: u64) -> Result<(), Error> {
        storage.delete_blob(&Self::blob_name(table_id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemoryStorage;

    #[test]
    fn encode_decode_roundtrip() {
        let obs = TableKeyObservation::new(42, vec![9, 1, 5, 5, 3]);
        assert_eq!(obs.keys, vec![1, 3, 5, 9], "sorted and deduplicated");
        let decoded = TableKeyObservation::decode(42, &obs.encode()).unwrap();
        assert_eq!(decoded, obs);

        let empty = TableKeyObservation::new(7, Vec::new());
        let decoded = TableKeyObservation::decode(7, &empty.encode()).unwrap();
        assert!(decoded.keys.is_empty());
    }

    #[test]
    fn decode_rejects_corruption() {
        let obs = TableKeyObservation::new(1, vec![1, 2, 3]);
        let mut tampered = obs.encode().to_vec();
        tampered[3] ^= 0xFF;
        assert!(TableKeyObservation::decode(1, &tampered).is_err());
        assert!(TableKeyObservation::decode(1, &[0, 1]).is_err());
        // Unknown representation tag.
        let mut bad_tag = obs.encode().to_vec();
        bad_tag[0] = 9;
        let len = bad_tag.len();
        let crc = crc32(&bad_tag[..len - 4]);
        bad_tag[len - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(TableKeyObservation::decode(1, &bad_tag).is_err());
    }

    #[test]
    fn persist_load_delete_cycle() {
        let storage = MemoryStorage::new();
        assert!(TableKeyObservation::load(&storage, 5).unwrap().is_none());
        let obs = TableKeyObservation::new(5, vec![10, 20]);
        obs.persist(&storage).unwrap();
        assert_eq!(TableKeyObservation::load(&storage, 5).unwrap(), Some(obs));
        TableKeyObservation::delete(&storage, 5).unwrap();
        TableKeyObservation::delete(&storage, 5).unwrap(); // idempotent
        assert!(TableKeyObservation::load(&storage, 5).unwrap().is_none());
    }

    #[test]
    fn blob_names_roundtrip() {
        let name = TableKeyObservation::blob_name(33);
        assert_eq!(TableKeyObservation::id_from_blob_name(&name), Some(33));
        assert_eq!(TableKeyObservation::id_from_blob_name("sst-0001.sst"), None);
        assert_eq!(TableKeyObservation::id_from_blob_name("obs-x.keys"), None);
    }
}
