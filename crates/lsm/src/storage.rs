//! Pluggable blob storage backing sstables, WAL segments and the manifest.
//!
//! The paper's experiments ran against local disk; the simulator in this
//! reproduction defaults to [`MemoryStorage`] so that figure sweeps are
//! not bottlenecked by the test machine's filesystem, while
//! [`FileStorage`] exercises the identical code path against real files.
//! Both report the number of bytes read and written, which is the
//! quantity ("disk I/O") the paper's cost function models.

use std::collections::HashMap;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use parking_lot::RwLock;

use crate::Error;

/// Abstraction over where immutable blobs (sstables, WAL segments,
/// manifest snapshots) live.
///
/// Implementations must be safe for concurrent readers; the engine holds
/// the only writer.
pub trait Storage: std::fmt::Debug + Send + Sync {
    /// Writes (or atomically replaces) the blob named `name`.
    ///
    /// # Errors
    ///
    /// Propagates backend I/O failures.
    fn write_blob(&self, name: &str, data: &[u8]) -> Result<(), Error>;

    /// Writes the blob named `name` with all-or-nothing visibility:
    /// after a crash mid-call, a reader sees either the previous
    /// contents (or absence) of the blob or the complete new contents —
    /// never a torn prefix. This is the write-new-then-swap primitive
    /// the manifest's `CURRENT` pointer relies on.
    ///
    /// The default delegates to [`Storage::write_blob`]: both built-in
    /// backends already replace atomically ([`MemoryStorage`] swaps a
    /// map entry, [`FileStorage`] writes a temp file, fsyncs and
    /// renames). Fault-injecting test backends distinguish the two —
    /// plain writes tear at a scripted byte, atomic writes either land
    /// whole or not at all — which is what lets the crash battery prove
    /// the manifest swap cannot half-happen.
    ///
    /// # Errors
    ///
    /// Propagates backend I/O failures.
    fn write_blob_atomic(&self, name: &str, data: &[u8]) -> Result<(), Error> {
        self.write_blob(name, data)
    }

    /// Reads the entire blob named `name`.
    ///
    /// # Errors
    ///
    /// Fails if the blob does not exist or the backend errors.
    fn read_blob(&self, name: &str) -> Result<Bytes, Error>;

    /// Reads `len` bytes of the blob named `name` starting at byte
    /// `offset`. This is the primitive that makes lazy sstable readers
    /// possible: a point read fetches one footer, one index and one data
    /// block instead of the whole table. Only the requested range counts
    /// toward [`Storage::bytes_read`] in backends with native support.
    ///
    /// The default implementation reads the whole blob and slices it —
    /// correct for any backend, but it pays the full-blob read the
    /// ranged API exists to avoid; both built-in backends override it.
    ///
    /// # Errors
    ///
    /// Fails if the blob does not exist, the range extends past the end
    /// of the blob, or the backend errors.
    fn read_blob_range(&self, name: &str, offset: u64, len: usize) -> Result<Bytes, Error> {
        let blob = self.read_blob(name)?;
        range_of(&blob, name, offset, len)
    }

    /// Length of the blob named `name` in bytes.
    ///
    /// The default implementation reads the whole blob; both built-in
    /// backends answer from metadata instead.
    ///
    /// # Errors
    ///
    /// Fails if the blob does not exist or the backend errors.
    fn blob_len(&self, name: &str) -> Result<u64, Error> {
        Ok(self.read_blob(name)?.len() as u64)
    }

    /// Deletes the blob named `name`. Deleting a missing blob is not an
    /// error (idempotent).
    ///
    /// # Errors
    ///
    /// Propagates backend I/O failures.
    fn delete_blob(&self, name: &str) -> Result<(), Error>;

    /// Returns `true` if a blob named `name` exists.
    fn contains_blob(&self, name: &str) -> bool;

    /// Names of all blobs currently stored, in unspecified order.
    fn list_blobs(&self) -> Vec<String>;

    /// Total bytes written through this storage since creation.
    fn bytes_written(&self) -> u64;

    /// Total bytes read through this storage since creation.
    fn bytes_read(&self) -> u64;
}

/// Slices `[offset, offset + len)` out of a fully loaded blob, with
/// range checking shared by the trait default and [`MemoryStorage`].
fn range_of(blob: &Bytes, name: &str, offset: u64, len: usize) -> Result<Bytes, Error> {
    let start = usize::try_from(offset)
        .map_err(|_| Error::corruption(format!("range offset {offset} overflows usize")))?;
    let end = start.checked_add(len).ok_or_else(|| {
        Error::corruption(format!("range {offset}+{len} overflows in blob `{name}`"))
    })?;
    if end > blob.len() {
        return Err(Error::corruption(format!(
            "range {offset}+{len} past end of blob `{name}` ({} bytes)",
            blob.len()
        )));
    }
    Ok(Bytes::copy_from_slice(&blob[start..end]))
}

/// In-memory storage backend (the simulator default).
#[derive(Debug, Default)]
pub struct MemoryStorage {
    blobs: RwLock<HashMap<String, Bytes>>,
    written: AtomicU64,
    read: AtomicU64,
}

impl MemoryStorage {
    /// Creates an empty in-memory store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Storage for MemoryStorage {
    fn write_blob(&self, name: &str, data: &[u8]) -> Result<(), Error> {
        self.written.fetch_add(data.len() as u64, Ordering::Relaxed);
        self.blobs
            .write()
            .insert(name.to_owned(), Bytes::copy_from_slice(data));
        Ok(())
    }

    fn read_blob(&self, name: &str) -> Result<Bytes, Error> {
        let guard = self.blobs.read();
        let blob = guard.get(name).ok_or_else(|| {
            Error::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("blob `{name}` not found"),
            ))
        })?;
        self.read.fetch_add(blob.len() as u64, Ordering::Relaxed);
        Ok(blob.clone())
    }

    fn read_blob_range(&self, name: &str, offset: u64, len: usize) -> Result<Bytes, Error> {
        let guard = self.blobs.read();
        let blob = guard.get(name).ok_or_else(|| {
            Error::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("blob `{name}` not found"),
            ))
        })?;
        let slice = range_of(blob, name, offset, len)?;
        self.read.fetch_add(slice.len() as u64, Ordering::Relaxed);
        Ok(slice)
    }

    fn blob_len(&self, name: &str) -> Result<u64, Error> {
        self.blobs
            .read()
            .get(name)
            .map(|b| b.len() as u64)
            .ok_or_else(|| {
                Error::Io(std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    format!("blob `{name}` not found"),
                ))
            })
    }

    fn delete_blob(&self, name: &str) -> Result<(), Error> {
        self.blobs.write().remove(name);
        Ok(())
    }

    fn contains_blob(&self, name: &str) -> bool {
        self.blobs.read().contains_key(name)
    }

    fn list_blobs(&self) -> Vec<String> {
        self.blobs.read().keys().cloned().collect()
    }

    fn bytes_written(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }

    fn bytes_read(&self) -> u64 {
        self.read.load(Ordering::Relaxed)
    }
}

/// File-backed storage: each blob is a file inside a root directory.
#[derive(Debug)]
pub struct FileStorage {
    root: PathBuf,
    written: AtomicU64,
    read: AtomicU64,
}

impl FileStorage {
    /// Opens (creating if needed) a file-backed store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, Error> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Self {
            root,
            written: AtomicU64::new(0),
            read: AtomicU64::new(0),
        })
    }

    fn path_for(&self, name: &str) -> PathBuf {
        // Blob names are generated internally (e.g. "sst-000042.sst") and
        // never contain path separators, but sanitize anyway.
        let safe: String = name
            .chars()
            .map(|c| if c == '/' || c == '\\' { '_' } else { c })
            .collect();
        self.root.join(safe)
    }
}

impl Storage for FileStorage {
    fn write_blob(&self, name: &str, data: &[u8]) -> Result<(), Error> {
        let final_path = self.path_for(name);
        let tmp_path = self.path_for(&format!("{name}.tmp"));
        {
            let mut file = fs::File::create(&tmp_path)?;
            file.write_all(data)?;
            file.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        self.written.fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn read_blob(&self, name: &str) -> Result<Bytes, Error> {
        let mut file = fs::File::open(self.path_for(name))?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        self.read.fetch_add(buf.len() as u64, Ordering::Relaxed);
        Ok(Bytes::from(buf))
    }

    fn read_blob_range(&self, name: &str, offset: u64, len: usize) -> Result<Bytes, Error> {
        let mut file = fs::File::open(self.path_for(name))?;
        let total = file.metadata()?.len();
        if offset.checked_add(len as u64).is_none_or(|end| end > total) {
            return Err(Error::corruption(format!(
                "range {offset}+{len} past end of blob `{name}` ({total} bytes)"
            )));
        }
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        file.read_exact(&mut buf)?;
        self.read.fetch_add(len as u64, Ordering::Relaxed);
        Ok(Bytes::from(buf))
    }

    fn blob_len(&self, name: &str) -> Result<u64, Error> {
        Ok(fs::metadata(self.path_for(name))?.len())
    }

    fn delete_blob(&self, name: &str) -> Result<(), Error> {
        match fs::remove_file(self.path_for(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn contains_blob(&self, name: &str) -> bool {
        self.path_for(name).exists()
    }

    fn list_blobs(&self) -> Vec<String> {
        fs::read_dir(&self.root)
            .map(|dir| {
                dir.filter_map(|entry| {
                    let entry = entry.ok()?;
                    let name = entry.file_name().into_string().ok()?;
                    (!name.ends_with(".tmp")).then_some(name)
                })
                .collect()
            })
            .unwrap_or_default()
    }

    fn bytes_written(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }

    fn bytes_read(&self) -> u64 {
        self.read.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(storage: &dyn Storage) {
        assert!(!storage.contains_blob("a"));
        storage.write_blob("a", b"hello").unwrap();
        assert!(storage.contains_blob("a"));
        assert_eq!(storage.read_blob("a").unwrap().as_ref(), b"hello");
        storage.write_blob("a", b"replaced").unwrap();
        assert_eq!(storage.read_blob("a").unwrap().as_ref(), b"replaced");
        storage.write_blob("b", b"world").unwrap();
        let mut names = storage.list_blobs();
        names.sort();
        assert_eq!(names, vec!["a".to_owned(), "b".to_owned()]);
        storage.delete_blob("a").unwrap();
        storage.delete_blob("a").unwrap(); // idempotent
        assert!(!storage.contains_blob("a"));
        assert!(storage.read_blob("a").is_err());
        assert!(storage.bytes_written() >= 18);
        assert!(storage.bytes_read() >= 13);

        // Ranged reads: exact slice, byte accounting, bounds checking.
        assert_eq!(storage.blob_len("b").unwrap(), 5);
        let before = storage.bytes_read();
        assert_eq!(storage.read_blob_range("b", 1, 3).unwrap().as_ref(), b"orl");
        assert_eq!(
            storage.bytes_read() - before,
            3,
            "only the range counts as read"
        );
        assert_eq!(
            storage.read_blob_range("b", 0, 5).unwrap().as_ref(),
            b"world"
        );
        assert_eq!(storage.read_blob_range("b", 5, 0).unwrap().as_ref(), b"");
        assert!(storage.read_blob_range("b", 4, 2).is_err(), "past the end");
        assert!(storage.read_blob_range("b", 6, 0).is_err());
        assert!(storage.read_blob_range("missing", 0, 1).is_err());
        assert!(storage.blob_len("missing").is_err());
    }

    #[test]
    fn memory_storage_contract() {
        let storage = MemoryStorage::new();
        exercise(&storage);
    }

    #[test]
    fn file_storage_contract() {
        let dir = std::env::temp_dir().join(format!("lsm-engine-test-{}", std::process::id()));
        let storage = FileStorage::open(&dir).unwrap();
        exercise(&storage);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_storage_sanitizes_names() {
        let dir = std::env::temp_dir().join(format!("lsm-engine-test-sani-{}", std::process::id()));
        let storage = FileStorage::open(&dir).unwrap();
        storage.write_blob("../escape", b"x").unwrap();
        assert!(storage.contains_blob("../escape"));
        assert!(dir.join(".._escape").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
