//! Batched writes.
//!
//! A [`WriteBatch`] groups puts and deletes so the engine can apply them
//! with **one WAL frame and one memtable pass**
//! ([`Lsm::write_batch`](crate::Lsm::write_batch)): the batch is appended
//! to the WAL as a single CRC-protected frame (torn frames replay
//! all-or-nothing, so a crash never surfaces half a batch) and the
//! memtable is flushed at most once, after every operation has been
//! applied. This is the write path the sharded KV service rides — one
//! batch per shard per client round-trip instead of one WAL write per
//! key.

use bytes::Bytes;

use crate::types::{key_from_u64, Key, Value, ValueKind};

/// One operation of a [`WriteBatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOp {
    /// The user key.
    pub key: Key,
    /// The value (empty for deletes).
    pub value: Value,
    /// Put or tombstone.
    pub kind: ValueKind,
}

/// An ordered group of puts and deletes applied atomically with respect
/// to crash recovery.
///
/// Operations are applied in insertion order, so a put followed by a
/// delete of the same key within one batch leaves the key deleted.
///
/// # Examples
///
/// ```
/// use lsm_engine::{Lsm, LsmOptions, WriteBatch};
///
/// # fn main() -> Result<(), lsm_engine::Error> {
/// let db = Lsm::open_in_memory(LsmOptions::default())?;
/// let mut batch = WriteBatch::new();
/// batch.put_u64(1, b"one".to_vec());
/// batch.put_u64(2, b"two".to_vec());
/// batch.delete_u64(1);
/// db.write_batch(batch)?;
/// assert_eq!(db.get_u64(1)?, None);
/// assert_eq!(db.get_u64(2)?.as_deref(), Some(b"two".as_slice()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteBatch {
    ops: Vec<BatchOp>,
}

impl WriteBatch {
    /// Creates an empty batch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty batch with capacity for `n` operations.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            ops: Vec::with_capacity(n),
        }
    }

    /// Queues an insert/overwrite of `key`.
    pub fn put(&mut self, key: Key, value: Value) -> &mut Self {
        self.ops.push(BatchOp {
            key,
            value,
            kind: ValueKind::Put,
        });
        self
    }

    /// Queues a delete (tombstone) of `key`.
    pub fn delete(&mut self, key: Key) -> &mut Self {
        self.ops.push(BatchOp {
            key,
            value: Bytes::new(),
            kind: ValueKind::Tombstone,
        });
        self
    }

    /// Convenience: [`WriteBatch::put`] with an integer key.
    pub fn put_u64(&mut self, key: u64, value: impl Into<Vec<u8>>) -> &mut Self {
        self.put(key_from_u64(key), Bytes::from(value.into()))
    }

    /// Convenience: [`WriteBatch::delete`] with an integer key.
    pub fn delete_u64(&mut self, key: u64) -> &mut Self {
        self.delete(key_from_u64(key))
    }

    /// Number of queued operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if no operations are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The queued operations, in application order.
    #[must_use]
    pub fn ops(&self) -> &[BatchOp] {
        &self.ops
    }

    /// Consumes the batch, returning its operations (used by callers
    /// that re-group a batch, e.g. a shard router splitting one logical
    /// batch into per-shard batches).
    #[must_use]
    pub fn into_ops(self) -> Vec<BatchOp> {
        self.ops
    }

    /// Appends an already-constructed operation (used when re-grouping).
    pub fn push(&mut self, op: BatchOp) -> &mut Self {
        self.ops.push(op);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_accumulates_in_order() {
        let mut batch = WriteBatch::with_capacity(3);
        batch.put_u64(1, b"a".to_vec()).delete_u64(2);
        batch.put(key_from_u64(3), Bytes::from_static(b"c"));
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_empty());
        let ops = batch.into_ops();
        assert_eq!(ops[0].kind, ValueKind::Put);
        assert_eq!(ops[1].kind, ValueKind::Tombstone);
        assert!(ops[1].value.is_empty());
        assert_eq!(ops[2].key, key_from_u64(3));
    }

    #[test]
    fn empty_batch() {
        let batch = WriteBatch::new();
        assert!(batch.is_empty());
        assert_eq!(batch.len(), 0);
        assert!(batch.ops().is_empty());
    }
}
