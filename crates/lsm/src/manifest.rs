//! The manifest: the authoritative record of which sstables are live.
//!
//! Flushes add tables; compaction merges remove their inputs and add the
//! merged output. Persistence is **checkpoint-based**: every
//! [`Manifest::persist`] writes a fresh versioned `MANIFEST-<N>` blob and
//! then swaps a tiny CRC'd `CURRENT` pointer onto it with
//! [`Storage::write_blob_atomic`], so no single torn write can lose the
//! table set:
//!
//! ```text
//!   MANIFEST-00000000000000000007   full checkpoint (magic + tables + CRC)
//!   CURRENT                         "LSMCURR1" + 7 + CRC  (atomic swap)
//! ```
//!
//! * A crash **before** the `CURRENT` swap leaves `CURRENT` pointing at
//!   the previous checkpoint, which still exists (stale checkpoints are
//!   swept only after the swap lands).
//! * A torn or missing `CURRENT` falls back to the newest *decodable*
//!   checkpoint whose referenced tables all exist, then repairs the
//!   pointer.
//! * A valid `CURRENT` pointing at a corrupt checkpoint is a hard
//!   [`Error::Corruption`]: silently falling back further could resurrect
//!   a table set whose WAL segments were already retired.
//!
//! Stores written before checkpointing persisted a single in-place
//! `MANIFEST` blob; [`Manifest::load`] still reads it as a final
//! fallback and the first persist migrates to the checkpoint layout.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::block::crc32;
use crate::sstable::Sstable;
use crate::storage::Storage;
use crate::Error;

/// Blob name of the legacy single-blob manifest (pre-checkpoint stores).
pub const MANIFEST_BLOB: &str = "MANIFEST";

/// Blob name of the checkpoint pointer.
pub const CURRENT_BLOB: &str = "CURRENT";

/// Magic prefix of a v2 (checkpoint-format) manifest blob.
const MANIFEST_V2_MAGIC: &[u8; 8] = b"LSMMAN02";

/// Magic prefix of a v3 manifest blob (adds per-table range-tombstone
/// counts for MVCC range deletes).
const MANIFEST_V3_MAGIC: &[u8; 8] = b"LSMMAN03";

/// Magic prefix of the `CURRENT` pointer blob.
const CURRENT_MAGIC: &[u8; 8] = b"LSMCURR1";

/// Metadata the manifest tracks per live sstable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableMeta {
    /// The table id (also determines its blob name).
    pub table_id: u64,
    /// Number of entries in the table.
    pub entry_count: u64,
    /// Encoded size in bytes.
    pub encoded_len: u64,
    /// How many of the entries are tombstones — the signal tombstone GC
    /// schedules rewrites by. Legacy manifests decode as 0 (unknown);
    /// the count refreshes when the table is next rewritten.
    pub tombstone_count: u64,
    /// How many range tombstones the table's v4 range-del section
    /// carries. Non-zero flags the table for the read path's global
    /// range-delete consultation; pre-v3 manifests decode as 0 and the
    /// count refreshes when the table is next rewritten (pre-v4 tables
    /// cannot carry range tombstones, so 0 is exact for them).
    pub range_tombstone_count: u64,
    /// Largest sequence number stored in the table (point entries and
    /// range tombstones). Live tables hold pairwise-disjoint seqno
    /// ranges, so the read path orders probes newest-first by this
    /// value instead of trusting manifest position (which compaction
    /// and GC rewrites reshuffle). Pre-v3 manifests decode as 0; ties
    /// fall back to manifest order.
    pub max_seqno: u64,
}

/// A logical manifest edit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestEdit {
    /// A new table became live (memtable flush or compaction output).
    AddTable(TableMeta),
    /// A table was removed (it was an input to a compaction merge).
    RemoveTable {
        /// Id of the removed table.
        table_id: u64,
    },
}

/// The set of live sstables plus the id allocator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    tables: Vec<TableMeta>,
    next_table_id: u64,
    next_seqno: u64,
    /// Sequence of the newest persisted checkpoint (0 = never persisted
    /// in checkpoint format).
    checkpoint_seq: u64,
}

impl Manifest {
    /// Creates an empty manifest.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The live tables, oldest first (flush/creation order).
    #[must_use]
    pub fn tables(&self) -> &[TableMeta] {
        &self.tables
    }

    /// Number of live tables.
    #[must_use]
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Looks up a live table by id.
    #[must_use]
    pub fn table(&self, table_id: u64) -> Option<&TableMeta> {
        self.tables.iter().find(|t| t.table_id == table_id)
    }

    /// Sequence number of the newest persisted checkpoint (what
    /// `CURRENT` points at), 0 before the first checkpoint persist.
    #[must_use]
    pub fn checkpoint_seq(&self) -> u64 {
        self.checkpoint_seq
    }

    /// Allocates a fresh table id.
    pub fn allocate_table_id(&mut self) -> u64 {
        let id = self.next_table_id;
        self.next_table_id += 1;
        id
    }

    /// Allocates a fresh sequence number.
    pub fn allocate_seqno(&mut self) -> u64 {
        let seq = self.next_seqno;
        self.next_seqno += 1;
        seq
    }

    /// The next sequence number that will be allocated.
    #[must_use]
    pub fn current_seqno(&self) -> u64 {
        self.next_seqno
    }

    /// Records that `seqno` has been used, bumping the allocator past
    /// it. WAL recovery calls this with the largest replayed sequence
    /// number: replayed records were sequenced by a previous process
    /// whose allocations the persisted manifest may not reflect, and a
    /// fresh allocation colliding with a replayed seqno would corrupt
    /// version ordering.
    pub fn observe_seqno(&mut self, seqno: u64) {
        self.next_seqno = self.next_seqno.max(seqno + 1);
    }

    /// The canonical blob name of checkpoint `seq`. Zero-padded so the
    /// lexicographic order of checkpoint names is their numeric order.
    #[must_use]
    pub fn checkpoint_blob_name(seq: u64) -> String {
        format!("MANIFEST-{seq:020}")
    }

    /// Parses a checkpoint sequence back out of a blob name; `None` for
    /// any other blob (including the legacy `MANIFEST`).
    #[must_use]
    pub fn checkpoint_seq_from_blob_name(name: &str) -> Option<u64> {
        name.strip_prefix("MANIFEST-")?.parse().ok()
    }

    /// Applies an edit.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownTable`] when removing a table that is not
    /// live, and [`Error::InvalidCompaction`] when adding a duplicate id.
    pub fn apply(&mut self, edit: ManifestEdit) -> Result<(), Error> {
        match edit {
            ManifestEdit::AddTable(meta) => {
                if self.table(meta.table_id).is_some() {
                    return Err(Error::invalid_compaction(format!(
                        "table id {} is already live",
                        meta.table_id
                    )));
                }
                self.next_table_id = self.next_table_id.max(meta.table_id + 1);
                self.tables.push(meta);
                Ok(())
            }
            ManifestEdit::RemoveTable { table_id } => {
                let before = self.tables.len();
                self.tables.retain(|t| t.table_id != table_id);
                if self.tables.len() == before {
                    return Err(Error::UnknownTable { table_id });
                }
                Ok(())
            }
        }
    }

    /// Serializes the manifest in checkpoint (v3) format.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(MANIFEST_V3_MAGIC);
        buf.put_u64_le(self.next_table_id);
        buf.put_u64_le(self.next_seqno);
        buf.put_u32_le(self.tables.len() as u32);
        for t in &self.tables {
            buf.put_u64_le(t.table_id);
            buf.put_u64_le(t.entry_count);
            buf.put_u64_le(t.encoded_len);
            buf.put_u64_le(t.tombstone_count);
            buf.put_u64_le(t.range_tombstone_count);
            buf.put_u64_le(t.max_seqno);
        }
        let crc = crc32(&buf);
        buf.put_u32_le(crc);
        buf.freeze()
    }

    /// Deserializes a manifest produced by [`Manifest::encode`] — the
    /// checkpoint v3 format, the v2 format (no per-table range-tombstone
    /// counts — they decode as 0), or the legacy headerless layout
    /// (which also lacks per-table tombstone counts).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] on checksum or framing failures.
    pub fn decode(data: &[u8]) -> Result<Self, Error> {
        let v3 = data.starts_with(MANIFEST_V3_MAGIC);
        let v2 = data.starts_with(MANIFEST_V2_MAGIC);
        let record_len = if v3 {
            48
        } else if v2 {
            32
        } else {
            24
        };
        let min_len = if v3 || v2 { 32 } else { 24 };
        if data.len() < min_len {
            return Err(Error::corruption("manifest too short"));
        }
        let (payload, crc_bytes) = data.split_at(data.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32(payload) != stored {
            return Err(Error::corruption("manifest checksum mismatch"));
        }
        let mut cursor = payload;
        if v3 || v2 {
            cursor.advance(MANIFEST_V3_MAGIC.len());
        }
        let next_table_id = cursor.get_u64_le();
        let next_seqno = cursor.get_u64_le();
        let count = cursor.get_u32_le();
        let mut tables = Vec::with_capacity(count as usize);
        for _ in 0..count {
            if cursor.remaining() < record_len {
                return Err(Error::corruption("truncated manifest table record"));
            }
            tables.push(TableMeta {
                table_id: cursor.get_u64_le(),
                entry_count: cursor.get_u64_le(),
                encoded_len: cursor.get_u64_le(),
                tombstone_count: if v3 || v2 { cursor.get_u64_le() } else { 0 },
                range_tombstone_count: if v3 { cursor.get_u64_le() } else { 0 },
                max_seqno: if v3 { cursor.get_u64_le() } else { 0 },
            });
        }
        Ok(Self {
            tables,
            next_table_id,
            next_seqno,
            checkpoint_seq: 0,
        })
    }

    /// Encodes the `CURRENT` pointer payload for checkpoint `seq`.
    fn encode_current(seq: u64) -> Bytes {
        let mut buf = BytesMut::with_capacity(20);
        buf.put_slice(CURRENT_MAGIC);
        buf.put_u64_le(seq);
        let crc = crc32(&buf);
        buf.put_u32_le(crc);
        buf.freeze()
    }

    /// Decodes a `CURRENT` pointer payload back to a checkpoint seq.
    fn decode_current(data: &[u8]) -> Result<u64, Error> {
        if data.len() != 20 || !data.starts_with(CURRENT_MAGIC) {
            return Err(Error::corruption("CURRENT pointer malformed"));
        }
        let (payload, crc_bytes) = data.split_at(16);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32(payload) != stored {
            return Err(Error::corruption("CURRENT pointer checksum mismatch"));
        }
        Ok(u64::from_le_bytes(payload[8..16].try_into().expect("8")))
    }

    /// Deletes every checkpoint blob other than `keep` (best-effort —
    /// stale checkpoints are garbage once `CURRENT` has moved past
    /// them, and any survivor is re-swept on the next persist or load).
    fn sweep_stale_checkpoints(storage: &dyn Storage, keep: u64) {
        for name in storage.list_blobs() {
            if let Some(seq) = Self::checkpoint_seq_from_blob_name(&name) {
                if seq != keep {
                    let _ = storage.delete_blob(&name);
                }
            }
        }
        let _ = storage.delete_blob(MANIFEST_BLOB);
    }

    /// Persists the manifest: writes checkpoint `N+1`, atomically swaps
    /// `CURRENT` onto it, then sweeps stale checkpoints (and the legacy
    /// `MANIFEST` blob, migrating old stores). A crash at any byte of
    /// this sequence leaves a recoverable store: either `CURRENT` still
    /// names the previous checkpoint (which the sweep had not touched
    /// yet) or the swap completed and the new table set is authoritative.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn persist(&mut self, storage: &dyn Storage) -> Result<(), Error> {
        let seq = self.checkpoint_seq + 1;
        storage.write_blob(&Self::checkpoint_blob_name(seq), &self.encode())?;
        storage.write_blob_atomic(CURRENT_BLOB, &Self::encode_current(seq))?;
        self.checkpoint_seq = seq;
        Self::sweep_stale_checkpoints(storage, seq);
        Ok(())
    }

    /// Loads the manifest from `storage`, or returns an empty manifest
    /// if nothing has been persisted yet.
    ///
    /// Recovery order:
    ///
    /// 1. a valid `CURRENT` pointer names the checkpoint to load — and a
    ///    corrupt or missing checkpoint behind a *valid* pointer is a
    ///    hard error, because acked state newer than any older
    ///    checkpoint may have no WAL coverage left;
    /// 2. a torn/missing `CURRENT` falls back to the newest decodable
    ///    checkpoint whose referenced tables all exist, then repairs the
    ///    pointer;
    /// 3. the legacy single `MANIFEST` blob;
    /// 4. an empty store — but only when no `sst-*` blobs exist; live
    ///    tables with no manifest of any form mean the manifest was
    ///    lost, and silently serving an empty store would present
    ///    acked data as deleted.
    ///
    /// # Errors
    ///
    /// Propagates storage failures and corruption.
    pub fn load(storage: &dyn Storage) -> Result<Self, Error> {
        let blobs = storage.list_blobs();
        if storage.contains_blob(CURRENT_BLOB) {
            if let Ok(seq) = Self::decode_current(&storage.read_blob(CURRENT_BLOB)?) {
                let name = Self::checkpoint_blob_name(seq);
                if !storage.contains_blob(&name) {
                    return Err(Error::corruption(format!(
                        "CURRENT points at checkpoint {seq} but `{name}` is missing"
                    )));
                }
                let mut manifest = Self::decode(&storage.read_blob(&name)?).map_err(|e| {
                    Error::corruption(format!("checkpoint {seq} named by CURRENT: {e}"))
                })?;
                manifest.checkpoint_seq = seq;
                Self::sweep_stale_checkpoints(storage, seq);
                return Ok(manifest);
            }
            // Torn CURRENT: fall through to the checkpoint scan.
        }

        let mut seqs: Vec<u64> = blobs
            .iter()
            .filter_map(|name| Self::checkpoint_seq_from_blob_name(name))
            .collect();
        seqs.sort_unstable_by(|a, b| b.cmp(a));
        for &seq in &seqs {
            let Ok(data) = storage.read_blob(&Self::checkpoint_blob_name(seq)) else {
                continue;
            };
            let Ok(mut manifest) = Self::decode(&data) else {
                continue;
            };
            // A checkpoint written but never pointed at can reference
            // tables whose publish never completed; only a checkpoint
            // whose whole table set survives is a safe recovery point.
            if manifest
                .tables
                .iter()
                .all(|t| storage.contains_blob(&Sstable::blob_name(t.table_id)))
            {
                manifest.checkpoint_seq = seq;
                storage.write_blob_atomic(CURRENT_BLOB, &Self::encode_current(seq))?;
                Self::sweep_stale_checkpoints(storage, seq);
                return Ok(manifest);
            }
        }
        if !seqs.is_empty() {
            return Err(Error::corruption(
                "manifest checkpoints exist but none is decodable with its tables intact",
            ));
        }

        if storage.contains_blob(MANIFEST_BLOB) {
            return Self::decode(&storage.read_blob(MANIFEST_BLOB)?);
        }

        let orphans: Vec<&String> = blobs
            .iter()
            .filter(|name| Sstable::id_from_blob_name(name).is_some())
            .collect();
        if !orphans.is_empty() {
            return Err(Error::corruption(format!(
                "no manifest (checkpoint, CURRENT or legacy blob) but {} live sstable blob(s) \
                 exist (e.g. `{}`) — refusing to serve an empty store over orphaned tables",
                orphans.len(),
                orphans[0]
            )));
        }
        Ok(Self::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemoryStorage;

    fn meta(id: u64) -> TableMeta {
        TableMeta {
            table_id: id,
            entry_count: 10 * id,
            encoded_len: 100 * id,
            tombstone_count: id % 3,
            range_tombstone_count: id % 2,
            max_seqno: 1000 + id,
        }
    }

    /// Writes a placeholder sstable blob so checkpoint validation sees
    /// the referenced table as present.
    fn fake_table_blob(storage: &dyn Storage, id: u64) {
        storage
            .write_blob(&Sstable::blob_name(id), b"placeholder")
            .unwrap();
    }

    #[test]
    fn apply_add_and_remove() {
        let mut m = Manifest::new();
        m.apply(ManifestEdit::AddTable(meta(1))).unwrap();
        m.apply(ManifestEdit::AddTable(meta(2))).unwrap();
        assert_eq!(m.table_count(), 2);
        assert_eq!(m.table(2).unwrap().entry_count, 20);
        assert!(m.apply(ManifestEdit::AddTable(meta(1))).is_err());
        m.apply(ManifestEdit::RemoveTable { table_id: 1 }).unwrap();
        assert!(m.table(1).is_none());
        assert!(matches!(
            m.apply(ManifestEdit::RemoveTable { table_id: 99 }),
            Err(Error::UnknownTable { table_id: 99 })
        ));
    }

    #[test]
    fn id_and_seqno_allocation_are_monotone() {
        let mut m = Manifest::new();
        let a = m.allocate_table_id();
        let b = m.allocate_table_id();
        assert!(b > a);
        let s1 = m.allocate_seqno();
        let s2 = m.allocate_seqno();
        assert!(s2 > s1);
        assert_eq!(m.current_seqno(), s2 + 1);
        // Adding a table with a large explicit id bumps the allocator.
        m.apply(ManifestEdit::AddTable(meta(100))).unwrap();
        assert!(m.allocate_table_id() > 100);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut m = Manifest::new();
        for id in 1..=5 {
            m.apply(ManifestEdit::AddTable(meta(id))).unwrap();
        }
        m.allocate_seqno();
        let encoded = m.encode();
        let decoded = Manifest::decode(&encoded).unwrap();
        assert_eq!(m, decoded);
        assert_eq!(decoded.table(4).unwrap().tombstone_count, 1);

        let mut tampered = encoded.to_vec();
        tampered[10] ^= 0x01;
        assert!(Manifest::decode(&tampered).is_err());
        assert!(Manifest::decode(&[1, 2, 3]).is_err());
    }

    #[test]
    fn v2_manifest_blob_decodes_without_range_tombstone_counts() {
        // The pre-v3 checkpoint layout: LSMMAN02 magic, 4 u64s per table.
        let mut buf = BytesMut::new();
        buf.put_slice(MANIFEST_V2_MAGIC);
        buf.put_u64_le(9); // next_table_id
        buf.put_u64_le(50); // next_seqno
        buf.put_u32_le(1);
        buf.put_u64_le(3);
        buf.put_u64_le(30);
        buf.put_u64_le(300);
        buf.put_u64_le(4);
        let crc = crc32(&buf);
        buf.put_u32_le(crc);
        let m = Manifest::decode(&buf).unwrap();
        let t = m.table(3).unwrap();
        assert_eq!(
            (
                t.entry_count,
                t.encoded_len,
                t.tombstone_count,
                t.range_tombstone_count,
                t.max_seqno
            ),
            (30, 300, 4, 0, 0)
        );
        assert_eq!(m.current_seqno(), 50);
    }

    #[test]
    fn legacy_manifest_blob_decodes_without_tombstone_counts() {
        // The pre-checkpoint layout: no magic, 3 u64s per table.
        let mut buf = BytesMut::new();
        buf.put_u64_le(9); // next_table_id
        buf.put_u64_le(50); // next_seqno
        buf.put_u32_le(1);
        buf.put_u64_le(3);
        buf.put_u64_le(30);
        buf.put_u64_le(300);
        let crc = crc32(&buf);
        buf.put_u32_le(crc);
        let m = Manifest::decode(&buf).unwrap();
        assert_eq!(m.table_count(), 1);
        let t = m.table(3).unwrap();
        assert_eq!(
            (t.entry_count, t.encoded_len, t.tombstone_count),
            (30, 300, 0)
        );
        assert_eq!(m.current_seqno(), 50);
    }

    #[test]
    fn persist_writes_checkpoint_and_swaps_current() {
        let storage = MemoryStorage::new();
        let mut m = Manifest::new();
        m.apply(ManifestEdit::AddTable(meta(3))).unwrap();
        fake_table_blob(&storage, 3);
        m.persist(&storage).unwrap();
        assert_eq!(m.checkpoint_seq(), 1);
        assert!(storage.contains_blob(&Manifest::checkpoint_blob_name(1)));
        assert!(storage.contains_blob(CURRENT_BLOB));

        m.apply(ManifestEdit::AddTable(meta(5))).unwrap();
        fake_table_blob(&storage, 5);
        m.persist(&storage).unwrap();
        assert_eq!(m.checkpoint_seq(), 2);
        assert!(
            !storage.contains_blob(&Manifest::checkpoint_blob_name(1)),
            "stale checkpoint swept after the pointer moved"
        );
        let reloaded = Manifest::load(&storage).unwrap();
        assert_eq!(reloaded, m);
    }

    #[test]
    fn persist_and_load() {
        let storage = MemoryStorage::new();
        assert_eq!(Manifest::load(&storage).unwrap(), Manifest::new());
        let mut m = Manifest::new();
        m.apply(ManifestEdit::AddTable(meta(3))).unwrap();
        fake_table_blob(&storage, 3);
        m.persist(&storage).unwrap();
        assert_eq!(Manifest::load(&storage).unwrap(), m);
    }

    #[test]
    fn torn_current_falls_back_to_newest_valid_checkpoint() {
        let storage = MemoryStorage::new();
        let mut m = Manifest::new();
        m.apply(ManifestEdit::AddTable(meta(1))).unwrap();
        fake_table_blob(&storage, 1);
        m.persist(&storage).unwrap();

        // Tear the CURRENT pointer (torn atomic-swap prefix).
        let current = storage.read_blob(CURRENT_BLOB).unwrap();
        storage.write_blob(CURRENT_BLOB, &current[..7]).unwrap();
        let recovered = Manifest::load(&storage).unwrap();
        assert_eq!(recovered.tables(), m.tables());
        assert_eq!(recovered.checkpoint_seq(), 1, "pointer repaired");
        assert_eq!(
            Manifest::decode_current(&storage.read_blob(CURRENT_BLOB).unwrap()).unwrap(),
            1
        );
    }

    #[test]
    fn fallback_skips_checkpoint_with_missing_tables() {
        let storage = MemoryStorage::new();
        let mut m = Manifest::new();
        m.apply(ManifestEdit::AddTable(meta(1))).unwrap();
        fake_table_blob(&storage, 1);
        m.persist(&storage).unwrap();

        // Simulate a crash between "checkpoint 2 written" and "CURRENT
        // swapped": checkpoint 2 references a table whose publish never
        // completed, and CURRENT is gone entirely.
        let mut ahead = m.clone();
        ahead.apply(ManifestEdit::AddTable(meta(7))).unwrap();
        storage
            .write_blob(&Manifest::checkpoint_blob_name(2), &ahead.encode())
            .unwrap();
        storage.delete_blob(CURRENT_BLOB).unwrap();

        let recovered = Manifest::load(&storage).unwrap();
        assert_eq!(
            recovered.tables(),
            m.tables(),
            "fell back past checkpoint 2"
        );
        assert!(
            !storage.contains_blob(&Manifest::checkpoint_blob_name(2)),
            "unreachable checkpoint swept"
        );
    }

    #[test]
    fn valid_current_with_corrupt_checkpoint_is_a_hard_error() {
        let storage = MemoryStorage::new();
        let mut m = Manifest::new();
        m.apply(ManifestEdit::AddTable(meta(1))).unwrap();
        fake_table_blob(&storage, 1);
        m.persist(&storage).unwrap();

        let name = Manifest::checkpoint_blob_name(1);
        let mut data = storage.read_blob(&name).unwrap().to_vec();
        data[12] ^= 0xFF;
        storage.write_blob(&name, &data).unwrap();
        let err = Manifest::load(&storage).unwrap_err();
        assert!(matches!(err, Error::Corruption { .. }), "{err}");

        storage.delete_blob(&name).unwrap();
        let err = Manifest::load(&storage).unwrap_err();
        assert!(matches!(err, Error::Corruption { .. }), "{err}");
    }

    #[test]
    fn orphaned_tables_without_any_manifest_refuse_to_open() {
        let storage = MemoryStorage::new();
        fake_table_blob(&storage, 12);
        let err = Manifest::load(&storage).unwrap_err();
        let text = err.to_string();
        assert!(matches!(err, Error::Corruption { .. }));
        assert!(
            text.contains("orphaned"),
            "diagnostic names the cause: {text}"
        );
        assert!(text.contains("sst-"), "diagnostic names a blob: {text}");
    }

    #[test]
    fn legacy_manifest_migrates_to_checkpoints_on_first_persist() {
        let storage = MemoryStorage::new();
        let mut m = Manifest::new();
        m.apply(ManifestEdit::AddTable(meta(2))).unwrap();
        fake_table_blob(&storage, 2);
        // Persist in the legacy layout by hand (what old stores hold):
        // strip the magic by re-encoding the old way.
        let mut buf = BytesMut::new();
        buf.put_u64_le(3);
        buf.put_u64_le(0);
        buf.put_u32_le(1);
        buf.put_u64_le(2);
        buf.put_u64_le(20);
        buf.put_u64_le(200);
        let crc = crc32(&buf);
        buf.put_u32_le(crc);
        storage.write_blob(MANIFEST_BLOB, &buf).unwrap();

        let mut loaded = Manifest::load(&storage).unwrap();
        assert_eq!(loaded.checkpoint_seq(), 0, "legacy load, no checkpoint yet");
        loaded.persist(&storage).unwrap();
        assert!(!storage.contains_blob(MANIFEST_BLOB), "legacy blob retired");
        assert!(storage.contains_blob(CURRENT_BLOB));
        assert_eq!(Manifest::load(&storage).unwrap(), loaded);
    }

    #[test]
    fn checkpoint_blob_names_sort_numerically() {
        let names: Vec<String> = [1u64, 9, 10, 11, 100]
            .iter()
            .map(|&s| Manifest::checkpoint_blob_name(s))
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(sorted, names);
        assert_eq!(Manifest::checkpoint_seq_from_blob_name(&names[2]), Some(10));
        assert_eq!(Manifest::checkpoint_seq_from_blob_name("MANIFEST"), None);
        assert_eq!(Manifest::checkpoint_seq_from_blob_name("sst-1.sst"), None);
    }
}
