//! The manifest: the authoritative record of which sstables are live.
//!
//! Flushes add tables; compaction merges remove their inputs and add the
//! merged output. The manifest is persisted as a compact binary blob so a
//! file-backed engine can be reopened.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::block::crc32;
use crate::storage::Storage;
use crate::Error;

/// Blob name under which the manifest is persisted.
pub const MANIFEST_BLOB: &str = "MANIFEST";

/// Metadata the manifest tracks per live sstable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableMeta {
    /// The table id (also determines its blob name).
    pub table_id: u64,
    /// Number of entries in the table.
    pub entry_count: u64,
    /// Encoded size in bytes.
    pub encoded_len: u64,
}

/// A logical manifest edit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestEdit {
    /// A new table became live (memtable flush or compaction output).
    AddTable(TableMeta),
    /// A table was removed (it was an input to a compaction merge).
    RemoveTable {
        /// Id of the removed table.
        table_id: u64,
    },
}

/// The set of live sstables plus the id allocator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    tables: Vec<TableMeta>,
    next_table_id: u64,
    next_seqno: u64,
}

impl Manifest {
    /// Creates an empty manifest.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The live tables, oldest first (flush/creation order).
    #[must_use]
    pub fn tables(&self) -> &[TableMeta] {
        &self.tables
    }

    /// Number of live tables.
    #[must_use]
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Looks up a live table by id.
    #[must_use]
    pub fn table(&self, table_id: u64) -> Option<&TableMeta> {
        self.tables.iter().find(|t| t.table_id == table_id)
    }

    /// Allocates a fresh table id.
    pub fn allocate_table_id(&mut self) -> u64 {
        let id = self.next_table_id;
        self.next_table_id += 1;
        id
    }

    /// Allocates a fresh sequence number.
    pub fn allocate_seqno(&mut self) -> u64 {
        let seq = self.next_seqno;
        self.next_seqno += 1;
        seq
    }

    /// The next sequence number that will be allocated.
    #[must_use]
    pub fn current_seqno(&self) -> u64 {
        self.next_seqno
    }

    /// Applies an edit.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownTable`] when removing a table that is not
    /// live, and [`Error::InvalidCompaction`] when adding a duplicate id.
    pub fn apply(&mut self, edit: ManifestEdit) -> Result<(), Error> {
        match edit {
            ManifestEdit::AddTable(meta) => {
                if self.table(meta.table_id).is_some() {
                    return Err(Error::invalid_compaction(format!(
                        "table id {} is already live",
                        meta.table_id
                    )));
                }
                self.next_table_id = self.next_table_id.max(meta.table_id + 1);
                self.tables.push(meta);
                Ok(())
            }
            ManifestEdit::RemoveTable { table_id } => {
                let before = self.tables.len();
                self.tables.retain(|t| t.table_id != table_id);
                if self.tables.len() == before {
                    return Err(Error::UnknownTable { table_id });
                }
                Ok(())
            }
        }
    }

    /// Serializes the manifest.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u64_le(self.next_table_id);
        buf.put_u64_le(self.next_seqno);
        buf.put_u32_le(self.tables.len() as u32);
        for t in &self.tables {
            buf.put_u64_le(t.table_id);
            buf.put_u64_le(t.entry_count);
            buf.put_u64_le(t.encoded_len);
        }
        let crc = crc32(&buf);
        buf.put_u32_le(crc);
        buf.freeze()
    }

    /// Deserializes a manifest produced by [`Manifest::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] on checksum or framing failures.
    pub fn decode(data: &[u8]) -> Result<Self, Error> {
        if data.len() < 24 {
            return Err(Error::corruption("manifest too short"));
        }
        let (payload, crc_bytes) = data.split_at(data.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32(payload) != stored {
            return Err(Error::corruption("manifest checksum mismatch"));
        }
        let mut cursor = payload;
        let next_table_id = cursor.get_u64_le();
        let next_seqno = cursor.get_u64_le();
        let count = cursor.get_u32_le();
        let mut tables = Vec::with_capacity(count as usize);
        for _ in 0..count {
            if cursor.remaining() < 24 {
                return Err(Error::corruption("truncated manifest table record"));
            }
            tables.push(TableMeta {
                table_id: cursor.get_u64_le(),
                entry_count: cursor.get_u64_le(),
                encoded_len: cursor.get_u64_le(),
            });
        }
        Ok(Self {
            tables,
            next_table_id,
            next_seqno,
        })
    }

    /// Persists the manifest to `storage`.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn persist(&self, storage: &dyn Storage) -> Result<(), Error> {
        storage.write_blob(MANIFEST_BLOB, &self.encode())
    }

    /// Loads the manifest from `storage`, or returns an empty manifest if
    /// none has been persisted yet.
    ///
    /// # Errors
    ///
    /// Propagates storage failures and corruption.
    pub fn load(storage: &dyn Storage) -> Result<Self, Error> {
        if !storage.contains_blob(MANIFEST_BLOB) {
            return Ok(Self::new());
        }
        Self::decode(&storage.read_blob(MANIFEST_BLOB)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemoryStorage;

    fn meta(id: u64) -> TableMeta {
        TableMeta {
            table_id: id,
            entry_count: 10 * id,
            encoded_len: 100 * id,
        }
    }

    #[test]
    fn apply_add_and_remove() {
        let mut m = Manifest::new();
        m.apply(ManifestEdit::AddTable(meta(1))).unwrap();
        m.apply(ManifestEdit::AddTable(meta(2))).unwrap();
        assert_eq!(m.table_count(), 2);
        assert_eq!(m.table(2).unwrap().entry_count, 20);
        assert!(m.apply(ManifestEdit::AddTable(meta(1))).is_err());
        m.apply(ManifestEdit::RemoveTable { table_id: 1 }).unwrap();
        assert!(m.table(1).is_none());
        assert!(matches!(
            m.apply(ManifestEdit::RemoveTable { table_id: 99 }),
            Err(Error::UnknownTable { table_id: 99 })
        ));
    }

    #[test]
    fn id_and_seqno_allocation_are_monotone() {
        let mut m = Manifest::new();
        let a = m.allocate_table_id();
        let b = m.allocate_table_id();
        assert!(b > a);
        let s1 = m.allocate_seqno();
        let s2 = m.allocate_seqno();
        assert!(s2 > s1);
        assert_eq!(m.current_seqno(), s2 + 1);
        // Adding a table with a large explicit id bumps the allocator.
        m.apply(ManifestEdit::AddTable(meta(100))).unwrap();
        assert!(m.allocate_table_id() > 100);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut m = Manifest::new();
        for id in 1..=5 {
            m.apply(ManifestEdit::AddTable(meta(id))).unwrap();
        }
        m.allocate_seqno();
        let encoded = m.encode();
        let decoded = Manifest::decode(&encoded).unwrap();
        assert_eq!(m, decoded);

        let mut tampered = encoded.to_vec();
        tampered[0] ^= 0x01;
        assert!(Manifest::decode(&tampered).is_err());
        assert!(Manifest::decode(&[1, 2, 3]).is_err());
    }

    #[test]
    fn persist_and_load() {
        let storage = MemoryStorage::new();
        assert_eq!(Manifest::load(&storage).unwrap(), Manifest::new());
        let mut m = Manifest::new();
        m.apply(ManifestEdit::AddTable(meta(3))).unwrap();
        m.persist(&storage).unwrap();
        assert_eq!(Manifest::load(&storage).unwrap(), m);
    }
}
