//! Integration tests for the LSM engine exercising whole-engine flows:
//! crash recovery, read amplification before/after compaction, bloom
//! filter effectiveness, k-way physical compaction and on-disk reopen.

use std::sync::Arc;

use lsm_engine::{
    key_from_u64, CompactionPolicy, CompactionStep, Lsm, LsmOptions, MemoryStorage, Sstable,
    SstableBuilder, Storage, Strategy,
};

/// Point read returning an owned `Vec<u8>` (test convenience over the
/// zero-copy `Option<Value>` the engine now returns).
fn get_vec(db: &Lsm, key: u64) -> Option<Vec<u8>> {
    db.get_u64(key).unwrap().map(|v| v.to_vec())
}

/// Builds a left-to-right merge schedule over `n` live tables.
fn caterpillar(n: usize) -> Vec<CompactionStep> {
    let mut steps = Vec::new();
    let mut acc = 0usize;
    for next in 1..n {
        let output = n + steps.len();
        steps.push(CompactionStep::new(vec![acc, next]));
        acc = output;
    }
    steps
}

/// Builds a balanced (level-by-level) merge schedule over `n` live tables.
fn balanced(n: usize) -> Vec<CompactionStep> {
    let mut steps = Vec::new();
    let mut current: Vec<usize> = (0..n).collect();
    let mut next_slot = n;
    while current.len() > 1 {
        let mut next_level = Vec::new();
        for pair in current.chunks(2) {
            if pair.len() == 2 {
                steps.push(CompactionStep::new(vec![pair[0], pair[1]]));
                next_level.push(next_slot);
                next_slot += 1;
            } else {
                next_level.push(pair[0]);
            }
        }
        current = next_level;
    }
    steps
}

#[test]
fn read_amplification_drops_after_major_compaction() {
    let db = Lsm::open_in_memory(LsmOptions::default().memtable_capacity(50).wal(false)).unwrap();
    for i in 0u64..1_000 {
        db.put_u64(i, vec![1, 2, 3]).unwrap();
    }
    db.flush().unwrap();
    let tables_before = db.live_tables().len();
    assert!(tables_before >= 10);

    // Reads of old keys before compaction probe many tables.
    for key in (0u64..1_000).step_by(97) {
        assert!(db.get_u64(key).unwrap().is_some());
    }
    let probes_before = db.stats().tables_probed;

    db.major_compact(&balanced(tables_before)).unwrap();
    assert_eq!(db.live_tables().len(), 1);

    for key in (0u64..1_000).step_by(97) {
        assert!(db.get_u64(key).unwrap().is_some());
    }
    let probes_after = db.stats().tables_probed - probes_before;
    assert!(
        probes_after < probes_before,
        "read amplification should drop after compaction ({probes_before} -> {probes_after})"
    );
}

#[test]
fn balanced_and_caterpillar_schedules_produce_identical_contents() {
    let build = |steps_for: &dyn Fn(usize) -> Vec<CompactionStep>| {
        let db =
            Lsm::open_in_memory(LsmOptions::default().memtable_capacity(64).wal(false)).unwrap();
        for i in 0u64..800 {
            db.put_u64(i % 300, format!("v{}", i).into_bytes()).unwrap();
        }
        db.delete_u64(7).unwrap();
        db.flush().unwrap();
        let n = db.live_tables().len();
        let outcome = db.major_compact(&steps_for(n)).unwrap();
        (db.scan_all().unwrap(), outcome)
    };
    let (scan_caterpillar, outcome_caterpillar) = build(&caterpillar);
    let (scan_balanced, outcome_balanced) = build(&balanced);
    assert_eq!(
        scan_caterpillar, scan_balanced,
        "contents are schedule-independent"
    );
    // The costs differ (that is the whole point of the paper) but both
    // write the same final table.
    assert!(
        outcome_caterpillar.entries_written >= outcome_balanced.entries_written
            || outcome_balanced.entries_written >= outcome_caterpillar.entries_written
    );
    assert!(outcome_caterpillar.final_table_id.is_some());
    assert!(outcome_balanced.final_table_id.is_some());
}

#[test]
fn kway_physical_compaction_with_wide_fanin() {
    let db = Lsm::open_in_memory(
        LsmOptions::default()
            .memtable_capacity(100)
            .compaction_fanin(4)
            .wal(false),
    )
    .unwrap();
    for i in 0u64..1_200 {
        db.put_u64(i, b"x".to_vec()).unwrap();
    }
    db.flush().unwrap();
    let n = db.live_tables().len();
    assert!(n >= 8);

    // One 4-way merge wave then a final merge of the remainder.
    let mut steps = Vec::new();
    let mut current: Vec<usize> = (0..n).collect();
    let mut next_slot = n;
    while current.len() > 1 {
        let mut next_level = Vec::new();
        for chunk in current.chunks(4) {
            if chunk.len() >= 2 {
                steps.push(CompactionStep::new(chunk.to_vec()));
                next_level.push(next_slot);
                next_slot += 1;
            } else {
                next_level.push(chunk[0]);
            }
        }
        current = next_level;
    }
    let outcome = db.major_compact(&steps).unwrap();
    assert_eq!(db.live_tables().len(), 1);
    assert_eq!(outcome.entries_written as usize % 1_200, 0);
    for i in (0u64..1_200).step_by(111) {
        assert_eq!(get_vec(&db, i), Some(b"x".to_vec()));
    }
}

#[test]
fn compaction_fails_cleanly_on_malformed_schedules_without_losing_data() {
    let db = Lsm::open_in_memory(LsmOptions::default().memtable_capacity(10).wal(false)).unwrap();
    for i in 0u64..50 {
        db.put_u64(i, vec![9]).unwrap();
    }
    db.flush().unwrap();
    let err = db
        .major_compact(&[CompactionStep::new(vec![0, 99])])
        .unwrap_err();
    assert!(err.to_string().contains("slot"));
    // The store still serves every key.
    for i in 0u64..50 {
        assert_eq!(get_vec(&db, i), Some(vec![9]));
    }
}

#[test]
fn bloom_filters_add_modest_overhead_and_preserve_read_correctness() {
    // Two stores, identical data, one without blooms. The observable
    // contract is: identical read results, and a storage-size overhead
    // bounded by the configured bits-per-key budget. 10 bits/key is
    // 1.25 bytes against ~26-byte entries (≈ 5%) — but v3 block
    // compression shrinks the *data* while the filter bits stay
    // incompressible, so the filter's relative share roughly doubles
    // against the ~11-byte compressed entries. Bound accordingly.
    let run = |bloom_bits: usize| {
        let storage = Arc::new(MemoryStorage::new());
        let db = Lsm::open(
            storage.clone(),
            LsmOptions::default()
                .memtable_capacity(500)
                .bloom_bits_per_key(bloom_bits)
                .wal(false),
        )
        .unwrap();
        for i in 0u64..2_000 {
            db.put_u64(i * 2, b"even".to_vec()).unwrap();
        }
        db.flush().unwrap();
        for i in 0u64..2_000 {
            assert_eq!(get_vec(&db, i * 2 + 1), None, "absent key must miss");
            if i % 7 == 0 {
                assert_eq!(get_vec(&db, i * 2), Some(b"even".to_vec()));
            }
        }
        let table_bytes: u64 = db.live_tables().iter().map(|t| t.encoded_len).sum();
        table_bytes
    };
    let with_bloom = run(10);
    let without_bloom = run(0);
    assert!(with_bloom > without_bloom, "the filter occupies real space");
    assert!(
        (with_bloom as f64) <= without_bloom as f64 * 1.15,
        "10 bits/key should cost ~12% extra space over compressed blocks \
         ({with_bloom} vs {without_bloom})"
    );
}

#[test]
fn wal_recovery_preserves_writes_across_simulated_crash_and_compaction() {
    let storage: Arc<dyn Storage> = Arc::new(MemoryStorage::new());
    {
        let db = Lsm::open(
            Arc::clone(&storage),
            LsmOptions::default().memtable_capacity(100),
        )
        .unwrap();
        for i in 0u64..250 {
            db.put_u64(i, format!("v{i}").into_bytes()).unwrap();
        }
        // 2 full flushes happened automatically; 50 writes remain in the
        // memtable and exist only in the WAL when we "crash" here.
    }
    let db = Lsm::open(
        Arc::clone(&storage),
        LsmOptions::default().memtable_capacity(100),
    )
    .unwrap();
    for i in 0u64..250 {
        assert_eq!(
            get_vec(&db, i),
            Some(format!("v{i}").into_bytes()),
            "key {i} lost across restart"
        );
    }
    db.flush().unwrap();
    let n = db.live_tables().len();
    db.major_compact(&caterpillar(n)).unwrap();
    assert_eq!(db.scan_all().unwrap().len(), 250);
}

#[test]
fn wal_recovery_across_auto_compaction_mid_write_stream() {
    // A store that compacts itself while a write stream is in flight,
    // then "crashes" with unflushed writes in the WAL. Reopening must
    // replay the WAL over the post-compaction manifest consistently.
    let storage: Arc<dyn Storage> = Arc::new(MemoryStorage::new());
    let auto_options = || {
        LsmOptions::default()
            .memtable_capacity(25)
            .compaction_policy(CompactionPolicy::Threshold { live_tables: 4 })
            .compaction_strategy(Strategy::SmallestOutput)
    };
    let compactions_before_crash;
    {
        let db = Lsm::open(Arc::clone(&storage), auto_options()).unwrap();
        // 0..470 wraps keys 0..200 unevenly: updates overlap tables, so
        // compactions triggered mid-stream do real merge work.
        for i in 0u64..470 {
            db.put_u64(i % 200, format!("v{i}").into_bytes()).unwrap();
        }
        db.delete_u64(13).unwrap();
        compactions_before_crash = db.stats().auto_compactions;
        assert!(
            compactions_before_crash >= 2,
            "the policy must have fired during the stream"
        );
        assert!(
            db.memtable_len() > 0,
            "crash with unflushed writes in the WAL"
        );
        // Dropped without flush: the tail exists only in the WAL.
    }
    let db = Lsm::open(Arc::clone(&storage), auto_options()).unwrap();
    // Every key carries its newest pre-crash value.
    for key in 0u64..200 {
        let newest = (0u64..470).rev().find(|i| i % 200 == key).unwrap();
        let expected = if key == 13 {
            None
        } else {
            Some(format!("v{newest}").into_bytes())
        };
        assert_eq!(get_vec(&db, key), expected, "key {key} after recovery");
    }
    // The manifest is consistent: every live table's blob exists and
    // every sstable blob is referenced by the manifest.
    let live_ids: Vec<u64> = db.live_tables().iter().map(|t| t.table_id).collect();
    for &id in &live_ids {
        assert!(storage.contains_blob(&Sstable::blob_name(id)), "table {id}");
    }
    for blob in storage.list_blobs() {
        if let Some(id) = Sstable::id_from_blob_name(&blob) {
            assert!(live_ids.contains(&id), "orphan {blob} survived reopen");
        }
    }
    // The store keeps compacting itself after recovery.
    for i in 0u64..300 {
        db.put_u64(i % 50, b"post-crash".to_vec()).unwrap();
    }
    db.flush().unwrap();
    assert!(db.live_tables().len() < 4, "policy active after recovery");
    assert_eq!(get_vec(&db, 13), Some(b"post-crash".to_vec()));
}

#[test]
fn auto_compaction_scan_is_identical_to_uncompacted_store() {
    // The same write stream through a self-compacting store and a
    // never-compacting store must read back identically.
    let write = |db: &Lsm| {
        for i in 0u64..900 {
            db.put_u64(i % 250, format!("x{i}").into_bytes()).unwrap();
            if i % 97 == 0 {
                db.delete_u64(i % 250).unwrap();
            }
        }
        db.flush().unwrap();
    };
    let compacting = Lsm::open_in_memory(
        LsmOptions::default()
            .memtable_capacity(40)
            .compaction_policy(CompactionPolicy::EveryNFlushes { flushes: 5 })
            .compaction_strategy(Strategy::BalanceTreeInput)
            .compaction_threads(3)
            .wal(false),
    )
    .unwrap();
    let plain =
        Lsm::open_in_memory(LsmOptions::default().memtable_capacity(40).wal(false)).unwrap();
    write(&compacting);
    write(&plain);
    assert!(compacting.stats().auto_compactions >= 2);
    assert!(compacting.live_tables().len() < plain.live_tables().len());
    assert_eq!(compacting.scan_all().unwrap(), plain.scan_all().unwrap());
}

#[test]
fn sstables_written_by_builder_are_readable_by_the_engine_storage() {
    // Cross-module check: a table built directly with SstableBuilder and
    // registered through storage is indistinguishable from a flushed one.
    let storage = MemoryStorage::new();
    let mut builder = SstableBuilder::new(77, 256, 10);
    for i in 0u64..500 {
        builder.add(&lsm_engine::Entry::put(
            key_from_u64(i),
            bytes::Bytes::from(format!("direct-{i}")),
            i,
        ));
    }
    let (data, meta) = builder.finish();
    assert_eq!(meta.entry_count, 500);
    storage.write_blob(&Sstable::blob_name(77), &data).unwrap();
    let table = Sstable::load(&storage, 77).unwrap();
    assert_eq!(table.entry_count(), 500);
    assert_eq!(
        table
            .get(&key_from_u64(123))
            .unwrap()
            .unwrap()
            .value
            .as_ref(),
        b"direct-123"
    );
}
