//! Model-based range-scan tests: under arbitrary sequences of puts,
//! overwrites, deletes, flushes and **policy-driven auto-compactions**,
//! every `Lsm::range` call must return exactly what a `BTreeMap` oracle
//! says — same keys, same values, same order — across multiple
//! compaction strategies. Scans spanning memtable + many sstables while
//! compaction reshapes the table set are the most bug-prone surface in
//! the engine; this battery is the lock on it.

use std::collections::BTreeMap;
use std::ops::Bound;

use compaction_core::Strategy as CompactionStrategy;
use lsm_engine::{key_from_u64, key_to_u64, CompactionPolicy, Lsm, LsmOptions};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Put(u64, Vec<u8>),
    Delete(u64),
    /// Range delete with *raw* bounds: inverted or empty intervals are
    /// generated on purpose (the engine treats them as no-ops).
    DeleteRange(u64, u64),
    Flush,
}

/// Key domain 0..240: small enough that overwrites, deletes, range
/// deletes and range windows collide constantly.
fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0u64..240, proptest::collection::vec(any::<u8>(), 0..12))
            .prop_map(|(k, v)| Op::Put(k, v)),
        2 => (0u64..240).prop_map(Op::Delete),
        1 => (0u64..250, 0u64..250).prop_map(|(a, b)| Op::DeleteRange(a, b)),
        1 => Just(Op::Flush),
    ]
}

/// Range windows, deliberately including empty, inverted-looking and
/// out-of-domain ones.
fn arb_window() -> impl Strategy<Value = (u64, u64)> {
    (0u64..260, 0u64..260)
}

fn collect_range(db: &Lsm, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>, String> {
    db.range_u64(lo..hi)
        .map(|item| {
            item.map(|(k, v)| (key_to_u64(&k).expect("8-byte key"), v.to_vec()))
                .map_err(|e| format!("scan error in {lo}..{hi}: {e}"))
        })
        .collect()
}

/// Applies `ops`, interleaving oracle updates, and checks every window
/// (plus the full unbounded scan) against the oracle both mid-sequence
/// and at the end.
fn check_strategy(
    strategy: CompactionStrategy,
    ops: &[Op],
    windows: &[(u64, u64)],
) -> Result<(), String> {
    let db = Lsm::open_in_memory(
        LsmOptions::default()
            .memtable_capacity(8)
            .compaction_policy(CompactionPolicy::Threshold { live_tables: 4 })
            .compaction_strategy(strategy)
            .compaction_threads(2)
            .block_size(128)
            .wal(false),
    )
    .map_err(|e| e.to_string())?;
    let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    // Pinned at the sequence midpoint: the snapshot handle and the
    // oracle state it must keep answering with, however the second half
    // of the sequence (and its flushes/compactions) churns the store.
    let mut pinned: Option<(lsm_engine::Snapshot, BTreeMap<u64, Vec<u8>>)> = None;

    let half = ops.len() / 2;
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Put(k, v) => {
                db.put_u64(*k, v.clone()).map_err(|e| e.to_string())?;
                model.insert(*k, v.clone());
            }
            Op::Delete(k) => {
                db.delete_u64(*k).map_err(|e| e.to_string())?;
                model.remove(k);
            }
            Op::DeleteRange(a, b) => {
                // Raw bounds on purpose: when a >= b the engine no-ops
                // and the oracle must not change either.
                db.delete_range(*a, *b).map_err(|e| e.to_string())?;
                if a < b {
                    model.retain(|k, _| !(*a..*b).contains(k));
                }
            }
            Op::Flush => {
                db.flush().map_err(|e| e.to_string())?;
            }
        }
        // Mid-sequence check: the scan must be right while the store is
        // in whatever half-flushed, half-compacted shape it is in now.
        // This is also where the snapshot pins its cut.
        if i + 1 == half {
            if let Some(&(a, b)) = windows.first() {
                let (lo, hi) = (a.min(b), a.max(b));
                let got = collect_range(&db, lo, hi)?;
                let expect: Vec<(u64, Vec<u8>)> =
                    model.range(lo..hi).map(|(k, v)| (*k, v.clone())).collect();
                prop_assert_eq!(got, expect, "mid-sequence window {}..{}", lo, hi);
            }
            pinned = Some((db.snapshot(), model.clone()));
        }
    }

    for &(a, b) in windows {
        let (lo, hi) = (a.min(b), a.max(b));
        let got = collect_range(&db, lo, hi)?;
        let expect: Vec<(u64, Vec<u8>)> =
            model.range(lo..hi).map(|(k, v)| (*k, v.clone())).collect();
        prop_assert_eq!(got, expect, "window {}..{}", lo, hi);
    }

    // The full scan (unbounded on both sides) equals the whole oracle.
    let full: (Bound<lsm_engine::Key>, Bound<lsm_engine::Key>) =
        (Bound::Unbounded, Bound::Unbounded);
    let all: Vec<(u64, Vec<u8>)> = db
        .range(full)
        .map(|item| {
            item.map(|(k, v)| (key_to_u64(&k).unwrap(), v.to_vec()))
                .map_err(|e| format!("full scan error: {e}"))
        })
        .collect::<Result<_, _>>()?;
    let expect: Vec<(u64, Vec<u8>)> = model.iter().map(|(k, v)| (*k, v.clone())).collect();
    prop_assert_eq!(all, expect, "full scan");

    // And it agrees with the independent scan_all implementation.
    let legacy: Vec<(u64, Vec<u8>)> = db
        .scan_all()
        .map_err(|e| e.to_string())?
        .into_iter()
        .map(|(k, v)| (key_to_u64(&k).unwrap(), v.to_vec()))
        .collect();
    let streamed: Vec<(u64, Vec<u8>)> = model.iter().map(|(k, v)| (*k, v.clone())).collect();
    prop_assert_eq!(legacy, streamed, "range(..) vs scan_all");

    // The snapshot pinned at the midpoint still answers with the
    // midpoint oracle — point reads, every window, and the full scan —
    // after the second half's writes, range deletes, flushes and
    // compactions all landed.
    if let Some((snap, frozen)) = pinned {
        for &(a, b) in windows {
            let (lo, hi) = (a.min(b), a.max(b));
            let got: Vec<(u64, Vec<u8>)> = snap
                .range_u64(lo..hi)
                .map(|item| {
                    item.map(|(k, v)| (key_to_u64(&k).unwrap(), v.to_vec()))
                        .map_err(|e| format!("snapshot scan error in {lo}..{hi}: {e}"))
                })
                .collect::<Result<_, _>>()?;
            let expect: Vec<(u64, Vec<u8>)> =
                frozen.range(lo..hi).map(|(k, v)| (*k, v.clone())).collect();
            prop_assert_eq!(got, expect, "snapshot window {}..{}", lo, hi);
        }
        let all: Vec<(u64, Vec<u8>)> = snap
            .scan_all()
            .map_err(|e| e.to_string())?
            .into_iter()
            .map(|(k, v)| (key_to_u64(&k).unwrap(), v.to_vec()))
            .collect();
        let expect: Vec<(u64, Vec<u8>)> = frozen.iter().map(|(k, v)| (*k, v.clone())).collect();
        prop_assert_eq!(all, expect, "snapshot full scan");
        for (k, v) in frozen.iter().take(8) {
            let got = snap.get(*k).map_err(|e| e.to_string())?;
            prop_assert_eq!(got.as_deref(), Some(v.as_slice()), "snapshot get({})", k);
        }
        drop(snap);
    }

    // With every pin released, the live scan still matches the live
    // oracle (pin release must not have perturbed anything).
    let after: Vec<(u64, Vec<u8>)> = db
        .scan_all()
        .map_err(|e| e.to_string())?
        .into_iter()
        .map(|(k, v)| (key_to_u64(&k).unwrap(), v.to_vec()))
        .collect();
    let live: Vec<(u64, Vec<u8>)> = model.iter().map(|(k, v)| (*k, v.clone())).collect();
    prop_assert_eq!(after, live, "live scan after pin release");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// 256 random cases under the paper's recommended BT(I) strategy.
    #[test]
    fn scan_matches_oracle_balance_tree(
        ops in proptest::collection::vec(arb_op(), 1..48),
        windows in proptest::collection::vec(arb_window(), 1..4),
    ) {
        check_strategy(CompactionStrategy::BalanceTreeInput, &ops, &windows)?;
    }

    /// 256 random cases under SMALLESTOUTPUT.
    #[test]
    fn scan_matches_oracle_smallest_output(
        ops in proptest::collection::vec(arb_op(), 1..48),
        windows in proptest::collection::vec(arb_window(), 1..4),
    ) {
        check_strategy(CompactionStrategy::SmallestOutput, &ops, &windows)?;
    }

    /// 256 random cases under the RANDOM baseline (the adversarial
    /// schedule shape: arbitrary merge orders).
    #[test]
    fn scan_matches_oracle_random(
        ops in proptest::collection::vec(arb_op(), 1..48),
        windows in proptest::collection::vec(arb_window(), 1..4),
    ) {
        check_strategy(CompactionStrategy::Random { seed: 11 }, &ops, &windows)?;
    }

    /// Degenerate windows (empty, single-key, whole-domain) behave.
    #[test]
    fn degenerate_windows_match_oracle(
        keys in proptest::collection::vec(0u64..64, 1..40),
        pivot in 0u64..64,
    ) {
        let db = Lsm::open_in_memory(
            LsmOptions::default().memtable_capacity(6).wal(false),
        ).unwrap();
        let mut model = BTreeMap::new();
        for (i, k) in keys.iter().enumerate() {
            db.put_u64(*k, vec![i as u8]).unwrap();
            model.insert(*k, vec![i as u8]);
        }
        // Empty window.
        prop_assert_eq!(collect_range(&db, pivot, pivot)?, vec![]);
        // Single-key window.
        let got = collect_range(&db, pivot, pivot + 1)?;
        let expect: Vec<(u64, Vec<u8>)> = model
            .range(pivot..pivot + 1)
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        prop_assert_eq!(got, expect);
        // Whole domain.
        let got = collect_range(&db, 0, 1 << 32)?;
        prop_assert_eq!(got.len(), model.len());
    }
}

/// The scan integration test the acceptance criteria name: a store whose
/// flushed tables cover disjoint key ranges must prune tables on a
/// narrow scan (`LsmStats::range_pruned_tables > 0`) and still return
/// exactly the right keys.
#[test]
fn narrow_scans_prune_disjoint_tables() {
    let db = Lsm::open_in_memory(
        LsmOptions::default()
            .memtable_capacity(50)
            .block_size(256)
            .wal(false),
    )
    .unwrap();
    // Sequential fill: each flushed table covers ~50 consecutive keys,
    // so the tables partition the key space.
    for i in 0..400u64 {
        db.put_u64(i, format!("v{i}").into_bytes()).unwrap();
    }
    db.flush().unwrap();
    assert!(db.live_tables().len() >= 8, "need many disjoint tables");

    let got: Vec<u64> = db
        .range_u64(100..140)
        .map(|r| key_to_u64(&r.unwrap().0).unwrap())
        .collect();
    assert_eq!(got, (100..140).collect::<Vec<u64>>());

    let stats = db.stats();
    assert_eq!(stats.range_scans, 1);
    assert!(
        stats.range_pruned_tables > 0,
        "a 40-key scan over {} disjoint tables pruned nothing",
        db.live_tables().len()
    );
    // At most the two boundary tables overlap the window; everything
    // else must have been pruned.
    assert!(
        stats.range_pruned_tables >= db.live_tables().len() as u64 - 2,
        "pruned only {} of {} tables",
        stats.range_pruned_tables,
        db.live_tables().len()
    );
}

/// Scans bypass the block cache by default; opting in via
/// `scan_fill_cache(true)` populates it.
#[test]
fn scans_bypass_the_block_cache_by_default() {
    let build = |fill: bool| {
        let db = Lsm::open_in_memory(
            LsmOptions::default()
                .memtable_capacity(100)
                .block_size(256)
                .scan_fill_cache(fill)
                .wal(false),
        )
        .unwrap();
        for i in 0..300u64 {
            db.put_u64(i, format!("v{i}").into_bytes()).unwrap();
        }
        db.flush().unwrap();
        assert_eq!(db.range_u64(0..300).count(), 300);
        db
    };
    let bypass = build(false);
    assert_eq!(
        bypass.block_cache_usage_bytes(),
        0,
        "default scan left blocks in the cache"
    );
    let filling = build(true);
    assert!(
        filling.block_cache_usage_bytes() > 0,
        "scan_fill_cache(true) cached nothing"
    );
}

/// Tombstones suppress keys in scans, including tombstones that only
/// exist in the memtable shadowing sstable data.
#[test]
fn tombstones_suppress_keys_across_layers() {
    let db = Lsm::open_in_memory(LsmOptions::default().memtable_capacity(10).wal(false)).unwrap();
    for i in 0..30u64 {
        db.put_u64(i, vec![1]).unwrap();
    }
    db.flush().unwrap();
    // Tombstones in the memtable only.
    db.delete_u64(5).unwrap();
    db.delete_u64(6).unwrap();
    let keys: Vec<u64> = db
        .range_u64(0..30)
        .map(|r| key_to_u64(&r.unwrap().0).unwrap())
        .collect();
    let expect: Vec<u64> = (0..30).filter(|k| *k != 5 && *k != 6).collect();
    assert_eq!(keys, expect);

    // Resurrection: a newer put over a flushed tombstone reappears.
    db.flush().unwrap();
    db.put_u64(5, vec![2]).unwrap();
    let got: Vec<(u64, Vec<u8>)> = db
        .range_u64(4..8)
        .map(|r| {
            let (k, v) = r.unwrap();
            (key_to_u64(&k).unwrap(), v.to_vec())
        })
        .collect();
    assert_eq!(got, vec![(4, vec![1]), (5, vec![2]), (7, vec![1])]);
}

/// A legacy v1-format table (no persisted min/max meta) participates in
/// scans end to end: the engine must always probe it rather than prune
/// it on its unknown range.
#[test]
fn scans_include_legacy_tables_with_unknown_ranges() {
    use lsm_engine::{ReadContext, ReadPathCounters, SstableReader};
    use std::sync::Arc;

    // The builder only emits v2 now, so exercise the always-probe rule
    // at the reader level over a v2 table whose meta exists, plus the
    // engine-level guarantee that nothing in range 0..N is ever lost.
    let db = Lsm::open_in_memory(
        LsmOptions::default()
            .memtable_capacity(25)
            .block_size(128)
            .wal(false),
    )
    .unwrap();
    for i in 0..100u64 {
        db.put_u64(i, vec![i as u8]).unwrap();
    }
    db.flush().unwrap();
    let metas = db.live_tables();
    assert!(metas.len() >= 3);
    let storage = db.storage();
    let cache = lsm_engine::BlockCache::new(1 << 20);
    let counters = ReadPathCounters::default();
    let ctx = ReadContext {
        block_cache: &cache,
        fill_cache: false,
        readahead_blocks: 1,
        counters: &counters,
    };
    // Every table reports overlap for a window inside its own range and
    // rejects a window entirely past the global max.
    for meta in &metas {
        let reader =
            SstableReader::open(Arc::clone(&storage), meta.table_id, Some(meta.encoded_len))
                .unwrap();
        let min = reader.min_key().expect("v2 meta").clone();
        assert!(reader.may_overlap(Bound::Included(min.as_ref()), Bound::Unbounded));
        let past = key_from_u64(10_000);
        assert!(!reader.may_overlap(Bound::Included(past.as_ref()), Bound::Unbounded));
        // Readers stream their own entries through the scan cursor path.
        let total: usize = reader.iter(ctx).count();
        assert_eq!(total as u64, reader.entry_count());
    }
}

