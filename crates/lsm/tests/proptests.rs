//! Property-based tests: the LSM store behaves like a model `BTreeMap`
//! under arbitrary sequences of puts, deletes, flushes and compactions.

use std::collections::BTreeMap;

use lsm_engine::{CompactionStep, Lsm, LsmOptions};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Put(u64, Vec<u8>),
    Delete(u64),
    Flush,
    MajorCompact,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0u64..200, proptest::collection::vec(any::<u8>(), 0..16))
            .prop_map(|(k, v)| Op::Put(k, v)),
        2 => (0u64..200).prop_map(Op::Delete),
        1 => Just(Op::Flush),
        1 => Just(Op::MajorCompact),
    ]
}

/// Builds a left-to-right (caterpillar) merge schedule over `n` tables.
fn caterpillar(n: usize) -> Vec<CompactionStep> {
    let mut steps = Vec::new();
    if n < 2 {
        return steps;
    }
    let mut acc = 0usize;
    for next in 1..n {
        let output_slot = n + steps.len();
        steps.push(CompactionStep::new(vec![acc, next]));
        acc = output_slot;
    }
    steps
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After any operation sequence, every key reads back exactly what a
    /// model BTreeMap says it should be, and scan_all matches the model.
    #[test]
    fn store_matches_model(ops in proptest::collection::vec(arb_op(), 1..120)) {
        let db = Lsm::open_in_memory(LsmOptions::default().memtable_capacity(8)).unwrap();
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();

        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    db.put_u64(*k, v.clone()).unwrap();
                    model.insert(*k, v.clone());
                }
                Op::Delete(k) => {
                    db.delete_u64(*k).unwrap();
                    model.remove(k);
                }
                Op::Flush => {
                    db.flush().unwrap();
                }
                Op::MajorCompact => {
                    db.flush().unwrap();
                    let n = db.live_tables().len();
                    let steps = caterpillar(n);
                    if !steps.is_empty() {
                        db.major_compact(&steps).unwrap();
                        prop_assert_eq!(db.live_tables().len(), 1);
                    }
                }
            }
        }

        for (k, v) in &model {
            let got = db.get_u64(*k).unwrap();
            prop_assert_eq!(got.as_deref(), Some(v.as_slice()), "key {}", k);
        }
        // Spot-check some absent keys.
        for k in 200..205u64 {
            prop_assert_eq!(db.get_u64(k).unwrap(), None);
        }
        // Full scan equals the model (keys and values).
        let scanned: Vec<(u64, Vec<u8>)> = db
            .scan_all()
            .unwrap()
            .into_iter()
            .map(|(k, v)| (lsm_engine::key_to_u64(&k).unwrap(), v.to_vec()))
            .collect();
        let expected: Vec<(u64, Vec<u8>)> =
            model.iter().map(|(k, v)| (*k, v.clone())).collect();
        prop_assert_eq!(scanned, expected);
    }

    /// Major compaction never changes the visible contents of the store.
    #[test]
    fn compaction_preserves_contents(
        keys in proptest::collection::vec(0u64..500, 1..300),
        deletes in proptest::collection::vec(0u64..500, 0..50),
    ) {
        let db = Lsm::open_in_memory(LsmOptions::default().memtable_capacity(16)).unwrap();
        for (i, k) in keys.iter().enumerate() {
            db.put_u64(*k, format!("v{i}").into_bytes()).unwrap();
        }
        for k in &deletes {
            db.delete_u64(*k).unwrap();
        }
        db.flush().unwrap();
        let before = db.scan_all().unwrap();

        let n = db.live_tables().len();
        let steps = caterpillar(n);
        if !steps.is_empty() {
            db.major_compact(&steps).unwrap();
        }
        let after = db.scan_all().unwrap();
        prop_assert_eq!(before, after);
        // After a major compaction a read probes at most one table.
        prop_assert!(db.live_tables().len() <= 1);
    }
}
