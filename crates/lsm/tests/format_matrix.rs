//! Cross-version sstable format matrix: one live table set holding a
//! legacy v1 blob (raw blocks, no meta), a v2 blob (raw blocks, min/max
//! meta), a v3 blob (compression envelopes, no range-del section) and a
//! current v4 blob (range-tombstone section), all registered through a
//! hand-persisted manifest and served by a real `Lsm`. Point reads,
//! range scans, newest-wins shadowing and range-tombstone suppression
//! must be version-blind, and compaction must merge the mix into v4
//! outputs.

use std::sync::Arc;

use bytes::Bytes;
use lsm_engine::test_support::{encode_v1_sstable, encode_v2_sstable, encode_v3_sstable};
use lsm_engine::{
    key_from_u64, key_to_u64, CompressionType, Entry, Lsm, LsmOptions, Manifest, ManifestEdit,
    MemoryStorage, RangeTombstone, Sstable, SstableBuilder, Storage, TableMeta,
};

/// The v4 footer magic (`LSMTABL4` little-endian), asserted against raw
/// blob bytes so the test cannot drift from what the builder writes.
const FOOTER_MAGIC_V4: u64 = 0x4C53_4D54_4142_4C34;

fn footer_magic(blob: &[u8]) -> u64 {
    // The footer ends with [magic u64 LE][crc u32 LE].
    let at = blob.len() - 12;
    u64::from_le_bytes(blob[at..at + 8].try_into().unwrap())
}

fn put(k: u64, v: &str, seqno: u64) -> Entry {
    Entry::put(key_from_u64(k), Bytes::from(v.to_owned()), seqno)
}

/// Stages one table blob + manifest entry and returns its id.
fn stage_table(
    storage: &MemoryStorage,
    manifest: &mut Manifest,
    data: Bytes,
    entries: &[Entry],
) -> u64 {
    let id = manifest.allocate_table_id();
    storage.write_blob(&Sstable::blob_name(id), &data).unwrap();
    let tombstones = entries.iter().filter(|e| e.is_tombstone()).count() as u64;
    manifest
        .apply(ManifestEdit::AddTable(TableMeta {
            table_id: id,
            entry_count: entries.len() as u64,
            encoded_len: data.len() as u64,
            tombstone_count: tombstones,
            range_tombstone_count: 0,
            max_seqno: entries.iter().map(|e| e.seqno).max().unwrap_or(0),
        }))
        .unwrap();
    id
}

/// Builds the mixed-version store: keys 0..60 in a v1 table (oldest),
/// 40..100 in a v2 table shadowing the overlap, 80..140 in a v3 table
/// shadowing again plus a point tombstone for key 10, and 120..180 in a
/// v4 table shadowing once more plus a range tombstone erasing
/// `[20, 30)` across every older layer.
fn mixed_store() -> (Lsm, Vec<(u64, String)>) {
    let storage = MemoryStorage::new();
    let mut manifest = Manifest::new();

    let v1_entries: Vec<Entry> = (0..60)
        .map(|k| put(k, &format!("v1-{k}"), manifest.allocate_seqno()))
        .collect();
    let v1_blob = encode_v1_sstable(&v1_entries, 128);
    stage_table(&storage, &mut manifest, v1_blob.clone(), &v1_entries);

    let v2_entries: Vec<Entry> = (40..100)
        .map(|k| put(k, &format!("v2-{k}"), manifest.allocate_seqno()))
        .collect();
    let v2_blob = encode_v2_sstable(&v2_entries, 128);
    stage_table(&storage, &mut manifest, v2_blob.clone(), &v2_entries);

    let mut v3_entries: Vec<Entry> = (80..140)
        .map(|k| put(k, &format!("v3-{k}"), manifest.allocate_seqno()))
        .collect();
    v3_entries.insert(
        0,
        Entry::tombstone(key_from_u64(10), manifest.allocate_seqno()),
    );
    v3_entries.sort_by(|a, b| a.key.cmp(&b.key));
    let v3_blob = encode_v3_sstable(&v3_entries, 128);
    stage_table(&storage, &mut manifest, v3_blob.clone(), &v3_entries);

    let v4_entries: Vec<Entry> = (120..180)
        .map(|k| put(k, &format!("v4-{k}"), manifest.allocate_seqno()))
        .collect();
    let range_del = RangeTombstone {
        start: key_from_u64(20),
        end: key_from_u64(30),
        seqno: manifest.allocate_seqno(),
    };
    let v4_id = manifest.allocate_table_id();
    let mut builder = SstableBuilder::new(v4_id, 128, 10).compression(CompressionType::Lz);
    for e in &v4_entries {
        builder.add(e);
    }
    builder.add_range_del(range_del);
    let (v4_blob, v4_meta) = builder.finish();
    assert_eq!(footer_magic(&v4_blob), FOOTER_MAGIC_V4, "builder emits v4");
    assert_ne!(footer_magic(&v1_blob), FOOTER_MAGIC_V4);
    assert_ne!(footer_magic(&v2_blob), FOOTER_MAGIC_V4);
    assert_ne!(footer_magic(&v3_blob), FOOTER_MAGIC_V4);
    storage
        .write_blob(&Sstable::blob_name(v4_id), &v4_blob)
        .unwrap();
    manifest
        .apply(ManifestEdit::AddTable(TableMeta {
            table_id: v4_id,
            entry_count: v4_meta.entry_count,
            encoded_len: v4_meta.encoded_len,
            tombstone_count: v4_meta.tombstone_count,
            range_tombstone_count: v4_meta.range_tombstone_count,
            max_seqno: v4_meta.max_seqno,
        }))
        .unwrap();

    manifest.persist(&storage).unwrap();
    let db = Lsm::open(
        Arc::new(storage),
        LsmOptions::default().memtable_capacity(32).wal(false),
    )
    .unwrap();
    assert_eq!(db.live_tables().len(), 4, "all four versions live");

    // The oracle: newest staging wins per key; key 10 is point-deleted,
    // keys 20..30 are range-deleted.
    let mut expect: Vec<(u64, String)> = Vec::new();
    for k in 0..180u64 {
        if k == 10 || (20..30).contains(&k) {
            continue;
        }
        let v = if k >= 120 {
            format!("v4-{k}")
        } else if k >= 80 {
            format!("v3-{k}")
        } else if k >= 40 {
            format!("v2-{k}")
        } else {
            format!("v1-{k}")
        };
        expect.push((k, v));
    }
    (db, expect)
}

#[test]
fn gets_and_scans_are_version_blind_across_v1_v2_v3_v4() {
    let (db, expect) = mixed_store();
    // Point reads: every key from every layer, shadowing respected.
    for (k, v) in &expect {
        assert_eq!(
            db.get_u64(*k).unwrap().as_deref(),
            Some(v.as_bytes()),
            "get({k}) across the version mix"
        );
    }
    assert_eq!(db.get_u64(10).unwrap(), None, "v3 tombstone shadows v1");
    for k in 20..30 {
        assert_eq!(db.get_u64(k).unwrap(), None, "v4 range delete erases {k}");
    }
    assert_eq!(db.get_u64(9_999).unwrap(), None);

    // A full scan and a window spanning all four version boundaries.
    let scanned: Vec<(u64, String)> = db
        .range_u64(0..1_000)
        .map(|r| {
            let (k, v) = r.unwrap();
            (
                key_to_u64(&k).unwrap(),
                String::from_utf8(v.to_vec()).unwrap(),
            )
        })
        .collect();
    assert_eq!(scanned, expect, "full scan over the version mix");
    let window: Vec<u64> = db
        .range_u64(35..85)
        .map(|r| key_to_u64(&r.unwrap().0).unwrap())
        .collect();
    assert_eq!(window, (35..85).collect::<Vec<u64>>());
    // A window straddling the range-deleted interval sees the gap.
    let gap: Vec<u64> = db
        .range_u64(15..35)
        .map(|r| key_to_u64(&r.unwrap().0).unwrap())
        .collect();
    let expect_gap: Vec<u64> = (15..35).filter(|k| !(20..30).contains(k)).collect();
    assert_eq!(gap, expect_gap);
}

#[test]
fn compaction_merges_mixed_versions_into_v4_outputs() {
    let (db, expect) = mixed_store();
    let run = db.auto_compact().unwrap().expect("four tables to merge");
    assert!(run.outcome.merge_ops >= 1);

    // Every surviving table is v4, checked on the raw blob bytes.
    let storage = db.storage();
    for meta in db.live_tables() {
        let blob = storage
            .read_blob(&Sstable::blob_name(meta.table_id))
            .unwrap();
        assert_eq!(
            footer_magic(&blob),
            FOOTER_MAGIC_V4,
            "compaction output table {} is not v4",
            meta.table_id
        );
    }

    // And the merge lost nothing: same oracle, post-compaction.
    let scanned: Vec<(u64, String)> = db
        .range_u64(0..1_000)
        .map(|r| {
            let (k, v) = r.unwrap();
            (
                key_to_u64(&k).unwrap(),
                String::from_utf8(v.to_vec()).unwrap(),
            )
        })
        .collect();
    assert_eq!(scanned, expect, "scan after merging the version mix");
    assert_eq!(db.get_u64(10).unwrap(), None, "tombstone still effective");
    for k in 20..30 {
        assert_eq!(db.get_u64(k).unwrap(), None, "range delete survives merge");
    }
}
