//! Locks down the maintenance event trace: the exact lifecycle
//! sequences the engine promises for flushes and compactions, with the
//! generation/cost fields a trace consumer correlates on.
//!
//! The background-flush test uses [`GatedStorage`] to hold the flush
//! thread mid-lifecycle, proving events are emitted at the real
//! transition points rather than batched after the fact.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lsm_engine::test_support::GatedStorage;
use lsm_engine::{Event, EventKind, Lsm, LsmOptions, Storage};

/// Polls `cond` until it holds or `deadline` elapses.
fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

/// All events recorded so far, oldest first.
fn drain(db: &Lsm) -> Vec<Event> {
    let drained = db.events().since(0, usize::MAX);
    assert_eq!(drained.dropped, 0, "ring overflowed during the test");
    drained.events
}

/// The events carrying a `generation` field equal to `generation`.
fn generation_events(events: &[Event], generation: u64) -> Vec<EventKind> {
    events
        .iter()
        .filter(|e| e.field("generation") == Some(generation))
        .map(|e| e.kind)
        .collect()
}

#[test]
fn background_flush_traces_exact_lifecycle_per_generation() {
    let gated = Arc::new(GatedStorage::new());
    gated.close_gate();
    let db = Lsm::open(
        Arc::clone(&gated) as Arc<dyn Storage>,
        LsmOptions::default()
            .memtable_capacity(4)
            .background_maintenance(true)
            .slowdown_trigger(100)
            .stop_trigger(100)
            .frozen_queue_limit(100),
    )
    .unwrap();

    // Capacity 4 ⇒ generations 0 and 1 freeze after keys 3 and 7.
    for i in 0..10u64 {
        db.put_u64(i, format!("v{i}").into_bytes()).unwrap();
    }
    assert!(db.frozen_queue_depth() >= 2);

    // With the flush thread parked on the storage gate, the freezes are
    // traced but no generation has published or retired anything.
    let while_gated = drain(&db);
    let freezes = while_gated
        .iter()
        .filter(|e| e.kind == EventKind::MemtableFreeze)
        .count();
    assert!(freezes >= 2, "one freeze event per frozen generation");
    assert!(
        !while_gated.iter().any(|e| matches!(
            e.kind,
            EventKind::FlushPublish | EventKind::WalSegmentRetire
        )),
        "nothing publishes or retires while the sstable write is gated"
    );

    gated.open_gate();
    db.flush().unwrap();
    assert!(
        wait_until(Duration::from_secs(2), || db.frozen_queue_depth() == 0),
        "flush drained the frozen queue"
    );

    // Every frozen generation now shows the exact four-step lifecycle,
    // in order, under its own generation id.
    let events = drain(&db);
    for generation in 0..2u64 {
        assert_eq!(
            generation_events(&events, generation),
            vec![
                EventKind::MemtableFreeze,
                EventKind::FlushStart,
                EventKind::FlushPublish,
                EventKind::WalSegmentRetire,
            ],
            "generation {generation} lifecycle"
        );
    }

    // The freeze events carried the queue state at freeze time.
    let first_freeze = events
        .iter()
        .find(|e| e.kind == EventKind::MemtableFreeze)
        .unwrap();
    assert_eq!(first_freeze.field("entries"), Some(4));
    assert_eq!(first_freeze.field("queue_depth"), Some(1));

    // Flush durations landed in the engine histogram.
    assert!(db.metrics().flush.count() >= 2);
}

#[test]
fn inline_compaction_traces_planned_waves_flip_and_retire_with_costs() {
    let db = Lsm::open_in_memory(
        LsmOptions::default()
            .memtable_capacity(10)
            .wal(false)
            .compaction_threads(2),
    )
    .unwrap();
    for i in 0..40u64 {
        db.put_u64(i % 20, format!("v{i}").into_bytes()).unwrap();
    }
    db.flush().unwrap();
    assert!(db.live_tables().len() >= 2);

    let run = db.auto_compact().unwrap().expect("tables to merge");
    assert_eq!(db.live_tables().len(), 1);

    let compaction: Vec<Event> = drain(&db)
        .into_iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::CompactionPlanned
                    | EventKind::CompactionWaveStart
                    | EventKind::CompactionManifestFlip
                    | EventKind::CompactionInputsRetired
            )
        })
        .collect();

    // Exact shape: one plan, its waves, one flip, one retire — in order.
    let planned = &compaction[0];
    assert_eq!(planned.kind, EventKind::CompactionPlanned);
    let waves = planned.field("waves").unwrap() as usize;
    let steps = planned.field("steps").unwrap() as usize;
    assert!(waves >= 1 && steps >= 1);
    let kinds: Vec<EventKind> = compaction.iter().map(|e| e.kind).collect();
    let mut expected = vec![EventKind::CompactionPlanned];
    expected.extend(std::iter::repeat_n(EventKind::CompactionWaveStart, waves));
    expected.push(EventKind::CompactionManifestFlip);
    expected.push(EventKind::CompactionInputsRetired);
    assert_eq!(kinds, expected, "planned → waves → flip → retired");

    // Predicted and measured costs are non-zero and stamped throughout.
    let predicted = planned.field("predicted_cost").unwrap();
    assert!(predicted > 0, "planner predicted a real cost");
    assert_eq!(predicted, run.plan.predicted_cost_actual());
    let flip = &compaction[kinds.len() - 2];
    assert_eq!(flip.kind, EventKind::CompactionManifestFlip);
    assert_eq!(flip.field("predicted_cost"), Some(predicted));
    let measured = flip.field("measured_cost").unwrap();
    assert!(measured > 0, "merge measured a real cost");
    assert_eq!(measured, run.outcome.entry_cost());
    let retired = compaction.last().unwrap();
    assert_eq!(retired.field("measured_cost"), Some(measured));
    assert!(retired.field("inputs").unwrap() >= 2);

    // The wave hook stamped every wave with the plan's prediction, and
    // every merge step landed in the step histogram.
    for event in compaction
        .iter()
        .filter(|e| e.kind == EventKind::CompactionWaveStart)
    {
        assert_eq!(event.field("predicted_cost"), Some(predicted));
    }
    assert_eq!(db.metrics().compaction_step.count(), steps as u64);

    // Inline compaction is write-path stall: the unified stall source
    // saw it.
    assert!(db.stats().compaction_stall > Duration::ZERO);
}
