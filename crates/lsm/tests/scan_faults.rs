//! Fault-injection scan tests: the two nastiest schedules a range scan
//! can meet.
//!
//! 1. A compaction's **manifest flip lands mid-iteration**: the scan
//!    started against the pre-flip table set, the flip retires every
//!    table it pinned and deletes their blobs, and the scan must still
//!    return exactly the right keys (it transparently resumes from the
//!    post-flip snapshot). A gated storage backend freezes the
//!    compaction at its first output write so the interleaving is
//!    deterministic, not lucky.
//! 2. **Crash and reopen**: scans after WAL replay must see every
//!    acknowledged write — including batch writes and tombstones that
//!    never reached an sstable.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use lsm_engine::test_support::GatedStorage;
use lsm_engine::{
    key_to_u64, CompactionPolicy, Lsm, LsmOptions, MemoryStorage, Storage, WriteBatch,
};

#[test]
fn scan_survives_a_manifest_flip_landing_mid_iteration() {
    const KEYS: u64 = 400;
    let storage = Arc::new(GatedStorage::new());
    let db = Arc::new(
        Lsm::open(
            storage.clone() as Arc<dyn Storage>,
            LsmOptions::default()
                .memtable_capacity(50)
                .block_size(256)
                .compaction_threads(2)
                .wal(false),
        )
        .unwrap(),
    );
    for i in 0..KEYS {
        db.put_u64(i, format!("value-{i}").into_bytes()).unwrap();
    }
    db.flush().unwrap();
    assert!(db.live_tables().len() >= 8);
    let pre_flip_ids: Vec<u64> = db.live_tables().iter().map(|t| t.table_id).collect();

    // Start the scan against the pre-compaction table set and pull a
    // prefix out of it.
    let mut scan = db.range_u64(0..KEYS);
    let mut collected: Vec<(u64, Vec<u8>)> = Vec::new();
    for _ in 0..100 {
        let (k, v) = scan.next().expect("scan prefix").unwrap();
        collected.push((key_to_u64(&k).unwrap(), v.to_vec()));
    }

    // Freeze the compaction at its first output write, on another
    // thread (it holds the engine's write mutex the whole time).
    storage.close_gate();
    let compaction_done = Arc::new(AtomicBool::new(false));
    let compactor = {
        let db = Arc::clone(&db);
        let done = Arc::clone(&compaction_done);
        std::thread::spawn(move || {
            let run = db.auto_compact().unwrap().expect("tables to merge");
            done.store(true, Ordering::SeqCst);
            run
        })
    };

    // While the compaction is frozen mid-write, the scan keeps
    // streaming from its pinned pre-flip snapshot.
    for _ in 0..100 {
        let (k, v) = scan.next().expect("scan mid-compaction").unwrap();
        collected.push((key_to_u64(&k).unwrap(), v.to_vec()));
    }
    assert!(
        !compaction_done.load(Ordering::SeqCst),
        "compaction finished before the gate opened — the interleaving \
         proved nothing"
    );

    // Let the flip land: manifest swapped, every pinned input blob
    // deleted. The scan's remaining tables vanish underneath it.
    storage.open_gate();
    compactor.join().unwrap();
    let post_ids: Vec<u64> = db.live_tables().iter().map(|t| t.table_id).collect();
    assert!(pre_flip_ids.iter().all(|id| !post_ids.contains(id)));
    let merged_len: u64 = db.live_tables().iter().map(|t| t.encoded_len).sum();
    let mid_flip_stats = db.stats();

    // The scan must finish correctly anyway (retry onto the post-flip
    // snapshot, resuming after the last returned key).
    for item in scan {
        let (k, v) = item.expect("scan after flip");
        collected.push((key_to_u64(&k).unwrap(), v.to_vec()));
    }
    assert_eq!(collected.len() as u64, KEYS, "keys lost or duplicated");
    for (i, (k, v)) in collected.iter().enumerate() {
        assert_eq!(*k, i as u64, "order broken at position {i}");
        assert_eq!(v, format!("value-{k}").as_bytes(), "wrong value for {k}");
    }

    // The rebuilt scan (and its readahead spans) must resume from the
    // block covering the last returned key, not refetch the half of
    // the keyspace it already consumed: the bytes it reads after the
    // flip stay well below the whole merged table. A restart-from-zero
    // would read essentially every data block again.
    let resumed_bytes = db.stats().data_block_read_bytes - mid_flip_stats.data_block_read_bytes;
    assert!(
        resumed_bytes < merged_len * 3 / 4,
        "post-flip resume re-read {resumed_bytes} of {merged_len} table \
         bytes — double-counting consumed blocks"
    );
}

#[test]
fn concurrent_scans_stay_correct_under_auto_compaction_churn() {
    // Non-gated variant: scans race real Threshold compactions driven
    // by a writer thread. Every scan must return a dense, sorted,
    // gap-free key sequence (values may legitimately be any version the
    // writer has already made visible at that key).
    let db = Arc::new(
        Lsm::open_in_memory(
            LsmOptions::default()
                .memtable_capacity(32)
                .compaction_policy(CompactionPolicy::Threshold { live_tables: 4 })
                .compaction_threads(2)
                .block_size(256)
                .wal(false),
        )
        .unwrap(),
    );
    const KEYS: u64 = 256;
    for i in 0..KEYS {
        db.put_u64(i, 0u64.to_be_bytes().to_vec()).unwrap();
    }
    db.flush().unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                for version in 1u64..=30 {
                    for i in 0..KEYS {
                        db.put_u64(i, version.to_be_bytes().to_vec()).unwrap();
                    }
                }
                stop.store(true, Ordering::SeqCst);
            });
        }
        for reader in 0..2 {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut scans = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let keys: Vec<u64> = db
                        .range_u64(0..KEYS)
                        .map(|r| key_to_u64(&r.unwrap().0).unwrap())
                        .collect();
                    assert_eq!(
                        keys,
                        (0..KEYS).collect::<Vec<u64>>(),
                        "reader {reader}: scan lost or reordered keys (scan #{scans})"
                    );
                    scans += 1;
                }
                assert!(scans > 0);
            });
        }
    });
    assert!(
        db.stats().auto_compactions >= 1,
        "the policy never fired — the scans were not racing compaction"
    );
    assert!(db.stats().range_scans >= 2);
}

#[test]
fn scans_after_wal_replay_see_every_acked_write() {
    let storage: Arc<dyn Storage> = Arc::new(MemoryStorage::new());
    {
        let db = Lsm::open(
            Arc::clone(&storage),
            LsmOptions::default().memtable_capacity(40),
        )
        .unwrap();
        // Some writes reach sstables...
        for i in 0..100u64 {
            db.put_u64(i, format!("flushed-{i}").into_bytes()).unwrap();
        }
        db.flush().unwrap();
        // ...some only the WAL: singles, a batch, overwrites, deletes.
        for i in 100..130u64 {
            db.put_u64(i, format!("walled-{i}").into_bytes()).unwrap();
        }
        let mut batch = WriteBatch::new();
        batch
            .put_u64(130, b"batched-130".to_vec())
            .put_u64(131, b"batched-131".to_vec())
            .delete_u64(5)
            .put_u64(50, b"rewritten-50".to_vec());
        db.write_batch(batch).unwrap();
        db.delete_u64(107).unwrap();
        // Crash: dropped with a dirty memtable; acked data is WAL-only.
    }

    let reopened = Lsm::open(storage, LsmOptions::default().memtable_capacity(40)).unwrap();
    let got: Vec<(u64, Vec<u8>)> = reopened
        .range_u64(0..1_000)
        .map(|r| {
            let (k, v) = r.unwrap();
            (key_to_u64(&k).unwrap(), v.to_vec())
        })
        .collect();

    let mut expect: Vec<(u64, Vec<u8>)> = Vec::new();
    for i in 0..100u64 {
        if i == 5 || i == 107 {
            continue; // deleted
        }
        if i == 50 {
            expect.push((50, b"rewritten-50".to_vec()));
        } else {
            expect.push((i, format!("flushed-{i}").into_bytes()));
        }
    }
    for i in 100..130u64 {
        if i == 107 {
            continue;
        }
        expect.push((i, format!("walled-{i}").into_bytes()));
    }
    expect.push((130, b"batched-130".to_vec()));
    expect.push((131, b"batched-131".to_vec()));
    assert_eq!(got, expect, "post-replay scan diverges from acked state");

    // A bounded window over the replayed region agrees too.
    let window: Vec<u64> = reopened
        .range_u64(105..112)
        .map(|r| key_to_u64(&r.unwrap().0).unwrap())
        .collect();
    assert_eq!(window, vec![105, 106, 108, 109, 110, 111]);
}
