//! Read-path integration tests: lazy readers, cache correctness and
//! invalidation, bloom-negative zero-I/O probes, and reads proceeding
//! concurrently with (and during) compaction.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use lsm_engine::test_support::GatedStorage;
use lsm_engine::{CompactionPolicy, Lsm, LsmOptions, MemoryStorage, Storage};

fn get_vec(db: &Lsm, key: u64) -> Option<Vec<u8>> {
    db.get_u64(key).unwrap().map(|v| v.to_vec())
}

/// A multi-table store with no memtable residue, so every read must go
/// through sstables.
fn multi_table_store(options: LsmOptions) -> Lsm {
    let db = Lsm::open_in_memory(options).unwrap();
    for i in 0..400u64 {
        db.put_u64(i, format!("value-{i}").into_bytes()).unwrap();
    }
    db.flush().unwrap();
    assert_eq!(db.memtable_len(), 0);
    assert!(db.live_tables().len() >= 4, "need a multi-table store");
    db
}

#[test]
fn warm_point_read_loads_at_most_one_data_block() {
    let db = multi_table_store(
        LsmOptions::default()
            .memtable_capacity(100)
            .block_size(256)
            .wal(false),
    );

    // Cold read: opens readers lazily; per table probed it may fetch at
    // most one data block.
    let before = db.stats();
    assert_eq!(get_vec(&db, 250), Some(b"value-250".to_vec()));
    let cold = db.stats();
    let probed = cold.tables_probed - before.tables_probed;
    assert!(
        cold.data_block_reads - before.data_block_reads <= probed,
        "more than one block per probed table"
    );

    // Warm read of the same key: zero data blocks, zero storage bytes.
    let bytes_before = db.storage().bytes_read();
    assert_eq!(get_vec(&db, 250), Some(b"value-250".to_vec()));
    let warm = db.stats();
    assert_eq!(
        warm.data_block_reads, cold.data_block_reads,
        "warm read hit storage for a block"
    );
    assert_eq!(
        db.storage().bytes_read(),
        bytes_before,
        "warm read performed storage I/O"
    );

    // A different key in an already-cached block's table: at most one
    // new block fetch per probed table, and never a full-table read.
    let table_bytes: u64 = db.live_tables().iter().map(|t| t.encoded_len).sum();
    let bytes_before = db.storage().bytes_read();
    assert_eq!(get_vec(&db, 10), Some(b"value-10".to_vec()));
    let fetched = db.storage().bytes_read() - bytes_before;
    assert!(
        fetched < table_bytes / 4,
        "a single get read {fetched} of {table_bytes} total table bytes"
    );
}

#[test]
fn bloom_negative_probes_read_zero_data_blocks() {
    // Generous bloom budget so absent-key probes are (deterministically,
    // for this fixed data set) rejected without touching a block.
    let db = multi_table_store(
        LsmOptions::default()
            .memtable_capacity(100)
            .bloom_bits_per_key(16)
            .wal(false),
    );
    let before = db.stats();
    let absent = 1_000_000u64..1_000_050;
    for key in absent.clone() {
        assert_eq!(get_vec(&db, key), None);
    }
    let after = db.stats();
    let probes = after.tables_probed - before.tables_probed;
    assert_eq!(
        probes,
        50 * db.live_tables().len() as u64,
        "every absent get probes every table"
    );
    assert!(
        after.bloom_negative_probes - before.bloom_negative_probes >= probes * 9 / 10,
        "bloom/range rejections must dominate absent-key probes"
    );
    assert_eq!(
        after.data_block_reads, before.data_block_reads,
        "absent keys far outside the key range must read zero data blocks"
    );
}

#[test]
fn block_cache_evicts_under_a_tiny_budget_and_stays_correct() {
    let db = Lsm::open_in_memory(
        LsmOptions::default()
            .memtable_capacity(100)
            .block_size(256)
            // A budget far smaller than the data: constant eviction.
            .block_cache_capacity_bytes(4 * 1024)
            .wal(false),
    )
    .unwrap();
    for i in 0..600u64 {
        db.put_u64(i, format!("v-{i}").into_bytes()).unwrap();
    }
    db.flush().unwrap();
    // Sweep everything twice: the second pass cannot fit in cache, so
    // evictions must have happened — and every value stays correct.
    for _ in 0..2 {
        for i in 0..600u64 {
            assert_eq!(get_vec(&db, i), Some(format!("v-{i}").into_bytes()));
        }
    }
    let stats = db.stats();
    assert!(stats.block_cache_evictions > 0, "tiny budget must evict");
    // The budget may overshoot by at most one block per cache shard
    // (oversized hot blocks stay resident). Blocks are charged at their
    // *decoded* in-memory footprint — struct overhead triples a
    // 256-byte encoded block, but it stays well under 2 KiB — so the
    // usage must stay within budget + 8 decoded blocks of slack.
    assert!(
        db.block_cache_usage_bytes() <= 4 * 1024 + 8 * 2048,
        "usage {} exceeds the byte budget plus per-shard slack",
        db.block_cache_usage_bytes()
    );
    // Honest accounting cuts the other way too: the decoded blocks the
    // cache holds must be charged at no less than their stored length
    // (compression makes stored ≤ logical, and the cache stores the
    // logical form).
    assert!(
        db.block_cache_usage_bytes() > 0,
        "the sweep left nothing cached"
    );
    // A sequential sweep is LRU's worst case, but a hot key re-read
    // back-to-back must hit even under eviction pressure.
    assert_eq!(get_vec(&db, 3), Some(b"v-3".to_vec()));
    let hits_before = db.stats().block_cache_hits;
    assert_eq!(get_vec(&db, 3), Some(b"v-3".to_vec()));
    assert!(
        db.stats().block_cache_hits > hits_before,
        "hot re-read missed the cache"
    );
}

#[test]
fn table_cache_bounds_open_readers() {
    let db = Lsm::open_in_memory(
        LsmOptions::default()
            .memtable_capacity(10)
            .table_cache_capacity(8)
            .wal(false),
    )
    .unwrap();
    for i in 0..300u64 {
        db.put_u64(i, vec![i as u8]).unwrap();
    }
    db.flush().unwrap();
    assert!(db.live_tables().len() > 8, "more tables than cache slots");
    for i in 0..300u64 {
        assert_eq!(get_vec(&db, i), Some(vec![i as u8]));
    }
    let stats = db.stats();
    assert!(
        db.table_cache_len() <= 8,
        "table cache holds {} readers, capacity 8",
        db.table_cache_len()
    );
    assert!(stats.table_cache_evictions > 0);
    assert!(stats.table_cache_hits > 0);
}

#[test]
fn compaction_invalidates_cached_tables_and_blocks() {
    let db = multi_table_store(
        LsmOptions::default()
            .memtable_capacity(100)
            .block_size(256)
            .wal(false),
    );
    // Warm both caches over every table.
    for i in 0..400u64 {
        assert!(get_vec(&db, i).is_some());
    }
    assert!(db.table_cache_len() >= db.live_tables().len());
    assert!(db.block_cache_usage_bytes() > 0);
    let old_ids: Vec<u64> = db.live_tables().iter().map(|t| t.table_id).collect();

    let run = db.auto_compact().unwrap().expect("tables to merge");
    assert!(run.outcome.merge_ops >= 1);
    let new_ids: Vec<u64> = db.live_tables().iter().map(|t| t.table_id).collect();
    assert!(old_ids.iter().all(|id| !new_ids.contains(id)));

    // Retired readers were purged at the manifest flip: the only cached
    // readers now (before any new read) are none; after reads, only the
    // new table's.
    assert_eq!(db.table_cache_len(), 0, "retired readers purged");
    assert_eq!(db.block_cache_usage_bytes(), 0, "retired blocks purged");
    for i in 0..400u64 {
        assert_eq!(get_vec(&db, i), Some(format!("value-{i}").into_bytes()));
    }
    assert_eq!(db.table_cache_len(), new_ids.len());
}

#[test]
fn gets_are_served_while_a_compaction_is_frozen_mid_write() {
    let storage = Arc::new(GatedStorage::new());
    let db = Arc::new(
        Lsm::open(
            storage.clone() as Arc<dyn Storage>,
            LsmOptions::default()
                .memtable_capacity(50)
                .compaction_threads(2)
                .wal(false),
        )
        .unwrap(),
    );
    for i in 0..300u64 {
        db.put_u64(i, format!("value-{i}").into_bytes()).unwrap();
    }
    db.flush().unwrap();
    assert!(db.live_tables().len() >= 2);

    // Freeze the next compaction at its first output write.
    storage.close_gate();
    let compaction_done = Arc::new(AtomicBool::new(false));
    let compactor = {
        let db = Arc::clone(&db);
        let done = Arc::clone(&compaction_done);
        std::thread::spawn(move || {
            let run = db.auto_compact().unwrap().expect("tables to merge");
            done.store(true, Ordering::SeqCst);
            run
        })
    };

    // The compactor is (or will be) blocked inside the gated write while
    // holding the engine's write mutex. Point reads must not care.
    for round in 0..3 {
        for i in (0..300u64).step_by(7) {
            assert_eq!(
                get_vec(&db, i),
                Some(format!("value-{i}").into_bytes()),
                "round {round}: get blocked or failed during compaction"
            );
        }
    }
    assert!(
        !compaction_done.load(Ordering::SeqCst),
        "compaction finished before the gate opened — the reads above \
         proved nothing"
    );

    storage.open_gate();
    let run = compactor.join().unwrap();
    assert!(run.outcome.merge_ops >= 1);
    assert_eq!(db.live_tables().len(), 1);
    for i in 0..300u64 {
        assert_eq!(get_vec(&db, i), Some(format!("value-{i}").into_bytes()));
    }
}

#[test]
fn pressure_reports_the_in_progress_compaction_without_the_write_lock() {
    let storage = Arc::new(GatedStorage::new());
    let db = Arc::new(
        Lsm::open(
            storage.clone() as Arc<dyn Storage>,
            LsmOptions::default()
                .memtable_capacity(50)
                .compaction_policy(CompactionPolicy::Threshold { live_tables: 100 })
                .wal(false),
        )
        .unwrap(),
    );
    for i in 0..300u64 {
        db.put_u64(i, format!("value-{i}").into_bytes()).unwrap();
    }
    db.flush().unwrap();
    let live = db.live_tables().len();
    assert!(live >= 2);

    // Idle: nothing running, no stall, counts reported.
    let idle = db.pressure();
    assert!(!idle.compaction_running);
    assert_eq!(idle.current_stall, Duration::ZERO);
    assert_eq!(idle.live_tables, live);
    assert_eq!(idle.memtable_capacity, 50);
    assert!(idle.memtable_fill() >= 0.0 && idle.memtable_fill() <= 1.0);
    assert_eq!(
        idle.compaction_backlog, 0,
        "trigger of 100 is nowhere near: no backlog"
    );

    // Freeze a compaction mid-write; the compactor holds the write
    // mutex for the whole (frozen) run.
    storage.close_gate();
    let compactor = {
        let db = Arc::clone(&db);
        std::thread::spawn(move || db.auto_compact().unwrap().expect("tables to merge"))
    };
    // The stamp is set before planning; wait for it to appear.
    let mut observed = db.pressure();
    for _ in 0..2_000 {
        if observed.compaction_running {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
        observed = db.pressure();
    }
    assert!(observed.compaction_running, "stamp never observed");
    std::thread::sleep(Duration::from_millis(5));
    let later = db.pressure();
    assert!(later.compaction_running);
    assert!(
        later.current_stall > observed.current_stall,
        "in-progress stall must grow while the compaction is frozen"
    );

    storage.open_gate();
    compactor.join().unwrap();
    let after = db.pressure();
    assert!(!after.compaction_running);
    assert_eq!(after.current_stall, Duration::ZERO);
    assert!(
        after.total_stall > Duration::ZERO,
        "completed stall folded into the total"
    );
    assert_eq!(after.live_tables, 1);
}

#[test]
fn pressure_counts_tables_at_or_past_the_threshold_trigger_as_backlog() {
    let storage: Arc<dyn Storage> = Arc::new(MemoryStorage::new());
    {
        // Build 5 live tables under Manual policy (nothing auto-fires).
        let db = Lsm::open(
            Arc::clone(&storage),
            LsmOptions::default().memtable_capacity(10).wal(false),
        )
        .unwrap();
        for batch in 0..5u64 {
            for i in 0..10u64 {
                db.put_u64(batch * 100 + i, b"x".to_vec()).unwrap();
            }
            db.flush().unwrap();
        }
        assert_eq!(db.live_tables().len(), 5);
        assert_eq!(
            db.pressure().compaction_backlog,
            0,
            "manual policy: no debt"
        );
    }
    // Reopen with a Threshold trigger the table count already exceeds:
    // three tables sit at or past the trigger (3, 4 and 5).
    let db = Lsm::open(
        storage,
        LsmOptions::default()
            .memtable_capacity(10)
            .compaction_policy(CompactionPolicy::Threshold { live_tables: 3 })
            .wal(false),
    )
    .unwrap();
    assert_eq!(db.live_tables().len(), 5);
    assert_eq!(db.pressure().compaction_backlog, 3);
}

#[test]
fn concurrent_readers_stay_consistent_under_auto_compaction() {
    let db = Arc::new(
        Lsm::open_in_memory(
            LsmOptions::default()
                .memtable_capacity(32)
                .compaction_policy(CompactionPolicy::Threshold { live_tables: 4 })
                .compaction_threads(2)
                .block_size(256)
                .wal(false),
        )
        .unwrap(),
    );
    const KEYS: u64 = 128;
    for i in 0..KEYS {
        db.put_u64(i, 0u64.to_be_bytes().to_vec()).unwrap();
    }
    db.flush().unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        // Writer: monotonically increasing versions; flushes keep firing
        // Threshold compactions throughout.
        {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                for version in 1u64..=40 {
                    for i in 0..KEYS {
                        db.put_u64(i, version.to_be_bytes().to_vec()).unwrap();
                    }
                }
                stop.store(true, Ordering::SeqCst);
            });
        }
        // Readers: every observed value must be a valid version, and
        // per-key versions must never go backwards (monotonic reads per
        // reader are implied by publish-before-clear plus newest-first
        // probing; we assert validity and no lost keys).
        for reader in 0..3 {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut last_seen = vec![0u64; KEYS as usize];
                while !stop.load(Ordering::SeqCst) {
                    for i in 0..KEYS {
                        let raw = db.get_u64(i).unwrap().unwrap_or_else(|| {
                            panic!("reader {reader}: key {i} vanished mid-compaction")
                        });
                        let version = u64::from_be_bytes(raw.as_ref().try_into().unwrap());
                        assert!(version <= 40, "impossible version {version}");
                        assert!(
                            version >= last_seen[i as usize],
                            "reader {reader}: key {i} went backwards \
                             ({} -> {version})",
                            last_seen[i as usize]
                        );
                        last_seen[i as usize] = version;
                    }
                }
            });
        }
    });
    assert!(
        db.stats().auto_compactions >= 1,
        "the policy never fired — the readers were not racing compaction"
    );
    for i in 0..KEYS {
        let raw = db.get_u64(i).unwrap().unwrap();
        assert_eq!(u64::from_be_bytes(raw.as_ref().try_into().unwrap()), 40);
    }
}
