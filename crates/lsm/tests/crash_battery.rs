//! The crash-point / corruption fault-injection battery.
//!
//! Every scenario scripts a death at an exact write offset (or flips a
//! byte of a chosen blob), reopens whatever survived, and asserts the
//! recovery contract: **every acknowledged write is recovered, or the
//! open fails with an explicit [`Error::Corruption`] — never a silent
//! gap, never a panic.** Torn writes (a crash mid-write) must always
//! recover; only genuine bit rot may surface as data loss, and then it
//! must be reported.

use std::collections::BTreeMap;
use std::sync::Arc;

use lsm_engine::test_support::{corrupt_blob_byte, CrashPointStorage};
use lsm_engine::{Error, Lsm, LsmOptions, MemoryStorage, Storage, Wal};
use proptest::prelude::*;

/// What the workload knows was acknowledged: key -> Some(value) for a
/// put, None for a delete.
type Acked = BTreeMap<u64, Option<Vec<u8>>>;

fn small_opts() -> LsmOptions {
    LsmOptions::default().memtable_capacity(8)
}

/// Runs puts/deletes/flushes against `db` until the first error,
/// recording only acknowledged operations. Returns whether the
/// workload ran to completion (no crash fired).
fn run_workload(db: &Lsm, acked: &mut Acked, ops: u64) -> bool {
    for i in 0..ops {
        let r = if i % 5 == 4 {
            let key = i / 2;
            match db.delete_u64(key) {
                Ok(()) => {
                    acked.insert(key, None);
                    Ok(())
                }
                Err(e) => Err(e),
            }
        } else {
            let value = format!("value-{i}").into_bytes();
            match db.put_u64(i, value.clone()) {
                Ok(()) => {
                    acked.insert(i, Some(value));
                    Ok(())
                }
                Err(e) => Err(e),
            }
        };
        if r.is_err() {
            return false;
        }
        if i % 16 == 15 && db.flush().is_err() {
            return false;
        }
    }
    true
}

/// The recovery contract check: reopen `storage` and verify every
/// acked operation reads back exactly.
fn assert_all_acked_recovered(storage: MemoryStorage, acked: &Acked) {
    let db = Lsm::open(Arc::new(storage), small_opts())
        .expect("reopen after a pure crash (torn writes only) must succeed");
    for (key, expected) in acked {
        let got = db.get_u64(*key).expect("post-recovery read");
        assert_eq!(
            got.as_deref(),
            expected.as_deref(),
            "acked write to key {key} lost or wrong after recovery"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole property: a crash after *any* number of storage
    /// bytes loses no acknowledged write. Sweeps the crash point across
    /// WAL appends, sstable flush writes, manifest checkpoint writes
    /// and CURRENT swaps alike.
    #[test]
    fn crash_at_any_byte_offset_loses_no_acked_write(budget in 0u64..60_000) {
        let storage = Arc::new(CrashPointStorage::new());
        let mut acked = Acked::new();
        let db = Lsm::open(storage.clone(), small_opts()).unwrap();
        storage.crash_after(budget);
        let completed = run_workload(&db, &mut acked, 200);
        if completed {
            // Budget outlasted the workload: flush the rest through so
            // the reopen below still exercises recovery.
            storage.crash_after(u64::MAX);
        }
        drop(db);
        assert_all_acked_recovered(storage.surviving(), &acked);
    }

    /// Same sweep under background maintenance: frozen generations,
    /// the flush thread and per-generation WAL segments in play. The
    /// flush thread retries against dead storage and gives up at
    /// shutdown; the WAL segments must still carry everything. This
    /// also exercises the liveness contract: an explicit `flush()`
    /// against a wedged flush thread must surface the thread's error,
    /// not wait forever for progress dead storage will never make.
    #[test]
    fn crash_under_background_maintenance_loses_no_acked_write(budget in 0u64..60_000) {
        // Triggers high enough that a writer never *blocks* on the dead
        // flush thread — after the crash, the next WAL append fails the
        // write instead.
        let opts = small_opts()
            .background_maintenance(true)
            .frozen_queue_limit(64)
            .stop_trigger(64)
            .slowdown_trigger(63);
        let storage = Arc::new(CrashPointStorage::new());
        let mut acked = Acked::new();
        let db = Lsm::open(storage.clone(), opts).unwrap();
        storage.crash_after(budget);
        if run_workload(&db, &mut acked, 200) {
            storage.crash_after(u64::MAX);
        }
        drop(db);
        assert_all_acked_recovered(storage.surviving(), &acked);
    }

    /// Bit rot inside a *data block* of a live v3 sstable — including
    /// the compression tag byte each block leads with and torn
    /// (truncation-shaped) damage to the compressed payload. Every
    /// subsequent read must return the correct value or an explicit
    /// `Corruption`: wrong data and panics are both format bugs. The
    /// envelope CRC covers tag and payload together, so a flipped tag
    /// is caught before the decompressor ever dispatches on it.
    #[test]
    fn block_payload_bit_rot_is_corruption_never_wrong_data(
        table_pick in 0usize..16,
        offset_pick in 0usize..8192,
    ) {
        let storage = Arc::new(CrashPointStorage::new());
        let mut acked = Acked::new();
        {
            let db = Lsm::open(storage.clone(), small_opts().wal(false)).unwrap();
            assert!(run_workload(&db, &mut acked, 120), "no crash budget set");
            db.flush().unwrap();
        }
        let survivors = storage.surviving();
        let mut tables: Vec<String> = survivors
            .list_blobs()
            .into_iter()
            .filter(|b| b.starts_with("sst-"))
            .collect();
        tables.sort();
        prop_assume!(!tables.is_empty());
        let name = &tables[table_pick % tables.len()];
        // Data blocks are the blob's prefix; everything from the bloom
        // filter on trails them. The bloom carries no checksum (a flipped
        // bloom bit can only cause a false negative), so this property is
        // about the *block payload* region, whose exact end is the bloom
        // offset — the first u64 of the v4 footer (7 u64s + CRC32).
        let blob = survivors.read_blob(name).unwrap();
        let footer = &blob[blob.len() - 60..];
        let data_region = u64::from_le_bytes(footer[..8].try_into().unwrap()) as usize;
        prop_assume!(data_region > 0);
        prop_assert!(corrupt_blob_byte(&survivors, name, offset_pick % data_region));

        let db = Lsm::open(Arc::new(survivors), small_opts().wal(false))
            .expect("table blocks are decoded lazily; open reads only tails");
        for (key, expected) in &acked {
            match db.get_u64(*key) {
                Ok(got) => prop_assert_eq!(
                    got.as_deref(),
                    expected.as_deref(),
                    "get({}) returned wrong data from a corrupt block", key
                ),
                Err(Error::Corruption { .. }) => {}
                Err(other) => prop_assert!(false, "get: non-corruption error {other:?}"),
            }
        }
        // A scan streams until it meets the rotten block, then must
        // fail loudly; everything before it must match the oracle.
        let mut oracle = acked
            .iter()
            .filter_map(|(k, v)| v.as_ref().map(|v| (*k, v.clone())));
        for item in db.range_u64(0..u64::MAX) {
            match item {
                Ok((k, v)) => {
                    let key = lsm_engine::key_to_u64(&k).unwrap();
                    prop_assert_eq!(
                        Some((key, v.to_vec())),
                        oracle.next(),
                        "scan yielded wrong data near a corrupt block"
                    );
                }
                Err(Error::Corruption { .. }) => break,
                Err(other) => prop_assert!(false, "scan: non-corruption error {other:?}"),
            }
        }
    }

    /// Bit rot at an arbitrary offset of an arbitrary blob: reopen
    /// either succeeds (the flip hit slack the formats tolerate, or a
    /// quarantined WAL frame was reported) or fails with an explicit
    /// `Corruption` error. Never a panic, never an I/O error.
    #[test]
    fn bit_rot_anywhere_is_explicit_or_survivable(blob_pick in 0usize..64, offset_pick in 0usize..8192) {
        let storage = Arc::new(CrashPointStorage::new());
        let mut acked = Acked::new();
        {
            let db = Lsm::open(storage.clone(), small_opts()).unwrap();
            run_workload(&db, &mut acked, 120);
        }
        let survivors = storage.surviving();
        let mut blobs = survivors.list_blobs();
        blobs.sort();
        prop_assume!(!blobs.is_empty());
        let name = &blobs[blob_pick % blobs.len()];
        let len = survivors.blob_len(name).unwrap() as usize;
        prop_assume!(len > 0);
        prop_assert!(corrupt_blob_byte(&survivors, name, offset_pick % len));
        match Lsm::open(Arc::new(survivors), small_opts()) {
            Ok(db) => {
                // Survived: every read must still be explicit about its
                // outcome (value, miss or corruption) — no panics.
                for key in acked.keys() {
                    let _ = db.get_u64(*key);
                }
            }
            Err(Error::Corruption { .. }) => {}
            Err(other) => prop_assert!(false, "non-taxonomized reopen failure: {other:?}"),
        }
    }

    /// A crash mid-`delete_range` is all-or-nothing: the range tombstone
    /// is one WAL record, so recovery sees either the whole interval
    /// deleted or the whole interval intact — never a partially applied
    /// range. Sweeps the crash point across the record's bytes (and,
    /// when acked, the interval must always be gone).
    #[test]
    fn crash_mid_delete_range_is_all_or_nothing(budget in 0u64..600) {
        let storage = Arc::new(CrashPointStorage::new());
        let db = Lsm::open(storage.clone(), small_opts()).unwrap();
        for k in 0..100u64 {
            db.put_u64(k, format!("v{k}").into_bytes()).unwrap();
        }
        db.flush().unwrap();

        storage.crash_after(budget);
        let acked = db.delete_range(20u64, 80u64).is_ok();
        drop(db);

        let recovered = Lsm::open(Arc::new(storage.surviving()), small_opts())
            .expect("a torn range-delete record must recover, not corrupt");
        let inside: Vec<u64> = (20..80)
            .filter(|k| recovered.get_u64(*k).unwrap().is_some())
            .collect();
        if acked {
            prop_assert!(
                inside.is_empty(),
                "acked delete_range lost after recovery: {inside:?} survive"
            );
        } else {
            prop_assert!(
                inside.is_empty() || inside.len() == 60,
                "partially applied range delete after crash: only {} of 60 keys survive",
                inside.len()
            );
        }
        // Keys outside the interval are untouched either way.
        for k in (0..20).chain(80..100) {
            let got = recovered.get_u64(k).unwrap();
            let expect = format!("v{k}").into_bytes();
            prop_assert_eq!(
                got.as_deref(),
                Some(expect.as_slice()),
                "key {} outside the interval damaged", k
            );
        }
    }
}

#[test]
fn crash_during_manifest_swap_keeps_previous_checkpoint() {
    let storage = Arc::new(CrashPointStorage::new());
    let mut acked = Acked::new();
    let db = Lsm::open(storage.clone(), small_opts()).unwrap();
    run_workload(&db, &mut acked, 64);
    db.flush().unwrap();
    // Next mutation bytes: kill the very next write outright (budget 0
    // tears at byte zero / fails the atomic swap entirely), which the
    // next flush will hit first at its sstable write.
    storage.crash_after(0);
    for i in 1000u64..1008 {
        let _ = db.put_u64(i, b"doomed".to_vec());
    }
    let _ = db.flush();
    drop(db);
    assert_all_acked_recovered(storage.surviving(), &acked);
}

#[test]
fn torn_current_pointer_falls_back_to_newest_checkpoint() {
    let storage = Arc::new(CrashPointStorage::new());
    let mut acked = Acked::new();
    {
        let db = Lsm::open(storage.clone(), small_opts()).unwrap();
        run_workload(&db, &mut acked, 80);
        db.flush().unwrap();
    }
    // Simulate a backend that ignored the atomic hint and tore the
    // pointer mid-write: truncate CURRENT to half its bytes.
    let survivors = storage.surviving();
    let current = survivors.read_blob("CURRENT").unwrap();
    survivors
        .write_blob("CURRENT", &current[..current.len() / 2])
        .unwrap();
    assert_all_acked_recovered(survivors, &acked);
}

#[test]
fn wal_bit_rot_is_quarantined_and_counted() {
    let storage = Arc::new(CrashPointStorage::new());
    {
        let db = Lsm::open(storage.clone(), small_opts().memtable_capacity(1000)).unwrap();
        for i in 0u64..32 {
            db.put_u64(i, vec![i as u8; 8]).unwrap();
        }
        // No flush: all 32 writes live only in the WAL.
    }
    let survivors = storage.surviving();
    let segment = Wal::live_segments(&survivors)
        .into_iter()
        .next()
        .expect("unflushed writes leave a live WAL segment");
    // Flip a byte inside an early frame's payload (past the 8-byte
    // magic and the first frame header), leaving later frames intact.
    assert!(corrupt_blob_byte(&survivors, &segment, 24));

    let survivors = Arc::new(survivors);
    let db = Lsm::open(survivors.clone(), small_opts()).unwrap();
    let stats = db.stats();
    assert!(
        stats.recovery_frames_quarantined > 0,
        "the rotten frame must be counted, not silently skipped"
    );
    assert_eq!(stats.recovery_segments_quarantined, 1);
    assert!(
        stats.recovery_frames_replayed > 0,
        "valid frames after the rotten one must be salvaged"
    );
    assert!(
        survivors.contains_blob(&format!("quarantined-{segment}")),
        "the rotten segment is preserved for forensics"
    );
}

#[test]
fn strict_recovery_refuses_to_open_on_bit_rot() {
    let storage = Arc::new(CrashPointStorage::new());
    {
        let db = Lsm::open(storage.clone(), small_opts().memtable_capacity(1000)).unwrap();
        for i in 0u64..32 {
            db.put_u64(i, vec![i as u8; 8]).unwrap();
        }
    }
    let survivors = storage.surviving();
    let segment = Wal::live_segments(&survivors).into_iter().next().unwrap();
    assert!(corrupt_blob_byte(&survivors, &segment, 24));

    let err = Lsm::open(Arc::new(survivors), small_opts().strict_recovery(true))
        .expect_err("strict recovery must refuse a gapped history");
    assert!(
        matches!(err, Error::Corruption { .. }),
        "strict refusal is a Corruption error, got {err:?}"
    );
}

#[test]
fn torn_wal_tail_recovers_without_quarantine() {
    let storage = Arc::new(CrashPointStorage::new());
    {
        let db = Lsm::open(storage.clone(), small_opts().memtable_capacity(1000)).unwrap();
        for i in 0u64..16 {
            db.put_u64(i, vec![i as u8; 8]).unwrap();
        }
    }
    let survivors = storage.surviving();
    let segment = Wal::live_segments(&survivors).into_iter().next().unwrap();
    let bytes = survivors.read_blob(&segment).unwrap();
    // Tear the tail mid-frame, the shape a crash mid-append leaves (the
    // torn final record counts as unacked): recovery truncates it and
    // reports zero quarantined frames.
    survivors
        .write_blob(&segment, &bytes[..bytes.len() - 5])
        .unwrap();

    let db = Lsm::open(Arc::new(survivors), small_opts()).unwrap();
    let stats = db.stats();
    assert_eq!(
        stats.recovery_frames_quarantined, 0,
        "a torn tail is not bit rot"
    );
    assert!(stats.recovery_bytes_truncated > 0);
    for i in 0u64..15 {
        assert_eq!(db.get_u64(i).unwrap().as_deref(), Some(&[i as u8; 8][..]));
    }
}

#[test]
fn corrupt_checkpoint_with_valid_current_is_a_hard_error() {
    let storage = Arc::new(CrashPointStorage::new());
    {
        let db = Lsm::open(storage.clone(), small_opts()).unwrap();
        for i in 0u64..32 {
            db.put_u64(i, b"x".to_vec()).unwrap();
        }
        db.flush().unwrap();
    }
    let survivors = storage.surviving();
    let checkpoint = survivors
        .list_blobs()
        .into_iter()
        .find(|b| b.starts_with("MANIFEST-"))
        .expect("a checkpoint exists");
    assert!(corrupt_blob_byte(&survivors, &checkpoint, 12));
    let err = Lsm::open(Arc::new(survivors), small_opts())
        .expect_err("a rotten checkpoint named by a valid CURRENT cannot be shed silently");
    assert!(matches!(err, Error::Corruption { .. }), "got {err:?}");
}

#[test]
fn crash_during_gc_flip_loses_no_live_data() {
    let storage = Arc::new(CrashPointStorage::new());
    let opts = small_opts().memtable_capacity(4);
    let db = Lsm::open(storage.clone(), opts.clone()).unwrap();
    // Two tables: one whose tombstones will be droppable, one peer.
    for i in 0u64..4 {
        db.put_u64(i, b"keep".to_vec()).unwrap();
    }
    db.flush().unwrap();
    for i in 100u64..103 {
        db.put_u64(i, b"tmp".to_vec()).unwrap();
        db.delete_u64(i).unwrap();
    }
    db.flush().unwrap();
    // Kill the GC rewrite at its first write (the new sstable).
    storage.crash_after(0);
    let _ = db.gc_tombstones();
    drop(db);
    let db = Lsm::open(Arc::new(storage.surviving()), opts).expect("reopen after GC crash");
    for i in 0u64..4 {
        assert_eq!(
            db.get_u64(i).unwrap().as_deref(),
            Some(b"keep".as_slice()),
            "live key {i} lost across a GC crash"
        );
    }
    for i in 100u64..103 {
        assert_eq!(db.get_u64(i).unwrap(), None, "deleted key {i} resurrected");
    }
}

#[test]
fn completed_gc_survives_reopen() {
    let storage = Arc::new(CrashPointStorage::new());
    let opts = small_opts().memtable_capacity(4);
    let db = Lsm::open(storage.clone(), opts.clone()).unwrap();
    for i in 0u64..4 {
        db.put_u64(i, b"keep".to_vec()).unwrap();
        db.delete_u64(i + 100).unwrap();
    }
    db.flush().unwrap();
    let dropped = db.gc_tombstones().unwrap();
    assert!(dropped > 0, "tombstones shadowing nothing are droppable");
    assert_eq!(db.stats().tombstones_dropped, dropped);
    drop(db);
    let db = Lsm::open(Arc::new(storage.surviving()), opts).unwrap();
    for i in 0u64..4 {
        assert_eq!(db.get_u64(i).unwrap().as_deref(), Some(b"keep".as_slice()));
        assert_eq!(db.get_u64(i + 100).unwrap(), None);
    }
}
