//! Engine-level MVCC integration: a pinned snapshot's reads are
//! byte-identical across flush, compaction and tombstone GC; inverted
//! range-delete bounds are sequence-free no-ops; and pins hold the
//! tombstone-GC floor down until released.

use lsm_engine::{CompactionPolicy, Lsm, LsmOptions};

fn opts() -> LsmOptions {
    LsmOptions::default()
        .memtable_capacity(32)
        .compaction_policy(CompactionPolicy::Threshold { live_tables: 2 })
        .block_size(256)
        .wal(false)
}

/// The acceptance criterion verbatim: capture every byte a snapshot
/// answers with, then overwrite, point-delete and range-delete the
/// whole world, flush, compact and GC — the snapshot must keep
/// answering with exactly the captured bytes, and the live view must
/// show only the new world.
#[test]
fn pinned_snapshot_reads_are_byte_identical_across_flush_compaction_and_gc() {
    let db = Lsm::open_in_memory(opts()).unwrap();
    for k in 0..200u64 {
        db.put_u64(k, format!("old{k}").into_bytes()).unwrap();
    }
    db.flush().unwrap();

    let snap = db.snapshot();
    let baseline = snap.scan_all().unwrap();
    assert_eq!(baseline.len(), 200);

    // Second half of history: every key overwritten, a point delete, a
    // range delete over a third of the space, then the maintenance
    // machinery runs for real.
    for k in 0..200u64 {
        db.put_u64(k, format!("new{k}").into_bytes()).unwrap();
    }
    db.delete_u64(7).unwrap();
    db.delete_range(100u64, 170u64).unwrap();
    db.flush().unwrap();
    db.auto_compact().unwrap();
    db.gc_tombstones().unwrap();

    let replay = snap.scan_all().unwrap();
    assert_eq!(replay, baseline, "snapshot bytes drifted across maintenance");
    for k in [0u64, 7, 100, 169, 199] {
        assert_eq!(
            snap.get(k).unwrap().as_deref(),
            Some(format!("old{k}").as_bytes()),
            "snapshot get({k})"
        );
    }

    // The live view has moved on: new values, both kinds of delete.
    let live = db.scan_all().unwrap();
    assert_eq!(live.len(), 200 - 1 - 70);
    assert_eq!(db.get_u64(7).unwrap(), None);
    assert_eq!(db.get_u64(150).unwrap(), None);
    assert_eq!(db.get_u64(0).unwrap().as_deref(), Some(&b"new0"[..]));

    // Releasing the pin and re-running maintenance reclaims the old
    // versions without perturbing the live answers.
    drop(snap);
    db.flush().unwrap();
    db.auto_compact().unwrap();
    db.gc_tombstones().unwrap();
    assert_eq!(db.scan_all().unwrap(), live, "live view changed on pin release");
}

/// Inverted and empty bounds are accepted no-ops: no record is written,
/// no sequence number is consumed, nothing is deleted.
#[test]
fn inverted_or_empty_delete_range_consumes_no_seqno() {
    let db = Lsm::open_in_memory(opts()).unwrap();
    db.put_u64(7, b"keep".to_vec()).unwrap();

    let before = db.snapshot().lsn();
    db.delete_range(9u64, 3u64).unwrap();
    db.delete_range(5u64, 5u64).unwrap();
    // Snapshot creation itself allocates one LSN, so two no-op deletes
    // in between must leave consecutive snapshot LSNs.
    let after = db.snapshot().lsn();
    assert_eq!(after, before + 1, "a no-op delete_range consumed a seqno");
    assert_eq!(db.stats().range_deletes, 0, "no tombstone was recorded");
    assert_eq!(db.get_u64(7).unwrap().as_deref(), Some(&b"keep"[..]));
}

/// A pin created below a tombstone's seqno blocks tombstone GC from
/// reclaiming it; releasing the pin (plus the manifest flip that resets
/// the barren memo) lets the same GC pass drop it.
#[test]
fn pins_block_tombstone_gc_until_released() {
    let db = Lsm::open_in_memory(
        LsmOptions::default()
            .memtable_capacity(64)
            .gc_min_tombstones(1)
            .wal(false),
    )
    .unwrap();
    let pin = db.snapshot();
    // Tombstones for keys never written anywhere else: with no pin they
    // provably shadow nothing and GC drops them all.
    for k in 1_000..1_020u64 {
        db.delete_u64(k).unwrap();
    }
    db.flush().unwrap();

    assert_eq!(
        db.gc_tombstones().unwrap(),
        0,
        "tombstones above the pin floor must survive GC"
    );

    drop(pin);
    // No barren memo was taken for the pinned pass (barrenness is not
    // provable under a floor), so the very next pass reclaims.
    assert_eq!(
        db.gc_tombstones().unwrap(),
        20,
        "with the pin gone the tombstones are reclaimable"
    );
}
