//! Merge trees: the tree view of a merge schedule.
//!
//! A binary merge schedule corresponds to a full binary tree with `n`
//! leaves (Section 2 of the paper): leaves are the initial sstables,
//! internal nodes are merge outputs, the root is the final sstable. This
//! module provides that tree structure, the canonical tree shapes used in
//! the analysis (the perfectly balanced tree and the caterpillar tree of
//! Figure 3), the `η(T)` quantity from Lemma A.2, and evaluation of the
//! OPT-TREE-ASSIGN cost for a fixed tree and leaf assignment.

use crate::{CostModel, Error, KeySet};

/// One node of a merge tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeNode {
    /// A leaf holding the position `leaf_index` (0-based) in the leaf
    /// ordering; the actual initial set assigned to it is decided by a
    /// separate assignment permutation.
    Leaf {
        /// Position of this leaf in the canonical left-to-right ordering.
        leaf_index: usize,
    },
    /// An internal node merging the subtrees rooted at `children`.
    Internal {
        /// Child node ids (at least 2, at most the schedule fan-in).
        children: Vec<usize>,
    },
}

/// A full merge tree with `n` leaves.
///
/// Nodes are stored in a flat arena; `root` indexes the final merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeTree {
    nodes: Vec<TreeNode>,
    root: usize,
    leaf_count: usize,
}

impl MergeTree {
    /// Builds a tree from a node arena and root index.
    ///
    /// # Panics
    ///
    /// Panics if `root` is out of range. Intended for internal
    /// constructors; external users build trees via
    /// [`MergeSchedule::to_tree`](crate::MergeSchedule::to_tree),
    /// [`MergeTree::complete_binary`] or [`MergeTree::caterpillar`].
    #[must_use]
    pub fn from_parts(nodes: Vec<TreeNode>, root: usize) -> Self {
        assert!(root < nodes.len(), "root index out of range");
        let leaf_count = nodes
            .iter()
            .filter(|n| matches!(n, TreeNode::Leaf { .. }))
            .count();
        Self {
            nodes,
            root,
            leaf_count,
        }
    }

    /// The perfectly balanced binary tree over `n` leaves (`n ≥ 1`). When
    /// `n` is not a power of two the tree is the level-order "complete"
    /// tree of height `⌈log₂ n⌉`, built exactly like the BALANCETREE
    /// heuristic builds its schedule.
    #[must_use]
    pub fn complete_binary(n: usize) -> Self {
        assert!(n >= 1, "tree needs at least one leaf");
        let mut nodes: Vec<TreeNode> = (0..n)
            .map(|leaf_index| TreeNode::Leaf { leaf_index })
            .collect();
        // Level-by-level pairing, identical to the BalanceTree heuristic.
        let mut current: Vec<usize> = (0..n).collect();
        while current.len() > 1 {
            let mut next = Vec::with_capacity(current.len().div_ceil(2));
            for pair in current.chunks(2) {
                if pair.len() == 2 {
                    nodes.push(TreeNode::Internal {
                        children: vec![pair[0], pair[1]],
                    });
                    next.push(nodes.len() - 1);
                } else {
                    next.push(pair[0]);
                }
            }
            current = next;
        }
        let root = current[0];
        Self::from_parts(nodes, root)
    }

    /// The caterpillar tree `T_n` of Figure 3: a fully left-leaning chain
    /// of `n − 1` merges (height `n − 1`).
    #[must_use]
    pub fn caterpillar(n: usize) -> Self {
        assert!(n >= 1, "tree needs at least one leaf");
        let mut nodes: Vec<TreeNode> = (0..n)
            .map(|leaf_index| TreeNode::Leaf { leaf_index })
            .collect();
        let mut acc = 0usize;
        for leaf in 1..n {
            nodes.push(TreeNode::Internal {
                children: vec![acc, leaf],
            });
            acc = nodes.len() - 1;
        }
        let root = acc;
        Self::from_parts(nodes, root)
    }

    /// Number of leaves.
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        self.leaf_count
    }

    /// Number of nodes (leaves + internal).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node arena.
    #[must_use]
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// The root node id.
    #[must_use]
    pub fn root(&self) -> usize {
        self.root
    }

    /// Height of the tree in edges (a single leaf has height 0).
    #[must_use]
    pub fn height(&self) -> usize {
        self.depth_below(self.root)
    }

    fn depth_below(&self, node: usize) -> usize {
        match &self.nodes[node] {
            TreeNode::Leaf { .. } => 0,
            TreeNode::Internal { children } => {
                1 + children
                    .iter()
                    .map(|&c| self.depth_below(c))
                    .max()
                    .unwrap_or(0)
            }
        }
    }

    /// `η(T)`: the sum over all leaves of the number of nodes on the path
    /// from the root to the leaf (Lemma A.2). For any binary tree with
    /// `n = 2^h` leaves, `η(T) ≥ n · log₂(2n)` with equality exactly for
    /// the perfect binary tree.
    #[must_use]
    pub fn eta(&self) -> u64 {
        let mut total = 0u64;
        self.for_each_leaf_depth(self.root, 0, &mut |depth| {
            total += depth as u64 + 1;
        });
        total
    }

    fn for_each_leaf_depth(&self, node: usize, depth: usize, f: &mut impl FnMut(usize)) {
        match &self.nodes[node] {
            TreeNode::Leaf { .. } => f(depth),
            TreeNode::Internal { children } => {
                for &c in children {
                    self.for_each_leaf_depth(c, depth + 1, f);
                }
            }
        }
    }

    /// Depth (in edges from the root) of every leaf, indexed by the leaf's
    /// canonical `leaf_index`.
    #[must_use]
    pub fn leaf_depths(&self) -> Vec<usize> {
        let mut depths = vec![0usize; self.leaf_count];
        self.collect_leaf_depths(self.root, 0, &mut depths);
        depths
    }

    fn collect_leaf_depths(&self, node: usize, depth: usize, out: &mut Vec<usize>) {
        match &self.nodes[node] {
            TreeNode::Leaf { leaf_index } => out[*leaf_index] = depth,
            TreeNode::Internal { children } => {
                for &c in children {
                    self.collect_leaf_depths(c, depth + 1, out);
                }
            }
        }
    }

    /// Evaluates the OPT-TREE-ASSIGN cost (eq. 2.1) of assigning initial
    /// sets to this tree's leaves: `assignment[leaf_index]` names the set
    /// placed at that leaf. Every node is labelled by the union of the
    /// sets below it and the cost is the sum of `model.cost` over all
    /// node labels (leaves, internal nodes and root alike).
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyInput`] if `sets` is empty and
    /// [`Error::InvalidSlot`] if the assignment references a set index out
    /// of range or has the wrong length.
    pub fn assignment_cost<M: CostModel>(
        &self,
        sets: &[KeySet],
        assignment: &[usize],
        model: &M,
    ) -> Result<u64, Error> {
        if sets.is_empty() {
            return Err(Error::EmptyInput);
        }
        if assignment.len() != self.leaf_count {
            return Err(Error::InvalidSlot {
                op_index: 0,
                slot: assignment.len(),
            });
        }
        if let Some(&bad) = assignment.iter().find(|&&s| s >= sets.len()) {
            return Err(Error::InvalidSlot {
                op_index: 0,
                slot: bad,
            });
        }
        let mut total = 0u64;
        self.label_and_sum(self.root, sets, assignment, model, &mut total);
        Ok(total)
    }

    fn label_and_sum<M: CostModel>(
        &self,
        node: usize,
        sets: &[KeySet],
        assignment: &[usize],
        model: &M,
        total: &mut u64,
    ) -> KeySet {
        let label = match &self.nodes[node] {
            TreeNode::Leaf { leaf_index } => sets[assignment[*leaf_index]].clone(),
            TreeNode::Internal { children } => {
                let mut acc = KeySet::new();
                for &c in children {
                    let child_label = self.label_and_sum(c, sets, assignment, model, total);
                    acc = acc.union(&child_label);
                }
                acc
            }
        };
        *total += model.cost(&label);
        label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cardinality;

    #[test]
    fn complete_binary_shape() {
        let t = MergeTree::complete_binary(8);
        assert_eq!(t.leaf_count(), 8);
        assert_eq!(t.node_count(), 15);
        assert_eq!(t.height(), 3);
        assert_eq!(t.eta(), 8 * 4, "every leaf has 4 nodes on its root path");
        assert_eq!(t.leaf_depths(), vec![3; 8]);
    }

    #[test]
    fn complete_binary_non_power_of_two() {
        let t = MergeTree::complete_binary(5);
        assert_eq!(t.leaf_count(), 5);
        assert_eq!(t.height(), 3, "height ⌈log₂ 5⌉ = 3");
        // 4 internal merges for 5 leaves.
        assert_eq!(t.node_count(), 9);
    }

    #[test]
    fn caterpillar_shape() {
        let t = MergeTree::caterpillar(5);
        assert_eq!(t.leaf_count(), 5);
        assert_eq!(t.height(), 4);
        assert_eq!(t.node_count(), 9);
        // Leaf 0 is deepest (depth 4); leaf 4 is merged last (depth 1).
        let depths = t.leaf_depths();
        assert_eq!(depths[0], 4);
        assert_eq!(depths[4], 1);
    }

    #[test]
    fn eta_lower_bound_lemma_a2() {
        // For n = 2^h leaves, η(T) ≥ n log₂(2n) with equality only for the
        // perfect tree; the caterpillar must exceed it for n ≥ 4.
        for h in 1..=5u32 {
            let n = 1usize << h;
            let balanced = MergeTree::complete_binary(n);
            let caterpillar = MergeTree::caterpillar(n);
            let bound = (n as u64) * u64::from(h + 1);
            assert_eq!(
                balanced.eta(),
                bound,
                "perfect tree attains the bound (n={n})"
            );
            if n >= 4 {
                assert!(
                    caterpillar.eta() > bound,
                    "caterpillar must exceed the bound (n={n})"
                );
            }
        }
    }

    #[test]
    fn single_leaf_trees() {
        let t = MergeTree::complete_binary(1);
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.height(), 0);
        assert_eq!(t.eta(), 1);
        let c = MergeTree::caterpillar(1);
        assert_eq!(c.node_count(), 1);
    }

    #[test]
    fn assignment_cost_counts_every_node() {
        // Two disjoint singletons under a single merge: cost = 1 + 1 + 2.
        let sets = vec![KeySet::from_iter([1u64]), KeySet::from_iter([2u64])];
        let t = MergeTree::complete_binary(2);
        let cost = t.assignment_cost(&sets, &[0, 1], &Cardinality).unwrap();
        assert_eq!(cost, 4);
        // Swapping the assignment changes nothing for symmetric sets.
        assert_eq!(t.assignment_cost(&sets, &[1, 0], &Cardinality).unwrap(), 4);
    }

    #[test]
    fn assignment_cost_depends_on_placement_for_caterpillar() {
        // Caterpillar over 3 leaves: the set placed at the deepest leaves
        // is counted in more internal nodes.
        let sets = vec![
            KeySet::from_range(0..10),
            KeySet::from_iter([100u64]),
            KeySet::from_iter([200u64]),
        ];
        let t = MergeTree::caterpillar(3);
        // Big set deepest (leaf 0) vs big set last (leaf 2).
        let deep = t.assignment_cost(&sets, &[0, 1, 2], &Cardinality).unwrap();
        let shallow = t.assignment_cost(&sets, &[1, 2, 0], &Cardinality).unwrap();
        assert!(deep > shallow, "deep={deep} shallow={shallow}");
    }

    #[test]
    fn assignment_cost_validates_inputs() {
        let sets = vec![KeySet::from_iter([1u64])];
        let t = MergeTree::complete_binary(2);
        assert!(t.assignment_cost(&[], &[0, 1], &Cardinality).is_err());
        assert!(t.assignment_cost(&sets, &[0], &Cardinality).is_err());
        assert!(t.assignment_cost(&sets, &[0, 5], &Cardinality).is_err());
    }
}
