//! The abstract sstable: a set of keys.

use std::collections::BTreeSet;

/// An sstable modelled as a set of 64-bit keys, as in the paper's
/// problem formulation (Section 2): all key-value pairs are assumed to be
/// the same size and values comprehensive, so an sstable *is* its key set
/// and a merge is a set union.
///
/// Internally a sorted, de-duplicated `Vec<u64>`, which makes unions and
/// intersection counting linear two-pointer scans.
///
/// # Examples
///
/// ```
/// use compaction_core::KeySet;
///
/// let a = KeySet::from_iter([1u64, 2, 3, 5]);
/// let b = KeySet::from_iter([3u64, 4, 5]);
/// assert_eq!(a.len(), 4);
/// assert_eq!(a.union(&b).len(), 5);
/// assert_eq!(a.intersection_size(&b), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KeySet {
    keys: Vec<u64>,
}

impl KeySet {
    /// Creates an empty key set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a key set from an arbitrary (possibly unsorted, possibly
    /// duplicated) vector of keys.
    #[must_use]
    pub fn from_vec(mut keys: Vec<u64>) -> Self {
        keys.sort_unstable();
        keys.dedup();
        Self { keys }
    }

    /// Creates a key set holding the contiguous range `start..end`.
    #[must_use]
    pub fn from_range(range: std::ops::Range<u64>) -> Self {
        Self {
            keys: range.collect(),
        }
    }

    /// Number of distinct keys (the paper's `|A_i|`, i.e. the sstable
    /// size).
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Returns `true` if the set holds no keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Returns `true` if `key` is in the set.
    #[must_use]
    pub fn contains(&self, key: u64) -> bool {
        self.keys.binary_search(&key).is_ok()
    }

    /// The keys in ascending order.
    #[must_use]
    pub fn as_slice(&self) -> &[u64] {
        &self.keys
    }

    /// Iterates the keys in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.keys.iter().copied()
    }

    /// Inserts a key, keeping the set sorted. Returns `true` if the key
    /// was not already present.
    pub fn insert(&mut self, key: u64) -> bool {
        match self.keys.binary_search(&key) {
            Ok(_) => false,
            Err(pos) => {
                self.keys.insert(pos, key);
                true
            }
        }
    }

    /// The union of two sets (a single merge operation's output).
    #[must_use]
    pub fn union(&self, other: &Self) -> Self {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.keys.len() && j < other.keys.len() {
            match self.keys[i].cmp(&other.keys[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.keys[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.keys[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.keys[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.keys[i..]);
        out.extend_from_slice(&other.keys[j..]);
        Self { keys: out }
    }

    /// Unions an arbitrary number of sets (a k-way merge output).
    #[must_use]
    pub fn union_many<'a, I>(sets: I) -> Self
    where
        I: IntoIterator<Item = &'a KeySet>,
    {
        let mut acc = KeySet::new();
        for s in sets {
            acc = acc.union(s);
        }
        acc
    }

    /// `|self ∪ other|` without materializing the union.
    #[must_use]
    pub fn union_size(&self, other: &Self) -> usize {
        self.len() + other.len() - self.intersection_size(other)
    }

    /// `|self ∩ other|` without materializing the intersection.
    #[must_use]
    pub fn intersection_size(&self, other: &Self) -> usize {
        let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
        while i < self.keys.len() && j < other.keys.len() {
            match self.keys[i].cmp(&other.keys[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Returns `true` if the two sets share no key.
    #[must_use]
    pub fn is_disjoint(&self, other: &Self) -> bool {
        self.intersection_size(other) == 0
    }

    /// Relabels every key to `(key, set_index)` flattened into a single
    /// integer, producing the *dummy sets* of the paper's Algorithm 2
    /// (`FREQBINARYMERGING`): dummy sets built this way are pairwise
    /// disjoint while preserving every set's cardinality.
    ///
    /// The encoding packs the set index into the upper 16 bits, so it
    /// supports up to 65 536 initial sets and keys below `2^48`; both are
    /// far beyond any compaction instance in the evaluation.
    #[must_use]
    pub fn relabel_disjoint(&self, set_index: usize) -> Self {
        let tag = (set_index as u64) << 48;
        Self {
            keys: self
                .keys
                .iter()
                .map(|k| (k & 0x0000_FFFF_FFFF_FFFF) | tag)
                .collect(),
        }
    }
}

impl FromIterator<u64> for KeySet {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        Self::from_vec(iter.into_iter().collect())
    }
}

impl Extend<u64> for KeySet {
    fn extend<T: IntoIterator<Item = u64>>(&mut self, iter: T) {
        let mut set: BTreeSet<u64> = self.keys.iter().copied().collect();
        set.extend(iter);
        self.keys = set.into_iter().collect();
    }
}

impl From<Vec<u64>> for KeySet {
    fn from(keys: Vec<u64>) -> Self {
        Self::from_vec(keys)
    }
}

impl<'a> IntoIterator for &'a KeySet {
    type Item = u64;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, u64>>;

    fn into_iter(self) -> Self::IntoIter {
        self.keys.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_sorts_and_dedups() {
        let s = KeySet::from_vec(vec![5, 1, 3, 3, 1]);
        assert_eq!(s.as_slice(), &[1, 3, 5]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(s.contains(3));
        assert!(!s.contains(4));
    }

    #[test]
    fn union_and_sizes() {
        let a = KeySet::from_iter([1u64, 2, 3, 5]);
        let b = KeySet::from_iter([3u64, 4, 5]);
        let u = a.union(&b);
        assert_eq!(u.as_slice(), &[1, 2, 3, 4, 5]);
        assert_eq!(a.union_size(&b), 5);
        assert_eq!(a.intersection_size(&b), 2);
        assert!(!a.is_disjoint(&b));
        let c = KeySet::from_iter([10u64, 11]);
        assert!(a.is_disjoint(&c));
        assert_eq!(a.union_size(&c), 6);
    }

    #[test]
    fn union_many_folds_left() {
        let sets = vec![
            KeySet::from_iter([1u64, 2]),
            KeySet::from_iter([2u64, 3]),
            KeySet::from_iter([4u64]),
        ];
        let u = KeySet::union_many(&sets);
        assert_eq!(u.as_slice(), &[1, 2, 3, 4]);
        assert_eq!(KeySet::union_many([]).len(), 0);
    }

    #[test]
    fn insert_keeps_sorted_and_reports_novelty() {
        let mut s = KeySet::from_iter([2u64, 4]);
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert_eq!(s.as_slice(), &[2, 3, 4]);
    }

    #[test]
    fn empty_and_range_constructors() {
        assert!(KeySet::new().is_empty());
        let r = KeySet::from_range(5..9);
        assert_eq!(r.as_slice(), &[5, 6, 7, 8]);
    }

    #[test]
    fn relabel_disjoint_preserves_size_and_disjointness() {
        let a = KeySet::from_iter([1u64, 2, 3]);
        let b = KeySet::from_iter([1u64, 2, 3]);
        let a1 = a.relabel_disjoint(0);
        let b1 = b.relabel_disjoint(1);
        assert_eq!(a1.len(), 3);
        assert_eq!(b1.len(), 3);
        assert!(a1.is_disjoint(&b1));
        // Same set index keeps identical keys identical.
        assert_eq!(a.relabel_disjoint(2), b.relabel_disjoint(2));
    }

    #[test]
    fn extend_and_iterators() {
        let mut s = KeySet::from_iter([1u64, 5]);
        s.extend([2u64, 5, 7]);
        assert_eq!(s.as_slice(), &[1, 2, 5, 7]);
        let collected: Vec<u64> = (&s).into_iter().collect();
        assert_eq!(collected, vec![1, 2, 5, 7]);
        assert_eq!(s.iter().sum::<u64>(), 15);
    }
}
