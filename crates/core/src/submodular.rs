//! Monotone-submodularity checking.
//!
//! The SUBMODULARMERGING extension (Section 2 of the paper) requires the
//! merge cost to be a monotone submodular function. These helpers verify
//! both properties empirically over a ground set, and are used by the
//! test suite to certify that every [`CostModel`]
//! shipped by this crate stays inside the class the paper's analysis
//! covers.

use crate::{CostModel, KeySet};

/// Checks `f(S) ≤ f(T)` for every sampled pair `S ⊆ T ⊆ ground`.
///
/// For small ground sets (≤ ~12 elements) this enumerates every pair of
/// nested subsets exhaustively; beyond that, prefer
/// [`is_monotone_sampled`].
#[must_use]
pub fn is_monotone_exhaustive<M: CostModel>(model: &M, ground: &[u64]) -> bool {
    let n = ground.len();
    assert!(n <= 16, "exhaustive check limited to 16 ground elements");
    let subsets = 1u32 << n;
    for s in 0..subsets {
        let set_s = mask_to_set(ground, s);
        let cost_s = model.cost(&set_s);
        // Adding one element at a time is sufficient for monotonicity.
        for bit in 0..n {
            if s & (1 << bit) == 0 {
                let t = s | (1 << bit);
                let set_t = mask_to_set(ground, t);
                if model.cost(&set_t) < cost_s {
                    return false;
                }
            }
        }
    }
    true
}

/// Checks submodularity via the equivalent diminishing-returns condition:
/// for every `S ⊆ T` and element `x ∉ T`,
/// `f(S ∪ {x}) − f(S) ≥ f(T ∪ {x}) − f(T)`.
///
/// Exhaustive over all subsets of `ground` (≤ 16 elements).
#[must_use]
pub fn is_submodular_exhaustive<M: CostModel>(model: &M, ground: &[u64]) -> bool {
    let n = ground.len();
    assert!(n <= 16, "exhaustive check limited to 16 ground elements");
    let subsets = 1u32 << n;
    for s in 0..subsets {
        for t in 0..subsets {
            // Require S ⊆ T.
            if s & t != s {
                continue;
            }
            let set_s = mask_to_set(ground, s);
            let set_t = mask_to_set(ground, t);
            let f_s = model.cost(&set_s) as i128;
            let f_t = model.cost(&set_t) as i128;
            for (bit, &x) in ground.iter().enumerate() {
                if t & (1 << bit) != 0 {
                    continue;
                }
                let mut s_x = set_s.clone();
                s_x.insert(x);
                let mut t_x = set_t.clone();
                t_x.insert(x);
                let gain_s = model.cost(&s_x) as i128 - f_s;
                let gain_t = model.cost(&t_x) as i128 - f_t;
                if gain_s < gain_t {
                    return false;
                }
            }
        }
    }
    true
}

/// Randomized monotonicity check for larger ground sets: samples `trials`
/// nested pairs using a simple deterministic pseudo-random walk seeded by
/// `seed`.
#[must_use]
pub fn is_monotone_sampled<M: CostModel>(
    model: &M,
    ground: &[u64],
    trials: usize,
    seed: u64,
) -> bool {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..trials {
        let mut small = Vec::new();
        let mut large = Vec::new();
        for &x in ground {
            let r = next();
            if r % 4 == 0 {
                small.push(x);
                large.push(x);
            } else if r % 4 == 1 {
                large.push(x);
            }
        }
        let f_small = model.cost(&KeySet::from_vec(small));
        let f_large = model.cost(&KeySet::from_vec(large));
        if f_small > f_large {
            return false;
        }
    }
    true
}

fn mask_to_set(ground: &[u64], mask: u32) -> KeySet {
    KeySet::from_vec(
        ground
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &x)| x)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cardinality, ConstantOverhead, WeightedKeys};
    use std::collections::HashMap;

    const GROUND: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];

    #[test]
    fn cardinality_is_monotone_submodular() {
        assert!(is_monotone_exhaustive(&Cardinality, &GROUND));
        assert!(is_submodular_exhaustive(&Cardinality, &GROUND));
    }

    #[test]
    fn weighted_keys_is_monotone_submodular() {
        let mut w = HashMap::new();
        for (i, &k) in GROUND.iter().enumerate() {
            w.insert(k, (i as u64 + 1) * 3);
        }
        let model = WeightedKeys::new(w, 1);
        assert!(is_monotone_exhaustive(&model, &GROUND));
        assert!(is_submodular_exhaustive(&model, &GROUND));
    }

    #[test]
    fn constant_overhead_is_monotone_submodular() {
        let model = ConstantOverhead::new(Cardinality, 50);
        assert!(is_monotone_exhaustive(&model, &GROUND));
        assert!(is_submodular_exhaustive(&model, &GROUND));
    }

    #[test]
    fn a_supermodular_function_is_rejected() {
        /// `f(S) = |S|^2` is monotone but *not* submodular.
        #[derive(Debug)]
        struct Quadratic;
        impl CostModel for Quadratic {
            fn cost(&self, set: &KeySet) -> u64 {
                (set.len() * set.len()) as u64
            }
        }
        assert!(is_monotone_exhaustive(&Quadratic, &GROUND));
        assert!(!is_submodular_exhaustive(&Quadratic, &GROUND));
    }

    #[test]
    fn a_non_monotone_function_is_rejected() {
        /// Charges less for bigger sets: not monotone.
        #[derive(Debug)]
        struct Shrinking;
        impl CostModel for Shrinking {
            fn cost(&self, set: &KeySet) -> u64 {
                100u64.saturating_sub(set.len() as u64)
            }
        }
        assert!(!is_monotone_exhaustive(&Shrinking, &GROUND));
        assert!(!is_monotone_sampled(&Shrinking, &GROUND, 200, 7));
    }

    #[test]
    fn sampled_check_accepts_cardinality_on_larger_ground() {
        let ground: Vec<u64> = (0..200).collect();
        assert!(is_monotone_sampled(&Cardinality, &ground, 500, 42));
    }
}
