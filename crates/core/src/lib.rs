//! Merge-schedule optimization for LSM major compaction.
//!
//! This crate is the primary contribution of *Fast Compaction Algorithms
//! for NoSQL Databases* (Ghosh, Gupta, Gupta, Kumar — ICDCS 2015),
//! reproduced in Rust:
//!
//! * the **BINARYMERGING** optimization problem (Section 2): given `n`
//!   sstables modelled as key sets `A_1 … A_n`, find the sequence of
//!   pairwise merges that reduces them to one set while minimizing the
//!   total size of every set ever materialized (equivalently, total disk
//!   I/O);
//! * its generalizations **K-WAYMERGING** (merge at most `k` sets per
//!   iteration) and **SUBMODULARMERGING** (arbitrary monotone submodular
//!   merge cost, e.g. per-key weights or per-merge constant overhead);
//! * the four greedy heuristics of Section 4 — [`Strategy::BalanceTree`],
//!   [`Strategy::SmallestInput`], [`Strategy::SmallestOutput`],
//!   [`Strategy::LargestMatch`] — plus the `RANDOM` strawman used in the
//!   evaluation and the `f`-approximation `FREQBINARYMERGING`
//!   (Algorithm 2);
//! * exact reference solvers ([`optimal`]): exhaustive branch-and-bound
//!   for small `n`, the Huffman solver that is optimal for disjoint sets
//!   (Lemma 4.3), and the left-to-right caterpillar merge;
//! * the lower bound `LOPT = Σ|A_i|` and approximation-ratio reporting
//!   ([`bounds`]), plus the adversarial instances from Lemmas 4.2 and 4.5
//!   and the `Ω(n)` LargestMatch gap;
//! * the constructions used in the NP-hardness proof (Appendix A) for
//!   empirical validation ([`hardness`]).
//!
//! # The model
//!
//! An sstable is a set of keys ([`KeySet`]); merging sstables is set
//! union; the cost of a merge is the size of the produced set under a
//! pluggable [`CostModel`] (cardinality by default). A
//! [`MergeSchedule`] is the ordered list of merge operations; its
//! [`cost`](MergeSchedule::cost) is the paper's simplified cost
//! (eq. 2.1) and [`cost_actual`](MergeSchedule::cost_actual) is the disk
//! I/O cost (inputs read + output written per merge).
//!
//! # Quick start
//!
//! ```
//! use compaction_core::{KeySet, Strategy, schedule_with};
//!
//! // The paper's working example (Section 4.3).
//! let tables = vec![
//!     KeySet::from_iter([1u64, 2, 3, 5]),
//!     KeySet::from_iter([1u64, 2, 3, 4]),
//!     KeySet::from_iter([3u64, 4, 5]),
//!     KeySet::from_iter([6u64, 7, 8]),
//!     KeySet::from_iter([7u64, 8, 9]),
//! ];
//!
//! let bt = schedule_with(Strategy::BalanceTree, &tables, 2)?;
//! let si = schedule_with(Strategy::SmallestInput, &tables, 2)?;
//! let so = schedule_with(Strategy::SmallestOutput, &tables, 2)?;
//! assert_eq!(bt.cost(&tables), 45);   // Figure 4
//! assert_eq!(si.cost(&tables), 47);   // Figure 5
//! assert_eq!(so.cost(&tables), 40);   // Figure 6
//! # Ok::<(), compaction_core::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod bounds;
pub mod cost;
mod error;
pub mod estimator;
pub mod hardness;
pub mod heuristics;
pub mod optimal;
pub mod planner;
mod schedule;
mod set;
pub mod submodular;
pub mod tree;

pub use cost::{Cardinality, ConstantOverhead, CostModel, WeightedKeys};
pub use error::Error;
pub use estimator::{CardinalityEstimator, ExactEstimator, HllEstimator};
pub use heuristics::{schedule_with, GreedyMerger, Strategy};
pub use planner::{MergePlan, Planner, SizeEstimator, StrategyPlanner, TableObservation};
pub use schedule::{MergeOp, MergeSchedule};
pub use set::KeySet;
pub use tree::MergeTree;
