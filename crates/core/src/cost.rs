//! Merge cost models.
//!
//! BINARYMERGING charges a merge the *cardinality* of the set it produces.
//! The paper's SUBMODULARMERGING extension (Section 2) allows any monotone
//! submodular set function instead: the two motivating examples are a
//! constant per-merge overhead (sstable initialization cost) and per-key
//! weights (entry sizes). All three are provided here behind the
//! [`CostModel`] trait; every scheduling algorithm and cost evaluation in
//! this crate is generic over it.

use std::collections::HashMap;

use crate::KeySet;

/// A monotone set function used as the cost of materializing a merged
/// sstable.
///
/// Implementations should be monotone (`S ⊆ T ⇒ f(S) ≤ f(T)`) and
/// submodular for the paper's approximation analysis to apply; the
/// [`submodular`](crate::submodular) module provides a property checker
/// used by the test suite.
pub trait CostModel: std::fmt::Debug {
    /// The cost `f(S)` of a set `S`.
    fn cost(&self, set: &KeySet) -> u64;
}

/// The BINARYMERGING cost: `f(S) = |S|`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cardinality;

impl CostModel for Cardinality {
    fn cost(&self, set: &KeySet) -> u64 {
        set.len() as u64
    }
}

/// Weighted-key cost: `f(S) = Σ_{x ∈ S} w(x)`, modelling sstables whose
/// entries have different sizes. Keys without an explicit weight use
/// `default_weight`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightedKeys {
    weights: HashMap<u64, u64>,
    default_weight: u64,
}

impl WeightedKeys {
    /// Creates a weighted cost model. `default_weight` applies to any key
    /// absent from `weights`.
    #[must_use]
    pub fn new(weights: HashMap<u64, u64>, default_weight: u64) -> Self {
        Self {
            weights,
            default_weight,
        }
    }

    /// Creates a model where every key weighs `weight`. Costs then equal
    /// `weight · |S|`, a scaled version of [`Cardinality`].
    #[must_use]
    pub fn uniform(weight: u64) -> Self {
        Self {
            weights: HashMap::new(),
            default_weight: weight,
        }
    }

    /// The weight of a single key.
    #[must_use]
    pub fn weight_of(&self, key: u64) -> u64 {
        self.weights
            .get(&key)
            .copied()
            .unwrap_or(self.default_weight)
    }
}

impl CostModel for WeightedKeys {
    fn cost(&self, set: &KeySet) -> u64 {
        set.iter().map(|k| self.weight_of(k)).sum()
    }
}

/// Adds a constant per-materialized-sstable overhead on top of another
/// model: `f(S) = overhead + g(S)` for non-empty `S`, and `0` for the
/// empty set (so the function stays submodular and normalized).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstantOverhead<M> {
    inner: M,
    overhead: u64,
}

impl<M: CostModel> ConstantOverhead<M> {
    /// Wraps `inner`, adding `overhead` to the cost of every non-empty
    /// set.
    #[must_use]
    pub fn new(inner: M, overhead: u64) -> Self {
        Self { inner, overhead }
    }

    /// The wrapped model.
    #[must_use]
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: CostModel> CostModel for ConstantOverhead<M> {
    fn cost(&self, set: &KeySet) -> u64 {
        if set.is_empty() {
            0
        } else {
            self.overhead + self.inner.cost(set)
        }
    }
}

impl<M: CostModel + ?Sized> CostModel for &M {
    fn cost(&self, set: &KeySet) -> u64 {
        (**self).cost(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_is_set_size() {
        let s = KeySet::from_iter([1u64, 2, 3]);
        assert_eq!(Cardinality.cost(&s), 3);
        assert_eq!(Cardinality.cost(&KeySet::new()), 0);
    }

    #[test]
    fn weighted_keys_sum_weights() {
        let mut w = HashMap::new();
        w.insert(1u64, 10u64);
        w.insert(2, 20);
        let model = WeightedKeys::new(w, 1);
        let s = KeySet::from_iter([1u64, 2, 3]);
        assert_eq!(model.cost(&s), 31);
        assert_eq!(model.weight_of(99), 1);
        assert_eq!(WeightedKeys::uniform(5).cost(&s), 15);
    }

    #[test]
    fn constant_overhead_only_on_nonempty() {
        let model = ConstantOverhead::new(Cardinality, 100);
        assert_eq!(model.cost(&KeySet::new()), 0);
        assert_eq!(model.cost(&KeySet::from_iter([7u64])), 101);
        assert_eq!(model.inner().cost(&KeySet::from_iter([7u64])), 1);
    }

    #[test]
    fn reference_forwarding() {
        let s = KeySet::from_iter([1u64, 2]);
        let by_ref: &dyn CostModel = &Cardinality;
        assert_eq!(by_ref.cost(&s), 2);
        assert_eq!(Cardinality.cost(&s), 2);
    }
}
