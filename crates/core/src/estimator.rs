//! Cardinality estimation for the SMALLESTOUTPUT heuristic.
//!
//! Choosing the pair of sstables with the smallest union requires knowing
//! `|A ∪ B|` for every candidate pair *without* merging them. The paper's
//! simulator estimates these cardinalities with HyperLogLog (Section 5.1,
//! strategy 2); the exact two-pointer count is also provided so the cost
//! of estimation error can be measured (the `so_exact_vs_hll` ablation
//! bench).

use hll::HyperLogLog;

use crate::KeySet;

/// Estimates the cardinality of a union of key sets.
pub trait CardinalityEstimator: std::fmt::Debug {
    /// Estimated `|S_1 ∪ … ∪ S_m|` for the given sets.
    fn union_estimate(&self, sets: &[&KeySet]) -> u64;
}

/// Exact union cardinality (two-pointer merge counting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactEstimator;

impl CardinalityEstimator for ExactEstimator {
    fn union_estimate(&self, sets: &[&KeySet]) -> u64 {
        match sets {
            [] => 0,
            [only] => only.len() as u64,
            [a, b] => a.union_size(b) as u64,
            many => KeySet::union_many(many.iter().copied()).len() as u64,
        }
    }
}

/// HyperLogLog-based union estimation, as used by the paper's simulator.
///
/// Each call builds sketches for the operand sets and merges them; the
/// compaction simulator additionally caches per-sstable sketches so the
/// per-iteration overhead matches the paper's description (recompute only
/// combinations involving the newly created sstable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HllEstimator {
    precision: u8,
}

impl HllEstimator {
    /// Creates an estimator with the given HyperLogLog precision.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`hll::Error`] if the precision is outside
    /// the supported range.
    pub fn new(precision: u8) -> Result<Self, hll::Error> {
        // Validate eagerly so later sketch construction cannot fail.
        HyperLogLog::new(precision)?;
        Ok(Self { precision })
    }

    /// The configured precision.
    #[must_use]
    pub fn precision(&self) -> u8 {
        self.precision
    }

    /// Builds the sketch of a single key set (used by callers that cache
    /// per-sstable sketches).
    #[must_use]
    pub fn sketch(&self, set: &KeySet) -> HyperLogLog {
        let mut sketch = HyperLogLog::new(self.precision).expect("precision validated in new()");
        for key in set.iter() {
            sketch.add_u64(key);
        }
        sketch
    }
}

impl Default for HllEstimator {
    fn default() -> Self {
        Self {
            precision: hll::DEFAULT_PRECISION,
        }
    }
}

impl CardinalityEstimator for HllEstimator {
    fn union_estimate(&self, sets: &[&KeySet]) -> u64 {
        let mut merged = HyperLogLog::new(self.precision).expect("precision validated in new()");
        for set in sets {
            for key in set.iter() {
                merged.add_u64(key);
            }
        }
        merged.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_estimator_matches_true_union() {
        let a = KeySet::from_range(0..100);
        let b = KeySet::from_range(50..150);
        let c = KeySet::from_range(140..160);
        assert_eq!(ExactEstimator.union_estimate(&[]), 0);
        assert_eq!(ExactEstimator.union_estimate(&[&a]), 100);
        assert_eq!(ExactEstimator.union_estimate(&[&a, &b]), 150);
        assert_eq!(ExactEstimator.union_estimate(&[&a, &b, &c]), 160);
    }

    #[test]
    fn hll_estimator_tracks_exact_within_tolerance() {
        let est = HllEstimator::new(14).unwrap();
        let a = KeySet::from_range(0..20_000);
        let b = KeySet::from_range(10_000..30_000);
        let exact = ExactEstimator.union_estimate(&[&a, &b]) as f64;
        let approx = est.union_estimate(&[&a, &b]) as f64;
        assert!(
            (approx - exact).abs() / exact < 0.05,
            "exact={exact} approx={approx}"
        );
    }

    #[test]
    fn hll_estimator_rejects_bad_precision_and_defaults() {
        assert!(HllEstimator::new(2).is_err());
        let default = HllEstimator::default();
        assert_eq!(default.precision(), hll::DEFAULT_PRECISION);
    }

    #[test]
    fn sketch_caching_path_matches_direct_estimation() {
        let est = HllEstimator::new(12).unwrap();
        let a = KeySet::from_range(0..5_000);
        let b = KeySet::from_range(2_500..7_500);
        let mut sa = est.sketch(&a);
        let sb = est.sketch(&b);
        sa.merge(&sb).unwrap();
        assert_eq!(sa.count(), est.union_estimate(&[&a, &b]));
    }
}
