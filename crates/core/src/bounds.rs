//! Lower bounds, approximation-ratio reporting and the paper's
//! adversarial instances.

use crate::{Cardinality, CostModel, KeySet, MergeSchedule};

/// The lower bound `LOPT = Σᵢ |Aᵢ|` on the optimal merge cost
/// (Section 4.1): every leaf of any merge tree is counted at least once
/// by the cost function.
#[must_use]
pub fn lopt_lower_bound(sets: &[KeySet]) -> u64 {
    lopt_lower_bound_with(sets, &Cardinality)
}

/// [`lopt_lower_bound`] under an arbitrary cost model (valid because the
/// models are monotone: each leaf is still counted once).
#[must_use]
pub fn lopt_lower_bound_with<M: CostModel>(sets: &[KeySet], model: &M) -> u64 {
    sets.iter().map(|s| model.cost(s)).sum()
}

/// A schedule's cost relative to the `LOPT` lower bound
/// (`cost / LOPT ≥ cost / OPT`, so this *over-estimates* the true
/// approximation ratio). This is the quantity Figure 8 plots.
#[must_use]
pub fn ratio_to_lopt(schedule: &MergeSchedule, sets: &[KeySet]) -> f64 {
    let lopt = lopt_lower_bound(sets);
    if lopt == 0 {
        return 1.0;
    }
    schedule.cost(sets) as f64 / lopt as f64
}

/// The theoretical `2·H_n + 1` approximation bound proved for
/// SMALLESTINPUT and SMALLESTOUTPUT in Lemma 4.4 (`H_n` is the `n`-th
/// harmonic number).
#[must_use]
pub fn greedy_approximation_bound(n: usize) -> f64 {
    2.0 * harmonic(n) + 1.0
}

/// The `⌈log₂ n⌉ + 1` approximation bound proved for BALANCETREE in
/// Lemma 4.1.
#[must_use]
pub fn balance_tree_approximation_bound(n: usize) -> f64 {
    (n.max(1) as f64).log2().ceil() + 1.0
}

/// The `n`-th harmonic number `H_n = Σ_{i=1..n} 1/i`.
#[must_use]
pub fn harmonic(n: usize) -> f64 {
    (1..=n).map(|i| 1.0 / i as f64).sum()
}

/// Adversarial instance generators from the paper's tightness arguments.
pub mod adversarial {
    use super::KeySet;

    /// Lemma 4.2's family: `n − 1` copies of `{1}` plus one set
    /// `{1, …, n}`. BALANCETREE pays `Ω(log n)`× the optimum here because
    /// the big set reappears at every level of the balanced tree, while
    /// the left-to-right merge is optimal.
    #[must_use]
    pub fn balance_tree_tight(n: usize) -> Vec<KeySet> {
        assert!(n >= 2);
        let mut sets: Vec<KeySet> = (0..n - 1).map(|_| KeySet::from_iter([1u64])).collect();
        sets.push(KeySet::from_vec((1..=n as u64).collect()));
        sets
    }

    /// Lemma 4.5's family: `n` disjoint singletons. SMALLESTINPUT and
    /// SMALLESTOUTPUT build a balanced tree of total cost `n·log₂ n +
    /// n ≈ log n · LOPT`, showing the analysis is tight *against the
    /// lower bound* (not necessarily against OPT).
    #[must_use]
    pub fn greedy_lopt_tight(n: usize) -> Vec<KeySet> {
        (0..n as u64).map(|i| KeySet::from_iter([i])).collect()
    }

    /// The LARGESTMATCH `Ω(n)` gap family (Section 4.3.4):
    /// `A_i = {1, …, 2^{i−1}}` for `i = 1..=n`. LARGESTMATCH always picks
    /// the largest set (it intersects everything maximally) and pays
    /// `≈ 2^{n−1}·(n−1)`, while the left-to-right merge pays `2^{n+1} − 3`
    /// in `cost_actual` terms.
    #[must_use]
    pub fn largest_match_gap(n: usize) -> Vec<KeySet> {
        assert!((1..=32).contains(&n), "sets grow as 2^n; keep n small");
        (1..=n)
            .map(|i| KeySet::from_range(1..(1u64 << (i - 1)) + 1))
            .collect()
    }
}

/// A compact report comparing one schedule against the lower bound and
/// the analytic approximation guarantees; used by the experiment
/// harness and the `tables` binary.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproximationReport {
    /// Number of initial sets.
    pub n: usize,
    /// The schedule's simplified cost (eq. 2.1).
    pub cost: u64,
    /// The schedule's `cost_actual` (disk I/O).
    pub cost_actual: u64,
    /// The `LOPT` lower bound.
    pub lopt: u64,
    /// `cost / LOPT`.
    pub ratio_to_lopt: f64,
    /// The analytic `2·H_n + 1` greedy bound for reference.
    pub greedy_bound: f64,
    /// The analytic `⌈log₂ n⌉ + 1` BALANCETREE bound for reference.
    pub balance_tree_bound: f64,
}

/// Builds an [`ApproximationReport`] for a schedule over `sets`.
#[must_use]
pub fn report(schedule: &MergeSchedule, sets: &[KeySet]) -> ApproximationReport {
    ApproximationReport {
        n: sets.len(),
        cost: schedule.cost(sets),
        cost_actual: schedule.cost_actual(sets),
        lopt: lopt_lower_bound(sets),
        ratio_to_lopt: ratio_to_lopt(schedule, sets),
        greedy_bound: greedy_approximation_bound(sets.len()),
        balance_tree_bound: balance_tree_approximation_bound(sets.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{schedule_with, Strategy};

    #[test]
    fn lopt_is_sum_of_leaf_sizes() {
        let sets = vec![
            KeySet::from_iter([1u64, 2, 3]),
            KeySet::from_iter([3u64, 4]),
            KeySet::from_iter([9u64]),
        ];
        assert_eq!(lopt_lower_bound(&sets), 6);
        let weighted = crate::WeightedKeys::uniform(10);
        assert_eq!(lopt_lower_bound_with(&sets, &weighted), 60);
    }

    #[test]
    fn every_heuristic_respects_its_analytic_bound_vs_lopt_examples() {
        // On random-ish overlapping instances the greedy heuristics stay
        // well below their worst-case bounds relative to LOPT.
        let sets: Vec<KeySet> = (0..10u64)
            .map(|i| KeySet::from_range(i * 7..i * 7 + 20))
            .collect();
        for strategy in [
            Strategy::BalanceTree,
            Strategy::BalanceTreeInput,
            Strategy::SmallestInput,
            Strategy::SmallestOutput,
        ] {
            let schedule = schedule_with(strategy, &sets, 2).unwrap();
            let ratio = ratio_to_lopt(&schedule, &sets);
            let bound = match strategy {
                Strategy::BalanceTree | Strategy::BalanceTreeInput => {
                    balance_tree_approximation_bound(sets.len())
                }
                _ => greedy_approximation_bound(sets.len()),
            };
            assert!(
                ratio <= bound,
                "{strategy}: ratio {ratio} exceeds analytic bound {bound}"
            );
        }
    }

    #[test]
    fn lemma_4_2_balance_tree_pays_log_factor() {
        // BT's cost on the tight family is at least n·(log₂ n + 1) because
        // the big set appears at every level, whereas the optimal
        // left-to-right merge costs Θ(n).
        let n = 16usize;
        let sets = adversarial::balance_tree_tight(n);
        let bt = schedule_with(Strategy::BalanceTreeInput, &sets, 2).unwrap();
        assert!(bt.cost(&sets) >= (n as u64) * ((n as f64).log2() as u64));
        // The left-to-right merge is optimal on this family and its
        // simplified cost is 4n − 3 (Lemma 4.2).
        let l2r = crate::optimal::left_to_right_schedule(n, 2).unwrap();
        assert_eq!(l2r.cost(&sets), 4 * n as u64 - 3);
        assert!(
            bt.cost(&sets) as f64 >= 1.5 * l2r.cost(&sets) as f64,
            "BT must pay a super-constant factor over the caterpillar merge"
        );
    }

    #[test]
    fn lemma_4_5_greedy_is_log_n_times_lopt_on_disjoint_singletons() {
        let n = 32usize;
        let sets = adversarial::greedy_lopt_tight(n);
        assert_eq!(lopt_lower_bound(&sets), n as u64);
        for strategy in [Strategy::SmallestInput, Strategy::SmallestOutput] {
            let schedule = schedule_with(strategy, &sets, 2).unwrap();
            // cost = n (leaves) + n per internal level = n·(log₂ n + 1).
            let expected = n as u64 * ((n as f64).log2() as u64 + 1);
            assert_eq!(schedule.cost(&sets), expected, "{strategy}");
            let ratio = ratio_to_lopt(&schedule, &sets);
            assert!((ratio - ((n as f64).log2() + 1.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn harmonic_and_bound_helpers() {
        assert!((harmonic(1) - 1.0).abs() < 1e-12);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
        assert!(greedy_approximation_bound(1) > 2.9);
        assert_eq!(balance_tree_approximation_bound(8), 4.0);
        assert_eq!(balance_tree_approximation_bound(1), 1.0);
    }

    #[test]
    fn report_is_internally_consistent() {
        let sets = adversarial::largest_match_gap(6);
        let schedule = schedule_with(Strategy::SmallestInput, &sets, 2).unwrap();
        let rep = report(&schedule, &sets);
        assert_eq!(rep.n, 6);
        assert_eq!(rep.lopt, lopt_lower_bound(&sets));
        assert!((rep.ratio_to_lopt - rep.cost as f64 / rep.lopt as f64).abs() < 1e-12);
        assert!(rep.cost_actual >= rep.cost - rep.lopt);
    }

    #[test]
    fn adversarial_generators_shapes() {
        let bt = adversarial::balance_tree_tight(8);
        assert_eq!(bt.len(), 8);
        assert_eq!(bt[7].len(), 8);
        let dj = adversarial::greedy_lopt_tight(5);
        assert!(dj.iter().all(|s| s.len() == 1));
        let lm = adversarial::largest_match_gap(4);
        assert_eq!(lm[3].len(), 8);
    }
}
