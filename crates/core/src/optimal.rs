//! Exact and reference solvers.
//!
//! BINARYMERGING is NP-hard (Section 3 / Appendix A), so exact solutions
//! are only feasible for small instances; they are used throughout the
//! test suite and benchmarks to measure how far the greedy heuristics are
//! from optimal (the paper instead compares against the `LOPT` lower
//! bound in Figure 8 — both comparisons are provided here).

use std::collections::HashMap;

use crate::{Cardinality, CostModel, Error, KeySet, MergeOp, MergeSchedule};

/// Largest instance size accepted by [`optimal_schedule`]. The search
/// memoizes on partitions of the initial sets, whose count (the Bell
/// numbers) grows faster than exponentially; 10 keeps worst-case runtime
/// in the low seconds.
pub const MAX_EXACT_SETS: usize = 10;

/// Finds a minimum-cost binary merge schedule by memoized exhaustive
/// search over which initial sets end up merged together, for instances
/// of at most [`MAX_EXACT_SETS`] sets.
///
/// # Errors
///
/// * [`Error::EmptyInput`] for zero sets.
/// * [`Error::InvalidFanIn`] for `k < 2` (only `k = 2` search is exact;
///   larger `k` is accepted and searched over k-way merges too).
/// * [`Error::InstanceTooLarge`] for more than [`MAX_EXACT_SETS`] sets.
///
/// # Examples
///
/// ```
/// use compaction_core::{optimal::optimal_schedule, KeySet, Strategy, schedule_with};
///
/// let sets = vec![
///     KeySet::from_iter([1u64, 2, 3, 5]),
///     KeySet::from_iter([1u64, 2, 3, 4]),
///     KeySet::from_iter([3u64, 4, 5]),
///     KeySet::from_iter([6u64, 7, 8]),
///     KeySet::from_iter([7u64, 8, 9]),
/// ];
/// let opt = optimal_schedule(&sets, 2)?;
/// let so = schedule_with(Strategy::SmallestOutput, &sets, 2)?;
/// assert!(opt.cost(&sets) <= so.cost(&sets));
/// # Ok::<(), compaction_core::Error>(())
/// ```
pub fn optimal_schedule(sets: &[KeySet], k: usize) -> Result<MergeSchedule, Error> {
    optimal_schedule_with(sets, k, &Cardinality)
}

/// [`optimal_schedule`] under an arbitrary cost model (the
/// SUBMODULARMERGING exact reference).
///
/// # Errors
///
/// Same conditions as [`optimal_schedule`].
pub fn optimal_schedule_with<M: CostModel>(
    sets: &[KeySet],
    k: usize,
    model: &M,
) -> Result<MergeSchedule, Error> {
    if sets.is_empty() {
        return Err(Error::EmptyInput);
    }
    if k < 2 {
        return Err(Error::InvalidFanIn { requested: k });
    }
    if sets.len() > MAX_EXACT_SETS {
        return Err(Error::InstanceTooLarge {
            n: sets.len(),
            max: MAX_EXACT_SETS,
        });
    }
    let n = sets.len();
    if n == 1 {
        return MergeSchedule::new(1, k, vec![]);
    }

    // State: a sorted list of "groups", each group being the bitmask of
    // initial sets merged into it so far. The cost already paid is carried
    // alongside; memoization keys on the multiset of masks.
    let full_mask: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let mut memo: HashMap<Vec<u32>, (u64, Vec<Vec<u32>>)> = HashMap::new();
    let union_cost = |mask: u32| -> u64 {
        let members = (0..n).filter(|i| mask & (1 << i) != 0).map(|i| &sets[i]);
        model.cost(&KeySet::union_many(members))
    };

    // Returns (additional cost to finish, merge list of chosen input-mask
    // groups per op) for the given state.
    fn solve(
        state: &[u32],
        k: usize,
        full_mask: u32,
        union_cost: &dyn Fn(u32) -> u64,
        memo: &mut HashMap<Vec<u32>, (u64, Vec<Vec<u32>>)>,
    ) -> (u64, Vec<Vec<u32>>) {
        if state.len() == 1 {
            debug_assert_eq!(state[0], full_mask);
            return (0, vec![]);
        }
        if let Some(hit) = memo.get(state) {
            return hit.clone();
        }
        let mut best_cost = u64::MAX;
        let mut best_plan: Vec<Vec<u32>> = Vec::new();
        // Enumerate subsets of positions of size 2..=k to merge next.
        let positions: Vec<usize> = (0..state.len()).collect();
        let mut chosen = Vec::new();
        enumerate_subsets(
            &positions,
            2,
            k.min(state.len()),
            &mut chosen,
            &mut |subset| {
                let merged_mask = subset.iter().fold(0u32, |acc, &p| acc | state[p]);
                let step_cost = union_cost(merged_mask);
                if step_cost >= best_cost {
                    return; // cannot improve (costs are non-negative)
                }
                let mut next: Vec<u32> = state
                    .iter()
                    .enumerate()
                    .filter(|(p, _)| !subset.contains(p))
                    .map(|(_, &m)| m)
                    .collect();
                next.push(merged_mask);
                next.sort_unstable();
                let (rest_cost, rest_plan) = solve(&next, k, full_mask, union_cost, memo);
                let total = step_cost.saturating_add(rest_cost);
                if total < best_cost {
                    let mut plan = vec![subset.iter().map(|&p| state[p]).collect::<Vec<u32>>()];
                    plan.extend(rest_plan);
                    best_cost = total;
                    best_plan = plan;
                }
            },
        );
        memo.insert(state.to_vec(), (best_cost, best_plan.clone()));
        (best_cost, best_plan)
    }

    let mut state: Vec<u32> = (0..n).map(|i| 1u32 << i).collect();
    state.sort_unstable();
    let (_, plan) = solve(&state, k, full_mask, &union_cost, &mut memo);

    // Convert the plan (sequences of merged masks) into slot-based ops.
    let mut mask_to_slot: HashMap<u32, usize> = (0..n).map(|i| (1u32 << i, i)).collect();
    let mut ops = Vec::with_capacity(plan.len());
    for (op_index, input_masks) in plan.iter().enumerate() {
        let inputs: Vec<usize> = input_masks.iter().map(|m| mask_to_slot[m]).collect();
        let merged_mask = input_masks.iter().fold(0u32, |acc, &m| acc | m);
        mask_to_slot.insert(merged_mask, n + op_index);
        ops.push(MergeOp::new(inputs));
    }
    MergeSchedule::new(n, k, ops)
}

/// Calls `f` with every subset of `positions` of size between `min` and
/// `max`, in lexicographic order.
fn enumerate_subsets(
    positions: &[usize],
    min: usize,
    max: usize,
    current: &mut Vec<usize>,
    f: &mut impl FnMut(&[usize]),
) {
    if current.len() >= min {
        f(current);
    }
    if current.len() == max {
        return;
    }
    let start = current.last().map_or(0, |&last| {
        positions.iter().position(|&p| p == last).expect("member") + 1
    });
    for idx in start..positions.len() {
        current.push(positions[idx]);
        enumerate_subsets(positions, min, max, current, f);
        current.pop();
    }
}

/// The Huffman-style solver: repeatedly merge the two smallest groups.
/// Optimal for **disjoint** sets (Lemma 4.3 / Section 2's reduction to
/// Huffman coding); for overlapping sets it coincides with the
/// SMALLESTINPUT heuristic.
///
/// # Errors
///
/// Returns [`Error::EmptyInput`] for zero sets and
/// [`Error::InvalidFanIn`] for `k < 2`.
pub fn huffman_schedule(sets: &[KeySet], k: usize) -> Result<MergeSchedule, Error> {
    crate::heuristics::GreedyMerger::new(sets, k)?.run(crate::heuristics::SmallestInputPolicy)
}

/// The left-to-right caterpillar merge (`((A_1 ∪ A_2) ∪ A_3) ∪ …`), the
/// optimal schedule for the adversarial families of Lemma 4.2 and the
/// LARGESTMATCH gap. Expressed purely over slot indices, so it applies to
/// any instance with `n` sets.
///
/// # Errors
///
/// Returns [`Error::EmptyInput`] for `n = 0` and [`Error::InvalidFanIn`]
/// for `k < 2`.
pub fn left_to_right_schedule(n: usize, k: usize) -> Result<MergeSchedule, Error> {
    if n == 0 {
        return Err(Error::EmptyInput);
    }
    if k < 2 {
        return Err(Error::InvalidFanIn { requested: k });
    }
    let mut ops = Vec::with_capacity(n.saturating_sub(1));
    let mut acc = 0usize;
    for next in 1..n {
        let output = n + ops.len();
        ops.push(MergeOp::new(vec![acc, next]));
        acc = output;
    }
    MergeSchedule::new(n, k, ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{schedule_with, Strategy};

    fn working_example() -> Vec<KeySet> {
        vec![
            KeySet::from_iter([1u64, 2, 3, 5]),
            KeySet::from_iter([1u64, 2, 3, 4]),
            KeySet::from_iter([3u64, 4, 5]),
            KeySet::from_iter([6u64, 7, 8]),
            KeySet::from_iter([7u64, 8, 9]),
        ]
    }

    #[test]
    fn optimal_beats_or_ties_every_heuristic_on_the_working_example() {
        let sets = working_example();
        let opt = optimal_schedule(&sets, 2).unwrap();
        let opt_cost = opt.cost(&sets);
        assert!(
            opt_cost <= 40,
            "SO achieves 40, the optimum cannot exceed it"
        );
        for strategy in [
            Strategy::BalanceTree,
            Strategy::BalanceTreeOutput,
            Strategy::SmallestInput,
            Strategy::SmallestOutput,
            Strategy::LargestMatch,
            Strategy::Random { seed: 0 },
            Strategy::Frequency,
        ] {
            let cost = schedule_with(strategy, &sets, 2).unwrap().cost(&sets);
            assert!(
                opt_cost <= cost,
                "{strategy}: opt {opt_cost} > heuristic {cost}"
            );
        }
    }

    #[test]
    fn optimal_on_disjoint_sets_equals_huffman() {
        // Disjoint sets reduce to Huffman coding; the greedy Huffman
        // solver must therefore achieve the exhaustive optimum.
        let sets: Vec<KeySet> = [3u64, 1, 4, 1, 5]
            .iter()
            .scan(0u64, |offset, &len| {
                let set = KeySet::from_range(*offset..*offset + len.max(1));
                *offset += 100;
                Some(set)
            })
            .collect();
        let opt = optimal_schedule(&sets, 2).unwrap().cost(&sets);
        let huff = huffman_schedule(&sets, 2).unwrap().cost(&sets);
        assert_eq!(opt, huff);
    }

    #[test]
    fn left_to_right_is_optimal_for_lemma_4_2_family() {
        // (n−1) copies of {1} plus {1..n}: the caterpillar left-to-right
        // merge is optimal (cost 4n−3 in cost_actual terms; in simplified
        // cost the optimum is n−1 ones + n + (n−1) merge outputs of size 1
        // … verified against the exhaustive solver).
        let n = 8u64;
        let mut sets: Vec<KeySet> = (0..n - 1).map(|_| KeySet::from_iter([1u64])).collect();
        sets.push(KeySet::from_vec((1..=n).collect()));
        let opt = optimal_schedule(&sets, 2).unwrap();
        let l2r = left_to_right_schedule(sets.len(), 2).unwrap();
        assert_eq!(opt.cost(&sets), l2r.cost(&sets));
        // The simplified cost of the left-to-right merge is 4n − 3
        // (Lemma 4.2's "(4n − 3)" figure).
        assert_eq!(l2r.cost(&sets), 4 * n - 3);
    }

    #[test]
    fn exact_solver_respects_kway_fanin() {
        let sets: Vec<KeySet> = (0..6u64).map(|i| KeySet::from_iter([i])).collect();
        let k2 = optimal_schedule(&sets, 2).unwrap();
        let k3 = optimal_schedule(&sets, 3).unwrap();
        assert!(k2.ops().iter().all(|op| op.inputs.len() == 2));
        assert!(k3.ops().iter().all(|op| op.inputs.len() <= 3));
        assert!(k3.cost(&sets) <= k2.cost(&sets));
    }

    #[test]
    fn exact_solver_with_submodular_model() {
        let sets = vec![
            KeySet::from_iter([1u64, 2]),
            KeySet::from_iter([2u64, 3]),
            KeySet::from_iter([10u64]),
        ];
        let model = crate::ConstantOverhead::new(Cardinality, 5);
        let opt = optimal_schedule_with(&sets, 2, &model).unwrap();
        // Any schedule performs 2 merges; the optimum merges the two
        // overlapping sets first.
        let mut first = opt.ops()[0].inputs.clone();
        first.sort_unstable();
        assert_eq!(first, vec![0, 1]);
    }

    #[test]
    fn errors_for_invalid_instances() {
        assert!(matches!(optimal_schedule(&[], 2), Err(Error::EmptyInput)));
        let sets = working_example();
        assert!(matches!(
            optimal_schedule(&sets, 1),
            Err(Error::InvalidFanIn { requested: 1 })
        ));
        let big: Vec<KeySet> = (0..13u64).map(|i| KeySet::from_iter([i])).collect();
        assert!(matches!(
            optimal_schedule(&big, 2),
            Err(Error::InstanceTooLarge { n: 13, .. })
        ));
        assert_eq!(MAX_EXACT_SETS, 10);
        assert!(matches!(
            left_to_right_schedule(0, 2),
            Err(Error::EmptyInput)
        ));
        assert!(matches!(
            left_to_right_schedule(3, 0),
            Err(Error::InvalidFanIn { .. })
        ));
    }

    #[test]
    fn single_set_instances() {
        let sets = vec![KeySet::from_iter([1u64])];
        assert!(optimal_schedule(&sets, 2).unwrap().is_empty());
        assert!(huffman_schedule(&sets, 2).unwrap().is_empty());
        assert!(left_to_right_schedule(1, 2).unwrap().is_empty());
    }
}
