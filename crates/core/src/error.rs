//! Error type for the compaction scheduling library.

use std::fmt;

/// Errors produced while building or validating merge schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Scheduling was requested over an empty collection of sets.
    EmptyInput,
    /// The per-iteration fan-in `k` must be at least 2.
    InvalidFanIn {
        /// The requested fan-in.
        requested: usize,
    },
    /// A merge operation referenced a slot that does not exist or has
    /// already been consumed by an earlier merge.
    InvalidSlot {
        /// Index of the offending operation within the schedule.
        op_index: usize,
        /// The offending slot.
        slot: usize,
    },
    /// A merge operation listed fewer than two inputs or more than `k`.
    InvalidOpArity {
        /// Index of the offending operation within the schedule.
        op_index: usize,
        /// Number of inputs the operation listed.
        arity: usize,
        /// The schedule's fan-in bound.
        fanin: usize,
    },
    /// The schedule does not reduce the initial collection to exactly one
    /// set.
    IncompleteSchedule {
        /// Number of live slots remaining after the last operation.
        remaining: usize,
    },
    /// The exhaustive optimal solver was asked to handle an instance
    /// larger than it can search.
    InstanceTooLarge {
        /// Number of sets in the instance.
        n: usize,
        /// Largest supported number of sets.
        max: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyInput => write!(f, "cannot schedule a merge over zero sets"),
            Error::InvalidFanIn { requested } => {
                write!(f, "fan-in k must be at least 2, got {requested}")
            }
            Error::InvalidSlot { op_index, slot } => write!(
                f,
                "operation {op_index} references slot {slot} which is unknown or already merged"
            ),
            Error::InvalidOpArity {
                op_index,
                arity,
                fanin,
            } => write!(
                f,
                "operation {op_index} merges {arity} sets, expected between 2 and {fanin}"
            ),
            Error::IncompleteSchedule { remaining } => {
                write!(f, "schedule leaves {remaining} sets, expected exactly 1")
            }
            Error::InstanceTooLarge { n, max } => {
                write!(f, "exact solver supports at most {max} sets, got {n}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_facts() {
        assert!(Error::EmptyInput.to_string().contains("zero sets"));
        assert!(Error::InvalidFanIn { requested: 1 }
            .to_string()
            .contains('1'));
        assert!(Error::InvalidSlot {
            op_index: 3,
            slot: 9
        }
        .to_string()
        .contains("slot 9"));
        assert!(Error::InvalidOpArity {
            op_index: 0,
            arity: 5,
            fanin: 2
        }
        .to_string()
        .contains("5"));
        assert!(Error::IncompleteSchedule { remaining: 4 }
            .to_string()
            .contains('4'));
        assert!(Error::InstanceTooLarge { n: 30, max: 12 }
            .to_string()
            .contains("30"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
