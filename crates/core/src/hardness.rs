//! Constructions from the NP-hardness proof (Appendix A), exposed so the
//! test suite can validate the paper's structural lemmas empirically.
//!
//! The reduction shows BINARYMERGING is NP-hard by (a) proving
//! OPT-TREE-ASSIGN on the complete binary tree is NP-hard (via SIMPLE
//! DATA ARRANGEMENT) and (b) *forcing* the optimal merge tree to be the
//! complete binary tree by padding every input set `A_i` with a large
//! disjoint set `B_i` of size `S > 2mn` (Lemma A.5). The helpers here
//! build those padded instances and the graph-derived set families used
//! in step (a).

use crate::{Error, KeySet, MergeTree};

/// Builds the padded instance `A_i ∪ B_i` of Lemma A.5: the `B_i` are
/// pairwise disjoint, disjoint from every `A_j`, and all of size
/// `padding_size`. Choosing `padding_size > 2·m·n` (with `m` the number
/// of distinct keys across the `A_i`) forces any optimal merge tree for
/// the padded instance to be the complete binary tree.
///
/// Padding keys are drawn from a reserved high range so they can never
/// collide with real keys (which the workload generator keeps below
/// `2^48`).
///
/// # Errors
///
/// Returns [`Error::EmptyInput`] if `sets` is empty.
pub fn pad_with_disjoint_blocks(sets: &[KeySet], padding_size: u64) -> Result<Vec<KeySet>, Error> {
    if sets.is_empty() {
        return Err(Error::EmptyInput);
    }
    const PAD_BASE: u64 = 1 << 60;
    Ok(sets
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let start = PAD_BASE + (i as u64) * padding_size;
            let pad = KeySet::from_range(start..start + padding_size);
            a.union(&pad)
        })
        .collect())
}

/// The padding size Lemma A.5 requires: `2·m·n + 1`, where `m` is the
/// total number of distinct keys across `sets` and `n` the number of
/// sets.
#[must_use]
pub fn required_padding_size(sets: &[KeySet]) -> u64 {
    let m = KeySet::union_many(sets.iter()).len() as u64;
    let n = sets.len() as u64;
    2 * m * n + 1
}

/// Derives the OPT-TREE-ASSIGN instance of Lemma A.1 from an undirected
/// graph: vertex `i` becomes the set of edge ids incident to `i`. An
/// optimal assignment of these sets to the leaves of the complete binary
/// tree encodes an optimal SIMPLE DATA ARRANGEMENT of the graph.
///
/// Edges are given as `(u, v)` pairs over vertices `0..vertex_count`;
/// edge `e` gets key id `e`.
#[must_use]
pub fn sets_from_graph(vertex_count: usize, edges: &[(usize, usize)]) -> Vec<KeySet> {
    let mut sets = vec![Vec::new(); vertex_count];
    for (edge_id, &(u, v)) in edges.iter().enumerate() {
        if u < vertex_count {
            sets[u].push(edge_id as u64);
        }
        if v < vertex_count {
            sets[v].push(edge_id as u64);
        }
    }
    sets.into_iter().map(KeySet::from_vec).collect()
}

/// Evaluates the identity of Lemma A.4: for padded sets the
/// OPT-TREE-ASSIGN cost decomposes as
/// `cost(T, π, A ∪ B) = cost(T, π, A) + S · η(T)`.
///
/// Returns the tuple `(lhs, rhs)` so tests can assert equality; both are
/// computed under the cardinality model.
///
/// # Errors
///
/// Propagates assignment-validation errors from
/// [`MergeTree::assignment_cost`].
pub fn lemma_a4_decomposition(
    tree: &MergeTree,
    assignment: &[usize],
    original: &[KeySet],
    padding_size: u64,
) -> Result<(u64, u64), Error> {
    let padded = pad_with_disjoint_blocks(original, padding_size)?;
    let lhs = tree.assignment_cost(&padded, assignment, &crate::Cardinality)?;
    let base = tree.assignment_cost(original, assignment, &crate::Cardinality)?;
    let rhs = base + padding_size * tree.eta();
    Ok((lhs, rhs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{schedule_with, Strategy};

    fn small_instance() -> Vec<KeySet> {
        vec![
            KeySet::from_iter([1u64, 2, 3]),
            KeySet::from_iter([2u64, 4]),
            KeySet::from_iter([5u64]),
            KeySet::from_iter([1u64, 5, 6]),
        ]
    }

    #[test]
    fn padding_is_disjoint_and_correctly_sized() {
        let sets = small_instance();
        let s = required_padding_size(&sets);
        assert_eq!(s, 2 * 6 * 4 + 1, "m = 6 distinct keys, n = 4 sets");
        let padded = pad_with_disjoint_blocks(&sets, s).unwrap();
        for (i, p) in padded.iter().enumerate() {
            assert_eq!(p.len() as u64, sets[i].len() as u64 + s);
            for (j, q) in padded.iter().enumerate() {
                if i != j {
                    // The pads never overlap; only original keys may.
                    let overlap = p.intersection_size(q) as u64;
                    assert!(overlap <= sets[i].intersection_size(&sets[j]) as u64);
                }
            }
        }
        assert!(pad_with_disjoint_blocks(&[], 5).is_err());
    }

    #[test]
    fn lemma_a4_identity_holds() {
        let sets = small_instance();
        let tree = MergeTree::complete_binary(sets.len());
        let assignment = [0usize, 1, 2, 3];
        let s = required_padding_size(&sets);
        let (lhs, rhs) = lemma_a4_decomposition(&tree, &assignment, &sets, s).unwrap();
        assert_eq!(lhs, rhs);
        // Also for a permuted assignment.
        let (lhs, rhs) = lemma_a4_decomposition(&tree, &[3, 1, 0, 2], &sets, s).unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn padded_instance_forces_balanced_merge_trees_in_practice() {
        // Lemma A.5: with padding S > 2mn the optimal tree is the complete
        // binary tree. The exact solver on the padded 4-set instance must
        // therefore produce a height-2 tree, and so do the greedy
        // heuristics (which are exact here because the pads dominate).
        let sets = small_instance();
        let s = required_padding_size(&sets);
        let padded = pad_with_disjoint_blocks(&sets, s).unwrap();
        let opt = crate::optimal::optimal_schedule(&padded, 2).unwrap();
        assert_eq!(opt.to_tree().height(), 2, "optimal tree must be balanced");
        let si = schedule_with(Strategy::SmallestInput, &padded, 2).unwrap();
        assert_eq!(si.to_tree().height(), 2);
    }

    #[test]
    fn graph_to_sets_encodes_incidence() {
        // A 4-cycle: each vertex is incident to exactly 2 edges and each
        // edge id appears in exactly 2 sets.
        let edges = [(0usize, 1usize), (1, 2), (2, 3), (3, 0)];
        let sets = sets_from_graph(4, &edges);
        assert_eq!(sets.len(), 4);
        assert!(sets.iter().all(|s| s.len() == 2));
        for edge_id in 0..edges.len() as u64 {
            let appearances = sets.iter().filter(|s| s.contains(edge_id)).count();
            assert_eq!(appearances, 2);
        }
        // The OPT-TREE-ASSIGN cost over the complete tree distinguishes
        // good from bad leaf placements (adjacent vertices should sit in
        // the same subtree).
        let tree = MergeTree::complete_binary(4);
        let good = tree
            .assignment_cost(&sets, &[0, 1, 2, 3], &crate::Cardinality)
            .unwrap();
        let bad = tree
            .assignment_cost(&sets, &[0, 2, 1, 3], &crate::Cardinality)
            .unwrap();
        assert!(good <= bad);
    }
}
