//! Merge schedules: the output of every compaction strategy.

use crate::tree::TreeNode;
use crate::{Cardinality, CostModel, Error, KeySet, MergeTree};

/// One merge operation: the *slots* it reads.
///
/// Slots number the sets materialized during a compaction run: slots
/// `0..n` are the initial sstables and the `i`-th operation's output is
/// slot `n + i`. Later operations may therefore reference earlier
/// outputs. This is the same slot convention the `lsm-engine` crate's
/// physical `CompactionStep` uses, so schedules can be executed directly.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MergeOp {
    /// Slot indices of the sets this operation merges (2 ≤ len ≤ k).
    pub inputs: Vec<usize>,
}

impl MergeOp {
    /// Convenience constructor.
    #[must_use]
    pub fn new(inputs: Vec<usize>) -> Self {
        Self { inputs }
    }
}

/// An ordered sequence of merge operations reducing `n` initial sets to
/// one final set.
///
/// # Examples
///
/// ```
/// use compaction_core::{KeySet, MergeOp, MergeSchedule};
///
/// let sets = vec![
///     KeySet::from_iter([1u64, 2]),
///     KeySet::from_iter([2u64, 3]),
///     KeySet::from_iter([4u64]),
/// ];
/// // Merge sets 0 and 1 (output = slot 3), then merge slot 3 with set 2.
/// let schedule = MergeSchedule::new(3, 2, vec![
///     MergeOp::new(vec![0, 1]),
///     MergeOp::new(vec![3, 2]),
/// ])?;
/// assert_eq!(schedule.cost(&sets), 2 + 2 + 1 + 3 + 4);
/// assert_eq!(schedule.final_set(&sets).len(), 4);
/// # Ok::<(), compaction_core::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MergeSchedule {
    n_initial: usize,
    fanin: usize,
    ops: Vec<MergeOp>,
}

impl MergeSchedule {
    /// Creates and validates a schedule over `n_initial` sets with
    /// per-operation fan-in at most `fanin`.
    ///
    /// # Errors
    ///
    /// * [`Error::EmptyInput`] if `n_initial` is zero.
    /// * [`Error::InvalidFanIn`] if `fanin < 2`.
    /// * [`Error::InvalidOpArity`] if an operation merges fewer than 2 or
    ///   more than `fanin` sets.
    /// * [`Error::InvalidSlot`] if an operation references an unknown or
    ///   already-consumed slot.
    /// * [`Error::IncompleteSchedule`] if the operations do not reduce the
    ///   collection to exactly one set.
    pub fn new(n_initial: usize, fanin: usize, ops: Vec<MergeOp>) -> Result<Self, Error> {
        if n_initial == 0 {
            return Err(Error::EmptyInput);
        }
        if fanin < 2 {
            return Err(Error::InvalidFanIn { requested: fanin });
        }
        let schedule = Self {
            n_initial,
            fanin,
            ops,
        };
        schedule.validate()?;
        Ok(schedule)
    }

    fn validate(&self) -> Result<(), Error> {
        let total_slots = self.n_initial + self.ops.len();
        let mut live = vec![false; total_slots];
        for slot in live.iter_mut().take(self.n_initial) {
            *slot = true;
        }
        let mut live_count = self.n_initial;
        for (op_index, op) in self.ops.iter().enumerate() {
            if op.inputs.len() < 2 || op.inputs.len() > self.fanin {
                return Err(Error::InvalidOpArity {
                    op_index,
                    arity: op.inputs.len(),
                    fanin: self.fanin,
                });
            }
            // Inputs must be distinct live slots below the output slot.
            let output_slot = self.n_initial + op_index;
            let mut seen = Vec::with_capacity(op.inputs.len());
            for &slot in &op.inputs {
                if slot >= output_slot || !live[slot] || seen.contains(&slot) {
                    return Err(Error::InvalidSlot { op_index, slot });
                }
                seen.push(slot);
            }
            for &slot in &op.inputs {
                live[slot] = false;
            }
            live[output_slot] = true;
            live_count = live_count - op.inputs.len() + 1;
        }
        if live_count != 1 {
            return Err(Error::IncompleteSchedule {
                remaining: live_count,
            });
        }
        Ok(())
    }

    /// Number of initial sets.
    #[must_use]
    pub fn n_initial(&self) -> usize {
        self.n_initial
    }

    /// The fan-in bound `k`.
    #[must_use]
    pub fn fanin(&self) -> usize {
        self.fanin
    }

    /// The merge operations in execution order.
    #[must_use]
    pub fn ops(&self) -> &[MergeOp] {
        &self.ops
    }

    /// Number of merge operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` for the degenerate single-set schedule with no
    /// merges.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Materializes the set produced by every operation, in order.
    /// `outputs()[i]` is the label of slot `n_initial + i`.
    #[must_use]
    pub fn outputs(&self, sets: &[KeySet]) -> Vec<KeySet> {
        let mut slots: Vec<KeySet> = sets.to_vec();
        let mut outputs = Vec::with_capacity(self.ops.len());
        for op in &self.ops {
            let merged = KeySet::union_many(op.inputs.iter().map(|&s| &slots[s]));
            slots.push(merged.clone());
            outputs.push(merged);
        }
        outputs
    }

    /// The single set left after executing the whole schedule. For an
    /// empty schedule this is the (single) initial set.
    #[must_use]
    pub fn final_set(&self, sets: &[KeySet]) -> KeySet {
        self.outputs(sets)
            .into_iter()
            .last()
            .unwrap_or_else(|| sets.first().cloned().unwrap_or_default())
    }

    /// The paper's simplified cost (eq. 2.1): the sum of `model.cost` over
    /// *every* node of the merge tree — each initial set once plus every
    /// merge output once.
    #[must_use]
    pub fn cost_with<M: CostModel>(&self, sets: &[KeySet], model: &M) -> u64 {
        let leaves: u64 = sets.iter().map(|s| model.cost(s)).sum();
        let internals: u64 = self.outputs(sets).iter().map(|s| model.cost(s)).sum();
        leaves + internals
    }

    /// [`MergeSchedule::cost_with`] under the default cardinality model.
    #[must_use]
    pub fn cost(&self, sets: &[KeySet]) -> u64 {
        self.cost_with(sets, &Cardinality)
    }

    /// The paper's `cost_actual`: for every merge operation, the sizes of
    /// the inputs read plus the output written. Leaves and the root are
    /// counted once; intermediate outputs twice (once written, once later
    /// read), matching Section 2.
    #[must_use]
    pub fn cost_actual_with<M: CostModel>(&self, sets: &[KeySet], model: &M) -> u64 {
        let mut slots: Vec<KeySet> = sets.to_vec();
        let mut total = 0u64;
        for op in &self.ops {
            let input_cost: u64 = op.inputs.iter().map(|&s| model.cost(&slots[s])).sum();
            let merged = KeySet::union_many(op.inputs.iter().map(|&s| &slots[s]));
            total += input_cost + model.cost(&merged);
            slots.push(merged);
        }
        total
    }

    /// [`MergeSchedule::cost_actual_with`] under the cardinality model.
    #[must_use]
    pub fn cost_actual(&self, sets: &[KeySet]) -> u64 {
        self.cost_actual_with(sets, &Cardinality)
    }

    /// The per-element reformulation of the cost (eq. 2.2): for each key
    /// `x`, `|T(x)| + 1` where `T(x)` is the minimal subtree spanning all
    /// nodes whose label contains `x`. Only defined for binary schedules
    /// under the cardinality model; used to cross-check
    /// [`MergeSchedule::cost`] in tests.
    #[must_use]
    pub fn cost_reformulated(&self, sets: &[KeySet]) -> u64 {
        // Because every node containing x forms a connected subtree whose
        // root is the first merge that contains x (or x's unique leaf if
        // never merged... but every schedule ends in one set, so the
        // spanning subtree runs from x's leaves up to the last node
        // counted), the contribution of x equals the number of nodes
        // whose label contains x. Summing node sizes per element is
        // exactly eq. 2.1, so we count per element for the cross-check.
        let mut total = 0u64;
        let outputs = self.outputs(sets);
        let all_nodes: Vec<&KeySet> = sets.iter().chain(outputs.iter()).collect();
        let universe = KeySet::union_many(sets.iter());
        for x in universe.iter() {
            let appearances = all_nodes.iter().filter(|s| s.contains(x)).count() as u64;
            total += appearances;
        }
        total
    }

    /// Lowers the schedule to raw *slot steps*: one `Vec<usize>` of input
    /// slots per merge operation, in execution order.
    ///
    /// This is the physical-replay contract shared with the `lsm-engine`
    /// crate: slots `0..n_initial` are the live sstables in manifest
    /// order and step `i`'s output is slot `n_initial + i`, so the steps
    /// can be executed directly against real tables without translation.
    #[must_use]
    pub fn slot_steps(&self) -> Vec<Vec<usize>> {
        self.ops.iter().map(|op| op.inputs.clone()).collect()
    }

    /// Groups the operations into *dependency waves*: operation `i` is in
    /// wave `w` (1-based) if every input is an initial set or the output
    /// of an operation in a wave `< w`. Operations within one wave touch
    /// disjoint slots and can therefore execute concurrently; waves must
    /// run in order. Returns the op indices of each wave, ascending.
    ///
    /// BALANCETREE schedules produce `⌈log_k n⌉` waves of independent
    /// merges (the parallelism the paper exploits in Section 5);
    /// caterpillar schedules degenerate to one op per wave.
    #[must_use]
    pub fn dependency_waves(&self) -> Vec<Vec<usize>> {
        let n = self.n_initial;
        // Wave of each slot: initial sets are wave 0.
        let mut slot_wave = vec![0usize; n + self.ops.len()];
        let mut waves: Vec<Vec<usize>> = Vec::new();
        for (i, op) in self.ops.iter().enumerate() {
            let wave = op.inputs.iter().map(|&s| slot_wave[s]).max().unwrap_or(0) + 1;
            slot_wave[n + i] = wave;
            if waves.len() < wave {
                waves.resize(wave, Vec::new());
            }
            waves[wave - 1].push(i);
        }
        waves
    }

    /// The tree view of this schedule (Section 2): leaves in slot order,
    /// one internal node per merge operation.
    #[must_use]
    pub fn to_tree(&self) -> MergeTree {
        let mut nodes: Vec<TreeNode> = (0..self.n_initial)
            .map(|leaf_index| TreeNode::Leaf { leaf_index })
            .collect();
        for op in &self.ops {
            nodes.push(TreeNode::Internal {
                children: op.inputs.clone(),
            });
        }
        let root = nodes.len().saturating_sub(1);
        let root = if self.ops.is_empty() { 0 } else { root };
        MergeTree::from_parts(nodes, root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn working_example() -> Vec<KeySet> {
        vec![
            KeySet::from_iter([1u64, 2, 3, 5]),
            KeySet::from_iter([1u64, 2, 3, 4]),
            KeySet::from_iter([3u64, 4, 5]),
            KeySet::from_iter([6u64, 7, 8]),
            KeySet::from_iter([7u64, 8, 9]),
        ]
    }

    #[test]
    fn validation_rejects_malformed_schedules() {
        assert!(matches!(
            MergeSchedule::new(0, 2, vec![]),
            Err(Error::EmptyInput)
        ));
        assert!(matches!(
            MergeSchedule::new(2, 1, vec![]),
            Err(Error::InvalidFanIn { requested: 1 })
        ));
        // Not reducing to one set.
        assert!(matches!(
            MergeSchedule::new(3, 2, vec![MergeOp::new(vec![0, 1])]),
            Err(Error::IncompleteSchedule { remaining: 2 })
        ));
        // Arity violations.
        assert!(matches!(
            MergeSchedule::new(3, 2, vec![MergeOp::new(vec![0, 1, 2])]),
            Err(Error::InvalidOpArity { .. })
        ));
        assert!(matches!(
            MergeSchedule::new(2, 2, vec![MergeOp::new(vec![0])]),
            Err(Error::InvalidOpArity { .. })
        ));
        // Reusing a consumed slot.
        assert!(matches!(
            MergeSchedule::new(
                3,
                2,
                vec![MergeOp::new(vec![0, 1]), MergeOp::new(vec![0, 2])]
            ),
            Err(Error::InvalidSlot {
                op_index: 1,
                slot: 0
            })
        ));
        // Referencing its own output or a future slot.
        assert!(matches!(
            MergeSchedule::new(2, 2, vec![MergeOp::new(vec![0, 2])]),
            Err(Error::InvalidSlot { .. })
        ));
        // Duplicate input in one op.
        assert!(matches!(
            MergeSchedule::new(2, 3, vec![MergeOp::new(vec![0, 0])]),
            Err(Error::InvalidSlot { .. })
        ));
    }

    #[test]
    fn single_set_empty_schedule_is_valid() {
        let schedule = MergeSchedule::new(1, 2, vec![]).unwrap();
        assert!(schedule.is_empty());
        let sets = vec![KeySet::from_iter([1u64, 2])];
        assert_eq!(schedule.cost(&sets), 2, "only the lone leaf is counted");
        assert_eq!(schedule.cost_actual(&sets), 0, "nothing is read or written");
        assert_eq!(schedule.final_set(&sets).len(), 2);
    }

    #[test]
    fn balanced_schedule_on_working_example_costs_45() {
        // Figure 4: merge (A1,A2) and (A3,A4) at level 1, then their
        // outputs, then the result with A5.
        let sets = working_example();
        let schedule = MergeSchedule::new(
            5,
            2,
            vec![
                MergeOp::new(vec![0, 1]),
                MergeOp::new(vec![2, 3]),
                MergeOp::new(vec![5, 6]),
                MergeOp::new(vec![7, 4]),
            ],
        )
        .unwrap();
        assert_eq!(schedule.cost(&sets), 45);
        assert_eq!(schedule.final_set(&sets), KeySet::from_range(1..10));
        assert_eq!(schedule.cost_reformulated(&sets), 45);
    }

    #[test]
    fn smallest_output_schedule_on_working_example_costs_40() {
        // Figure 6: (A4,A5) → {6..9}; (A1,A2) → {1..5}; that with A3; then
        // the two outputs.
        let sets = working_example();
        let schedule = MergeSchedule::new(
            5,
            2,
            vec![
                MergeOp::new(vec![3, 4]),
                MergeOp::new(vec![0, 1]),
                MergeOp::new(vec![6, 2]),
                MergeOp::new(vec![7, 5]),
            ],
        )
        .unwrap();
        assert_eq!(schedule.cost(&sets), 40);
    }

    #[test]
    fn cost_actual_relationship() {
        // cost_actual = cost − Σ|A_i| − |root| + Σ_internal |ν|
        //             = 2·cost − 2·Σ|A_i| − ... easier: verify on the
        // working example's balanced schedule directly.
        let sets = working_example();
        let schedule = MergeSchedule::new(
            5,
            2,
            vec![
                MergeOp::new(vec![0, 1]),
                MergeOp::new(vec![2, 3]),
                MergeOp::new(vec![5, 6]),
                MergeOp::new(vec![7, 4]),
            ],
        )
        .unwrap();
        // Inputs read: 4+4, 3+3, 5+6, 8+3 = 36; outputs written: 5+6+8+9 = 28.
        assert_eq!(schedule.cost_actual(&sets), 36 + 28);
        // General identity: cost_actual = cost + Σ internal (non-root)
        // output sizes − Σ leaf sizes... checked numerically elsewhere via
        // property tests; here the exact value suffices.
    }

    #[test]
    fn kway_schedule_costs() {
        let sets = vec![
            KeySet::from_iter([1u64]),
            KeySet::from_iter([2u64]),
            KeySet::from_iter([3u64]),
            KeySet::from_iter([4u64]),
        ];
        let schedule = MergeSchedule::new(4, 4, vec![MergeOp::new(vec![0, 1, 2, 3])]).unwrap();
        assert_eq!(schedule.cost(&sets), 4 + 4);
        assert_eq!(schedule.cost_actual(&sets), 4 + 4);
        assert_eq!(schedule.fanin(), 4);
    }

    #[test]
    fn to_tree_mirrors_schedule_shape() {
        let schedule = MergeSchedule::new(
            4,
            2,
            vec![
                MergeOp::new(vec![0, 1]),
                MergeOp::new(vec![2, 3]),
                MergeOp::new(vec![4, 5]),
            ],
        )
        .unwrap();
        let tree = schedule.to_tree();
        assert_eq!(tree.leaf_count(), 4);
        assert_eq!(tree.node_count(), 7);
        assert_eq!(tree.height(), 2);

        let single = MergeSchedule::new(1, 2, vec![]).unwrap().to_tree();
        assert_eq!(single.leaf_count(), 1);
    }

    #[test]
    fn uniform_disjoint_cost_closed_form() {
        // Section 5.2 footnote: with n equal-size disjoint sstables of
        // size s and k = 2, every merge schedule has
        // cost_actual = 3·(n−1)·s, because each iteration reads 2s keys
        // and writes s·(something)… more precisely the footnote's model
        // has constant-size merges (high-overlap regime); for *disjoint*
        // runs the identity holds for the caterpillar schedule where the
        // accumulated run is re-read every iteration only in the
        // high-overlap case. The disjoint closed form verified here is
        // the balanced/caterpillar-independent identity
        // cost_actual = Σ inputs + Σ outputs computed explicitly.
        let n = 8usize;
        let s = 5u64;
        let sets: Vec<KeySet> = (0..n as u64)
            .map(|i| KeySet::from_range(i * 100..i * 100 + s))
            .collect();

        // High-overlap analogue (identical sets): cost_actual = 3·(n−1)·s
        // exactly, for any schedule, as the footnote states.
        let identical: Vec<KeySet> = vec![KeySet::from_range(0..s); n];
        {
            let ops = (1..n)
                .scan(0usize, |acc, next| {
                    let op = MergeOp::new(vec![*acc, next]);
                    *acc = n + next - 1;
                    Some(op)
                })
                .collect::<Vec<_>>();
            let schedule = MergeSchedule::new(n, 2, ops).unwrap();
            assert_eq!(
                schedule.cost_actual(&identical),
                3 * (n as u64 - 1) * s,
                "footnote closed form for identical sstables"
            );
        }

        // Disjoint runs under the caterpillar: inputs grow, so the cost is
        // strictly larger than the footnote's constant-merge value.
        let caterpillar: Vec<MergeOp> = (1..n)
            .scan(0usize, |acc, next| {
                let op = MergeOp::new(vec![*acc, next]);
                *acc = n + next - 1;
                Some(op)
            })
            .collect();
        let schedule = MergeSchedule::new(n, 2, caterpillar).unwrap();
        assert!(schedule.cost_actual(&sets) > 3 * (n as u64 - 1) * s);
    }

    #[test]
    fn slot_steps_mirror_ops() {
        let schedule = MergeSchedule::new(
            3,
            2,
            vec![MergeOp::new(vec![0, 1]), MergeOp::new(vec![3, 2])],
        )
        .unwrap();
        assert_eq!(schedule.slot_steps(), vec![vec![0, 1], vec![3, 2]]);
    }

    #[test]
    fn dependency_waves_expose_parallelism() {
        // Balanced: ops 0 and 1 are independent (wave 1), op 2 joins them.
        let balanced = MergeSchedule::new(
            4,
            2,
            vec![
                MergeOp::new(vec![0, 1]),
                MergeOp::new(vec![2, 3]),
                MergeOp::new(vec![4, 5]),
            ],
        )
        .unwrap();
        assert_eq!(balanced.dependency_waves(), vec![vec![0, 1], vec![2]]);

        // Caterpillar: fully sequential, one op per wave.
        let caterpillar = MergeSchedule::new(
            4,
            2,
            vec![
                MergeOp::new(vec![0, 1]),
                MergeOp::new(vec![4, 2]),
                MergeOp::new(vec![5, 3]),
            ],
        )
        .unwrap();
        assert_eq!(
            caterpillar.dependency_waves(),
            vec![vec![0], vec![1], vec![2]]
        );

        // Empty schedule: no waves.
        assert!(MergeSchedule::new(1, 2, vec![])
            .unwrap()
            .dependency_waves()
            .is_empty());
    }

    #[test]
    fn outputs_are_cumulative_unions() {
        let sets = working_example();
        let schedule = MergeSchedule::new(
            5,
            2,
            vec![
                MergeOp::new(vec![0, 1]),
                MergeOp::new(vec![5, 2]),
                MergeOp::new(vec![3, 4]),
                MergeOp::new(vec![6, 7]),
            ],
        )
        .unwrap();
        let outputs = schedule.outputs(&sets);
        assert_eq!(outputs.len(), 4);
        assert_eq!(
            outputs[0],
            KeySet::from_range(1..6).union(&KeySet::new()).clone()
        );
        assert_eq!(outputs[3], KeySet::from_range(1..10));
    }
}
