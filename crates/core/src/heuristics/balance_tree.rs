//! BALANCETREE (Section 4.3.1): keep the merge tree balanced.

use crate::estimator::ExactEstimator;
use crate::heuristics::{smallest_by_len, smallest_by_union, ChoosePolicy, CollectionItem};

/// Which ordering BALANCETREE uses to pick sets *within* a level.
///
/// The paper evaluates both: `BT(I)` orders by set cardinality
/// (SMALLESTINPUT) and `BT(O)` by union cardinality (SMALLESTOUTPUT).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelOrder {
    /// Pair sets in the arbitrary order they appear at the current level,
    /// as in the plain BALANCETREE description (Section 4.3.1, Figure 4).
    Arbitrary,
    /// Pick the smallest-cardinality sets at the current level (`BT(I)`).
    SmallestInput,
    /// Pick the sets whose union is smallest at the current level
    /// (`BT(O)`).
    SmallestOutput,
}

/// BALANCETREE: merge only sets annotated with the minimum level, so the
/// resulting merge tree has height `⌈log₂ n⌉`.
///
/// Every initial set starts at level 1; a merge of level-`ℓ` sets produces
/// a level-`ℓ + 1` set. If only one set remains at the minimum level its
/// level is bumped and the choice retried, exactly as described in the
/// paper. This is the heuristic the evaluation recommends (`BT(I)`)
/// because all merges within a level are independent and can run in
/// parallel (the `compaction-sim` crate does so).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BalanceTreePolicy {
    order: LevelOrder,
}

impl BalanceTreePolicy {
    /// Plain BALANCETREE: arbitrary pairing within each level (the
    /// description of Section 4.3.1 and the schedule of Figure 4).
    #[must_use]
    pub fn arbitrary() -> Self {
        Self {
            order: LevelOrder::Arbitrary,
        }
    }

    /// `BT(I)`: SMALLESTINPUT ordering within each level.
    #[must_use]
    pub fn with_smallest_input() -> Self {
        Self {
            order: LevelOrder::SmallestInput,
        }
    }

    /// `BT(O)`: SMALLESTOUTPUT ordering within each level.
    #[must_use]
    pub fn with_smallest_output() -> Self {
        Self {
            order: LevelOrder::SmallestOutput,
        }
    }

    /// The configured within-level ordering.
    #[must_use]
    pub fn order(&self) -> LevelOrder {
        self.order
    }
}

impl ChoosePolicy for BalanceTreePolicy {
    fn choose(&mut self, items: &mut [CollectionItem], k: usize) -> Vec<usize> {
        loop {
            let min_level = items.iter().map(|it| it.level).min().expect("non-empty");
            let candidates: Vec<usize> = items
                .iter()
                .enumerate()
                .filter(|(_, it)| it.level == min_level)
                .map(|(i, _)| i)
                .collect();
            if candidates.len() >= 2 {
                let count = k.min(candidates.len());
                return match self.order {
                    LevelOrder::Arbitrary => candidates[..count].to_vec(),
                    LevelOrder::SmallestInput => smallest_by_len(items, &candidates, count),
                    LevelOrder::SmallestOutput => {
                        smallest_by_union(&ExactEstimator, items, &candidates, count)
                    }
                };
            }
            // Only one set at the minimum level: bump it and retry.
            items[candidates[0]].level += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::GreedyMerger;
    use crate::{KeySet, Strategy};

    fn singleton_sets(n: u64) -> Vec<KeySet> {
        (0..n).map(|i| KeySet::from_iter([i])).collect()
    }

    #[test]
    fn power_of_two_input_yields_perfect_tree() {
        let sets = singleton_sets(8);
        let schedule = crate::schedule_with(Strategy::BalanceTree, &sets, 2).unwrap();
        let tree = schedule.to_tree();
        assert_eq!(tree.height(), 3);
        assert_eq!(tree.eta(), 8 * 4, "perfect binary tree over 8 leaves");
    }

    #[test]
    fn non_power_of_two_height_is_ceil_log() {
        for n in [3u64, 5, 6, 7, 9, 13] {
            let sets = singleton_sets(n);
            let schedule = crate::schedule_with(Strategy::BalanceTree, &sets, 2).unwrap();
            let height = schedule.to_tree().height();
            let expected = (n as f64).log2().ceil() as usize;
            assert_eq!(height, expected, "n={n}");
        }
    }

    #[test]
    fn bt_levels_merge_before_deeper_nodes() {
        // With 4 equal sets the first two merges must both involve only
        // initial sets (level 1), never an intermediate output.
        let sets = singleton_sets(4);
        let schedule = GreedyMerger::new(&sets, 2)
            .unwrap()
            .run(BalanceTreePolicy::with_smallest_input())
            .unwrap();
        let ops = schedule.ops();
        assert!(ops[0].inputs.iter().all(|&s| s < 4));
        assert!(ops[1].inputs.iter().all(|&s| s < 4));
        assert!(ops[2].inputs.iter().all(|&s| s >= 4));
    }

    #[test]
    fn bt_output_variant_prefers_overlap_within_level() {
        let sets = vec![
            KeySet::from_range(0..10),
            KeySet::from_range(0..10),
            KeySet::from_range(100..110),
            KeySet::from_range(200..210),
        ];
        let schedule = GreedyMerger::new(&sets, 2)
            .unwrap()
            .run(BalanceTreePolicy::with_smallest_output())
            .unwrap();
        let mut first = schedule.ops()[0].inputs.clone();
        first.sort_unstable();
        assert_eq!(first, vec![0, 1], "BT(O) pairs the overlapping sets first");
        assert_eq!(
            BalanceTreePolicy::with_smallest_output().order(),
            LevelOrder::SmallestOutput
        );
    }

    #[test]
    fn approximation_bound_holds_on_adversarial_instance() {
        // Lemma 4.1: BT is a (⌈log n⌉ + 1)-approximation; verify the cost
        // never exceeds that bound relative to the LOPT lower bound's
        // optimum-or-better reference (left-to-right merge here).
        let n = 16u64;
        let mut sets: Vec<KeySet> = (0..n - 1).map(|_| KeySet::from_iter([1u64])).collect();
        sets.push((1..=n).collect::<Vec<u64>>().into());
        let bt = crate::schedule_with(Strategy::BalanceTree, &sets, 2).unwrap();
        let opt_like = crate::optimal::left_to_right_schedule(sets.len(), 2).unwrap();
        let bound = ((n as f64).log2().ceil() as u64 + 1) * opt_like.cost(&sets);
        assert!(bt.cost(&sets) <= bound);
        // And the adversarial instance really does hurt BT: it costs more
        // than the caterpillar merge (Lemma 4.2's separation).
        assert!(bt.cost(&sets) > opt_like.cost(&sets));
    }
}
