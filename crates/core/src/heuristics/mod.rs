//! The greedy scheduling framework (Algorithm 1) and the paper's
//! heuristics.
//!
//! Every strategy is a policy for the `CHOOSETWOSETS` subroutine (here
//! generalized to choose up to `k` sets): the surrounding
//! [`GreedyMerger`] loop is shared, exactly as in the paper's
//! `GREEDYBINARYMERGING`. Section 4 proves `O(log n)` approximation for
//! BALANCETREE, SMALLESTINPUT and SMALLESTOUTPUT, an `Ω(n)` lower bound
//! for LARGESTMATCH, and an `f`-approximation for the relabel-and-replay
//! Algorithm 2 exposed here as [`Strategy::Frequency`].

mod balance_tree;
mod cached_output;
mod freq;
mod largest_match;
mod random;
mod smallest;

pub use balance_tree::BalanceTreePolicy;
pub use cached_output::CachedSmallestOutputPolicy;
pub use freq::{frequency_schedule, max_key_frequency};
pub use largest_match::LargestMatchPolicy;
pub use random::RandomPolicy;
pub use smallest::{SmallestInputPolicy, SmallestOutputPolicy};

use crate::estimator::{CardinalityEstimator, ExactEstimator};
use crate::{Error, KeySet, MergeOp, MergeSchedule};

/// One live set in the greedy collection `C`.
#[derive(Debug, Clone)]
pub struct CollectionItem {
    /// The slot this set occupies in the schedule being built.
    pub slot: usize,
    /// The materialized key set.
    pub set: KeySet,
    /// The BALANCETREE level annotation (initial sets start at level 1).
    pub level: u32,
}

/// A policy choosing which sets to merge next (the paper's
/// `CHOOSETWOSETS`, generalized to fan-in `k`).
pub trait ChoosePolicy: std::fmt::Debug {
    /// Chooses between 2 and `k` indices into `items` to merge in this
    /// iteration. `items` always holds at least two entries. Policies may
    /// mutate level annotations (BALANCETREE does).
    fn choose(&mut self, items: &mut [CollectionItem], k: usize) -> Vec<usize>;
}

/// The generic greedy merger: repeatedly ask the policy for sets to
/// merge, replace them by their union, record the operation.
///
/// # Examples
///
/// ```
/// use compaction_core::heuristics::{GreedyMerger, SmallestInputPolicy};
/// use compaction_core::KeySet;
///
/// let sets = vec![
///     KeySet::from_iter([1u64, 2]),
///     KeySet::from_iter([3u64]),
///     KeySet::from_iter([4u64, 5, 6]),
/// ];
/// let schedule = GreedyMerger::new(&sets, 2)?.run(SmallestInputPolicy)?;
/// assert_eq!(schedule.len(), 2);
/// # Ok::<(), compaction_core::Error>(())
/// ```
#[derive(Debug)]
pub struct GreedyMerger {
    sets: Vec<KeySet>,
    fanin: usize,
}

impl GreedyMerger {
    /// Prepares a merger over `sets` with per-iteration fan-in `k`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyInput`] for zero sets and
    /// [`Error::InvalidFanIn`] for `k < 2`.
    pub fn new(sets: &[KeySet], k: usize) -> Result<Self, Error> {
        if sets.is_empty() {
            return Err(Error::EmptyInput);
        }
        if k < 2 {
            return Err(Error::InvalidFanIn { requested: k });
        }
        Ok(Self {
            sets: sets.to_vec(),
            fanin: k,
        })
    }

    /// Runs Algorithm 1 with the given choose policy and returns the
    /// resulting schedule.
    ///
    /// # Errors
    ///
    /// Propagates schedule-validation errors (these indicate a policy bug
    /// and cannot occur with the built-in policies).
    pub fn run<P: ChoosePolicy>(&self, mut policy: P) -> Result<MergeSchedule, Error> {
        let n = self.sets.len();
        let mut items: Vec<CollectionItem> = self
            .sets
            .iter()
            .cloned()
            .enumerate()
            .map(|(slot, set)| CollectionItem {
                slot,
                set,
                level: 1,
            })
            .collect();
        let mut ops: Vec<MergeOp> = Vec::with_capacity(n.saturating_sub(1));
        while items.len() > 1 {
            let mut chosen = policy.choose(&mut items, self.fanin);
            chosen.sort_unstable();
            chosen.dedup();
            debug_assert!(chosen.len() >= 2, "policy must choose at least two sets");
            let merged_set = KeySet::union_many(chosen.iter().map(|&i| &items[i].set));
            let merged_level = chosen.iter().map(|&i| items[i].level).max().unwrap_or(1) + 1;
            let input_slots: Vec<usize> = chosen.iter().map(|&i| items[i].slot).collect();
            let output_slot = n + ops.len();
            ops.push(MergeOp::new(input_slots));
            // Remove chosen items (descending index order keeps indices valid).
            for &i in chosen.iter().rev() {
                items.remove(i);
            }
            items.push(CollectionItem {
                slot: output_slot,
                set: merged_set,
                level: merged_level,
            });
        }
        MergeSchedule::new(n, self.fanin, ops)
    }
}

/// The compaction strategies evaluated in the paper (Section 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Plain BALANCETREE (Section 4.3.1): level-by-level merging with
    /// arbitrary pairing inside each level, as drawn in Figure 4.
    BalanceTree,
    /// BALANCETREE with SMALLESTINPUT ordering inside each level — the
    /// paper's `BT(I)`, its recommended strategy.
    BalanceTreeInput,
    /// BALANCETREE with SMALLESTOUTPUT ordering inside each level — the
    /// paper's `BT(O)`.
    BalanceTreeOutput,
    /// SMALLESTINPUT (`SI`): merge the `k` smallest sets.
    SmallestInput,
    /// SMALLESTOUTPUT (`SO`) with exact union cardinalities.
    SmallestOutput,
    /// SMALLESTOUTPUT with HyperLogLog-estimated union cardinalities, as
    /// implemented in the paper's simulator. `precision` is the HLL
    /// precision `p` (14 in the evaluation).
    SmallestOutputHll {
        /// HyperLogLog precision (number of registers = `2^precision`).
        precision: u8,
    },
    /// SMALLESTOUTPUT with HyperLogLog estimation *and* per-sstable sketch
    /// caching — the optimization the paper describes for keeping the
    /// per-iteration overhead at `C(n−k, k−1)` fresh estimates. Chooses
    /// identical schedules to [`Strategy::SmallestOutputHll`] at the same
    /// precision, with much lower scheduling overhead.
    SmallestOutputCached {
        /// HyperLogLog precision (number of registers = `2^precision`).
        precision: u8,
    },
    /// LARGESTMATCH: merge the pair with the largest intersection.
    LargestMatch,
    /// RANDOM: merge `k` uniformly random sets (the evaluation's
    /// strawman baseline).
    Random {
        /// RNG seed, so experiments are reproducible.
        seed: u64,
    },
    /// FREQBINARYMERGING (Algorithm 2): relabel the sets to be disjoint,
    /// solve optimally with SMALLESTINPUT, replay the tree on the
    /// original sets. An `f`-approximation where `f` is the maximum key
    /// frequency.
    Frequency,
}

impl Strategy {
    /// Short name used in experiment reports (matches the paper's labels).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::BalanceTree => "BT",
            Strategy::BalanceTreeInput => "BT(I)",
            Strategy::BalanceTreeOutput => "BT(O)",
            Strategy::SmallestInput => "SI",
            Strategy::SmallestOutput => "SO",
            Strategy::SmallestOutputHll { .. } => "SO(HLL)",
            Strategy::SmallestOutputCached { .. } => "SO(HLL+cache)",
            Strategy::LargestMatch => "LM",
            Strategy::Random { .. } => "RANDOM",
            Strategy::Frequency => "FREQ",
        }
    }

    /// The five strategies compared in Figure 7, in the paper's order,
    /// with `seed` for the RANDOM strawman and HLL-backed SO as in the
    /// paper's simulator.
    #[must_use]
    pub fn paper_lineup(seed: u64) -> Vec<Strategy> {
        vec![
            Strategy::SmallestInput,
            Strategy::SmallestOutputHll { precision: 14 },
            Strategy::BalanceTreeInput,
            Strategy::BalanceTreeOutput,
            Strategy::Random { seed },
        ]
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds a merge schedule for `sets` with fan-in `k` using `strategy`.
///
/// This is the crate's main entry point; see [`Strategy`] for the
/// available heuristics.
///
/// # Errors
///
/// Returns [`Error::EmptyInput`] for zero sets and
/// [`Error::InvalidFanIn`] for `k < 2`.
///
/// # Examples
///
/// ```
/// use compaction_core::{schedule_with, KeySet, Strategy};
///
/// let sets = vec![
///     KeySet::from_iter([1u64, 2, 3]),
///     KeySet::from_iter([2u64, 3, 4]),
///     KeySet::from_iter([9u64]),
/// ];
/// let schedule = schedule_with(Strategy::SmallestInput, &sets, 2)?;
/// assert_eq!(schedule.final_set(&sets).len(), 5);
/// # Ok::<(), compaction_core::Error>(())
/// ```
pub fn schedule_with(
    strategy: Strategy,
    sets: &[KeySet],
    k: usize,
) -> Result<MergeSchedule, Error> {
    let merger = GreedyMerger::new(sets, k)?;
    match strategy {
        Strategy::BalanceTree => merger.run(BalanceTreePolicy::arbitrary()),
        Strategy::BalanceTreeInput => merger.run(BalanceTreePolicy::with_smallest_input()),
        Strategy::BalanceTreeOutput => merger.run(BalanceTreePolicy::with_smallest_output()),
        Strategy::SmallestInput => merger.run(SmallestInputPolicy),
        Strategy::SmallestOutput => merger.run(SmallestOutputPolicy::new(ExactEstimator)),
        Strategy::SmallestOutputHll { precision } => merger.run(SmallestOutputPolicy::new(
            crate::estimator::HllEstimator::new(precision).unwrap_or_default(),
        )),
        Strategy::SmallestOutputCached { precision } => {
            merger.run(CachedSmallestOutputPolicy::new(precision))
        }
        Strategy::LargestMatch => merger.run(LargestMatchPolicy),
        Strategy::Random { seed } => merger.run(RandomPolicy::new(seed)),
        Strategy::Frequency => frequency_schedule(sets, k),
    }
}

/// Picks, among `items`, the `count` indices whose sets have the smallest
/// cardinality (ties broken by slot for determinism). Shared by SI and by
/// BALANCETREE's within-level ordering.
pub(crate) fn smallest_by_len(
    items: &[CollectionItem],
    candidates: &[usize],
    count: usize,
) -> Vec<usize> {
    let mut sorted: Vec<usize> = candidates.to_vec();
    sorted.sort_by_key(|&i| (items[i].set.len(), items[i].slot));
    sorted.truncate(count);
    sorted
}

/// Picks, among `candidates`, the pair (then greedily up to `count`)
/// minimizing the estimated union cardinality. Shared by SO and by
/// BALANCETREE's within-level ordering.
pub(crate) fn smallest_by_union<E: CardinalityEstimator>(
    estimator: &E,
    items: &[CollectionItem],
    candidates: &[usize],
    count: usize,
) -> Vec<usize> {
    debug_assert!(candidates.len() >= 2);
    // Best pair first.
    let mut best: Option<(u64, usize, usize)> = None;
    for (a_pos, &a) in candidates.iter().enumerate() {
        for &b in &candidates[a_pos + 1..] {
            let est = estimator.union_estimate(&[&items[a].set, &items[b].set]);
            let candidate = (est, a, b);
            if best.is_none_or(|cur| candidate < cur) {
                best = Some(candidate);
            }
        }
    }
    let (_, a, b) = best.expect("at least one pair");
    let mut chosen = vec![a, b];
    // Greedily extend to `count` inputs for k-way merges.
    while chosen.len() < count {
        let mut best_ext: Option<(u64, usize)> = None;
        for &c in candidates {
            if chosen.contains(&c) {
                continue;
            }
            let mut refs: Vec<&KeySet> = chosen.iter().map(|&i| &items[i].set).collect();
            refs.push(&items[c].set);
            let est = estimator.union_estimate(&refs);
            if best_ext.is_none_or(|cur| (est, c) < cur) {
                best_ext = Some((est, c));
            }
        }
        match best_ext {
            Some((_, c)) => chosen.push(c),
            None => break,
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn working_example() -> Vec<KeySet> {
        vec![
            KeySet::from_iter([1u64, 2, 3, 5]),
            KeySet::from_iter([1u64, 2, 3, 4]),
            KeySet::from_iter([3u64, 4, 5]),
            KeySet::from_iter([6u64, 7, 8]),
            KeySet::from_iter([7u64, 8, 9]),
        ]
    }

    #[test]
    fn working_example_costs_match_paper_figures() {
        let sets = working_example();
        let bt = schedule_with(Strategy::BalanceTree, &sets, 2).unwrap();
        let si = schedule_with(Strategy::SmallestInput, &sets, 2).unwrap();
        let so = schedule_with(Strategy::SmallestOutput, &sets, 2).unwrap();
        assert_eq!(bt.cost(&sets), 45, "Figure 4");
        assert_eq!(si.cost(&sets), 47, "Figure 5");
        assert_eq!(so.cost(&sets), 40, "Figure 6");
    }

    #[test]
    fn every_strategy_produces_a_valid_complete_schedule() {
        let sets = working_example();
        let strategies = [
            Strategy::BalanceTree,
            Strategy::BalanceTreeInput,
            Strategy::BalanceTreeOutput,
            Strategy::SmallestInput,
            Strategy::SmallestOutput,
            Strategy::SmallestOutputHll { precision: 12 },
            Strategy::SmallestOutputCached { precision: 12 },
            Strategy::LargestMatch,
            Strategy::Random { seed: 1 },
            Strategy::Frequency,
        ];
        for strategy in strategies {
            let schedule = schedule_with(strategy, &sets, 2).unwrap();
            assert_eq!(schedule.len(), sets.len() - 1, "{strategy}");
            assert_eq!(
                schedule.final_set(&sets),
                KeySet::from_range(1..10),
                "{strategy} must produce the union of all keys"
            );
        }
    }

    #[test]
    fn kway_fanin_reduces_iterations() {
        let sets: Vec<KeySet> = (0..9u64).map(|i| KeySet::from_iter([i])).collect();
        let k2 = schedule_with(Strategy::SmallestInput, &sets, 2).unwrap();
        let k3 = schedule_with(Strategy::SmallestInput, &sets, 3).unwrap();
        assert_eq!(k2.len(), 8);
        assert_eq!(k3.len(), 4, "9 sets with k=3 need ⌈(9−1)/(3−1)⌉ = 4 merges");
        assert!(k3.cost(&sets) <= k2.cost(&sets));
    }

    #[test]
    fn strategy_names_and_lineup() {
        assert_eq!(Strategy::BalanceTree.name(), "BT");
        assert_eq!(Strategy::BalanceTreeInput.name(), "BT(I)");
        assert_eq!(Strategy::Random { seed: 3 }.to_string(), "RANDOM");
        let lineup = Strategy::paper_lineup(7);
        assert_eq!(lineup.len(), 5);
        assert_eq!(lineup[0], Strategy::SmallestInput);
        assert!(lineup.contains(&Strategy::BalanceTreeInput));
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(matches!(
            schedule_with(Strategy::SmallestInput, &[], 2),
            Err(Error::EmptyInput)
        ));
        let sets = working_example();
        assert!(matches!(
            schedule_with(Strategy::SmallestInput, &sets, 1),
            Err(Error::InvalidFanIn { requested: 1 })
        ));
    }

    #[test]
    fn single_set_schedules_are_empty() {
        let sets = vec![KeySet::from_iter([1u64, 2, 3])];
        for strategy in [
            Strategy::BalanceTree,
            Strategy::SmallestInput,
            Strategy::SmallestOutput,
            Strategy::LargestMatch,
            Strategy::Random { seed: 0 },
            Strategy::Frequency,
        ] {
            let schedule = schedule_with(strategy, &sets, 2).unwrap();
            assert!(schedule.is_empty(), "{strategy}");
        }
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let sets: Vec<KeySet> = (0..12u64)
            .map(|i| KeySet::from_range(i * 3..i * 3 + 5))
            .collect();
        let a = schedule_with(Strategy::Random { seed: 9 }, &sets, 2).unwrap();
        let b = schedule_with(Strategy::Random { seed: 9 }, &sets, 2).unwrap();
        let c = schedule_with(Strategy::Random { seed: 10 }, &sets, 2).unwrap();
        assert_eq!(a, b);
        assert!(a != c || a.cost(&sets) == c.cost(&sets));
    }
}
