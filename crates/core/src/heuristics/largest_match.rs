//! LARGESTMATCH (Section 4.3.4): merge the pair with the largest
//! intersection.

use crate::heuristics::{ChoosePolicy, CollectionItem};

/// LARGESTMATCH: in each iteration merge the sets sharing the most keys,
/// the cardinality-estimation-driven idea discussed for Cassandra.
///
/// The paper shows its worst-case approximation ratio is `Ω(n)` (the
/// nested-prefix-set family), so it is included for completeness and as a
/// cautionary baseline rather than as a recommended strategy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LargestMatchPolicy;

impl ChoosePolicy for LargestMatchPolicy {
    fn choose(&mut self, items: &mut [CollectionItem], k: usize) -> Vec<usize> {
        // Best pair by intersection size (ties: smaller union, then slots,
        // for determinism).
        let mut best: Option<(i64, usize, usize, usize)> = None;
        for a in 0..items.len() {
            for b in (a + 1)..items.len() {
                let inter = items[a].set.intersection_size(&items[b].set) as i64;
                let union = items[a].set.union_size(&items[b].set);
                let candidate = (-inter, union, a, b);
                if best.is_none_or(|(bi, bu, ba, bb)| candidate < (bi, bu, ba, bb)) {
                    best = Some(candidate);
                }
            }
        }
        let (_, _, a, b) = best.expect("at least two items");
        let mut chosen = vec![a, b];
        // k-way extension: keep adding the set with the largest
        // intersection with the current union.
        let mut current = items[a].set.union(&items[b].set);
        while chosen.len() < k.min(items.len()) {
            let mut best_ext: Option<(i64, usize)> = None;
            for (i, item) in items.iter().enumerate() {
                if chosen.contains(&i) {
                    continue;
                }
                let inter = item.set.intersection_size(&current) as i64;
                if best_ext.is_none_or(|(bi, bidx)| (-inter, i) < (bi, bidx)) {
                    best_ext = Some((-inter, i));
                }
            }
            match best_ext {
                Some((_, i)) => {
                    current = current.union(&items[i].set);
                    chosen.push(i);
                }
                None => break,
            }
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::GreedyMerger;
    use crate::{KeySet, Strategy};

    #[test]
    fn picks_the_most_overlapping_pair() {
        let sets = vec![
            KeySet::from_range(0..100),
            KeySet::from_range(90..200), // overlap 10 with set 0
            KeySet::from_range(50..160), // overlap 50 with 0, 70 with 1
            KeySet::from_range(1000..1010),
        ];
        let schedule = GreedyMerger::new(&sets, 2)
            .unwrap()
            .run(LargestMatchPolicy)
            .unwrap();
        let mut first = schedule.ops()[0].inputs.clone();
        first.sort_unstable();
        assert_eq!(first, vec![1, 2], "largest intersection is sets 1 and 2");
    }

    #[test]
    fn omega_n_gap_on_nested_prefix_sets() {
        // Section 4.3.4: A_i = {1, …, 2^{i−1}}. The left-to-right merge
        // costs 2^{n+1} − 3 (under cost_actual-style counting the paper
        // uses 1 + 2·(2 + 4 + … + 2^{n−1})); LARGESTMATCH keeps choosing
        // the huge set every iteration and pays ≈ 2^{n−1}·(n−1).
        let n = 10usize;
        let sets: Vec<KeySet> = (1..=n)
            .map(|i| KeySet::from_range(1..(1u64 << (i - 1)) + 1))
            .collect();
        let lm = crate::schedule_with(Strategy::LargestMatch, &sets, 2).unwrap();
        let l2r = crate::optimal::left_to_right_schedule(n, 2).unwrap();
        let lm_cost = lm.cost(&sets);
        let l2r_cost = l2r.cost(&sets);
        assert!(
            lm_cost > 2 * l2r_cost,
            "LARGESTMATCH ({lm_cost}) should be far worse than left-to-right ({l2r_cost}) on the nested family"
        );
        // The gap grows with n (Ω(n) behaviour): the dominant term is
        // 2^{n−1}·(n−1), here with the largest set chosen every iteration.
        assert!(lm_cost as f64 >= 0.5 * ((1u64 << (n - 1)) as f64) * ((n - 1) as f64));
        // The asymptotic separation: the gap at n is larger than at n − 4.
        let small: Vec<KeySet> = (1..=n - 4)
            .map(|i| KeySet::from_range(1..(1u64 << (i - 1)) + 1))
            .collect();
        let lm_small = crate::schedule_with(Strategy::LargestMatch, &small, 2).unwrap();
        let l2r_small = crate::optimal::left_to_right_schedule(n - 4, 2).unwrap();
        let gap_small = lm_small.cost(&small) as f64 / l2r_small.cost(&small) as f64;
        let gap_large = lm_cost as f64 / l2r_cost as f64;
        assert!(gap_large > gap_small, "gap must grow with n");
    }

    #[test]
    fn kway_extension_adds_most_overlapping_sets() {
        let sets = vec![
            KeySet::from_range(0..50),
            KeySet::from_range(0..50),
            KeySet::from_range(0..40),
            KeySet::from_range(500..600),
        ];
        let schedule = GreedyMerger::new(&sets, 3)
            .unwrap()
            .run(LargestMatchPolicy)
            .unwrap();
        let mut first = schedule.ops()[0].inputs.clone();
        first.sort_unstable();
        assert_eq!(first, vec![0, 1, 2]);
    }
}
