//! SMALLESTINPUT (Section 4.3.2) and SMALLESTOUTPUT (Section 4.3.3).

use crate::estimator::CardinalityEstimator;
use crate::heuristics::{smallest_by_len, smallest_by_union, ChoosePolicy, CollectionItem};

/// SMALLESTINPUT: merge the `k` sets of smallest cardinality.
///
/// Intuition (paper): defer the large sets so their sizes recur in as few
/// merge outputs as possible. `O(log n)`-approximate (Lemma 4.4) and
/// optimal when the sets are disjoint (Lemma 4.3, the Huffman case).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmallestInputPolicy;

impl ChoosePolicy for SmallestInputPolicy {
    fn choose(&mut self, items: &mut [CollectionItem], k: usize) -> Vec<usize> {
        let candidates: Vec<usize> = (0..items.len()).collect();
        smallest_by_len(items, &candidates, k.min(items.len()))
    }
}

/// SMALLESTOUTPUT: merge the sets whose union has the smallest
/// (estimated) cardinality.
///
/// With an exact estimator this is the paper's idealized SO; with a
/// [`HllEstimator`](crate::HllEstimator) it matches the simulator's
/// implementation, whose schedule can deviate slightly from exact SO when
/// the estimate misranks near-tied candidate pairs (Section 5.2 discusses
/// the resulting cost sensitivity).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallestOutputPolicy<E> {
    estimator: E,
}

impl<E: CardinalityEstimator> SmallestOutputPolicy<E> {
    /// Creates the policy with the given union-cardinality estimator.
    #[must_use]
    pub fn new(estimator: E) -> Self {
        Self { estimator }
    }

    /// The underlying estimator.
    #[must_use]
    pub fn estimator(&self) -> &E {
        &self.estimator
    }
}

impl<E: CardinalityEstimator> ChoosePolicy for SmallestOutputPolicy<E> {
    fn choose(&mut self, items: &mut [CollectionItem], k: usize) -> Vec<usize> {
        let candidates: Vec<usize> = (0..items.len()).collect();
        smallest_by_union(&self.estimator, items, &candidates, k.min(items.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::ExactEstimator;
    use crate::heuristics::GreedyMerger;
    use crate::{KeySet, Strategy};

    #[test]
    fn smallest_input_prefers_small_sets_first() {
        let sets = vec![
            KeySet::from_range(0..100),
            KeySet::from_iter([200u64]),
            KeySet::from_iter([300u64, 301]),
            KeySet::from_range(400..450),
        ];
        let schedule = GreedyMerger::new(&sets, 2)
            .unwrap()
            .run(SmallestInputPolicy)
            .unwrap();
        // First merge must combine the two smallest sets (slots 1 and 2).
        let first = &schedule.ops()[0];
        let mut inputs = first.inputs.clone();
        inputs.sort_unstable();
        assert_eq!(inputs, vec![1, 2]);
    }

    #[test]
    fn smallest_output_prefers_overlapping_sets() {
        // Two heavily-overlapping sets have a smaller union than two small
        // disjoint ones here, so SO and SI disagree.
        let sets = vec![
            KeySet::from_range(0..50),    // overlaps with 1
            KeySet::from_range(0..52),    // union with 0 has size 52
            KeySet::from_range(100..130), // 30 keys
            KeySet::from_range(200..230), // 30 keys; union with 2 = 60
        ];
        let so = GreedyMerger::new(&sets, 2)
            .unwrap()
            .run(SmallestOutputPolicy::new(ExactEstimator))
            .unwrap();
        let mut first = so.ops()[0].inputs.clone();
        first.sort_unstable();
        assert_eq!(first, vec![0, 1], "SO merges the overlapping pair first");

        let si = GreedyMerger::new(&sets, 2)
            .unwrap()
            .run(SmallestInputPolicy)
            .unwrap();
        let mut first = si.ops()[0].inputs.clone();
        first.sort_unstable();
        assert_eq!(first, vec![2, 3], "SI merges the two smallest sets first");
    }

    #[test]
    fn si_and_so_agree_on_disjoint_sets() {
        // Lemma: on disjoint sets SI and SO are the same algorithm (both
        // reduce to Huffman); their costs must coincide.
        let sets: Vec<KeySet> = (0..8u64)
            .map(|i| KeySet::from_range(i * 100..i * 100 + (i + 1) * 3))
            .collect();
        let si = crate::schedule_with(Strategy::SmallestInput, &sets, 2).unwrap();
        let so = crate::schedule_with(Strategy::SmallestOutput, &sets, 2).unwrap();
        assert_eq!(si.cost(&sets), so.cost(&sets));
    }

    #[test]
    fn hll_backed_so_stays_close_to_exact_so() {
        let sets: Vec<KeySet> = (0..10u64)
            .map(|i| KeySet::from_range(i * 500..(i * 500) + 1_000))
            .collect();
        let exact = crate::schedule_with(Strategy::SmallestOutput, &sets, 2).unwrap();
        let approx =
            crate::schedule_with(Strategy::SmallestOutputHll { precision: 14 }, &sets, 2).unwrap();
        let exact_cost = exact.cost(&sets) as f64;
        let approx_cost = approx.cost(&sets) as f64;
        assert!(
            approx_cost <= exact_cost * 1.10,
            "HLL-backed SO cost {approx_cost} drifted too far from exact {exact_cost}"
        );
    }
}
