//! RANDOM: the evaluation's strawman baseline (Section 5.1, strategy 5).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::heuristics::{ChoosePolicy, CollectionItem};

/// Merges `k` uniformly random sets each iteration.
///
/// This models "no compaction strategy at all" and is the baseline the
/// paper's Figure 7 compares the real heuristics against. Seeded so that
/// experiment runs are reproducible.
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    rng: StdRng,
}

impl RandomPolicy {
    /// Creates the policy with a deterministic seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl ChoosePolicy for RandomPolicy {
    fn choose(&mut self, items: &mut [CollectionItem], k: usize) -> Vec<usize> {
        let count = k.min(items.len()).max(2);
        let mut indices: Vec<usize> = (0..items.len()).collect();
        indices.shuffle(&mut self.rng);
        indices.truncate(count);
        indices
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::GreedyMerger;
    use crate::{KeySet, Strategy};

    fn sets(n: u64) -> Vec<KeySet> {
        (0..n)
            .map(|i| KeySet::from_range(i * 10..i * 10 + 5))
            .collect()
    }

    #[test]
    fn same_seed_same_schedule() {
        let sets = sets(10);
        let a = GreedyMerger::new(&sets, 2)
            .unwrap()
            .run(RandomPolicy::new(3))
            .unwrap();
        let b = GreedyMerger::new(&sets, 2)
            .unwrap()
            .run(RandomPolicy::new(3))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn random_is_never_better_than_smallest_input_on_skewed_instances() {
        // One huge set plus many tiny ones: SI defers the huge set, RANDOM
        // tends to pick it early, so averaged over seeds RANDOM costs at
        // least as much as SI.
        let mut instance: Vec<KeySet> = (0..15u64).map(|i| KeySet::from_iter([i])).collect();
        instance.push(KeySet::from_range(100..1100));
        let si_cost = crate::schedule_with(Strategy::SmallestInput, &instance, 2)
            .unwrap()
            .cost(&instance);
        let mut random_total = 0u64;
        let runs = 20u64;
        for seed in 0..runs {
            random_total += crate::schedule_with(Strategy::Random { seed }, &instance, 2)
                .unwrap()
                .cost(&instance);
        }
        let random_mean = random_total as f64 / runs as f64;
        assert!(
            random_mean >= si_cost as f64,
            "random mean {random_mean} should not beat SI {si_cost}"
        );
    }

    #[test]
    fn respects_fanin() {
        let sets = sets(9);
        let schedule = GreedyMerger::new(&sets, 4)
            .unwrap()
            .run(RandomPolicy::new(5))
            .unwrap();
        assert!(schedule.ops().iter().all(|op| op.inputs.len() <= 4));
        assert!(schedule.ops().iter().all(|op| op.inputs.len() >= 2));
    }
}
