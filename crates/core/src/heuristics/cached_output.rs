//! SMALLESTOUTPUT with cached HyperLogLog sketches.
//!
//! The paper's simulator (Section 5.1, strategy 2) notes that recomputing
//! union estimates for all `C(n, k)` combinations every iteration is
//! unnecessarily expensive: estimates not involving the sets removed in
//! the previous iteration can be reused, and only combinations involving
//! the newly created sstable need fresh estimates (`C(n−k, k−1)` of
//! them). This policy implements that optimization by caching one
//! HyperLogLog sketch per *slot*: a pair's union estimate is then a
//! register-wise merge of two cached sketches (`O(2^p)` work) instead of
//! re-hashing every key of both sets.
//!
//! Because a HyperLogLog register array of a union equals the
//! register-wise maximum of the operands' arrays, the cached policy makes
//! *exactly* the same choices as the uncached
//! [`SmallestOutputPolicy`](crate::heuristics::SmallestOutputPolicy) with
//! an [`HllEstimator`](crate::HllEstimator) of the same precision — only
//! the per-iteration strategy overhead changes.

use std::collections::HashMap;

use hll::HyperLogLog;

use crate::heuristics::{ChoosePolicy, CollectionItem};
use crate::KeySet;

/// SMALLESTOUTPUT with per-sstable sketch caching (the paper's
/// implementation of the SO strategy).
#[derive(Debug, Clone)]
pub struct CachedSmallestOutputPolicy {
    precision: u8,
    sketches: HashMap<usize, HyperLogLog>,
}

impl CachedSmallestOutputPolicy {
    /// Creates the policy with the given HyperLogLog precision.
    #[must_use]
    pub fn new(precision: u8) -> Self {
        Self {
            precision,
            sketches: HashMap::new(),
        }
    }

    /// The configured precision.
    #[must_use]
    pub fn precision(&self) -> u8 {
        self.precision
    }

    /// Number of sketches currently cached (for tests and introspection).
    #[must_use]
    pub fn cached_sketch_count(&self) -> usize {
        self.sketches.len()
    }

    fn sketch_for(&mut self, slot: usize, set: &KeySet) -> &HyperLogLog {
        let precision = self.precision;
        self.sketches.entry(slot).or_insert_with(|| {
            let mut sketch = HyperLogLog::new(precision)
                .unwrap_or_else(|_| HyperLogLog::with_default_precision());
            for key in set.iter() {
                sketch.add_u64(key);
            }
            sketch
        })
    }

    fn union_estimate(&mut self, a: &CollectionItem, b: &CollectionItem) -> u64 {
        // Materialize both cache entries first, then merge registers.
        self.sketch_for(a.slot, &a.set);
        self.sketch_for(b.slot, &b.set);
        let sa = &self.sketches[&a.slot];
        let sb = &self.sketches[&b.slot];
        sa.union_estimate(sb)
            .expect("equal precision by construction")
    }
}

impl ChoosePolicy for CachedSmallestOutputPolicy {
    fn choose(&mut self, items: &mut [CollectionItem], k: usize) -> Vec<usize> {
        // Drop cache entries for slots that are no longer live so the
        // cache stays proportional to the working collection.
        let live: std::collections::HashSet<usize> = items.iter().map(|it| it.slot).collect();
        self.sketches.retain(|slot, _| live.contains(slot));

        // Best pair by estimated union size (ties by slot for determinism).
        let mut best: Option<(u64, usize, usize)> = None;
        for a in 0..items.len() {
            for b in (a + 1)..items.len() {
                let (ia, ib) = (items[a].clone(), items[b].clone());
                let est = self.union_estimate(&ia, &ib);
                let candidate = (est, a, b);
                if best.is_none_or(|cur| candidate < cur) {
                    best = Some(candidate);
                }
            }
        }
        let (_, a, b) = best.expect("at least two items");
        let mut chosen = vec![a, b];

        // Greedy k-way extension: merge the chosen sketches once, then add
        // the set minimizing the estimated union with the running sketch.
        while chosen.len() < k.min(items.len()) {
            let mut running = self.sketches[&items[chosen[0]].slot].clone();
            for &idx in &chosen[1..] {
                running
                    .merge(&self.sketches[&items[idx].slot])
                    .expect("equal precision");
            }
            let mut best_ext: Option<(u64, usize)> = None;
            for (i, item) in items.iter().enumerate() {
                if chosen.contains(&i) {
                    continue;
                }
                let item_clone = item.clone();
                self.sketch_for(item_clone.slot, &item_clone.set);
                let est = running
                    .union_estimate(&self.sketches[&item.slot])
                    .expect("equal precision");
                if best_ext.is_none_or(|cur| (est, i) < cur) {
                    best_ext = Some((est, i));
                }
            }
            match best_ext {
                Some((_, i)) => chosen.push(i),
                None => break,
            }
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::{GreedyMerger, SmallestOutputPolicy};
    use crate::{HllEstimator, KeySet};

    fn instance() -> Vec<KeySet> {
        (0..12u64)
            .map(|i| KeySet::from_range(i * 400..i * 400 + 900))
            .collect()
    }

    #[test]
    fn cached_policy_matches_uncached_hll_schedule() {
        let sets = instance();
        let merger = GreedyMerger::new(&sets, 2).unwrap();
        let cached = merger.run(CachedSmallestOutputPolicy::new(12)).unwrap();
        let uncached = merger
            .run(SmallestOutputPolicy::new(HllEstimator::new(12).unwrap()))
            .unwrap();
        // Register-wise max of per-set sketches equals the sketch of the
        // union, so both policies see identical estimates and build
        // identical schedules.
        assert_eq!(cached, uncached);
    }

    #[test]
    fn cache_is_pruned_to_live_slots() {
        let sets = instance();
        let mut policy = CachedSmallestOutputPolicy::new(10);
        let merger = GreedyMerger::new(&sets, 2).unwrap();
        // Run manually through the merger so we can inspect the policy
        // afterwards: clone it into the run and check the clone's growth
        // indirectly by running a single choose() on a small collection.
        let schedule = merger.run(policy.clone()).unwrap();
        assert_eq!(schedule.len(), sets.len() - 1);

        let mut items: Vec<crate::heuristics::CollectionItem> = sets
            .iter()
            .cloned()
            .enumerate()
            .map(|(slot, set)| crate::heuristics::CollectionItem {
                slot,
                set,
                level: 1,
            })
            .collect();
        let _ = policy.choose(&mut items, 2);
        assert_eq!(policy.cached_sketch_count(), sets.len());
        assert_eq!(policy.precision(), 10);

        // Shrink the collection: stale slots must be evicted on the next
        // choose call.
        items.truncate(3);
        let _ = policy.choose(&mut items, 2);
        assert_eq!(policy.cached_sketch_count(), 3);
    }

    #[test]
    fn kway_extension_uses_running_sketch() {
        let sets = vec![
            KeySet::from_range(0..1_000),
            KeySet::from_range(0..1_000),
            KeySet::from_range(100..1_100),
            KeySet::from_range(50_000..51_000),
        ];
        let schedule = GreedyMerger::new(&sets, 3)
            .unwrap()
            .run(CachedSmallestOutputPolicy::new(14))
            .unwrap();
        let mut first = schedule.ops()[0].inputs.clone();
        first.sort_unstable();
        assert_eq!(
            first,
            vec![0, 1, 2],
            "the three overlapping sets minimize the 3-way union"
        );
    }
}
