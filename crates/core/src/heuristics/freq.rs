//! FREQBINARYMERGING (Algorithm 2): the `f`-approximation.

use crate::heuristics::{GreedyMerger, SmallestInputPolicy};
use crate::{Error, KeySet, MergeSchedule};

/// Algorithm 2 from the paper: build *dummy sets* `A'_i = {(x, i) : x ∈
/// A_i}` (pairwise disjoint by construction), schedule them optimally
/// with SMALLESTINPUT (optimal because disjoint sets reduce to Huffman
/// coding, Lemma 4.3), and replay the same tree and leaf assignment on
/// the original sets.
///
/// Lemma 4.6 proves the resulting cost is at most `f · OPT`, where `f` is
/// the maximum number of initial sets any single key appears in. When
/// keys rarely repeat across sstables (low update rates), `f` is small
/// and this bound is stronger than the `O(log n)` greedy bounds.
///
/// # Errors
///
/// Returns [`Error::EmptyInput`] for zero sets and
/// [`Error::InvalidFanIn`] for `k < 2`.
pub fn frequency_schedule(sets: &[KeySet], k: usize) -> Result<MergeSchedule, Error> {
    let dummies: Vec<KeySet> = sets
        .iter()
        .enumerate()
        .map(|(i, s)| s.relabel_disjoint(i))
        .collect();
    // The schedule is expressed purely over slots, so the schedule built
    // for the dummy sets applies verbatim to the originals.
    GreedyMerger::new(&dummies, k)?.run(SmallestInputPolicy)
}

/// The maximum key frequency `f = max_x |{i : x ∈ A_i}|` of an instance.
/// The approximation guarantee of [`frequency_schedule`] is `f · OPT`.
#[must_use]
pub fn max_key_frequency(sets: &[KeySet]) -> u64 {
    let mut counts = std::collections::HashMap::new();
    for set in sets {
        for key in set.iter() {
            *counts.entry(key).or_insert(0u64) += 1;
        }
    }
    counts.values().copied().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Strategy;

    #[test]
    fn disjoint_instance_matches_smallest_input_exactly() {
        // With already-disjoint sets the relabelling is a no-op in effect,
        // so FREQ and SI produce equal-cost schedules.
        let sets: Vec<KeySet> = (0..7u64)
            .map(|i| KeySet::from_range(i * 50..i * 50 + 5 * (i + 1)))
            .collect();
        let freq = frequency_schedule(&sets, 2).unwrap();
        let si = crate::schedule_with(Strategy::SmallestInput, &sets, 2).unwrap();
        assert_eq!(freq.cost(&sets), si.cost(&sets));
        assert_eq!(max_key_frequency(&sets), 1);
    }

    #[test]
    fn f_approximation_bound_holds() {
        // Lemma 4.6: Cost ≤ f · OPT. Verify against the exhaustive optimum
        // on a small overlapping instance.
        let sets = vec![
            KeySet::from_iter([1u64, 2, 3, 5]),
            KeySet::from_iter([1u64, 2, 3, 4]),
            KeySet::from_iter([3u64, 4, 5]),
            KeySet::from_iter([6u64, 7, 8]),
            KeySet::from_iter([7u64, 8, 9]),
        ];
        let f = max_key_frequency(&sets);
        assert_eq!(f, 3, "key 3 appears in three sets");
        let freq = frequency_schedule(&sets, 2).unwrap();
        let opt = crate::optimal::optimal_schedule(&sets, 2).unwrap();
        assert!(freq.cost(&sets) <= f * opt.cost(&sets));
    }

    #[test]
    fn frequency_of_empty_and_identical_sets() {
        assert_eq!(max_key_frequency(&[]), 0);
        let sets = vec![KeySet::from_iter([1u64, 2]); 4];
        assert_eq!(max_key_frequency(&sets), 4);
        let schedule = frequency_schedule(&sets, 2).unwrap();
        assert_eq!(schedule.final_set(&sets).len(), 2);
    }

    #[test]
    fn relabelled_dummy_sets_are_scheduled_like_huffman() {
        // Dummy sets are disjoint with the same sizes as the originals, so
        // the schedule's *shape* on sets of very different sizes defers
        // the big set to the last merge (Huffman behaviour).
        let sets = vec![
            KeySet::from_range(0..100),
            KeySet::from_iter([0u64]),
            KeySet::from_iter([1u64]),
            KeySet::from_iter([2u64]),
        ];
        let schedule = frequency_schedule(&sets, 2).unwrap();
        let last_op = schedule.ops().last().unwrap();
        assert!(
            last_op.inputs.contains(&0),
            "the 100-key set must be merged last, inputs were {:?}",
            last_op.inputs
        );
    }
}
