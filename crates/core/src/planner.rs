//! Planning: turning per-table size observations into executable merge
//! plans.
//!
//! The heuristics in [`crate::heuristics`] answer *"in what order should
//! these key sets merge?"*; an engine needs the next step too — an
//! executable artifact it can hand to its physical compaction machinery.
//! A [`Planner`] closes that gap: it consumes one [`TableObservation`]
//! per live sstable (exact key sets, hashed key sets, or anything else
//! that preserves sizes and overlaps) and produces a [`MergePlan`]
//! bundling the chosen [`MergeSchedule`] with its slot-step lowering,
//! its parallel dependency waves, and the predicted costs used for
//! planned-vs-actual validation.
//!
//! [`StrategyPlanner`] is the paper-backed implementation: any
//! [`Strategy`] plus a [`SizeEstimator`] knob selecting between exact
//! union counting and the HyperLogLog estimation of Section 5 (the
//! paper's `SO(E)` variant).
//!
//! # Examples
//!
//! ```
//! use compaction_core::{KeySet, Strategy};
//! use compaction_core::planner::{Planner, StrategyPlanner, TableObservation};
//!
//! let tables = vec![
//!     TableObservation::new(10, KeySet::from_iter([1u64, 2, 3, 5])),
//!     TableObservation::new(11, KeySet::from_iter([1u64, 2, 3, 4])),
//!     TableObservation::new(12, KeySet::from_iter([3u64, 4, 5])),
//! ];
//! let planner = StrategyPlanner::new(Strategy::SmallestOutput);
//! let plan = planner.plan(&tables, 2)?;
//! assert_eq!(plan.steps().len(), 2, "3 tables need 2 binary merges");
//! assert!(plan.predicted_cost_actual() > 0);
//! # Ok::<(), compaction_core::Error>(())
//! ```

use crate::estimator::HllEstimator;
use crate::{schedule_with, Error, KeySet, MergeSchedule, Strategy};

/// One live table as the planner sees it: an opaque identifier plus the
/// key set observed for the table.
///
/// Engines that do not track logical 64-bit keys can hash their user
/// keys into the set — sizes and overlap structure, which are all the
/// strategies consume, survive hashing (modulo negligible collisions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableObservation {
    /// Caller-chosen identifier (e.g. the engine's table id).
    pub table_id: u64,
    /// Observed keys of the table.
    pub keys: KeySet,
}

impl TableObservation {
    /// Convenience constructor.
    #[must_use]
    pub fn new(table_id: u64, keys: KeySet) -> Self {
        Self { table_id, keys }
    }
}

/// How a planner estimates union cardinalities while scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SizeEstimator {
    /// Exact two-pointer union counting.
    #[default]
    Exact,
    /// HyperLogLog sketches, the paper's Section 5 `SO(E)` variant.
    Hll {
        /// Sketch precision `p` (the paper's evaluation uses 14).
        precision: u8,
    },
}

impl SizeEstimator {
    /// Rewrites `strategy` so its union-size estimation matches this
    /// estimator. Only the SMALLESTOUTPUT family estimates unions, so
    /// every other strategy passes through unchanged.
    #[must_use]
    pub fn apply(self, strategy: Strategy) -> Strategy {
        match (self, strategy) {
            (Self::Hll { precision }, Strategy::SmallestOutput) => {
                Strategy::SmallestOutputCached { precision }
            }
            (
                Self::Exact,
                Strategy::SmallestOutputHll { .. } | Strategy::SmallestOutputCached { .. },
            ) => Strategy::SmallestOutput,
            (
                Self::Hll { precision },
                Strategy::SmallestOutputHll { .. } | Strategy::SmallestOutputCached { .. },
            ) => Strategy::SmallestOutputCached { precision },
            (_, other) => other,
        }
    }

    /// The paper's evaluation setting: HLL at precision 14.
    #[must_use]
    pub fn paper_hll() -> Self {
        Self::Hll {
            precision: hll::DEFAULT_PRECISION,
        }
    }

    /// A validated [`HllEstimator`] for callers that cache sketches, or
    /// `None` for [`SizeEstimator::Exact`].
    #[must_use]
    pub fn hll_estimator(self) -> Option<HllEstimator> {
        match self {
            Self::Exact => None,
            Self::Hll { precision } => Some(HllEstimator::new(precision).unwrap_or_default()),
        }
    }
}

/// An executable compaction plan.
///
/// Produced by a [`Planner`]; consumed by physical executors. The plan
/// carries everything both sides need: the logical schedule (for cost
/// accounting), the slot-step lowering (for physical replay) and the
/// dependency waves (for parallel execution).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergePlan {
    strategy: Strategy,
    schedule: MergeSchedule,
    steps: Vec<Vec<usize>>,
    waves: Vec<Vec<usize>>,
    predicted_cost: u64,
    predicted_cost_actual: u64,
}

impl MergePlan {
    /// Builds a plan from a schedule and the observations it was planned
    /// over, precomputing lowering, waves and predicted costs.
    #[must_use]
    pub fn from_schedule(
        strategy: Strategy,
        schedule: MergeSchedule,
        observed_sets: &[KeySet],
    ) -> Self {
        let steps = schedule.slot_steps();
        let waves = schedule.dependency_waves();
        let predicted_cost = schedule.cost(observed_sets);
        let predicted_cost_actual = schedule.cost_actual(observed_sets);
        Self {
            strategy,
            schedule,
            steps,
            waves,
            predicted_cost,
            predicted_cost_actual,
        }
    }

    /// The strategy that produced this plan.
    #[must_use]
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The logical merge schedule.
    #[must_use]
    pub fn schedule(&self) -> &MergeSchedule {
        &self.schedule
    }

    /// The slot-step lowering: input slots per merge, execution order
    /// (see [`MergeSchedule::slot_steps`]).
    #[must_use]
    pub fn steps(&self) -> &[Vec<usize>] {
        &self.steps
    }

    /// Parallel dependency waves of step indices (see
    /// [`MergeSchedule::dependency_waves`]).
    #[must_use]
    pub fn waves(&self) -> &[Vec<usize>] {
        &self.waves
    }

    /// `true` when there is nothing to merge (fewer than two tables).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Predicted simplified cost (eq. 2.1) over the observed sets.
    #[must_use]
    pub fn predicted_cost(&self) -> u64 {
        self.predicted_cost
    }

    /// Predicted disk-I/O cost `cost_actual` (Section 2) over the
    /// observed sets, in keys. An engine executing this plan should
    /// measure entries read + written close to this number (exactly
    /// equal when observations are exact and no versions collapse).
    #[must_use]
    pub fn predicted_cost_actual(&self) -> u64 {
        self.predicted_cost_actual
    }
}

/// Plans merge schedules over observed tables.
///
/// The engine calls this at trigger time with one observation per live
/// table; implementations choose the merge order. The returned plan
/// references tables by *slot* (observation index), matching
/// [`MergeSchedule`] conventions.
pub trait Planner: std::fmt::Debug {
    /// Plans a full compaction of `tables` down to one, merging at most
    /// `fanin` tables per step.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyInput`] if `tables` is empty, [`Error::InvalidFanIn`]
    /// if `fanin < 2`, plus any strategy-specific failure.
    fn plan(&self, tables: &[TableObservation], fanin: usize) -> Result<MergePlan, Error>;
}

/// The paper-backed planner: a greedy [`Strategy`] plus a
/// [`SizeEstimator`] knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrategyPlanner {
    strategy: Strategy,
    estimator: SizeEstimator,
}

impl StrategyPlanner {
    /// A planner using `strategy` with exact union counting.
    #[must_use]
    pub fn new(strategy: Strategy) -> Self {
        Self {
            strategy,
            estimator: SizeEstimator::Exact,
        }
    }

    /// Selects the union-size estimator (the `SO` vs `SO(E)` knob).
    #[must_use]
    pub fn with_estimator(mut self, estimator: SizeEstimator) -> Self {
        self.estimator = estimator;
        self
    }

    /// The strategy actually used for scheduling, after the estimator
    /// rewrite.
    #[must_use]
    pub fn effective_strategy(&self) -> Strategy {
        self.estimator.apply(self.strategy)
    }
}

impl Planner for StrategyPlanner {
    fn plan(&self, tables: &[TableObservation], fanin: usize) -> Result<MergePlan, Error> {
        let sets: Vec<KeySet> = tables.iter().map(|t| t.keys.clone()).collect();
        let strategy = self.effective_strategy();
        let schedule = schedule_with(strategy, &sets, fanin)?;
        Ok(MergePlan::from_schedule(strategy, schedule, &sets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observations() -> Vec<TableObservation> {
        vec![
            TableObservation::new(0, KeySet::from_iter([1u64, 2, 3, 5])),
            TableObservation::new(1, KeySet::from_iter([1u64, 2, 3, 4])),
            TableObservation::new(2, KeySet::from_iter([3u64, 4, 5])),
            TableObservation::new(3, KeySet::from_iter([6u64, 7, 8])),
            TableObservation::new(4, KeySet::from_iter([7u64, 8, 9])),
        ]
    }

    #[test]
    fn strategy_planner_reproduces_schedule_with() {
        let tables = observations();
        let sets: Vec<KeySet> = tables.iter().map(|t| t.keys.clone()).collect();
        let plan = StrategyPlanner::new(Strategy::SmallestOutput)
            .plan(&tables, 2)
            .unwrap();
        let direct = schedule_with(Strategy::SmallestOutput, &sets, 2).unwrap();
        assert_eq!(plan.schedule(), &direct);
        assert_eq!(plan.predicted_cost(), 40, "Figure 6");
        assert_eq!(plan.predicted_cost_actual(), direct.cost_actual(&sets));
        assert_eq!(plan.steps(), direct.slot_steps().as_slice());
        assert_eq!(plan.waves(), direct.dependency_waves().as_slice());
        assert_eq!(plan.strategy(), Strategy::SmallestOutput);
    }

    #[test]
    fn estimator_rewrites_only_smallest_output() {
        let hll = SizeEstimator::Hll { precision: 12 };
        assert_eq!(
            hll.apply(Strategy::SmallestOutput),
            Strategy::SmallestOutputCached { precision: 12 }
        );
        assert_eq!(
            hll.apply(Strategy::BalanceTreeInput),
            Strategy::BalanceTreeInput
        );
        assert_eq!(hll.apply(Strategy::SmallestInput), Strategy::SmallestInput);
        assert_eq!(
            SizeEstimator::Exact.apply(Strategy::SmallestOutputHll { precision: 14 }),
            Strategy::SmallestOutput
        );
        assert_eq!(
            hll.apply(Strategy::SmallestOutputHll { precision: 14 }),
            Strategy::SmallestOutputCached { precision: 12 }
        );
        assert!(SizeEstimator::Exact.hll_estimator().is_none());
        assert_eq!(
            SizeEstimator::paper_hll()
                .hll_estimator()
                .unwrap()
                .precision(),
            14
        );
    }

    #[test]
    fn planner_with_estimator_plans_complete_schedules() {
        let tables = observations();
        let planner = StrategyPlanner::new(Strategy::SmallestOutput)
            .with_estimator(SizeEstimator::Hll { precision: 12 });
        assert_eq!(
            planner.effective_strategy(),
            Strategy::SmallestOutputCached { precision: 12 }
        );
        let plan = planner.plan(&tables, 2).unwrap();
        assert_eq!(plan.steps().len(), 4);
        assert!(!plan.is_empty());
    }

    #[test]
    fn single_table_plans_are_empty() {
        let tables = vec![TableObservation::new(9, KeySet::from_range(0..10))];
        let plan = StrategyPlanner::new(Strategy::BalanceTreeInput)
            .plan(&tables, 2)
            .unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.predicted_cost_actual(), 0);
    }

    #[test]
    fn planner_errors_propagate() {
        assert!(matches!(
            StrategyPlanner::new(Strategy::SmallestInput).plan(&[], 2),
            Err(Error::EmptyInput)
        ));
        let tables = observations();
        assert!(matches!(
            StrategyPlanner::new(Strategy::SmallestInput).plan(&tables, 1),
            Err(Error::InvalidFanIn { requested: 1 })
        ));
    }
}
