//! Property-based tests for the scheduling library's core invariants.

use compaction_core::bounds::{lopt_lower_bound, ratio_to_lopt};
use compaction_core::heuristics::max_key_frequency;
use compaction_core::optimal::optimal_schedule;
use compaction_core::{
    schedule_with, Cardinality, ConstantOverhead, KeySet, Strategy, WeightedKeys,
};
use proptest::prelude::*;
// The explicit `Strategy` enum import above shadows proptest's `Strategy`
// trait name; re-import the trait anonymously so its methods stay usable.
use proptest::strategy::Strategy as _;

/// A random instance: up to `max_sets` sets with keys drawn from a small
/// universe so overlaps are common (the interesting regime).
fn arb_instance(
    max_sets: usize,
    universe: u64,
) -> impl proptest::strategy::Strategy<Value = Vec<KeySet>> {
    proptest::collection::vec(
        proptest::collection::vec(0..universe, 1..40).prop_map(KeySet::from_vec),
        1..=max_sets,
    )
}

fn all_strategies() -> Vec<Strategy> {
    vec![
        Strategy::BalanceTree,
        Strategy::BalanceTreeInput,
        Strategy::BalanceTreeOutput,
        Strategy::SmallestInput,
        Strategy::SmallestOutput,
        Strategy::SmallestOutputHll { precision: 12 },
        Strategy::SmallestOutputCached { precision: 12 },
        Strategy::LargestMatch,
        Strategy::Random { seed: 17 },
        Strategy::Frequency,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every strategy produces a valid schedule ending in the union of all
    /// keys, with exactly the expected number of merges for k = 2, and a
    /// cost of at least the LOPT lower bound.
    #[test]
    fn schedules_are_valid_and_complete(sets in arb_instance(10, 120)) {
        let universe = KeySet::union_many(sets.iter());
        for strategy in all_strategies() {
            let schedule = schedule_with(strategy, &sets, 2).unwrap();
            prop_assert_eq!(schedule.len(), sets.len() - 1, "{}", strategy);
            prop_assert_eq!(schedule.final_set(&sets), universe.clone(), "{}", strategy);
            prop_assert!(schedule.cost(&sets) >= lopt_lower_bound(&sets));
            // The root alone never costs more than the whole schedule.
            prop_assert!(schedule.cost(&sets) >= universe.len() as u64);
        }
    }

    /// The simplified cost equals its per-element reformulation (eq. 2.1
    /// vs eq. 2.2), and cost_actual = cost + (internal non-root output
    /// sizes) − (leaf sizes) ... verified via the direct identity
    /// cost_actual = 2·Σ outputs + Σ leaves − Σ leaves? Simplest exact
    /// relation: cost = Σ leaves + Σ outputs and cost_actual = Σ inputs +
    /// Σ outputs over ops; for binary schedules every leaf is an input
    /// exactly once and every non-final output is an input exactly once,
    /// so cost_actual = Σ leaves + 2·Σ outputs − |root|.
    #[test]
    fn cost_identities_hold(sets in arb_instance(8, 60)) {
        let schedule = schedule_with(Strategy::SmallestInput, &sets, 2).unwrap();
        prop_assert_eq!(schedule.cost(&sets), schedule.cost_reformulated(&sets));

        let leaves: u64 = sets.iter().map(|s| s.len() as u64).sum();
        let outputs: u64 = schedule.outputs(&sets).iter().map(|s| s.len() as u64).sum();
        let root = schedule.final_set(&sets).len() as u64;
        prop_assert_eq!(schedule.cost(&sets), leaves + outputs);
        if !schedule.is_empty() {
            prop_assert_eq!(schedule.cost_actual(&sets), leaves + 2 * outputs - root);
        }
    }

    /// The exhaustive optimum lower-bounds every heuristic and is itself
    /// lower-bounded by LOPT; greedy stays within its analytic bound of
    /// the optimum.
    #[test]
    fn optimal_is_a_true_lower_bound(sets in arb_instance(6, 40)) {
        let opt = optimal_schedule(&sets, 2).unwrap();
        let opt_cost = opt.cost(&sets);
        prop_assert!(opt_cost >= lopt_lower_bound(&sets));
        for strategy in all_strategies() {
            let cost = schedule_with(strategy, &sets, 2).unwrap().cost(&sets);
            prop_assert!(cost >= opt_cost, "{} beat the optimum: {} < {}", strategy, cost, opt_cost);
        }
        // Lemma 4.4 against OPT (stronger than against LOPT).
        let si = schedule_with(Strategy::SmallestInput, &sets, 2).unwrap().cost(&sets);
        let bound = compaction_core::bounds::greedy_approximation_bound(sets.len());
        prop_assert!(si as f64 <= bound * opt_cost as f64);
    }

    /// Lemma 4.6: FREQBINARYMERGING is an f-approximation.
    #[test]
    fn frequency_is_an_f_approximation(sets in arb_instance(6, 30)) {
        let f = max_key_frequency(&sets).max(1);
        let freq_cost = schedule_with(Strategy::Frequency, &sets, 2).unwrap().cost(&sets);
        let opt_cost = optimal_schedule(&sets, 2).unwrap().cost(&sets);
        prop_assert!(freq_cost <= f * opt_cost,
            "freq {freq_cost} > f {f} × opt {opt_cost}");
    }

    /// Lemma 4.3: on disjoint instances SI (Huffman) achieves the optimum.
    #[test]
    fn huffman_is_optimal_on_disjoint_sets(sizes in proptest::collection::vec(1u64..12, 2..7)) {
        let mut offset = 0u64;
        let sets: Vec<KeySet> = sizes
            .iter()
            .map(|&len| {
                let s = KeySet::from_range(offset..offset + len);
                offset += len + 1;
                s
            })
            .collect();
        let si = schedule_with(Strategy::SmallestInput, &sets, 2).unwrap().cost(&sets);
        let opt = optimal_schedule(&sets, 2).unwrap().cost(&sets);
        prop_assert_eq!(si, opt);
    }

    /// Larger fan-in never increases the *optimal* cost (every binary
    /// schedule is also a valid k-way schedule), and every k-way greedy
    /// schedule still ends in the full union. Note the greedy heuristics
    /// themselves are not monotone in k — only the optimum is.
    #[test]
    fn kway_optimal_cost_is_monotone_in_k(sets in arb_instance(6, 40)) {
        let universe = KeySet::union_many(sets.iter());
        let mut previous = u64::MAX;
        for k in [2usize, 3, 4] {
            let greedy = schedule_with(Strategy::SmallestInput, &sets, k).unwrap();
            prop_assert_eq!(greedy.final_set(&sets), universe.clone());
            let opt = optimal_schedule(&sets, k).unwrap();
            let cost = opt.cost(&sets);
            prop_assert!(cost <= previous, "k={k} optimal cost {cost} > previous {previous}");
            prop_assert!(greedy.cost(&sets) >= cost);
            previous = cost;
        }
    }

    /// Cost models: scaling weights scales costs; adding a constant
    /// overhead adds exactly (ops + n) × overhead under eq. 2.1 counting
    /// of non-empty nodes.
    #[test]
    fn cost_models_compose_sensibly(sets in arb_instance(7, 50)) {
        let schedule = schedule_with(Strategy::SmallestOutput, &sets, 2).unwrap();
        let base = schedule.cost_with(&sets, &Cardinality);
        let scaled = schedule.cost_with(&sets, &WeightedKeys::uniform(3));
        prop_assert_eq!(scaled, base * 3);

        let with_overhead = schedule.cost_with(&sets, &ConstantOverhead::new(Cardinality, 10));
        let nonempty_nodes =
            sets.iter().filter(|s| !s.is_empty()).count() as u64 + schedule.len() as u64;
        prop_assert_eq!(with_overhead, base + 10 * nonempty_nodes);
    }

    /// The ratio to LOPT never exceeds the worst of the analytic bounds
    /// for the three O(log n) heuristics on random instances.
    #[test]
    fn ratios_stay_below_analytic_bounds(sets in arb_instance(10, 100)) {
        for strategy in [Strategy::BalanceTreeInput, Strategy::SmallestInput, Strategy::SmallestOutput] {
            let schedule = schedule_with(strategy, &sets, 2).unwrap();
            let ratio = ratio_to_lopt(&schedule, &sets);
            let log_bound = compaction_core::bounds::balance_tree_approximation_bound(sets.len());
            let greedy_bound = compaction_core::bounds::greedy_approximation_bound(sets.len());
            prop_assert!(ratio <= log_bound.max(greedy_bound) + 1e-9,
                "{} ratio {} exceeds bounds", strategy, ratio);
        }
    }
}
