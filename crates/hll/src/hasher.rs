//! 64-bit non-cryptographic hashing used by the HyperLogLog sketch.
//!
//! HyperLogLog only needs a hash function whose output bits are
//! approximately uniform and independent. We use the SplitMix64 finalizer
//! (Stafford's Mix13 variant) for integers and an FNV-1a/SplitMix64 hybrid
//! for byte strings. Both are deterministic across runs, which keeps
//! simulator experiments reproducible.

/// Hashes a 64-bit integer to a 64-bit value with good bit dispersion.
///
/// This is the SplitMix64 output-mixing function; it is a bijection, so
/// distinct keys can never collide, and its avalanche behaviour is strong
/// enough for HyperLogLog register selection.
///
/// # Examples
///
/// ```
/// let h1 = hll::hash_u64(1);
/// let h2 = hll::hash_u64(2);
/// assert_ne!(h1, h2);
/// ```
#[inline]
#[must_use]
pub fn hash_u64(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a byte slice to a 64-bit value.
///
/// Bytes are folded with FNV-1a and the accumulator is then passed through
/// [`hash_u64`] to improve avalanche on the high bits (FNV alone has weak
/// high-bit dispersion, and HyperLogLog uses the high bits to pick the
/// register index).
///
/// # Examples
///
/// ```
/// assert_ne!(hll::hash_bytes(b"alpha"), hll::hash_bytes(b"beta"));
/// ```
#[inline]
#[must_use]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut acc = FNV_OFFSET;
    for &b in bytes {
        acc ^= u64::from(b);
        acc = acc.wrapping_mul(FNV_PRIME);
    }
    hash_u64(acc ^ (bytes.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn hash_u64_is_deterministic() {
        assert_eq!(hash_u64(42), hash_u64(42));
    }

    #[test]
    fn hash_u64_is_injective_on_small_range() {
        let hashes: HashSet<u64> = (0u64..100_000).map(hash_u64).collect();
        assert_eq!(hashes.len(), 100_000);
    }

    #[test]
    fn hash_bytes_distinguishes_length() {
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
        assert_ne!(hash_bytes(b"a"), hash_bytes(b"aa"));
    }

    #[test]
    fn hash_u64_bits_are_roughly_balanced() {
        // Over many hashed values, each bit position should be set roughly
        // half of the time. This is a coarse avalanche sanity check.
        let n = 10_000u64;
        let mut ones = [0u32; 64];
        for x in 0..n {
            let h = hash_u64(x);
            for (bit, count) in ones.iter_mut().enumerate() {
                if h & (1 << bit) != 0 {
                    *count += 1;
                }
            }
        }
        for &count in &ones {
            let frac = f64::from(count) / n as f64;
            assert!(
                (0.45..=0.55).contains(&frac),
                "bit bias out of range: {frac}"
            );
        }
    }
}
