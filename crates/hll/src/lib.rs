//! HyperLogLog cardinality estimation.
//!
//! The SmallestOutput (SO) compaction heuristic from *Fast Compaction
//! Algorithms for NoSQL Databases* (ICDCS 2015, Section 5.1) needs to
//! estimate the cardinality of the union of two sstables **without**
//! actually merging them. The paper uses HyperLogLog (Flajolet et al.,
//! AOFA 2007) for this; this crate is a from-scratch implementation of the
//! estimator with:
//!
//! * dense 6-bit-equivalent registers (stored as one byte each for
//!   simplicity and speed),
//! * the standard bias-corrected raw estimate with linear-counting
//!   correction for small ranges and the large-range correction,
//! * lossless register-wise `merge` so that the estimate of a union can be
//!   obtained without touching the underlying sets, and
//! * a non-cryptographic 64-bit hasher (SplitMix64 finalizer) so no
//!   external hashing dependency is needed.
//!
//! # Examples
//!
//! ```
//! use hll::HyperLogLog;
//!
//! # fn main() -> Result<(), hll::Error> {
//! let mut a = HyperLogLog::new(14)?;
//! let mut b = HyperLogLog::new(14)?;
//! for x in 0u64..10_000 {
//!     a.add_u64(x);
//! }
//! for x in 5_000u64..15_000 {
//!     b.add_u64(x);
//! }
//! // True union cardinality is 15 000; HLL with p = 14 has ~0.8 % error.
//! let est = a.union_estimate(&b)?;
//! assert!((est as f64 - 15_000.0).abs() / 15_000.0 < 0.05);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod error;
mod hasher;
mod registers;
mod sketch;

pub use error::Error;
pub use hasher::{hash_bytes, hash_u64};
pub use registers::Registers;
pub use sketch::HyperLogLog;

/// Smallest supported precision (2^4 = 16 registers).
pub const MIN_PRECISION: u8 = 4;

/// Largest supported precision (2^18 = 262 144 registers).
pub const MAX_PRECISION: u8 = 18;

/// The precision used throughout the compaction simulator.
///
/// `p = 14` gives a relative standard error of `1.04 / sqrt(2^14) ≈ 0.81 %`,
/// matching the accuracy regime the paper's evaluation relies on when the
/// SmallestOutput strategy estimates union cardinalities.
pub const DEFAULT_PRECISION: u8 = 14;

/// Relative standard error of a HyperLogLog sketch with precision `p`.
///
/// This is the textbook `1.04 / sqrt(m)` bound with `m = 2^p` registers.
///
/// # Examples
///
/// ```
/// let rse = hll::relative_standard_error(14);
/// assert!(rse > 0.008 && rse < 0.0082);
/// ```
pub fn relative_standard_error(precision: u8) -> f64 {
    let m = (1u64 << precision) as f64;
    1.04 / m.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rse_decreases_with_precision() {
        assert!(relative_standard_error(4) > relative_standard_error(10));
        assert!(relative_standard_error(10) > relative_standard_error(18));
    }
}
