//! The HyperLogLog sketch itself.

use crate::{hash_bytes, hash_u64, Error, Registers, DEFAULT_PRECISION};

/// A HyperLogLog cardinality sketch.
///
/// The sketch supports adding 64-bit keys or byte strings, estimating the
/// number of distinct items added, and lossless merging with other
/// sketches of the same precision. Merging is what makes HyperLogLog
/// attractive for compaction scheduling: the SmallestOutput heuristic can
/// estimate `|A ∪ B|` for every candidate pair of sstables by merging
/// their per-sstable sketches, without reading either sstable from disk.
///
/// # Examples
///
/// ```
/// use hll::HyperLogLog;
///
/// # fn main() -> Result<(), hll::Error> {
/// let mut sketch = HyperLogLog::new(12)?;
/// for key in 0u64..1_000 {
///     sketch.add_u64(key);
///     sketch.add_u64(key); // duplicates do not change the estimate
/// }
/// let est = sketch.count();
/// assert!((est as f64 - 1_000.0).abs() < 100.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HyperLogLog {
    registers: Registers,
}

impl HyperLogLog {
    /// Creates an empty sketch with `2^precision` registers.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidPrecision`] if `precision` is outside the
    /// supported range.
    ///
    /// # Examples
    ///
    /// ```
    /// let sketch = hll::HyperLogLog::new(14)?;
    /// assert_eq!(sketch.count(), 0);
    /// # Ok::<(), hll::Error>(())
    /// ```
    pub fn new(precision: u8) -> Result<Self, Error> {
        Ok(Self {
            registers: Registers::new(precision)?,
        })
    }

    /// Creates a sketch with the crate-default precision
    /// ([`DEFAULT_PRECISION`]).
    #[must_use]
    pub fn with_default_precision() -> Self {
        Self::new(DEFAULT_PRECISION).expect("default precision is always valid")
    }

    /// The precision `p` of this sketch.
    #[must_use]
    pub fn precision(&self) -> u8 {
        self.registers.precision()
    }

    /// Number of registers `m = 2^p`.
    #[must_use]
    pub fn register_count(&self) -> usize {
        self.registers.len()
    }

    /// Returns `true` if no item has been added yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.registers.is_empty()
    }

    /// Borrows the underlying registers.
    #[must_use]
    pub fn registers(&self) -> &Registers {
        &self.registers
    }

    /// Adds a pre-hashed 64-bit value to the sketch.
    ///
    /// Use this when the caller already applies its own uniform hash; the
    /// value is used as-is for register selection.
    pub fn add_hash(&mut self, hash: u64) {
        let p = u32::from(self.precision());
        let index = (hash >> (64 - p)) as usize;
        // The remaining (64 - p) bits, shifted up so that leading_zeros
        // counts only those bits; +1 gives the rank in 1..=(64 - p + 1).
        let suffix = hash << p;
        let rank = if suffix == 0 {
            (64 - p + 1) as u8
        } else {
            (suffix.leading_zeros() + 1) as u8
        };
        self.registers.observe(index, rank);
    }

    /// Adds a 64-bit key to the sketch.
    pub fn add_u64(&mut self, key: u64) {
        self.add_hash(hash_u64(key));
    }

    /// Adds a byte-string key to the sketch.
    pub fn add_bytes(&mut self, key: &[u8]) {
        self.add_hash(hash_bytes(key));
    }

    /// Estimates the number of distinct items added so far.
    ///
    /// Applies the standard corrections: linear counting when the raw
    /// estimate is small and some registers are still zero, and the
    /// large-range correction near `2^64`.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.estimate().round().max(0.0) as u64
    }

    /// The estimate as a floating-point value (before rounding).
    #[must_use]
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let raw = alpha(self.registers.len()) * m * m / self.registers.harmonic_sum();

        if raw <= 2.5 * m {
            let zeros = self.registers.zero_count();
            if zeros > 0 {
                // Linear counting.
                return m * (m / zeros as f64).ln();
            }
            return raw;
        }
        let two64 = 2f64.powi(64);
        if raw > two64 / 30.0 {
            // Large-range correction.
            return -two64 * (1.0 - raw / two64).ln();
        }
        raw
    }

    /// Merges `other` into `self` (register-wise maximum). After merging,
    /// `self.count()` estimates the cardinality of the union of the two
    /// underlying multisets.
    ///
    /// # Errors
    ///
    /// Returns [`Error::PrecisionMismatch`] if the sketches have different
    /// precisions.
    ///
    /// # Examples
    ///
    /// ```
    /// use hll::HyperLogLog;
    /// # fn main() -> Result<(), hll::Error> {
    /// let mut a = HyperLogLog::new(12)?;
    /// let mut b = HyperLogLog::new(12)?;
    /// a.add_u64(1);
    /// b.add_u64(2);
    /// a.merge(&b)?;
    /// assert!(a.count() >= 1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn merge(&mut self, other: &Self) -> Result<(), Error> {
        self.registers.merge_from(&other.registers)
    }

    /// Estimates `|A ∪ B|` without modifying either sketch.
    ///
    /// # Errors
    ///
    /// Returns [`Error::PrecisionMismatch`] if the sketches have different
    /// precisions.
    pub fn union_estimate(&self, other: &Self) -> Result<u64, Error> {
        let mut merged = self.clone();
        merged.merge(other)?;
        Ok(merged.count())
    }

    /// Removes all items from the sketch, keeping the allocation.
    pub fn clear(&mut self) {
        self.registers.clear();
    }
}

impl Default for HyperLogLog {
    fn default() -> Self {
        Self::with_default_precision()
    }
}

impl Extend<u64> for HyperLogLog {
    fn extend<T: IntoIterator<Item = u64>>(&mut self, iter: T) {
        for key in iter {
            self.add_u64(key);
        }
    }
}

impl FromIterator<u64> for HyperLogLog {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        let mut sketch = Self::with_default_precision();
        sketch.extend(iter);
        sketch
    }
}

/// Bias-correction constant `alpha_m` from the HyperLogLog paper.
fn alpha(m: usize) -> f64 {
    match m {
        16 => 0.673,
        32 => 0.697,
        64 => 0.709,
        _ => 0.7213 / (1.0 + 1.079 / m as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(estimate: u64, truth: u64, tolerance: f64) {
        let err = (estimate as f64 - truth as f64).abs() / truth as f64;
        assert!(
            err <= tolerance,
            "estimate {estimate} vs truth {truth}: relative error {err:.4} > {tolerance}"
        );
    }

    #[test]
    fn empty_sketch_counts_zero() {
        let sketch = HyperLogLog::new(10).unwrap();
        assert_eq!(sketch.count(), 0);
        assert!(sketch.is_empty());
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut sketch = HyperLogLog::new(12).unwrap();
        for _ in 0..100 {
            sketch.add_u64(7);
        }
        assert_eq!(sketch.count(), 1);
    }

    #[test]
    fn small_cardinalities_are_exactish() {
        // Linear counting should make small cardinalities accurate.
        let mut sketch = HyperLogLog::new(12).unwrap();
        for x in 0u64..100 {
            sketch.add_u64(x);
        }
        assert_close(sketch.count(), 100, 0.05);
    }

    #[test]
    fn medium_cardinalities_within_error_bound() {
        let mut sketch = HyperLogLog::new(14).unwrap();
        let truth = 200_000u64;
        for x in 0..truth {
            sketch.add_u64(x);
        }
        // 5x the relative standard error as a generous deterministic bound.
        assert_close(
            sketch.count(),
            truth,
            5.0 * crate::relative_standard_error(14),
        );
    }

    #[test]
    fn bytes_and_u64_apis_are_consistent_on_distinctness() {
        let mut sketch = HyperLogLog::new(12).unwrap();
        for x in 0u64..1000 {
            sketch.add_bytes(&x.to_be_bytes());
        }
        assert_close(sketch.count(), 1000, 0.1);
    }

    #[test]
    fn merge_estimates_union() {
        let mut a = HyperLogLog::new(14).unwrap();
        let mut b = HyperLogLog::new(14).unwrap();
        for x in 0u64..50_000 {
            a.add_u64(x);
        }
        for x in 25_000u64..75_000 {
            b.add_u64(x);
        }
        let est = a.union_estimate(&b).unwrap();
        assert_close(est, 75_000, 0.05);
        // union_estimate must not mutate either operand.
        assert_close(a.count(), 50_000, 0.05);
        assert_close(b.count(), 50_000, 0.05);
    }

    #[test]
    fn merge_is_commutative_in_estimate() {
        let mut a = HyperLogLog::new(10).unwrap();
        let mut b = HyperLogLog::new(10).unwrap();
        for x in 0u64..3_000 {
            a.add_u64(x * 2);
        }
        for x in 0u64..3_000 {
            b.add_u64(x * 3);
        }
        let ab = a.union_estimate(&b).unwrap();
        let ba = b.union_estimate(&a).unwrap();
        assert_eq!(ab, ba);
    }

    #[test]
    fn merge_rejects_precision_mismatch() {
        let a = HyperLogLog::new(10).unwrap();
        let b = HyperLogLog::new(12).unwrap();
        assert!(a.union_estimate(&b).is_err());
    }

    #[test]
    fn from_iterator_and_extend() {
        let sketch: HyperLogLog = (0u64..500).collect();
        assert!((sketch.count() as i64 - 500).abs() < 50);
        let mut sketch2 = HyperLogLog::default();
        sketch2.extend(0u64..500);
        assert!((sketch2.count() as i64 - 500).abs() < 50);
    }

    #[test]
    fn clear_resets() {
        let mut sketch: HyperLogLog = (0u64..500).collect();
        sketch.clear();
        assert_eq!(sketch.count(), 0);
    }

    #[test]
    fn sketch_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HyperLogLog>();
    }
}
